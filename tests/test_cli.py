"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "matrix-rotate" in out and "randomAccess" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt4" in out and "163,840" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "GPT-4" in capsys.readouterr().out

    def test_translate_success(self, capsys):
        rc = main(["translate", "layout", "--model", "codestral",
                   "--direction", "omp2cuda", "--show-code"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "status: success" in out
        assert "__global__" in out

    def test_translate_planned_na_exits_nonzero(self, capsys):
        rc = main(["translate", "dense-embedding", "--model", "gpt4",
                   "--direction", "omp2cuda"])
        assert rc == 1

    def test_evaluate_slice(self, capsys):
        rc = main(["evaluate", "--models", "wizardcoder",
                   "--apps", "entropy", "--direction", "cuda2omp"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table VII" in out
        assert "CUDA -> OpenMP" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["translate", "frobnicate"])
