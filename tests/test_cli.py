"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

import repro.api
import repro.cli  # noqa: F401 - patched seams live in repro.api now
from repro.cli import main


class TestCli:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "matrix-rotate" in out and "randomAccess" in out

    def test_apps_shows_category_and_paper_runtimes(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "Math" in out
        assert "57.3354" in out  # jacobi OpenMP paper runtime
        assert "0.8641" in out   # jacobi CUDA paper runtime

    def test_apps_is_suite_aware(self, capsys):
        assert main(["apps", "--suite", "synth:gather:seeds=2"]) == 0
        out = capsys.readouterr().out
        assert "synth-gather-d1-s0" in out and "synth-gather-d1-s1" in out
        assert "matrix-rotate" not in out

    def test_apps_unknown_suite_is_error(self, capsys):
        assert main(["apps", "--suite", "table5000"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt4" in out and "163,840" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "GPT-4" in capsys.readouterr().out

    def test_translate_success(self, capsys):
        rc = main(["translate", "layout", "--model", "codestral",
                   "--direction", "omp2cuda", "--show-code"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "status: success" in out
        assert "__global__" in out

    def test_translate_planned_na_exits_nonzero(self, capsys):
        rc = main(["translate", "dense-embedding", "--model", "gpt4",
                   "--direction", "omp2cuda"])
        assert rc == 1

    def test_evaluate_slice(self, capsys):
        rc = main(["evaluate", "--models", "wizardcoder",
                   "--apps", "entropy", "--direction", "cuda2omp"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table VII" in out
        assert "CUDA -> OpenMP" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["translate", "frobnicate"])

    def test_translate_typo_gets_did_you_mean(self, capsys):
        with pytest.raises(SystemExit):
            main(["translate", "jacobbi"])
        assert "did you mean 'jacobi'" in capsys.readouterr().err

    def test_translate_is_case_insensitive(self, capsys):
        rc = main(["translate", "LAYOUT", "--model", "codestral",
                   "--direction", "omp2cuda"])
        assert rc == 0
        assert "status: success" in capsys.readouterr().out

    def test_translate_synth_app_by_name(self, capsys):
        rc = main(["translate", "synth-stencil-d1-s0", "--model", "codestral",
                   "--direction", "omp2cuda", "--show-code"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "status: success" in out
        assert "__global__" in out


class TestEvaluateParallel:
    def test_evaluate_jobs_matches_serial_output(self, capsys):
        argv = ["evaluate", "--models", "wizardcoder", "--apps", "entropy",
                "--direction", "cuda2omp"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_evaluate_process_backend_matches_serial_output(self, capsys):
        argv = ["evaluate", "--models", "wizardcoder", "--apps", "entropy",
                "--direction", "cuda2omp"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2", "--backend", "process"]) == 0
        process_out = capsys.readouterr().out
        assert process_out == serial_out

    def test_evaluate_jobs_auto_accepted(self, capsys):
        argv = ["evaluate", "--models", "wizardcoder", "--apps", "entropy",
                "--direction", "cuda2omp", "--jobs", "auto"]
        assert main(argv) == 0
        assert "CUDA -> OpenMP" in capsys.readouterr().out

    def test_evaluate_bad_jobs_spelling_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["evaluate", "--jobs", "several"])
        assert exc.value.code == 2
        assert "'several'" in capsys.readouterr().err

    def test_evaluate_session_and_resume(self, capsys, tmp_path):
        session = str(tmp_path / "run.jsonl")
        argv = ["evaluate", "--models", "gpt4", "--apps", "layout", "entropy",
                "--direction", "omp2cuda", "--jobs", "2", "--session", session]
        assert main(argv) == 0
        capsys.readouterr()
        lines = [json.loads(ln) for ln in open(session)]
        assert lines[0]["type"] == "session"
        assert sum(1 for ln in lines if ln["type"] == "scenario") == 2

        # Resuming a completed session re-executes nothing and still renders.
        assert main(argv + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "Table VI" in captured.out
        assert "2 scenario(s) already recorded" in captured.err

    def test_resume_without_session_is_an_error(self, capsys):
        assert main(["evaluate", "--resume"]) == 2
        assert "--resume requires --session" in capsys.readouterr().err


class TestEvaluateEmptyFilters:
    def test_empty_models_filter_is_a_usage_error(self, capsys):
        # nargs="*" with no values must not silently run the full grid.
        assert main(["evaluate", "--models"]) == 2
        assert "--models requires at least one value" in capsys.readouterr().err

    def test_empty_apps_filter_is_a_usage_error(self, capsys):
        assert main(["evaluate", "--apps", "--direction", "omp2cuda"]) == 2
        assert "--apps requires at least one value" in capsys.readouterr().err


class TestSynthCli:
    def test_synth_list(self, capsys):
        assert main(["synth", "list"]) == 0
        out = capsys.readouterr().out
        for family in ("stencil", "reduction", "scan", "histogram",
                       "matmul", "gather", "fusion"):
            assert family in out

    def test_synth_generate_checks_and_writes(self, capsys, tmp_path):
        out_dir = tmp_path / "gen"
        rc = main(["synth", "generate", "--families", "stencil,reduction",
                   "--seeds", "3", "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "6/6 generated pair(s) passed" in out
        assert "suite spec: synth:stencil,reduction:seeds=3:difficulty=1" in out
        assert len(list(out_dir.glob("*.cu"))) == 6
        assert len(list(out_dir.glob("*.cpp"))) == 6

    def test_synth_check_reports_per_family(self, capsys):
        rc = main(["synth", "check", "--families", "matmul", "--seeds", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "matmul" in out
        assert "differential agreement: 2/2" in out

    def test_synth_unknown_family_is_usage_error(self, capsys):
        assert main(["synth", "generate", "--families", "frobnicate"]) == 2
        assert "known families" in capsys.readouterr().err


class TestSuiteEvaluate:
    def test_evaluate_with_synth_suite(self, capsys):
        rc = main(["evaluate", "--suite", "synth:scan:seeds=2",
                   "--models", "gpt4", "--direction", "omp2cuda"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "synth-scan-d1-s0" in out and "synth-scan-d1-s1" in out
        assert "matrix-rotate" not in out

    def test_evaluate_unknown_suite_is_error(self, capsys):
        assert main(["evaluate", "--suite", "table5000"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_evaluate_app_outside_suite_is_error(self, capsys):
        assert main(["evaluate", "--suite", "synth:scan:seeds=1",
                     "--apps", "jacobi"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_evaluate_apps_canonicalized_case_insensitively(self, capsys):
        rc = main(["evaluate", "--models", "wizardcoder", "--apps", "ENTROPY",
                   "--direction", "cuda2omp"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "entropy" in out


class TestTableForwardsProfileAndSeed:
    def test_table6_forwards_profile_seed_and_jobs(self, monkeypatch, capsys):
        captured = {}

        class RecordingRunner:
            def __init__(self, profile="paper", seed=2024, jobs=1, **kwargs):
                captured.update(profile=profile, seed=seed, jobs=jobs)

            def run(self, directions=None, **kwargs):
                return []

        monkeypatch.setattr(
            repro.api, "ParallelExperimentRunner", RecordingRunner
        )
        assert main(["table", "6", "--profile", "stochastic", "--seed", "7",
                     "--jobs", "3"]) == 0
        assert captured == {"profile": "stochastic", "seed": 7, "jobs": 3}

    def test_table4_warns_that_flags_are_static(self, capsys):
        assert main(["table", "4", "--profile", "stochastic"]) == 0
        captured = capsys.readouterr()
        assert "Table IV" in captured.out
        assert "only affect tables 6 and 7" in captured.err

    def test_table7_defaults(self, monkeypatch, capsys):
        captured = {}

        class RecordingRunner:
            def __init__(self, profile="paper", seed=2024, jobs=1, **kwargs):
                captured.update(profile=profile, seed=seed, jobs=jobs)

            def run(self, directions=None, **kwargs):
                return []

        monkeypatch.setattr(
            repro.api, "ParallelExperimentRunner", RecordingRunner
        )
        assert main(["table", "7"]) == 0
        assert captured == {"profile": "paper", "seed": 2024, "jobs": 1}

    def test_table7_jobs_matches_serial_output(self, capsys):
        assert main(["table", "7"]) == 0
        serial = capsys.readouterr().out
        assert main(["table", "7", "--jobs", "4"]) == 0
        assert capsys.readouterr().out == serial


class TestCampaignCli:
    def _mini_spec_file(self, tmp_path):
        spec = {
            "name": "cli-mini",
            "models": ["gpt4"],
            "directions": ["omp2cuda"],
            "apps": ["layout"],
            "variants": [
                {"name": "baseline"},
                {"name": "no-knowledge",
                 "overrides": {"include_knowledge": False}},
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_run_preset_and_report(self, capsys, tmp_path):
        root = str(tmp_path / "campaigns")
        rc = main(["campaign", "run", "max-corrections-sweep",
                   "--dir", root, "--jobs", "2"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "cap-33" in captured.out and "cap-34" in captured.out
        assert "(paper)" in captured.out

        assert main(["campaign", "report", "max-corrections-sweep",
                     "--dir", root]) == 0
        assert "cap-34" in capsys.readouterr().out

    def test_run_spec_file(self, capsys, tmp_path):
        path = self._mini_spec_file(tmp_path)
        rc = main(["campaign", "run", "--spec", str(path),
                   "--dir", str(tmp_path / "campaigns")])
        captured = capsys.readouterr()
        assert rc == 0
        assert "cli-mini" in captured.out
        assert "no-knowledge" in captured.out

    def test_run_requires_exactly_one_source(self, capsys, tmp_path):
        assert main(["campaign", "run"]) == 2
        assert "preset name" in capsys.readouterr().err
        path = self._mini_spec_file(tmp_path)
        assert main(["campaign", "run", "knowledge-ablation",
                     "--spec", str(path)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_run_unknown_preset(self, capsys):
        assert main(["campaign", "run", "frobnicate"]) == 2
        assert "unknown campaign preset" in capsys.readouterr().err

    def test_report_missing_campaign(self, capsys, tmp_path):
        assert main(["campaign", "report", "nope",
                     "--dir", str(tmp_path)]) == 2
        assert "no campaign manifest" in capsys.readouterr().err

    def test_list_shows_presets_and_directories(self, capsys, tmp_path):
        path = self._mini_spec_file(tmp_path)
        root = str(tmp_path / "campaigns")
        assert main(["campaign", "run", "--spec", str(path),
                     "--dir", root]) == 0
        capsys.readouterr()
        assert main(["campaign", "list", "--dir", root]) == 0
        out = capsys.readouterr().out
        assert "knowledge-ablation" in out
        assert "stochastic-replicates" in out
        assert "cli-mini" in out and "2/2" in out


class TestShardAndMergeCli:
    def _spec_file(self, tmp_path):
        spec = {
            "name": "cli-shard",
            "models": ["gpt4"],
            "directions": ["omp2cuda"],
            "apps": ["layout", "entropy"],
            "variants": [
                {"name": "baseline"},
                {"name": "no-knowledge",
                 "overrides": {"include_knowledge": False}},
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_shard_run_merge_and_reference_gate(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        ref = str(tmp_path / "ref")
        shard = str(tmp_path / "sharded")
        assert main(["campaign", "run", "--spec", spec, "--dir", ref]) == 0
        capsys.readouterr()
        for i in range(2):
            rc = main(["campaign", "run", "--spec", spec, "--dir", shard,
                       "--shard", f"{i}/2",
                       "--cache-store",
                       f"sqlite:{tmp_path / 'store.db'}"])
            captured = capsys.readouterr()
            assert rc == 0
            assert f"shard {i}/2 complete" in captured.out
            # No per-variant report on a partial run.
            assert "(paper)" not in captured.out
        rc = main(["campaign", "merge", f"{shard}/cli-shard",
                   "--reference", f"{ref}/cli-shard/manifest.json"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "matches reference" in captured.err
        assert "no-knowledge" in captured.out  # merged report renders

    def test_merge_reference_mismatch_exits_1(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        shard = str(tmp_path / "sharded")
        for i in range(2):
            assert main(["campaign", "run", "--spec", spec, "--dir", shard,
                         "--shard", f"{i}/2"]) == 0
        capsys.readouterr()
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"type": "campaign-manifest",
                                     "cells": []}))
        rc = main(["campaign", "merge", f"{shard}/cli-shard",
                   "--reference", str(bogus)])
        assert rc == 1
        assert "differs from reference" in capsys.readouterr().err

    def test_merge_without_shards_is_an_error(self, capsys, tmp_path):
        (tmp_path / "empty").mkdir()
        assert main(["campaign", "merge", str(tmp_path / "empty")]) == 2
        assert "no shard manifests" in capsys.readouterr().err

    def test_bad_shard_spec_is_usage_error(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        assert main(["campaign", "run", "--spec", spec,
                     "--dir", str(tmp_path / "x"), "--shard", "5/2"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_bad_cache_store_uri_is_usage_error(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        assert main(["campaign", "run", "--spec", spec,
                     "--dir", str(tmp_path / "x"),
                     "--cache-store", "redis:nope"]) == 2
        assert "unknown cache-store scheme" in capsys.readouterr().err


class TestCacheCli:
    def _filled_store(self, tmp_path):
        from repro.experiments import open_store

        uri = f"sqlite:{tmp_path / 'store.db'}"
        store = open_store(uri)
        store.put("k1", {"v": 1}, namespace="results")
        store.put("k2", {"v": 2}, namespace="compile")
        return uri

    def test_stat_prints_json_shape(self, capsys, tmp_path):
        uri = self._filled_store(tmp_path)
        assert main(["cache", "stat", uri]) == 0
        stat = json.loads(capsys.readouterr().out)
        assert stat["backend"] == "sqlite"
        assert stat["entries"] == 2
        assert stat["corrupt"] == 0
        assert stat["namespaces"] == {"compile": 1, "results": 1}

    def test_warm_copies_between_backends(self, capsys, tmp_path):
        uri = self._filled_store(tmp_path)
        dest = f"dir:{tmp_path / 'tree'}"
        assert main(["cache", "warm", dest, "--from", uri]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["copied"] == 2
        assert report["namespaces"] == {"compile": 1, "results": 1}
        assert main(["cache", "stat", dest]) == 0
        stat = json.loads(capsys.readouterr().out)
        assert stat["entries"] == 2

    def test_warm_namespaces_legacy_root_entries(self, capsys, tmp_path):
        # A legacy campaign cache tree keeps results at the root; warming
        # it into a shared store must land them in the results namespace.
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        (legacy / "abc.json").write_text(json.dumps({"v": 1}))
        assert main(["cache", "warm", f"sqlite:{tmp_path / 's.db'}",
                     "--from", f"dir:{legacy}"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["namespaces"] == {"results": 1}

    def test_gc_reports_and_quarantines(self, capsys, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "good.json").write_text(json.dumps({"v": 1}))
        (tree / "bad.json").write_text("{not json")
        assert main(["cache", "gc", f"dir:{tree}"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scanned"] == 2
        assert report["kept"] == 1
        assert report["quarantined"] == 1
        assert report["quarantined_ids"]
        assert not (tree / "bad.json").exists()

    def test_gc_max_age_prunes(self, capsys, tmp_path):
        uri = self._filled_store(tmp_path)
        import time

        time.sleep(0.05)
        assert main(["cache", "gc", uri, "--max-age", "0.01"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["pruned"] == 2

    def test_bad_store_uri_exits_2(self, capsys):
        assert main(["cache", "stat", "redis:nope"]) == 2
        assert "unknown cache-store scheme" in capsys.readouterr().err


class TestTraceCli:
    ARGS = ["evaluate", "--models", "gpt4", "--apps", "layout", "bsearch",
            "--direction", "omp2cuda"]

    def _traced_session(self, tmp_path):
        session = tmp_path / "sess.jsonl"
        assert main(self.ARGS + ["--session", str(session), "--trace"]) == 0
        return session

    def test_evaluate_trace_writes_a_sidecar(self, capsys, tmp_path):
        session = self._traced_session(tmp_path)
        capsys.readouterr()
        sidecar = tmp_path / "sess.trace.jsonl"
        assert sidecar.exists()
        records = [json.loads(line) for line in
                   sidecar.read_text().splitlines()]
        assert records[0]["record"] == "header"
        assert sum(1 for r in records if r["record"] == "trace") == 2

    def test_trace_summarize_a_session(self, capsys, tmp_path):
        session = self._traced_session(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(session)]) == 0
        out = capsys.readouterr().out
        assert "2 trace(s)" in out
        assert "Per-stage latency" in out
        assert "generate" in out and "p90" in out
        assert "LLM calls: 2" in out
        assert "gpt4/omp2cuda" in out

    def test_trace_show_renders_span_trees(self, capsys, tmp_path):
        session = self._traced_session(tmp_path)
        capsys.readouterr()
        assert main(["trace", "show", str(session), "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "trace 0" in out
        assert "(pipeline)" in out and "(stage)" in out
        assert "truncated" in out

    def test_trace_summarize_untraced_session_is_an_error(self, capsys,
                                                          tmp_path):
        session = tmp_path / "plain.jsonl"
        assert main(self.ARGS + ["--session", str(session)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(session)]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_trace_summarize_missing_target_is_an_error(self, capsys,
                                                        tmp_path):
        assert main(["trace", "summarize", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_tracing_keeps_the_session_bytes_identical(self, capsys,
                                                       tmp_path):
        plain = tmp_path / "plain.jsonl"
        traced = tmp_path / "traced.jsonl"
        assert main(self.ARGS + ["--session", str(plain)]) == 0
        assert main(self.ARGS + ["--session", str(traced), "--trace"]) == 0
        capsys.readouterr()
        assert plain.read_bytes() == traced.read_bytes()


class TestLogLevelCli:
    def test_log_level_debug_surfaces_backend_chatter(self, capsys):
        assert main(["--log-level", "debug", "evaluate", "--models", "gpt4",
                     "--apps", "layout", "--direction", "omp2cuda"]) == 0
        assert "backend (jobs=1)" in capsys.readouterr().err

    def test_default_level_hides_debug_chatter(self, capsys):
        assert main(["evaluate", "--models", "gpt4", "--apps", "layout",
                     "--direction", "omp2cuda"]) == 0
        assert "backend (jobs=" not in capsys.readouterr().err

    def test_log_level_error_silences_progress(self, capsys):
        assert main(["--log-level", "error", "evaluate", "--models", "gpt4",
                     "--apps", "layout", "--direction", "omp2cuda",
                     "--verbose"]) == 0
        assert capsys.readouterr().err == ""

    def test_unknown_level_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "shout", "models"])


class TestCampaignTelemetryCli:
    def _spec_file(self, tmp_path):
        spec = {
            "name": "tele-mini",
            "models": ["gpt4"],
            "directions": ["omp2cuda"],
            "apps": ["layout"],
            "variants": [{"name": "baseline"}],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_traced_campaign_report_with_telemetry(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        root = str(tmp_path / "campaigns")
        assert main(["campaign", "run", "--spec", spec, "--dir", root,
                     "--trace"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "tele-mini", "--dir", root,
                     "--with-telemetry"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry (manifest metrics snapshot)" in out
        assert "pipeline.runs{status=" in out
        assert "Per-stage latency" in out  # the sidecar summary rode along

    def test_untraced_campaign_report_with_telemetry_hints(self, capsys,
                                                           tmp_path):
        spec = self._spec_file(tmp_path)
        root = str(tmp_path / "campaigns")
        assert main(["campaign", "run", "--spec", spec, "--dir", root]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "tele-mini", "--dir", root,
                     "--with-telemetry"]) == 0
        assert "re-run the campaign with --trace" in capsys.readouterr().out


class TestPerfCli:
    def _baseline(self, tmp_path, name="base.json"):
        path = tmp_path / name
        assert main(["perf", "profile", "--apps", "layout", "bsearch",
                     "--out", str(path)]) == 0
        return path

    def test_perf_profile_writes_a_deterministic_snapshot(self, capsys,
                                                          tmp_path):
        a = self._baseline(tmp_path, "a.json")
        b = self._baseline(tmp_path, "b.json")
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        snap = json.loads(a.read_text())
        assert sorted(snap["profiles"]) == [
            "bsearch/cuda", "bsearch/omp", "layout/cuda", "layout/omp"
        ]
        for profile in snap["profiles"].values():
            assert profile["steps"] > 0 and profile["sim_seconds"] > 0

    def test_perf_profile_prints_to_stdout_without_out(self, capsys):
        assert main(["perf", "profile", "--apps", "layout",
                     "--dialects", "cuda"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert list(snap["profiles"]) == ["layout/cuda"]

    def test_perf_profile_unknown_app_is_an_error(self, capsys):
        assert main(["perf", "profile", "--apps", "no-such-app"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_perf_regress_identical_snapshots_exit_zero(self, capsys,
                                                        tmp_path):
        base = self._baseline(tmp_path)
        capsys.readouterr()
        assert main(["perf", "regress", str(base), str(base)]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_perf_regress_injected_regression_exits_nonzero(self, capsys,
                                                            tmp_path):
        base = self._baseline(tmp_path)
        snap = json.loads(base.read_text())
        for profile in snap["profiles"].values():
            profile["steps"] = int(profile["steps"] * 1.2)
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(snap), encoding="utf-8")
        diff = tmp_path / "diff.json"
        capsys.readouterr()
        assert main(["perf", "regress", str(base), str(slow),
                     "--json-out", str(diff)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "steps" in out
        report = json.loads(diff.read_text())
        assert report["regressions"]

    def test_perf_regress_tolerance_flag_absorbs_the_regression(
        self, capsys, tmp_path
    ):
        base = self._baseline(tmp_path)
        snap = json.loads(base.read_text())
        for profile in snap["profiles"].values():
            profile["steps"] = int(profile["steps"] * 1.2)
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(snap), encoding="utf-8")
        capsys.readouterr()
        assert main(["perf", "regress", str(base), str(slow),
                     "--tolerance", "0.5"]) == 0

    def test_perf_regress_env_tolerance(self, capsys, tmp_path,
                                        monkeypatch):
        base = self._baseline(tmp_path)
        snap = json.loads(base.read_text())
        for profile in snap["profiles"].values():
            profile["steps"] = int(profile["steps"] * 1.2)
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(snap), encoding="utf-8")
        capsys.readouterr()
        monkeypatch.setenv("REPRO_PERF_TOLERANCE", "0.5")
        assert main(["perf", "regress", str(base), str(slow)]) == 0

    def test_perf_compare_never_gates(self, capsys, tmp_path):
        base = self._baseline(tmp_path)
        snap = json.loads(base.read_text())
        for profile in snap["profiles"].values():
            profile["steps"] = int(profile["steps"] * 3)
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(snap), encoding="utf-8")
        capsys.readouterr()
        assert main(["perf", "compare", str(base), str(slow)]) == 0
        assert "REGRESSED" in capsys.readouterr().out

    def test_perf_regress_missing_snapshot_is_an_error(self, capsys,
                                                       tmp_path):
        missing = str(tmp_path / "nope.json")
        assert main(["perf", "regress", missing, missing]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceCriticalPathCli:
    def test_critical_path_over_a_traced_session(self, capsys, tmp_path):
        session = tmp_path / "sess.jsonl"
        assert main(["evaluate", "--models", "gpt4", "--apps", "layout",
                     "bsearch", "--direction", "omp2cuda",
                     "--session", str(session), "--trace"]) == 0
        capsys.readouterr()
        assert main(["trace", "critical-path", str(session)]) == 0
        out = capsys.readouterr().out
        assert "critical path over 2 scenario(s)" in out
        for bucket in ("llm", "compile", "exec", "overhead"):
            assert bucket in out
        assert "Slowest scenarios" in out

    def test_critical_path_untraced_target_is_an_error(self, capsys,
                                                       tmp_path):
        assert main(["trace", "critical-path", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestCampaignPerfReport:
    def _spec_file(self, tmp_path):
        spec = {
            "name": "perf-mini",
            "models": ["gpt4"],
            "directions": ["omp2cuda"],
            "apps": ["layout", "bsearch"],
            "variants": [{"name": "baseline"}],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_report_speedup_and_critical_path_counts_match_manifest(
        self, capsys, tmp_path
    ):
        spec = self._spec_file(tmp_path)
        root = str(tmp_path / "campaigns")
        assert main(["campaign", "run", "--spec", spec, "--dir", root,
                     "--trace"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "perf-mini", "--dir", root]) == 0
        out = capsys.readouterr().out
        manifest = json.loads(
            (tmp_path / "campaigns" / "perf-mini" / "manifest.json")
            .read_text(encoding="utf-8")
        )
        [cell] = manifest["cells"]
        # The report's speedup section and the manifest's perf block are
        # derived from the same session-persisted results: counts agree.
        assert cell["perf"]["scenarios"] == 2
        assert "speedup distribution" in out
        scored = cell["perf"]["scored"]
        speedup_row = next(
            line for line in out.splitlines()
            if line.strip().startswith("baseline")
            and "speedup" in out[: out.index(line)]
        )
        assert speedup_row.split()[:4] == ["baseline", "1", "2", str(scored)]
        # Critical path covers exactly the traced (= executed) scenarios.
        assert "critical path (2 traced of 2 recorded scenario(s))" in out

    def test_manifest_perf_block_feeds_the_regression_gate(self, capsys,
                                                           tmp_path):
        spec = self._spec_file(tmp_path)
        root = str(tmp_path / "campaigns")
        assert main(["campaign", "run", "--spec", spec, "--dir", root]) == 0
        capsys.readouterr()
        manifest = str(tmp_path / "campaigns" / "perf-mini" / "manifest.json")
        assert main(["perf", "regress", manifest, manifest]) == 0
        assert "baseline/seed" in capsys.readouterr().out

    def test_stage_attribution_consistency_is_warn_only(self, capsys,
                                                        tmp_path):
        # Doctor the manifest's stage_seconds after a traced run: the
        # report must still exit 0 but flag the divergence on stderr.
        spec = self._spec_file(tmp_path)
        root = str(tmp_path / "campaigns")
        assert main(["campaign", "run", "--spec", spec, "--dir", root,
                     "--trace"]) == 0
        capsys.readouterr()
        manifest_path = tmp_path / "campaigns" / "perf-mini" / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        for cell in manifest["cells"]:
            if cell.get("stage_seconds"):
                cell["stage_seconds"]["generate"] = (
                    cell["stage_seconds"].get("generate", 0.0) + 10.0
                )
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        assert main(["campaign", "report", "perf-mini", "--dir", root,
                     "--with-telemetry"]) == 0
        err = capsys.readouterr().err
        assert "wall-time attribution diverges" in err
        assert "authoritative" in err

    def test_fresh_traced_report_has_no_attribution_warning(self, capsys,
                                                            tmp_path):
        spec = self._spec_file(tmp_path)
        root = str(tmp_path / "campaigns")
        assert main(["campaign", "run", "--spec", spec, "--dir", root,
                     "--trace"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "perf-mini", "--dir", root,
                     "--with-telemetry"]) == 0
        assert "attribution diverges" not in capsys.readouterr().err
