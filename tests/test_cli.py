"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

import repro.cli
from repro.cli import main


class TestCli:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "matrix-rotate" in out and "randomAccess" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt4" in out and "163,840" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "GPT-4" in capsys.readouterr().out

    def test_translate_success(self, capsys):
        rc = main(["translate", "layout", "--model", "codestral",
                   "--direction", "omp2cuda", "--show-code"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "status: success" in out
        assert "__global__" in out

    def test_translate_planned_na_exits_nonzero(self, capsys):
        rc = main(["translate", "dense-embedding", "--model", "gpt4",
                   "--direction", "omp2cuda"])
        assert rc == 1

    def test_evaluate_slice(self, capsys):
        rc = main(["evaluate", "--models", "wizardcoder",
                   "--apps", "entropy", "--direction", "cuda2omp"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table VII" in out
        assert "CUDA -> OpenMP" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["translate", "frobnicate"])


class TestEvaluateParallel:
    def test_evaluate_jobs_matches_serial_output(self, capsys):
        argv = ["evaluate", "--models", "wizardcoder", "--apps", "entropy",
                "--direction", "cuda2omp"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_evaluate_session_and_resume(self, capsys, tmp_path):
        session = str(tmp_path / "run.jsonl")
        argv = ["evaluate", "--models", "gpt4", "--apps", "layout", "entropy",
                "--direction", "omp2cuda", "--jobs", "2", "--session", session]
        assert main(argv) == 0
        capsys.readouterr()
        lines = [json.loads(l) for l in open(session)]
        assert lines[0]["type"] == "session"
        assert sum(1 for l in lines if l["type"] == "scenario") == 2

        # Resuming a completed session re-executes nothing and still renders.
        assert main(argv + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "Table VI" in captured.out
        assert "2 scenario(s) already recorded" in captured.err

    def test_resume_without_session_is_an_error(self, capsys):
        assert main(["evaluate", "--resume"]) == 2
        assert "--resume requires --session" in capsys.readouterr().err


class TestTableForwardsProfileAndSeed:
    def test_table6_forwards_profile_and_seed(self, monkeypatch, capsys):
        captured = {}

        class RecordingRunner:
            def __init__(self, profile="paper", seed=2024, **kwargs):
                captured.update(profile=profile, seed=seed)

            def run(self, directions=None, **kwargs):
                return []

        monkeypatch.setattr(repro.cli, "ExperimentRunner", RecordingRunner)
        assert main(["table", "6", "--profile", "stochastic", "--seed", "7"]) == 0
        assert captured == {"profile": "stochastic", "seed": 7}

    def test_table4_warns_that_flags_are_static(self, capsys):
        assert main(["table", "4", "--profile", "stochastic"]) == 0
        captured = capsys.readouterr()
        assert "Table IV" in captured.out
        assert "only affect tables 6 and 7" in captured.err

    def test_table7_defaults(self, monkeypatch, capsys):
        captured = {}

        class RecordingRunner:
            def __init__(self, profile="paper", seed=2024, **kwargs):
                captured.update(profile=profile, seed=seed)

            def run(self, directions=None, **kwargs):
                return []

        monkeypatch.setattr(repro.cli, "ExperimentRunner", RecordingRunner)
        assert main(["table", "7"]) == 0
        assert captured == {"profile": "paper", "seed": 2024}
