"""Tests for the HeCBench-style application suite and the suite registry."""

from __future__ import annotations

import pytest

from repro.errors import UnknownApplicationError, UnknownSuiteError
from repro.hecbench import (
    Suite,
    all_apps,
    app_names,
    get_app,
    resolve_suite,
    suite_names,
)
from repro.minilang.source import Dialect
from repro.toolchain import Executor, compiler_for

PAPER_APP_NAMES = [
    "matrix-rotate", "jacobi", "layout", "atomicCost", "dense-embedding",
    "pathfinder", "bsearch", "entropy", "colorwheel", "randomAccess",
]


class TestRegistry:
    def test_ten_apps_in_table4_order(self):
        assert app_names() == PAPER_APP_NAMES

    def test_nine_distinct_categories(self):
        categories = {a.category for a in all_apps()}
        assert len(categories) == 9  # ten apps across nine categories (§IV)

    def test_get_app(self):
        assert get_app("jacobi").name == "jacobi"

    def test_get_app_is_case_insensitive(self):
        assert get_app("JACOBI").name == "jacobi"
        assert get_app("AtomicCost").name == "atomicCost"
        assert get_app("randomaccess").name == "randomAccess"

    def test_unknown_app_raises(self):
        with pytest.raises(UnknownApplicationError):
            get_app("nonexistent")

    def test_typo_gets_did_you_mean_hint(self):
        with pytest.raises(UnknownApplicationError,
                           match="did you mean 'jacobi'"):
            get_app("jacobbi")
        with pytest.raises(UnknownApplicationError,
                           match="did you mean 'pathfinder'"):
            get_app("pathfindr")

    def test_specs_have_paper_runtimes(self):
        for app in all_apps():
            assert app.paper_runtime_cuda is not None
            assert app.paper_runtime_omp is not None
            assert app.work_scale > 0
            assert app.launch_scale > 0

    def test_source_file_helper(self):
        app = get_app("jacobi")
        sf = app.source_file(Dialect.CUDA)
        assert sf.name.endswith(".cu")
        assert sf.dialect is Dialect.CUDA
        with pytest.raises(ValueError):
            app.source(Dialect.C)


@pytest.fixture(scope="module")
def executor():
    return Executor()


@pytest.mark.parametrize("app_name", PAPER_APP_NAMES)
class TestApplications:
    def test_both_dialects_compile(self, app_name, executor):
        app = get_app(app_name)
        for dialect in (Dialect.CUDA, Dialect.OMP):
            result = compiler_for(dialect).compile(app.source(dialect))
            assert result.ok, f"{app_name}/{dialect.value}:\n{result.stderr}"

    def test_outputs_match_across_dialects(self, app_name, executor):
        app = get_app(app_name)
        outs = {}
        for dialect in (Dialect.CUDA, Dialect.OMP):
            cr = compiler_for(dialect).compile(app.source(dialect))
            run = executor.run(cr.program, dialect, app.args)
            assert run.ok, f"{app_name}/{dialect.value}: {run.stderr}"
            assert run.stdout.strip(), "app must print verification output"
            outs[dialect] = run.stdout
        assert outs[Dialect.CUDA] == outs[Dialect.OMP]

    def test_simulated_runtime_matches_table4_cuda(self, app_name, executor):
        # The CUDA column of Table IV is calibrated exactly.
        app = get_app(app_name)
        cr = compiler_for(Dialect.CUDA).compile(app.cuda_source)
        run = executor.run(
            cr.program, Dialect.CUDA, app.args,
            work_scale=app.work_scale, launch_scale=app.launch_scale,
        )
        assert run.runtime_seconds == pytest.approx(
            app.paper_runtime_cuda, rel=0.02
        )

    def test_omp_runtime_preserves_who_wins(self, app_name, executor):
        # The OpenMP column must preserve Table IV's winner per row.
        app = get_app(app_name)
        times = {}
        for dialect in (Dialect.CUDA, Dialect.OMP):
            cr = compiler_for(dialect).compile(app.source(dialect))
            times[dialect] = executor.run(
                cr.program, dialect, app.args,
                work_scale=app.work_scale, launch_scale=app.launch_scale,
            ).runtime_seconds
        paper_omp_slower = app.paper_runtime_omp > app.paper_runtime_cuda
        sim_omp_slower = times[Dialect.OMP] > times[Dialect.CUDA]
        # matrix-rotate is within 7% in the paper: treat as a tie row.
        if app.name == "matrix-rotate":
            assert times[Dialect.OMP] == pytest.approx(
                times[Dialect.CUDA], rel=0.25
            )
        else:
            assert sim_omp_slower == paper_omp_slower


class TestSuiteRegistry:
    def test_table4_is_registered_and_default(self):
        assert "table4" in suite_names()
        assert resolve_suite(None).name == "table4"
        assert resolve_suite("table4").app_names() == PAPER_APP_NAMES

    def test_synth_suite_resolves_dynamically(self):
        suite = resolve_suite("synth:stencil,reduction:seeds=2")
        assert len(suite) == 4
        assert suite.app_names() == [
            "synth-stencil-d1-s0", "synth-stencil-d1-s1",
            "synth-reduction-d1-s0", "synth-reduction-d1-s1",
        ]

    def test_merged_view(self):
        suite = resolve_suite("table4+synth:matmul:seeds=2")
        assert len(suite) == 12
        assert suite.app_names()[:10] == PAPER_APP_NAMES
        assert suite.app_names()[10:] == [
            "synth-matmul-d1-s0", "synth-matmul-d1-s1",
        ]

    def test_duplicate_apps_in_merge_rejected(self):
        with pytest.raises(UnknownSuiteError, match="repeats app name"):
            resolve_suite("table4+table4")

    def test_unknown_suite_raises(self):
        with pytest.raises(UnknownSuiteError, match="registered suites"):
            resolve_suite("table5000")

    def test_suite_scoped_lookup_and_defaults(self):
        spec = "synth:histogram:seeds=1"
        assert all_apps(spec)[0].name == "synth-histogram-d1-s0"
        assert app_names(spec) == ["synth-histogram-d1-s0"]
        assert get_app("SYNTH-HISTOGRAM-D1-S0", suite=spec).name == (
            "synth-histogram-d1-s0"
        )
        with pytest.raises(UnknownApplicationError):
            resolve_suite(spec).get("jacobi")

    def test_synth_names_resolve_without_a_suite(self):
        # Names encode the generation tuple: session/cache replays rebuild
        # generated apps from names alone.
        app = get_app("synth-fusion-d2-s3")
        assert app.name == "synth-fusion-d2-s3"
        assert app.cuda_source == get_app("synth-fusion-d2-s3").cuda_source

    def test_synth_name_lookup_is_case_insensitive_too(self):
        assert get_app("Synth-Fusion-D2-S3").name == "synth-fusion-d2-s3"

    def test_suite_passthrough(self):
        suite = resolve_suite("table4")
        assert resolve_suite(suite) is suite
        assert isinstance(suite, Suite)


class TestTable4Shapes:
    def test_jacobi_omp_orders_of_magnitude_slower(self, executor):
        app = get_app("jacobi")
        times = {}
        for dialect in (Dialect.CUDA, Dialect.OMP):
            cr = compiler_for(dialect).compile(app.source(dialect))
            times[dialect] = executor.run(
                cr.program, dialect, app.args,
                work_scale=app.work_scale, launch_scale=app.launch_scale,
            ).runtime_seconds
        assert times[Dialect.OMP] / times[Dialect.CUDA] > 10

    def test_colorwheel_omp_much_faster(self, executor):
        app = get_app("colorwheel")
        times = {}
        for dialect in (Dialect.CUDA, Dialect.OMP):
            cr = compiler_for(dialect).compile(app.source(dialect))
            times[dialect] = executor.run(
                cr.program, dialect, app.args,
                work_scale=app.work_scale, launch_scale=app.launch_scale,
            ).runtime_seconds
        assert times[Dialect.CUDA] / times[Dialect.OMP] > 20
