"""Tests for the Table IV scale-factor calibration machinery."""

from __future__ import annotations

import pytest

from repro.hecbench import all_apps, get_app
from repro.hecbench.calibration import measure_components, solve_scales
from repro.minilang.source import Dialect


class TestComponents:
    def test_components_positive(self):
        comps = measure_components(get_app("layout"))
        for dialect in (Dialect.CUDA, Dialect.OMP):
            work, launch = comps[dialect]
            assert work > 0
            assert launch > 0


class TestSolveScales:
    def test_baked_scales_still_solve(self):
        """Guards against perf-model drift: re-deriving the scales must land
        close to the values baked into the specs."""
        for app in all_apps():
            r = solve_scales(app)
            assert r.work_scale == pytest.approx(app.work_scale, rel=0.05), app.name
            assert r.launch_scale == pytest.approx(app.launch_scale, rel=0.05), app.name

    def test_cuda_prediction_exact_for_all_apps(self):
        for app in all_apps():
            r = solve_scales(app)
            assert r.predicted_cuda == pytest.approx(
                app.paper_runtime_cuda, rel=0.01
            ), app.name

    def test_exact_rows(self):
        # These rows admit a positive 2x2 solution: both columns exact.
        for name in ("atomicCost", "pathfinder", "entropy", "colorwheel",
                     "randomAccess"):
            r = solve_scales(get_app(name))
            assert r.exact, name
            assert r.predicted_omp == pytest.approx(
                get_app(name).paper_runtime_omp, rel=0.01
            )

    def test_alpha_override_used_for_bsearch(self):
        r = solve_scales(get_app("bsearch"))
        assert not r.exact
        # work-heavy mix: work term dominates the OMP runtime
        assert r.work_scale > 100

    def test_missing_targets_rejected(self):
        from dataclasses import replace

        app = replace(get_app("layout"), paper_runtime_cuda=None)
        with pytest.raises(ValueError):
            solve_scales(app)
