"""The stable ``repro.api`` facade: translate / evaluate / campaigns."""

from __future__ import annotations

import json

from repro import api
from repro.experiments import (
    CampaignSpec,
    ParallelExperimentRunner,
    RunSession,
    Variant,
)
from repro.hecbench import get_app
from repro.llm.profiles import OMP2CUDA
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline import PipelineConfig, Status
from repro.pipeline.events import StageFinished

SMALL = dict(models=["gpt4"], directions=[OMP2CUDA], apps=["layout", "bsearch"])


class TestTranslate:
    def test_by_name(self):
        result = api.translate("layout", model="gpt4", direction="omp2cuda")
        assert result.ok
        assert result.model == "GPT-4"
        assert result.stage_seconds  # telemetry flows through the facade

    def test_by_appspec_and_direction(self):
        app = get_app("bsearch")
        result = api.translate(app, model="codestral", direction="cuda2omp")
        assert result.status in list(Status)

    def test_config_threading(self):
        # Ablations pass straight through to the stage graph.
        result = api.translate(
            "layout", config=PipelineConfig(verify_output=False)
        )
        assert result.ok

    def test_matches_cli_grid_cell(self):
        direct = api.translate("layout", model="gpt4", direction="omp2cuda")
        grid = api.evaluate(models=["gpt4"], directions=["omp2cuda"],
                            apps=["layout"])
        assert len(grid) == 1
        assert grid[0].result == direct


class TestEvaluate:
    def test_matches_runner(self):
        facade = api.evaluate(**SMALL)
        runner = ParallelExperimentRunner(jobs=1).run(**SMALL)
        assert [r.to_dict() for r in facade] == [r.to_dict() for r in runner]

    def test_session_resume_through_facade(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        api.evaluate(models=["gpt4"], directions=[OMP2CUDA], apps=["layout"],
                     session=RunSession(path))
        results = api.evaluate(
            models=["gpt4"], directions=[OMP2CUDA],
            apps=["layout", "bsearch"],
            session=RunSession(path, resume=True),
        )
        assert [r.scenario.app_name for r in results] == ["layout", "bsearch"]

    def test_backend_and_jobs_spellings(self):
        results = api.evaluate(jobs="auto", backend="process", **SMALL)
        assert [r.result.status for r in results] == [
            r.result.status for r in api.evaluate(**SMALL)
        ]


class TestBuildPipeline:
    def test_subscribers_attached_before_first_run(self):
        app = get_app("layout")
        events = []
        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA)
        pipeline = api.build_pipeline(
            llm, Dialect.OMP, Dialect.CUDA, subscribers=[events.append]
        )
        result = pipeline.run(
            app.omp_source, reference_target_code=app.cuda_source,
            args=app.args, work_scale=app.work_scale,
            launch_scale=app.launch_scale,
        )
        assert result.ok
        stages = [e.stage for e in events if isinstance(e, StageFinished)]
        assert stages[0] == "baseline-prep" and stages[-1] == "metrics"


class TestCampaigns:
    def _spec(self):
        return CampaignSpec(
            name="api-mini",
            models=["gpt4"],
            directions=["omp2cuda"],
            apps=["layout"],
            variants=[
                Variant(name="baseline"),
                Variant(name="no-verify", overrides={"verify_output": False}),
            ],
        )

    def test_run_campaign_with_spec(self, tmp_path):
        campaign = api.run_campaign(self._spec(), root=tmp_path)
        assert len(campaign.runs) == 2
        assert all(run.complete for run in campaign.runs)
        # Stage timing attribution lands in the manifest.
        manifest = json.loads(
            (campaign.directory / "manifest.json").read_text(encoding="utf-8")
        )
        for cell in manifest["cells"]:
            assert cell["completed"]
            assert cell["stage_seconds"].get("generate", 0) > 0
        # The ablated variant ran without the verify stage.
        by_name = campaign.by_variant()
        assert "verify" in by_name["baseline"][0].stage_seconds
        assert "verify" not in by_name["no-verify"][0].stage_seconds

    def test_run_campaign_by_preset_name_is_resolved(self, tmp_path):
        runner = api.build_campaign("knowledge-ablation", root=tmp_path)
        assert runner.spec.name == "knowledge-ablation"
        assert runner.directory == tmp_path / "knowledge-ablation"

    def test_rerun_replays_from_artifacts(self, tmp_path):
        first = api.run_campaign(self._spec(), root=tmp_path)
        assert first.total_pipeline_runs == 2
        second = api.run_campaign(self._spec(), root=tmp_path)
        assert second.total_pipeline_runs == 0
        # Replays collect no fresh telemetry; the attribution measured on
        # the first run survives in the rerun's cells and manifest.
        for before, after in zip(first.runs, second.runs):
            assert after.stage_seconds == {
                k: round(v, 6) for k, v in before.stage_seconds.items()
            }
        manifest = json.loads(
            (second.directory / "manifest.json").read_text(encoding="utf-8")
        )
        assert all(c["stage_seconds"] for c in manifest["cells"])


class TestPerfApi:
    def test_profile_baselines_snapshot_shape(self):
        snap = api.profile_baselines(apps=["layout"])
        assert sorted(snap["profiles"]) == ["layout/cuda", "layout/omp"]
        for profile in snap["profiles"].values():
            assert profile["steps"] > 0

    def test_profile_baselines_is_deterministic(self):
        a = api.profile_baselines(apps=["layout"], dialects=("cuda",))
        b = api.profile_baselines(apps=["layout"], dialects=("cuda",))
        assert a == b

    def test_profile_baselines_accepts_appspec(self):
        spec = get_app("bsearch")
        snap = api.profile_baselines(apps=[spec], dialects=("omp",))
        assert list(snap["profiles"]) == ["bsearch/omp"]

    def test_perf_regress_round_trip(self, tmp_path):
        snap = api.profile_baselines(apps=["layout"], dialects=("cuda",))
        base = tmp_path / "base.json"
        base.write_text(json.dumps(snap), encoding="utf-8")
        report, ok = api.perf_regress(base, base, tolerance=0.1)
        assert ok and not report["regressions"]
        snap["profiles"]["layout/cuda"]["sim_seconds"] *= 2
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(snap), encoding="utf-8")
        report, ok = api.perf_regress(base, slow, tolerance=0.1)
        assert not ok and report["regressions"] == ["layout/cuda"]

    def test_critical_path_over_a_traced_session(self, tmp_path):
        session = RunSession(tmp_path / "sess.jsonl")
        api.evaluate(session=session, trace=True, **SMALL)
        report = api.critical_path(tmp_path / "sess.jsonl")
        assert report["scenarios"] == 2
        assert sum(report["dominant_counts"].values()) == 2
        for row in report["rows"]:
            assert row["dominant"] in ("llm", "compile", "exec", "overhead")
