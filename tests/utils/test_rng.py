"""Tests for deterministic RNG streams."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_distinct_keys_give_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_roots_give_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_key_path_is_not_concatenation(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed(7, "ab", "c") != derive_seed(7, "a", "bc")

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.text(max_size=20))
    def test_seed_in_64bit_range(self, root, key):
        s = derive_seed(root, key)
        assert 0 <= s < 2**64


class TestRngStream:
    def test_same_path_same_sequence(self):
        a = RngStream(99, "x", "y")
        b = RngStream(99, "x", "y")
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_child_stream_independent_of_parent_consumption(self):
        parent1 = RngStream(5, "p")
        parent2 = RngStream(5, "p")
        parent1.uniform()  # consume from one parent only
        assert parent1.child("c").uniform() == parent2.child("c").uniform()

    def test_randint_bounds(self):
        s = RngStream(1, "t")
        values = [s.randint(3, 7) for _ in range(200)]
        assert min(values) >= 3
        assert max(values) <= 7
        assert set(values) == {3, 4, 5, 6, 7}

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            RngStream(1).randint(5, 4)

    def test_bernoulli_extremes(self):
        s = RngStream(2, "b")
        assert not any(s.bernoulli(0.0) for _ in range(50))
        assert all(s.bernoulli(1.0) for _ in range(50))

    def test_bernoulli_bad_probability(self):
        with pytest.raises(ValueError):
            RngStream(1).bernoulli(1.5)

    def test_choice(self):
        s = RngStream(3, "c")
        items = ["a", "b", "c"]
        assert all(s.choice(items) in items for _ in range(50))

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RngStream(1).choice([])

    def test_weighted_choice_respects_zero_weight(self):
        s = RngStream(4, "w")
        picks = {s.weighted_choice(["x", "y"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"x"}

    def test_weighted_choice_validation(self):
        with pytest.raises(ValueError):
            RngStream(1).weighted_choice(["x"], [1.0, 2.0])
        with pytest.raises(ValueError):
            RngStream(1).weighted_choice(["x", "y"], [0.0, 0.0])

    def test_shuffle_preserves_elements(self):
        s = RngStream(5, "s")
        items = list(range(20))
        assert sorted(s.shuffle(items)) == items

    def test_lognormal_factor_positive(self):
        s = RngStream(6, "ln")
        assert all(s.lognormal_factor(0.3) > 0 for _ in range(100))

    @given(st.integers(min_value=0, max_value=2**32))
    def test_uniform_in_range(self, root):
        s = RngStream(root, "u")
        v = s.uniform(2.0, 3.0)
        assert 2.0 <= v < 3.0
