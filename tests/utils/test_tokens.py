"""Tests for the token counters."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.tokens import count_tokens, tokenize_code, tokenize_text


class TestTokenizeText:
    def test_words_and_punct(self):
        assert tokenize_text("Hello, world!") == ["Hello", ",", "world", "!"]

    def test_count(self):
        assert count_tokens("a b c") == 3

    def test_empty(self):
        assert count_tokens("") == 0

    @given(st.text(max_size=200))
    def test_no_whitespace_tokens(self, text):
        assert all(not t.isspace() for t in tokenize_text(text))


class TestTokenizeCode:
    def test_identifiers_and_operators(self):
        toks = tokenize_code("int i = a[j] + 2;")
        assert toks == ["int", "i", "=", "a", "[", "j", "]", "+", "2", ";"]

    def test_multichar_operators_single_tokens(self):
        toks = tokenize_code("a += b << 2; c &&= d")
        assert "+=" in toks and "<<" in toks

    def test_cuda_launch_tokens(self):
        toks = tokenize_code("k<<<g, b>>>(x)")
        assert "<<<" in toks and ">>>" in toks

    def test_float_literals(self):
        toks = tokenize_code("x = 1.5f + .25 + 2e3;")
        assert "1.5f" in toks and ".25" in toks and "2e3" in toks

    def test_string_is_one_token(self):
        toks = tokenize_code('printf("a b c", x)')
        assert '"a b c"' in toks

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=120))
    def test_reassembly_preserves_nonspace_chars(self, text):
        # Tokenization must neither invent nor drop non-whitespace characters
        # outside of strings (strings may contain spaces).
        if '"' in text or "'" in text:
            return
        joined = "".join(tokenize_code(text))
        assert sorted(joined) == sorted(text.replace(" ", "").replace("\t", "").replace("\n", "").replace("\x0b", "").replace("\x0c", "").replace("\r", ""))
