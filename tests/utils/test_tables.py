"""Tests for ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.utils.tables import render_table


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["App", "Runtime"], [["jacobi", 0.8641]])
        lines = out.splitlines()
        assert lines[0].startswith("App")
        assert "0.8641" in lines[2]

    def test_none_renders_na(self):
        out = render_table(["A", "B"], [["x", None]])
        assert "N/A" in out

    def test_title(self):
        out = render_table(["A"], [["x"]], title="Table IV")
        assert out.splitlines()[0] == "Table IV"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [["only-one"]])

    def test_float_formatting(self):
        out = render_table(["A"], [[1.23456789]])
        assert "1.2346" in out

    def test_empty_rows(self):
        out = render_table(["A", "B"], [])
        assert "A" in out
