"""Tests for code-fence extraction and text normalization."""

from __future__ import annotations

from repro.utils.text import (
    dedent_code,
    extract_code_block,
    normalize_stdout,
    strip_comments,
)


class TestExtractCodeBlock:
    def test_single_fenced_block(self):
        resp = "Here is the code:\n```cuda\nint main() { return 0; }\n```\nDone."
        assert extract_code_block(resp) == "int main() { return 0; }\n"

    def test_prefers_language_tag(self):
        resp = (
            "```python\nprint('hi')\n```\n"
            "```cuda\nint main() { return 0; }\n```\n"
        )
        out = extract_code_block(resp, prefer_langs=["cuda"])
        assert "int main" in out

    def test_prefers_longest_among_equal_rank(self):
        resp = (
            "```cpp\nshort();\n```\n"
            "```cpp\nint main() { longer_body(); return 0; }\n```\n"
        )
        out = extract_code_block(resp)
        assert "longer_body" in out

    def test_untagged_block(self):
        resp = "```\nint x = 1;\n```"
        assert extract_code_block(resp) == "int x = 1;\n"

    def test_bare_code_without_fences(self):
        resp = "int main() {\n  return 0;\n}\n"
        assert extract_code_block(resp).strip().startswith("int main")

    def test_bare_kernel_without_fences(self):
        resp = "__global__ void k(int* p) { p[0] = 1; }"
        assert "__global__" in extract_code_block(resp)

    def test_no_code_returns_none(self):
        assert extract_code_block("I cannot translate this code, sorry.") is None

    def test_empty_fence_returns_none(self):
        assert extract_code_block("```\n\n```") is None

    def test_crlf_fences(self):
        resp = "```cpp\r\nint main() { return 0; }\r\n```"
        assert "int main" in extract_code_block(resp)


class TestStripComments:
    def test_line_comment(self):
        assert strip_comments("int a; // hello\nint b;") == "int a; \nint b;"

    def test_block_comment_preserves_lines(self):
        src = "int a;/* one\ntwo */int b;"
        out = strip_comments(src)
        assert out.count("\n") == 1
        assert "int a;" in out and "int b;" in out

    def test_comment_marker_inside_string_survives(self):
        src = 'printf("// not a comment");'
        assert strip_comments(src) == src

    def test_unterminated_block_comment(self):
        assert strip_comments("int a; /* never ends") == "int a; "


class TestDedent:
    def test_common_indent_removed(self):
        assert dedent_code("    a\n      b\n") == "a\n  b\n"

    def test_blank_lines_ignored_for_indent(self):
        assert dedent_code("  a\n\n  b") == "a\n\nb"

    def test_no_indent_unchanged(self):
        assert dedent_code("a\nb") == "a\nb"


class TestNormalizeStdout:
    def test_strips_trailing_space_and_edge_blanks(self):
        assert normalize_stdout("\n\nresult 1  \nresult 2\n\n") == "result 1\nresult 2"

    def test_crlf(self):
        assert normalize_stdout("a\r\nb\r\n") == "a\nb"

    def test_interior_blank_lines_kept(self):
        assert normalize_stdout("a\n\nb") == "a\n\nb"

    def test_numbers_not_rounded(self):
        assert normalize_stdout("x 1.23456789") == "x 1.23456789"
