"""Stage-graph engine tests: events, timings, graph edits, edge cases."""

from __future__ import annotations

import json
from typing import List

import pytest

from repro.errors import PipelineError
from repro.hecbench import get_app
from repro.llm.base import ChatMessage, GenerationResult, LLMClient
from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline import (
    LassiPipeline,
    PipelineBuilder,
    PipelineConfig,
    StagePipeline,
    Status,
    build_pipeline,
)
from repro.pipeline.events import (
    AttemptRecorded,
    CorrectionIssued,
    EventBus,
    StageFinished,
    StageStarted,
)
from repro.pipeline.stages import StageOutcome
from repro.experiments.runner import Scenario, ScenarioResult

APP = get_app("layout")

#: Machine stage names of the full default graph, in graph order.
FULL_GRAPH = [
    "baseline-prep", "context-prep", "generate", "compile-correct",
    "execute-correct", "verify", "metrics",
]


def make_pipeline(plan=None, config=None, subscribers=()):
    llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA,
                       plan=plan or CellPlan())
    return build_pipeline(llm, Dialect.OMP, Dialect.CUDA, config=config,
                          subscribers=subscribers)


def run_app(pipeline, app=APP):
    return pipeline.run(
        app.omp_source,
        reference_target_code=app.cuda_source,
        args=app.args,
        work_scale=app.work_scale,
        launch_scale=app.launch_scale,
    )


class ScriptedLLM(LLMClient):
    """Replays a fixed list of responses (self-prompts included)."""

    def __init__(self, responses: List[str], context_length: int = 1 << 20):
        self.name = "scripted"
        self.context_length = context_length
        self._responses = list(responses)
        self.calls = 0

    def chat(self, messages: List[ChatMessage]) -> GenerationResult:
        self.calls += 1
        if not self._responses:
            raise AssertionError("ScriptedLLM ran out of responses")
        return GenerationResult(text=self._responses.pop(0), model=self.name)


class TestEventBus:
    def test_stage_events_bracket_every_stage(self):
        events = []
        result = run_app(make_pipeline(subscribers=[events.append]))
        assert result.ok
        started = [e.stage for e in events if isinstance(e, StageStarted)]
        finished = [e.stage for e in events if isinstance(e, StageFinished)]
        assert started == finished == FULL_GRAPH
        assert all(e.seconds >= 0 for e in events
                   if isinstance(e, StageFinished))

    def test_correction_and_attempt_events_match_result(self):
        plan = CellPlan(
            self_corrections=3,
            fault_ids=("missing-semicolon", "kernel-called-directly",
                       "oob-guard-cuda"),
        )
        events = []
        pipeline = make_pipeline(plan=plan)
        pipeline.events.subscribe(events.append)
        result = run_app(pipeline, app=get_app("pathfinder"))
        assert result.ok and result.self_corrections == 3
        corrections = [e for e in events if isinstance(e, CorrectionIssued)]
        attempts = [e for e in events if isinstance(e, AttemptRecorded)]
        assert [c.corrections for c in corrections] == [1, 2, 3]
        assert [c.kind for c in corrections] == ["compile", "compile", "execute"]
        assert all(c.stderr for c in corrections)
        assert [(a.index, a.kind) for a in attempts] == [
            (i, a.kind) for i, a in enumerate(result.attempts)
        ]
        # The runtime fault jumps back into the compile loop (§III-D2).
        finishes = [e for e in events if isinstance(e, StageFinished)]
        assert any(e.outcome == "jump:compile-correct" for e in finishes)

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.publish(StageStarted(stage="x"))
        unsubscribe()
        unsubscribe()  # idempotent
        bus.publish(StageStarted(stage="y"))
        assert [e.stage for e in seen] == ["x"]

    def test_unsubscribe_by_callback_identity(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish(StageStarted(stage="x"))
        assert bus.unsubscribe(seen.append) is True
        assert bus.unsubscribe(seen.append) is False  # already gone
        bus.publish(StageStarted(stage="y"))
        assert [e.stage for e in seen] == ["x"]

    def test_subscribed_context_manager_detaches_on_exit(self):
        bus = EventBus()
        seen = []
        record = seen.append
        with bus.subscribed(record) as callback:
            assert callback is record
            bus.publish(StageStarted(stage="inside"))
        bus.publish(StageStarted(stage="outside"))
        assert [e.stage for e in seen] == ["inside"]

    def test_subscribed_detaches_when_the_body_raises(self):
        bus = EventBus()
        seen = []
        with pytest.raises(RuntimeError):
            with bus.subscribed(seen.append):
                raise RuntimeError("boom")
        bus.publish(StageStarted(stage="after"))
        assert seen == []

    def test_poisoned_subscriber_does_not_abort_delivery(self, capsys):
        from repro.telemetry.log import configure
        from repro.telemetry.metrics import counter

        bus = EventBus()
        before, after = [], []
        bus.subscribe(before.append)

        def poisoned(event):
            raise RuntimeError("telemetry bug")

        bus.subscribe(poisoned)
        bus.subscribe(after.append)
        configure("warning")
        errors = counter("telemetry_subscriber_errors")
        baseline = errors.value(
            subscriber=f"{poisoned.__qualname__}"
        )
        bus.publish(StageStarted(stage="x"))
        bus.publish(StageStarted(stage="y"))
        # Every healthy subscriber saw every event, before AND after the
        # poisoned one in registration order.
        assert [e.stage for e in before] == ["x", "y"]
        assert [e.stage for e in after] == ["x", "y"]
        # The failure is observable: a warning naming the subscriber and
        # a labeled error counter, once per failed delivery.
        err = capsys.readouterr().err
        assert "poisoned" in err and "telemetry bug" in err
        assert "StageStarted" in err
        assert errors.value(
            subscriber=f"{poisoned.__qualname__}"
        ) == baseline + 2

    def test_poisoned_subscriber_does_not_break_a_pipeline_run(self):
        def poisoned(event):
            raise RuntimeError("boom")

        result = run_app(make_pipeline(subscribers=[poisoned]))
        assert result.ok


class TestStageTimings:
    def test_success_populates_every_stage(self):
        result = run_app(make_pipeline())
        assert list(result.stage_seconds) == FULL_GRAPH
        assert all(v >= 0 for v in result.stage_seconds.values())

    def test_reentered_loop_accumulates(self):
        plan = CellPlan(self_corrections=1, fault_ids=("oob-guard-cuda",))
        result = run_app(make_pipeline(plan=plan), app=get_app("pathfinder"))
        assert result.ok
        # One runtime fault: compile loop entered twice, still one key.
        assert list(result.stage_seconds) == FULL_GRAPH

    def test_timings_are_per_run_not_cumulative(self):
        pipeline = make_pipeline()
        first = run_app(pipeline)
        second = run_app(pipeline)
        # Baselines are cached after the first run, so the second run's
        # baseline stage must reflect its own (cheaper) wall time.
        assert second.stage_seconds["baseline-prep"] <= first.stage_seconds[
            "baseline-prep"
        ]

    def test_timings_excluded_from_serialization_and_equality(self):
        result = run_app(make_pipeline())
        data = result.to_dict()
        assert "stage_seconds" in result.to_dict(include_timings=True)
        assert "stage_seconds" not in data
        back = type(result).from_dict(json.loads(json.dumps(data)))
        assert back == result  # equality ignores the telemetry
        assert back.stage_seconds == {}


class TestGraphEdits:
    def test_verify_stage_removed_by_config(self):
        config = PipelineConfig(verify_output=False)
        pipeline = make_pipeline(config=config)
        assert [s.name for s in pipeline.stages] == [
            n for n in FULL_GRAPH if n != "verify"
        ]

    def test_custom_stage_sequence(self):
        class Probe:
            name = "probe"

            def __init__(self):
                self.ran = 0

            def run(self, ctx) -> StageOutcome:
                self.ran += 1
                ctx.result.status = Status.SUCCESS
                return StageOutcome.halt()

            def describe(self):
                return ["Probe"]

        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
        builder = PipelineBuilder(llm, Dialect.OMP, Dialect.CUDA)
        probe = Probe()
        pipeline = builder.build(stages=[probe])
        result = pipeline.run(APP.omp_source)
        assert probe.ran == 1 and result.ok
        assert pipeline.stage_names() == ["Probe"]

    def test_duplicate_stage_names_rejected(self):
        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
        builder = PipelineBuilder(llm, Dialect.OMP, Dialect.CUDA)
        stages = builder.default_stages()
        with pytest.raises(PipelineError, match="unique"):
            builder.build(stages=stages + [stages[-1]])

    def test_unknown_jump_target_is_an_error(self):
        class Jumper:
            name = "jumper"

            def run(self, ctx) -> StageOutcome:
                return StageOutcome.jump("nowhere")

            def describe(self):
                return ["Jumper"]

        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
        pipeline = PipelineBuilder(llm, Dialect.OMP, Dialect.CUDA).build(
            stages=[Jumper()]
        )
        with pytest.raises(PipelineError, match="unknown stage"):
            pipeline.run(APP.omp_source)

    def test_empty_graph_rejected(self):
        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
        with pytest.raises(PipelineError):
            StagePipeline(stages=[], llm=llm, source_dialect=Dialect.OMP,
                          target_dialect=Dialect.CUDA,
                          config=PipelineConfig())


class TestContextWindowExceeded:
    """The §III-B budget check halts before any attempt is generated."""

    def _result(self):
        # Tiny window: the knowledge-summary budget check trips before
        # any LLM call is made.
        llm = ScriptedLLM(responses=[], context_length=64)
        pipeline = build_pipeline(llm, Dialect.OMP, Dialect.CUDA)
        return run_app(pipeline)

    def test_early_return_shape(self):
        result = self._result()
        assert result.status == Status.NO_CODE
        assert result.attempts == []
        assert result.generated_code is None
        assert result.prompt_tokens == 0
        assert "exceeds context window" in result.failure_detail
        # Only the stages that actually ran have timings.
        assert list(result.stage_seconds) == ["baseline-prep", "context-prep"]

    def test_round_trips_through_scenario_result(self):
        result = self._result()
        sr = ScenarioResult(
            scenario=Scenario("gpt4", "omp2cuda", APP.name), result=result
        )
        back = ScenarioResult.from_dict(json.loads(json.dumps(sr.to_dict())))
        assert back.result == result
        assert back.result.failure_detail == result.failure_detail
        assert back.result.attempts == []


class TestCorrectionWithoutCodeBlock:
    """A correction that returns prose keeps its triggering stderr."""

    def _broken_code(self):
        return "```cuda\nint main() { return undeclared; }\n```"

    def test_compile_correction_no_code_records_stderr(self):
        responses = [
            "summary of the knowledge document",   # self-prompt: summary
            "describes the program",               # self-prompt: description
            self._broken_code(),                   # translation
            "Sorry, I cannot fix this program.",   # correction: no fence
        ]
        llm = ScriptedLLM(responses)
        pipeline = build_pipeline(llm, Dialect.OMP, Dialect.CUDA)
        result = pipeline.run(APP.omp_source, args=APP.args,
                              work_scale=APP.work_scale,
                              launch_scale=APP.launch_scale)
        assert result.status == Status.NO_CODE
        assert result.failure_detail == "response contained no code block"
        assert [a.kind for a in result.attempts] == [
            "initial", "compile-correction"
        ]
        failing = result.attempts[-1]
        assert failing.code is None
        # The stderr that drove the failed correction is preserved.
        assert "undeclared" in failing.stderr
        assert failing.stderr == result.attempts[0].stderr
        assert llm.calls == 4

    def test_initial_no_code_has_no_stderr(self):
        responses = [
            "summary", "description", "no code here at all",
        ]
        llm = ScriptedLLM(responses)
        pipeline = build_pipeline(llm, Dialect.OMP, Dialect.CUDA)
        result = pipeline.run(APP.omp_source, args=APP.args,
                              work_scale=APP.work_scale,
                              launch_scale=APP.launch_scale)
        assert result.status == Status.NO_CODE
        assert [a.kind for a in result.attempts] == ["initial"]
        assert result.attempts[0].stderr == ""


class TestShimCompatibility:
    def test_shim_matches_stage_pipeline(self):
        plan = CellPlan(self_corrections=2,
                        fault_ids=("missing-semicolon",
                                   "undeclared-index-cuda"))
        llm_a = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=plan)
        llm_b = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=plan)
        shim = LassiPipeline(llm_a, Dialect.OMP, Dialect.CUDA)
        staged = build_pipeline(llm_b, Dialect.OMP, Dialect.CUDA)
        a = shim.translate(
            APP.omp_source, reference_target_code=APP.cuda_source,
            args=APP.args, work_scale=APP.work_scale,
            launch_scale=APP.launch_scale,
        )
        b = run_app(staged)
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_shim_exposes_events_and_translate(self):
        pipeline = make_pipeline()
        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
        shim = LassiPipeline(llm, Dialect.OMP, Dialect.CUDA)
        seen = []
        shim.events.subscribe(seen.append)
        result = shim.translate(
            APP.omp_source, reference_target_code=APP.cuda_source,
            args=APP.args, work_scale=APP.work_scale,
            launch_scale=APP.launch_scale,
        )
        assert result.ok
        assert any(isinstance(e, StageFinished) for e in seen)
        assert shim.stage_names() == pipeline.stage_names()
