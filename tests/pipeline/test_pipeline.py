"""Integration tests for the LASSI pipeline."""

from __future__ import annotations

import pytest

from repro.errors import BaselineError
from repro.hecbench import get_app
from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline import BaselinePreparer, LassiPipeline, PipelineConfig
from repro.pipeline.verification import verify_output


def make_pipeline(model="gpt4", src=Dialect.OMP, tgt=Dialect.CUDA,
                  plan=None, config=None):
    llm = SimulatedLLM(model, src, tgt, plan=plan or CellPlan())
    return LassiPipeline(llm, src, tgt, config=config)


def run_app(pipeline, app_name="layout", src=Dialect.OMP, tgt=Dialect.CUDA):
    app = get_app(app_name)
    return pipeline.translate(
        app.source(src),
        reference_target_code=app.source(tgt),
        args=app.args,
        work_scale=app.work_scale,
        launch_scale=app.launch_scale,
    )


class TestBaselineStage:
    def test_broken_source_halts_pipeline(self):
        pipeline = make_pipeline()
        with pytest.raises(BaselineError):
            pipeline.translate("int main() { return undeclared; }")

    def test_crashing_source_halts_pipeline(self):
        pipeline = make_pipeline(src=Dialect.OMP, tgt=Dialect.CUDA)
        with pytest.raises(BaselineError):
            pipeline.translate(
                "int main() { int* p = NULL; return p[0]; }"
            )

    def test_baseline_cached(self):
        preparer = BaselinePreparer()
        app = get_app("layout")
        b1 = preparer.prepare(app.omp_source, Dialect.OMP, app.args)
        b2 = preparer.prepare(app.omp_source, Dialect.OMP, app.args)
        assert b1 is b2


class TestHappyPath:
    def test_clean_translation_succeeds(self):
        result = run_app(make_pipeline())
        assert result.ok
        assert result.status == "success"
        assert result.self_corrections == 0
        assert result.verified
        assert result.ratio is not None and result.ratio > 0
        assert 0 <= result.sim_t <= 1
        assert 0 <= result.sim_l <= 1
        assert result.generated_code is not None
        assert "__global__" in result.generated_code
        assert len(result.attempts) == 1
        assert result.metrics().ok

    def test_planned_corrections_counted(self):
        plan = CellPlan(self_corrections=2,
                        fault_ids=("missing-semicolon", "undeclared-index-cuda"))
        result = run_app(make_pipeline(plan=plan))
        assert result.ok
        assert result.self_corrections == 2
        kinds = [a.kind for a in result.attempts]
        assert kinds[0] == "initial"
        assert "compile-correction" in kinds

    def test_runtime_fault_goes_through_execute_loop(self):
        plan = CellPlan(self_corrections=1, fault_ids=("oob-guard-cuda",))
        result = run_app(make_pipeline(plan=plan), app_name="pathfinder")
        assert result.ok
        assert any(a.kind == "execute-correction" for a in result.attempts)


class TestFailureModes:
    def test_na_compile_exhausts_iterations(self):
        plan = CellPlan(outcome="na-compile",
                        fault_ids=("kernel-called-directly",))
        config = PipelineConfig(max_corrections=3)
        result = run_app(make_pipeline(plan=plan, config=config))
        assert result.status == "compile-failed"
        assert result.self_corrections == 3
        assert not result.metrics().ok

    def test_na_output_caught_by_verification(self):
        plan = CellPlan(outcome="na-output",
                        fault_ids=("missing-copyback-cuda",))
        result = run_app(make_pipeline(plan=plan))
        assert result.status == "output-mismatch"
        assert "difference" in result.failure_detail or "line" in result.failure_detail

    def test_verification_can_be_disabled(self):
        plan = CellPlan(outcome="na-output",
                        fault_ids=("missing-copyback-cuda",))
        config = PipelineConfig(verify_output=False)
        result = run_app(make_pipeline(plan=plan, config=config))
        # without the output check the wrong-answer code "succeeds" —
        # exactly why the paper lists automated verification as needed
        assert result.status == "success"

    def test_self_correction_ablation(self):
        plan = CellPlan(self_corrections=1, fault_ids=("missing-semicolon",))
        config = PipelineConfig(self_correction=False)
        result = run_app(make_pipeline(plan=plan, config=config))
        assert result.status == "compile-failed"
        assert result.self_corrections == 0


class TestStageGraph:
    def test_figure1_stages_present(self):
        pipeline = make_pipeline()
        stages = pipeline.stage_names()
        assert stages[0].startswith("Source code preparation")
        assert any("Compile self-correction" in s for s in stages)
        assert any("Execute self-correction" in s for s in stages)
        assert any("verification" in s for s in stages)

    def test_ablated_stage_graph(self):
        config = PipelineConfig(self_correction=False, include_knowledge=False)
        stages = make_pipeline(config=config).stage_names()
        assert not any("knowledge summary" in s for s in stages)
        assert any("single attempt" in s for s in stages)


class TestVerification:
    def test_exact_match(self):
        assert verify_output("a 1\n", "a 1\n").matches

    def test_whitespace_tolerant(self):
        assert verify_output("a 1  \n\n", "a 1\n").matches

    def test_mismatch_detail(self):
        v = verify_output("x 1\nx 2\n", "x 1\nx 3\n")
        assert not v.matches
        assert "line 2" in v.detail

    def test_line_count_detail(self):
        v = verify_output("a\nb\n", "a\n")
        assert not v.matches
        assert "line count" in v.detail
