"""Round-trip serialization of pipeline result records."""

from __future__ import annotations

import json

import pytest

from repro.hecbench import get_app
from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline import LassiPipeline
from repro.pipeline.results import Attempt, LassiResult, Status


def _rt(result: LassiResult) -> LassiResult:
    """to_dict -> JSON text -> from_dict, as a session file would."""
    return LassiResult.from_dict(json.loads(json.dumps(result.to_dict())))


class TestAttemptRoundTrip:
    def test_full_fields(self):
        a = Attempt(index=3, kind="compile-correction", code="int main(){}",
                    compiled=True, executed=False, stderr="boom")
        b = Attempt.from_dict(a.to_dict())
        assert b == a

    def test_none_code_survives(self):
        a = Attempt(index=0, kind="initial", code=None)
        assert Attempt.from_dict(a.to_dict()) == a


class TestLassiResultRoundTrip:
    def test_handcrafted_failure(self):
        r = LassiResult(
            status="compile-failed",
            source_dialect="omp",
            target_dialect="cuda",
            model="gpt4",
            generated_code="__global__ void k() {}",
            self_corrections=2,
            attempts=[
                Attempt(index=0, kind="initial", code="bad", stderr="err"),
                Attempt(index=1, kind="compile-correction", code="worse"),
            ],
            prompt_tokens=1234,
            failure_detail="did not compile",
        )
        assert _rt(r) == r

    def test_real_pipeline_result(self):
        app = get_app("layout")
        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
        pipeline = LassiPipeline(llm, Dialect.OMP, Dialect.CUDA)
        result = pipeline.translate(
            app.omp_source,
            reference_target_code=app.cuda_source,
            args=app.args,
            work_scale=app.work_scale,
            launch_scale=app.launch_scale,
        )
        assert result.ok
        back = _rt(result)
        assert back == result
        # the metrics projection survives the trip too
        assert back.metrics() == result.metrics()

    def test_dict_is_json_safe(self):
        r = LassiResult(status="no-code", source_dialect="cuda",
                        target_dialect="omp", model="deepseek")
        json.dumps(r.to_dict())  # must not raise


class TestProfileField:
    """The runtime-profile block is telemetry: timings-only, compare=False."""

    def _result_with_profile(self):
        app = get_app("layout")
        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
        pipeline = LassiPipeline(llm, Dialect.OMP, Dialect.CUDA)
        result = pipeline.translate(
            app.omp_source,
            reference_target_code=app.cuda_source,
            args=app.args,
            work_scale=app.work_scale,
            launch_scale=app.launch_scale,
        )
        assert result.ok
        return result

    def test_successful_run_scores_a_profile(self):
        result = self._result_with_profile()
        assert result.profile is not None
        gen = result.profile["generated"]
        assert gen["steps"] > 0 and gen["kernel_launches"] > 0
        assert result.profile["reference"]["steps"] > 0
        assert result.profile["speedup"] > 0

    def test_profile_stays_out_of_session_bytes(self):
        result = self._result_with_profile()
        assert "profile" not in result.to_dict()
        assert "profile" in result.to_dict(include_timings=True)

    def test_profile_round_trips_under_timings(self):
        result = self._result_with_profile()
        data = json.loads(json.dumps(result.to_dict(include_timings=True)))
        back = LassiResult.from_dict(data)
        assert back.profile == result.profile
        # compare=False: equality ignores the telemetry block either way.
        assert back == result

    def test_speedup_matches_the_ratio_column(self):
        # Both derive from the same simulated runtimes; the profile's
        # speedup is recomputed from 9dp-rounded sim_seconds, so they
        # agree to float noise, not bit-exactly.
        result = self._result_with_profile()
        assert result.profile["speedup"] == pytest.approx(
            result.ratio, rel=1e-6
        )


class TestStatusEnum:
    """The str-enum must serialize to the exact historical literals."""

    #: Frozen: changing any of these breaks every session/cache on disk.
    LITERALS = {
        Status.SUCCESS: "success",
        Status.NO_CODE: "no-code",
        Status.COMPILE_FAILED: "compile-failed",
        Status.EXECUTE_FAILED: "execute-failed",
        Status.OUTPUT_MISMATCH: "output-mismatch",
    }

    def test_every_member_frozen(self):
        assert set(Status) == set(self.LITERALS)
        for member, literal in self.LITERALS.items():
            assert member.value == literal
            assert str(member) == literal            # no "Status.X" leak
            assert f"{member}" == literal            # format() too
            assert json.dumps(member) == f'"{literal}"'

    def test_round_trip_is_identity(self):
        for member, literal in self.LITERALS.items():
            assert Status(literal) is member
            assert Status(json.loads(json.dumps(member))) is member

    def test_plain_string_comparisons_still_work(self):
        r = LassiResult(status=Status.SUCCESS, source_dialect="omp",
                        target_dialect="cuda", model="gpt4")
        assert r.status == "success"
        assert r.ok
        legacy = LassiResult(status="success", source_dialect="omp",
                             target_dialect="cuda", model="gpt4")
        assert legacy.ok
        assert legacy == r

    def test_to_dict_emits_plain_str(self):
        r = LassiResult(status=Status.OUTPUT_MISMATCH, source_dialect="omp",
                        target_dialect="cuda", model="gpt4")
        payload = r.to_dict()["status"]
        assert payload == "output-mismatch"
        assert type(payload) is str  # not the enum subclass
        back = LassiResult.from_dict(r.to_dict())
        assert back.status is Status.OUTPUT_MISMATCH

    def test_session_line_bytes_are_stable(self):
        r = LassiResult(status=Status.COMPILE_FAILED, source_dialect="omp",
                        target_dialect="cuda", model="gpt4")
        line = json.dumps(r.to_dict(), sort_keys=True)
        assert '"status": "compile-failed"' in line
