"""Round-trip serialization of pipeline result records."""

from __future__ import annotations

import json

from repro.hecbench import get_app
from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline import LassiPipeline
from repro.pipeline.results import Attempt, LassiResult


def _rt(result: LassiResult) -> LassiResult:
    """to_dict -> JSON text -> from_dict, as a session file would."""
    return LassiResult.from_dict(json.loads(json.dumps(result.to_dict())))


class TestAttemptRoundTrip:
    def test_full_fields(self):
        a = Attempt(index=3, kind="compile-correction", code="int main(){}",
                    compiled=True, executed=False, stderr="boom")
        b = Attempt.from_dict(a.to_dict())
        assert b == a

    def test_none_code_survives(self):
        a = Attempt(index=0, kind="initial", code=None)
        assert Attempt.from_dict(a.to_dict()) == a


class TestLassiResultRoundTrip:
    def test_handcrafted_failure(self):
        r = LassiResult(
            status="compile-failed",
            source_dialect="omp",
            target_dialect="cuda",
            model="gpt4",
            generated_code="__global__ void k() {}",
            self_corrections=2,
            attempts=[
                Attempt(index=0, kind="initial", code="bad", stderr="err"),
                Attempt(index=1, kind="compile-correction", code="worse"),
            ],
            prompt_tokens=1234,
            failure_detail="did not compile",
        )
        assert _rt(r) == r

    def test_real_pipeline_result(self):
        app = get_app("layout")
        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
        pipeline = LassiPipeline(llm, Dialect.OMP, Dialect.CUDA)
        result = pipeline.translate(
            app.omp_source,
            reference_target_code=app.cuda_source,
            args=app.args,
            work_scale=app.work_scale,
            launch_scale=app.launch_scale,
        )
        assert result.ok
        back = _rt(result)
        assert back == result
        # the metrics projection survives the trip too
        assert back.metrics() == result.metrics()

    def test_dict_is_json_safe(self):
        r = LassiResult(status="no-code", source_dialect="cuda",
                        target_dialect="omp", model="deepseek")
        json.dumps(r.to_dict())  # must not raise
