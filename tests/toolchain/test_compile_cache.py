"""The content-addressed front-end memo in front of CompilerDriver.compile."""

from __future__ import annotations

import pytest

from repro.minilang.source import Dialect
from repro.toolchain import (
    CUDA_COMPILER,
    OMP_COMPILER,
    CompileCache,
    clear_compile_cache,
    compile_cache_stats,
    compiler_for,
)

OK_SRC = "int main() { return 0; }\n"
BAD_SRC = "int main() { return undeclared_name; }\n"


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestMemoization:
    def test_second_compile_is_a_hit(self):
        first = CUDA_COMPILER.compile(OK_SRC)
        second = CUDA_COMPILER.compile(OK_SRC)
        stats = compile_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        # The memo hands back the very same front-end result.
        assert second is first
        assert second.ok and second.program is first.program

    def test_distinct_sources_miss(self):
        CUDA_COMPILER.compile(OK_SRC)
        CUDA_COMPILER.compile(OK_SRC + "\n// changed\n")
        assert compile_cache_stats()["misses"] == 2

    def test_dialect_is_part_of_the_identity(self):
        a = CUDA_COMPILER.compile(OK_SRC)
        b = OMP_COMPILER.compile(OK_SRC)
        stats = compile_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 0
        assert a.command != b.command

    def test_filename_is_part_of_the_identity(self):
        a = CUDA_COMPILER.compile(OK_SRC, filename="one.cu")
        b = CUDA_COMPILER.compile(OK_SRC, filename="two.cu")
        assert compile_cache_stats()["misses"] == 2
        assert a.command != b.command

    def test_failures_are_cached_with_identical_stderr(self):
        first = compiler_for(Dialect.CUDA).compile(BAD_SRC)
        second = compiler_for(Dialect.CUDA).compile(BAD_SRC)
        assert not first.ok
        assert second.stderr == first.stderr
        assert compile_cache_stats()["hits"] == 1

    def test_clear_resets_counters_and_entries(self):
        CUDA_COMPILER.compile(OK_SRC)
        clear_compile_cache()
        stats = compile_cache_stats()
        assert stats == {"entries": 0, "hits": 0, "misses": 0, "hit_rate": 0.0}


class TestBoundedLru:
    def test_eviction_keeps_most_recent(self):
        cache = CompileCache(maxsize=2)
        k1 = CompileCache.key("a", Dialect.CUDA, "f.cu")
        k2 = CompileCache.key("b", Dialect.CUDA, "f.cu")
        k3 = CompileCache.key("c", Dialect.CUDA, "f.cu")
        cache.put(k1, "r1")
        cache.put(k2, "r2")
        assert cache.get(k1) == "r1"  # refresh k1: k2 is now LRU
        cache.put(k3, "r3")
        assert len(cache) == 2
        assert cache.get(k2) is None
        assert cache.get(k1) == "r1" and cache.get(k3) == "r3"

    def test_hit_rate_math(self):
        cache = CompileCache()
        k = CompileCache.key("x", Dialect.OMP, "f.cpp")
        assert cache.get(k) is None
        cache.put(k, "r")
        assert cache.get(k) == "r"
        assert cache.stats()["hit_rate"] == pytest.approx(0.5)
