"""Tests for the compiler drivers and executor facade."""

from __future__ import annotations

import pytest

from repro.minilang.source import Dialect
from repro.toolchain import (
    CUDA_COMPILER,
    OMP_COMPILER,
    Executor,
    compiler_for,
)


class TestCompilerDriver:
    def test_clean_cuda_compile(self, cuda_vecadd_source):
        result = CUDA_COMPILER.compile(cuda_vecadd_source.text)
        assert result.ok
        assert result.program is not None
        assert "error" not in result.stderr.split("generated")[0].lower() or (
            result.stderr == ""
        )

    def test_clean_omp_compile(self, omp_vecadd_source):
        result = OMP_COMPILER.compile(omp_vecadd_source.text)
        assert result.ok

    def test_compile_error_produces_stderr(self):
        result = CUDA_COMPILER.compile("int main() { return undeclared_var; }")
        assert not result.ok
        assert "use of undeclared identifier 'undeclared_var'" in result.stderr
        assert "undeclared-ident" in result.error_codes
        assert result.program is None

    def test_parse_error_reported_as_compile_failure(self):
        result = OMP_COMPILER.compile("int main() { int x = ; }")
        assert not result.ok
        assert "error" in result.stderr

    def test_command_lines_match_paper_toolchains(self):
        assert CUDA_COMPILER.command("foo.cu").startswith("nvcc")
        assert "sm_80" in CUDA_COMPILER.command("foo.cu")  # the A100
        assert OMP_COMPILER.command("foo.cpp").startswith("clang++")
        assert "-fopenmp" in OMP_COMPILER.command("foo.cpp")

    def test_cuda_code_rejected_by_omp_compiler(self, cuda_vecadd_source):
        result = OMP_COMPILER.compile(cuda_vecadd_source.text)
        assert not result.ok
        # A host compiler chokes on the <<<...>>> launch syntax first.
        assert "error" in result.stderr

    def test_omp_code_accepted_by_cuda_compiler_with_warning(
        self, omp_vecadd_source
    ):
        # nvcc ignores unknown pragmas: compiles, warns, runs serially.
        result = CUDA_COMPILER.compile(omp_vecadd_source.text)
        assert result.ok
        assert result.warning_count >= 1

    def test_compiler_for(self):
        assert compiler_for(Dialect.CUDA) is CUDA_COMPILER
        assert compiler_for(Dialect.OMP) is OMP_COMPILER


class TestExecutor:
    def test_successful_run(self, cuda_vecadd_source):
        result = CUDA_COMPILER.compile(cuda_vecadd_source.text)
        run = Executor().run(result.program, Dialect.CUDA)
        assert run.ok
        assert run.stdout.startswith("checksum")
        assert run.runtime_seconds > 0
        assert run.exit_code == 0

    def test_runtime_error_reported_in_stderr(self):
        src = (
            "__global__ void k(float* p) { p[9999] = 1.0f; }\n"
            "int main() { float* d; cudaMalloc(&d, 16); k<<<1, 1>>>(d); return 0; }"
        )
        result = CUDA_COMPILER.compile(src)
        assert result.ok
        run = Executor().run(result.program, Dialect.CUDA)
        assert not run.ok
        assert "illegal memory access" in run.stderr
        assert run.exit_code != 0

    def test_nonzero_exit_code(self):
        result = compiler_for(Dialect.C).compile("int main() { return 3; }")
        run = Executor().run(result.program, Dialect.C)
        assert not run.ok
        assert run.exit_code == 3
        assert "non-zero" in run.stderr

    def test_work_scale_scales_runtime(self, cuda_vecadd_source):
        result = CUDA_COMPILER.compile(cuda_vecadd_source.text)
        ex = Executor()
        t1 = ex.run(result.program, Dialect.CUDA, work_scale=1.0).runtime_seconds
        t2 = ex.run(result.program, Dialect.CUDA, work_scale=100.0).runtime_seconds
        assert t2 == pytest.approx(100 * t1, rel=0.01)

    def test_args_forwarded(self):
        result = compiler_for(Dialect.C).compile(
            'int main(int argc, char** argv) { printf("%d\\n", atoi(argv[1]) * 3); return 0; }'
        )
        run = Executor().run(result.program, Dialect.C, args=["14"])
        assert run.stdout == "42\n"

    def test_deterministic_runtime(self, omp_vecadd_source):
        result = OMP_COMPILER.compile(omp_vecadd_source.text)
        ex = Executor()
        t1 = ex.run(result.program, Dialect.OMP).runtime_seconds
        t2 = ex.run(result.program, Dialect.OMP).runtime_seconds
        assert t1 == t2
