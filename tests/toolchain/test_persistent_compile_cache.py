"""Persisted compile cache: store-backed replay of front-end results,
scope swapping, and corrupt-entry fall-through."""

from __future__ import annotations

import base64

import pytest

from repro.experiments.store import COMPILE_NAMESPACE, SqliteCacheStore
from repro.minilang.source import Dialect
from repro.toolchain import (
    CompileCache,
    PersistentCompileCache,
    compile_cache_scope,
    compile_cache_stats,
    compiler_for,
)
from repro.toolchain.compiler import PERSISTED_COMPILE_VERSION

OMP_SOURCE = """\
void main() {
  float data[256];
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 256; i = i + 1) {
    data[i] = i * 2.0;
  }
}
"""


@pytest.fixture()
def store(tmp_path):
    return SqliteCacheStore(tmp_path / "store.db")


def _compile_key():
    return CompileCache.key(OMP_SOURCE, Dialect.OMP, "code.cpp")


def _front_end():
    return compiler_for(Dialect.OMP)._front_end(OMP_SOURCE, "code.cpp")


class TestPersistence:
    def test_put_persists_and_a_fresh_instance_replays(self, store):
        first = PersistentCompileCache(store)
        result = _front_end()
        first.put(_compile_key(), result)
        assert store.keys(namespace=COMPILE_NAMESPACE)

        second = PersistentCompileCache(store)
        replayed = second.get(_compile_key())
        assert replayed is not None
        assert replayed.ok == result.ok
        assert replayed.stderr == result.stderr
        assert replayed.command == result.command
        assert second.stats()["store_hits"] == 1
        # Promoted into memory: the next get is a pure memory hit.
        second.get(_compile_key())
        assert second.stats()["store_hits"] == 1

    def test_memory_hit_skips_the_store(self, store):
        cache = PersistentCompileCache(store)
        cache.put(_compile_key(), _front_end())
        cache.get(_compile_key())
        assert cache.stats()["store_hits"] == 0

    def test_version_mismatch_falls_through_to_a_miss(self, store):
        cache = PersistentCompileCache(store)
        cache.put(_compile_key(), _front_end())
        key = PersistentCompileCache.store_key(_compile_key())
        entry = store.get(key, namespace=COMPILE_NAMESPACE)
        entry["version"] = PERSISTED_COMPILE_VERSION + 1
        store.put(key, entry, namespace=COMPILE_NAMESPACE)
        assert PersistentCompileCache(store).get(_compile_key()) is None

    def test_undecodable_pickle_falls_through_to_a_miss(self, store):
        cache = PersistentCompileCache(store)
        cache.put(_compile_key(), _front_end())
        key = PersistentCompileCache.store_key(_compile_key())
        store.put(
            key,
            {
                "version": PERSISTED_COMPILE_VERSION,
                "key": list(_compile_key()),
                "pickle": base64.b64encode(b"not a pickle").decode("ascii"),
            },
            namespace=COMPILE_NAMESPACE,
        )
        assert PersistentCompileCache(store).get(_compile_key()) is None


class TestScope:
    def test_scope_swaps_and_restores_the_process_memo(self, store):
        import repro.toolchain.compiler as compiler_module

        before = compiler_module._COMPILE_CACHE
        cache = PersistentCompileCache(store)
        with compile_cache_scope(cache):
            assert compiler_module._COMPILE_CACHE is cache
            compiler_for(Dialect.OMP).compile(OMP_SOURCE, "code.cpp")
        assert compiler_module._COMPILE_CACHE is before
        # The compile inside the scope was persisted.
        assert store.keys(namespace=COMPILE_NAMESPACE)

    def test_scope_restores_on_error(self, store):
        import repro.toolchain.compiler as compiler_module

        before = compiler_module._COMPILE_CACHE
        with pytest.raises(RuntimeError):
            with compile_cache_scope(PersistentCompileCache(store)):
                raise RuntimeError("boom")
        assert compiler_module._COMPILE_CACHE is before

    def test_second_scope_replays_from_the_store(self, store):
        driver = compiler_for(Dialect.OMP)
        with compile_cache_scope(PersistentCompileCache(store)):
            driver.compile(OMP_SOURCE, "code.cpp")
        with compile_cache_scope(PersistentCompileCache(store)) as cache:
            driver.compile(OMP_SOURCE, "code.cpp")
            assert cache.stats()["store_hits"] == 1
            assert compile_cache_stats()["store_hits"] == 1
