"""Tests for semantic analysis and dialect legality rules."""

from __future__ import annotations

from repro.minilang import analyze, parse
from repro.minilang.source import Dialect, SourceFile


def sema(text: str, dialect: Dialect):
    program, diags = parse(SourceFile("t", text, dialect))
    assert not diags.has_errors, diags.render()
    return analyze(program, dialect)


def error_codes(text: str, dialect: Dialect = Dialect.C):
    res = sema(text, dialect)
    return [d.code for d in res.diagnostics.errors]


MAIN = "int main() { return 0; }\n"


class TestBasicChecks:
    def test_clean_program(self):
        res = sema(MAIN, Dialect.C)
        assert res.ok

    def test_missing_main(self):
        assert "no-main" in error_codes("void f() {}")

    def test_undeclared_identifier(self):
        assert "undeclared-ident" in error_codes(
            "int main() { x = 1; return 0; }"
        )

    def test_redefinition_same_scope(self):
        assert "redefinition" in error_codes(
            "int main() { int a = 1; int a = 2; return 0; }"
        )

    def test_shadowing_in_nested_scope_is_allowed(self):
        res = sema("int main() { int a = 1; { int a = 2; } return a; }", Dialect.C)
        assert res.ok

    def test_unknown_function(self):
        assert "undeclared-function" in error_codes(
            "int main() { frob(1); return 0; }"
        )

    def test_wrong_arg_count_user_function(self):
        assert "arg-count" in error_codes(
            "int f(int a, int b) { return a + b; }\n"
            "int main() { return f(1); }"
        )

    def test_wrong_arg_type_pointer_vs_int(self):
        assert "arg-type" in error_codes(
            "int f(int* p) { return p[0]; }\n"
            "int main() { return f(3); }"
        )

    def test_assign_pointer_from_int_is_error(self):
        assert "type-mismatch" in error_codes(
            "int main() { float* p = 3; return 0; }"
        )

    def test_void_pointer_interconverts(self):
        res = sema(
            "int main() { float* p = (float*)malloc(16); free(p); return 0; }",
            Dialect.C,
        )
        assert res.ok

    def test_break_outside_loop(self):
        assert "break-outside-loop" in error_codes("int main() { break; return 0; }")

    def test_subscript_non_pointer(self):
        assert "subscript-nonpointer" in error_codes(
            "int main() { int a = 1; return a[0]; }"
        )

    def test_deref_non_pointer(self):
        assert "deref-nonpointer" in error_codes(
            "int main() { int a = 1; return *a; }"
        )

    def test_not_assignable(self):
        assert "not-assignable" in error_codes("int main() { 3 = 4; return 0; }")

    def test_void_function_returning_value(self):
        assert "void-return-value" in error_codes(
            "void f() { return 3; }\n" + MAIN
        )

    def test_nonvoid_return_without_value(self):
        assert "missing-return-value" in error_codes(
            "int f() { return; }\n" + MAIN
        )

    def test_arith_on_pointers_rejected(self):
        assert "arith-mismatch" in error_codes(
            "int main() { float* p = (float*)malloc(4); float* q = (float*)malloc(4);"
            " float x = p * q; return 0; }"
        )

    def test_pointer_plus_int_allowed(self):
        res = sema(
            "int main() { float* p = (float*)malloc(16); float* q = p + 2; return 0; }",
            Dialect.C,
        )
        assert res.ok


class TestCudaRules:
    KERNEL = "__global__ void k(int* p, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) p[i] = i; }\n"

    def test_clean_kernel_and_launch(self):
        res = sema(
            self.KERNEL
            + "int main() { int* d; cudaMalloc(&d, 64); k<<<1, 16>>>(d, 16);"
            " cudaDeviceSynchronize(); cudaFree(d); return 0; }",
            Dialect.CUDA,
        )
        assert res.ok, res.diagnostics.render()

    def test_kernel_called_without_launch_syntax(self):
        codes = error_codes(
            self.KERNEL + "int main() { int* d; cudaMalloc(&d, 64); k(d, 16); return 0; }",
            Dialect.CUDA,
        )
        assert "kernel-call-unconfigured" in codes

    def test_launch_of_non_kernel(self):
        codes = error_codes(
            "void f(int x) {}\nint main() { f<<<1, 1>>>(3); return 0; }",
            Dialect.CUDA,
        )
        assert "launch-non-kernel" in codes

    def test_kernel_with_nonvoid_return(self):
        codes = error_codes(
            "__global__ int k() { return 1; }\n" + MAIN, Dialect.CUDA
        )
        assert "kernel-return-type" in codes

    def test_geometry_builtin_in_host_code(self):
        codes = error_codes(
            "int main() { int i = threadIdx.x; return 0; }", Dialect.CUDA
        )
        assert "geometry-in-host" in codes

    def test_malloc_in_kernel_rejected(self):
        codes = error_codes(
            "__global__ void k() { int* p = (int*)malloc(4); }\n" + MAIN,
            Dialect.CUDA,
        )
        assert "host-call-from-device" in codes

    def test_printf_in_kernel_allowed(self):
        res = sema(
            '__global__ void k() { printf("hi\\n"); }\n' + MAIN, Dialect.CUDA
        )
        assert res.ok

    def test_atomic_add_on_host_rejected(self):
        codes = error_codes(
            "int main() { int x = 0; atomicAdd(&x, 1); return 0; }", Dialect.CUDA
        )
        assert "device-call-from-host" in codes

    def test_atomic_add_non_pointer_first_arg(self):
        codes = error_codes(
            "__global__ void k(int x) { atomicAdd(x, 1); }\n" + MAIN,
            Dialect.CUDA,
        )
        assert "arg-type" in codes

    def test_launch_arg_count_mismatch(self):
        codes = error_codes(
            self.KERNEL + "int main() { int* d; cudaMalloc(&d, 4); k<<<1, 1>>>(d); return 0; }",
            Dialect.CUDA,
        )
        assert "arg-count" in codes

    def test_device_function_callable_from_kernel(self):
        res = sema(
            "__device__ int sq(int x) { return x * x; }\n"
            "__global__ void k(int* p) { p[0] = sq(3); }\n" + MAIN,
            Dialect.CUDA,
        )
        assert res.ok

    def test_device_function_not_callable_from_host(self):
        codes = error_codes(
            "__device__ int sq(int x) { return x * x; }\n"
            "int main() { return sq(2); }",
            Dialect.CUDA,
        )
        assert "device-call-from-host" in codes

    def test_omp_pragma_in_cuda_is_warning_only(self):
        res = sema(
            "int main() { int n = 4; float* a = (float*)malloc(16);\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { a[i] = 0.0f; }\n"
            "free(a); return 0; }",
            Dialect.CUDA,
        )
        assert res.ok
        assert any(d.code == "unknown-pragma" for d in res.diagnostics)


class TestOmpRules:
    def test_cuda_qualifier_in_omp_is_error(self):
        codes = error_codes(
            "__global__ void k(int* p) { p[0] = 1; }\n" + MAIN, Dialect.OMP
        )
        assert "undeclared-ident" in codes

    def test_cuda_api_in_omp_is_undeclared(self):
        codes = error_codes(
            "int main() { int* d; cudaMalloc(&d, 4); return 0; }", Dialect.OMP
        )
        assert "undeclared-ident" in codes

    def test_geometry_builtin_in_omp_is_undeclared(self):
        codes = error_codes(
            "int main() { int i = threadIdx.x; return 0; }", Dialect.OMP
        )
        assert "undeclared-ident" in codes

    def test_atomic_add_in_omp_is_undeclared(self):
        codes = error_codes(
            "int main() { int x; atomicAdd(&x, 1); return 0; }", Dialect.OMP
        )
        assert "undeclared-ident" in codes

    def test_map_of_undeclared_array(self):
        codes = error_codes(
            "int main() { int n = 4;\n"
            "#pragma omp target teams distribute parallel for map(to: ghost[0:n])\n"
            "for (int i = 0; i < n; i++) { }\n"
            "return 0; }",
            Dialect.OMP,
        )
        assert "undeclared-ident" in codes

    def test_reduction_on_pointer_rejected(self):
        codes = error_codes(
            "int main() { int n = 4; float* s = (float*)malloc(4);\n"
            "#pragma omp target teams distribute parallel for reduction(+: s)\n"
            "for (int i = 0; i < n; i++) { }\n"
            "return 0; }",
            Dialect.OMP,
        )
        assert "reduction-pointer" in codes

    def test_non_canonical_loop_rejected(self):
        codes = error_codes(
            "int main() { int n = 4; int i = 0;\n"
            "#pragma omp target teams distribute parallel for\n"
            "for (; i < n;) { i++; }\n"
            "return 0; }",
            Dialect.OMP,
        )
        assert "non-canonical-loop" in codes

    def test_bad_collapse_nest(self):
        codes = error_codes(
            "int main() { int n = 4; int acc = 0;\n"
            "#pragma omp target teams distribute parallel for collapse(2)\n"
            "for (int i = 0; i < n; i++) { acc += i;\n"
            "for (int j = 0; j < n; j++) { acc += j; } }\n"
            "return 0; }",
            Dialect.OMP,
        )
        assert "bad-collapse" in codes

    def test_atomic_requires_update_statement(self):
        codes = error_codes(
            "int main() { int x = 0;\n"
            "#pragma omp atomic\n"
            "{ x = x + 1; }\n"
            "return 0; }",
            Dialect.OMP,
        )
        assert "invalid-atomic" in codes

    def test_clean_omp_program(self, omp_vecadd_source):
        program, diags = parse(omp_vecadd_source)
        assert not diags.has_errors
        res = analyze(program, Dialect.OMP)
        assert res.ok, res.diagnostics.render()

    def test_launch_syntax_in_omp_rejected(self):
        # '<<<' lexes as shifts in OMP mode, so this is a parse error.
        program, diags = parse(
            SourceFile(
                "t",
                "void k(int x) {}\nint main() { k<<<1, 1>>>(2); return 0; }",
                Dialect.OMP,
            )
        )
        assert diags.has_errors


class TestDiagnosticRendering:
    def test_render_contains_location_and_caret(self):
        program, _ = parse(SourceFile("foo.cpp", "int main() { x = 1; return 0; }", Dialect.OMP))
        res = analyze(program, Dialect.OMP)
        text = res.diagnostics.render(SourceFile("foo.cpp", "int main() { x = 1; return 0; }"))
        assert "foo.cpp:1:14: error: use of undeclared identifier 'x'" in text
        assert "^" in text
        assert "error generated" in text or "errors generated" in text
