"""Tests for the mini-language lexer."""

from __future__ import annotations

from repro.minilang.diagnostics import DiagnosticBag
from repro.minilang.lexer import Lexer, TokenKind


def lex_all(src: str, cuda: bool = False):
    bag = DiagnosticBag()
    toks = Lexer(src, bag, cuda_launch_syntax=cuda).tokens()
    return toks, bag


def texts(src: str, cuda: bool = False):
    toks, _ = lex_all(src, cuda)
    return [t.text for t in toks[:-1]]  # drop EOF


class TestBasics:
    def test_identifiers_and_keywords(self):
        toks, _ = lex_all("int foo;")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENT
        assert toks[1].text == "foo"

    def test_int_and_float_literals(self):
        toks, _ = lex_all("42 3.14 1e5 0x1F 2.5f 10u")
        kinds = [t.kind for t in toks[:-1]]
        assert kinds == [
            TokenKind.INT_LIT, TokenKind.FLOAT_LIT, TokenKind.FLOAT_LIT,
            TokenKind.INT_LIT, TokenKind.FLOAT_LIT, TokenKind.INT_LIT,
        ]

    def test_string_with_escape(self):
        toks, bag = lex_all(r'"a\nb"')
        assert not bag.has_errors
        assert toks[0].kind is TokenKind.STRING_LIT

    def test_char_literal(self):
        toks, _ = lex_all("'x' '\\n'")
        assert [t.kind for t in toks[:-1]] == [TokenKind.CHAR_LIT, TokenKind.CHAR_LIT]

    def test_multichar_operators(self):
        assert texts("a <<= b >>= c == d != e <= f >= g && h || i ++ --") == [
            "a", "<<=", "b", ">>=", "c", "==", "d", "!=", "e", "<=", "f",
            ">=", "g", "&&", "h", "||", "i", "++", "--",
        ]

    def test_line_and_block_comments_skipped(self):
        assert texts("a // comment\nb /* block */ c") == ["a", "b", "c"]

    def test_unterminated_block_comment_diagnosed(self):
        _, bag = lex_all("a /* never")
        assert bag.has_errors

    def test_unterminated_string_diagnosed(self):
        _, bag = lex_all('"abc')
        assert any(d.code == "unterminated-string" for d in bag.errors)

    def test_line_col_tracking(self):
        toks, _ = lex_all("a\n  b")
        assert (toks[0].span.line, toks[0].span.col) == (1, 1)
        assert (toks[1].span.line, toks[1].span.col) == (2, 3)

    def test_invalid_character_reported_and_skipped(self):
        toks, bag = lex_all("a @ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]
        assert any(d.code == "invalid-character" for d in bag.errors)


class TestCudaLaunchSyntax:
    def test_launch_delimiters_in_cuda_mode(self):
        assert "<<<" in texts("k<<<1, 2>>>()", cuda=True)

    def test_no_launch_delimiters_in_c_mode(self):
        toks = texts("a <<< b")
        assert "<<<" not in toks
        assert "<<" in toks


class TestDirectives:
    def test_pragma_captured_whole(self):
        toks, _ = lex_all("#pragma omp parallel for\nint x;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert toks[0].text == "#pragma omp parallel for"

    def test_pragma_with_continuation(self):
        toks, _ = lex_all("#pragma omp target \\\n  map(to: a)\nx;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert "map(to: a)" in toks[0].text

    def test_include_skipped(self):
        toks, bag = lex_all("#include <stdio.h>\nint x;")
        assert toks[0].kind is TokenKind.KEYWORD
        assert not bag.has_errors

    def test_unknown_directive_diagnosed(self):
        _, bag = lex_all("#warning hello\nint x;")
        assert any(d.code == "unknown-directive" for d in bag.errors)
