"""Tests for the mini-language parser."""

from __future__ import annotations


from repro.minilang import ast, parse
from repro.minilang.source import Dialect, SourceFile


def parse_ok(text: str, dialect: Dialect = Dialect.C) -> ast.Program:
    program, diags = parse(SourceFile("test", text, dialect))
    assert not diags.has_errors, diags.render()
    return program


def parse_err(text: str, dialect: Dialect = Dialect.C):
    _, diags = parse(SourceFile("test", text, dialect))
    assert diags.has_errors
    return diags


class TestDeclarations:
    def test_function_with_params(self):
        p = parse_ok("int add(int a, int b) { return a + b; }")
        fn = p.function("add")
        assert fn is not None
        assert [param.name for param in fn.params] == ["a", "b"]

    def test_global_variable(self):
        p = parse_ok("int counter = 0;\nint main() { return 0; }")
        assert p.globals[0].decl.name == "counter"

    def test_pointer_types(self):
        p = parse_ok("void f(float* a, char** argv) {}")
        fn = p.function("f")
        assert fn.params[0].type.pointers == 1
        assert fn.params[1].type.pointers == 2

    def test_local_array_declaration(self):
        p = parse_ok("void f() { int buf[256]; }")
        decl = p.function("f").body.stmts[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.array_size is not None

    def test_forward_declaration_then_definition(self):
        p = parse_ok("int f(int x);\nint f(int x) { return x; }\nint main() { return f(1); }")
        assert len([fn for fn in p.functions if fn.name == "f"]) == 2


class TestStatements:
    def test_if_else_chain(self):
        p = parse_ok("void f(int x) { if (x > 0) { x = 1; } else if (x < 0) { x = 2; } else { x = 3; } }")
        stmt = p.function("f").body.stmts[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.other, ast.If)

    def test_for_loop_parts(self):
        p = parse_ok("void f() { for (int i = 0; i < 10; i++) { } }")
        loop = p.function("f").body.stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert loop.cond is not None and loop.step is not None

    def test_infinite_for(self):
        p = parse_ok("void f() { for (;;) { break; } }")
        loop = p.function("f").body.stmts[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_while_and_do_while(self):
        p = parse_ok("void f(int x) { while (x > 0) x--; do { x++; } while (x < 5); }")
        body = p.function("f").body.stmts
        assert isinstance(body[0], ast.While)
        assert isinstance(body[1], ast.DoWhile)

    def test_break_continue_return(self):
        p = parse_ok("int f() { for (;;) { if (1) break; continue; } return 3; }")
        assert p.function("f") is not None

    def test_empty_statement(self):
        parse_ok("void f() { ; }")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        p = parse_ok("int f() { return 1 + 2 * 3; }")
        ret = p.function("f").body.stmts[0]
        assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
        assert isinstance(ret.value.right, ast.Binary) and ret.value.right.op == "*"

    def test_ternary(self):
        p = parse_ok("int f(int x) { return x > 0 ? 1 : 2; }")
        assert isinstance(p.function("f").body.stmts[0].value, ast.Ternary)

    def test_assignment_right_associative(self):
        p = parse_ok("void f(int a, int b) { a = b = 1; }")
        expr = p.function("f").body.stmts[0].expr
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        p = parse_ok("void f(int a) { a += 2; a <<= 1; }")
        assert p.function("f").body.stmts[0].expr.op == "+="

    def test_cast_expression(self):
        p = parse_ok("void f() { float* p = (float*)malloc(8); }")
        decl = p.function("f").body.stmts[0]
        assert isinstance(decl.init, ast.Cast)
        assert decl.init.type.pointers == 1

    def test_sizeof(self):
        p = parse_ok("void f() { int s = sizeof(float); }")
        assert isinstance(p.function("f").body.stmts[0].init, ast.SizeOf)

    def test_address_of_and_deref(self):
        p = parse_ok("void f(int* p, int x) { p = &x; x = *p; }")
        stmts = p.function("f").body.stmts
        assert isinstance(stmts[0].expr.value, ast.Unary) and stmts[0].expr.value.op == "&"

    def test_member_access(self):
        p = parse_ok(
            "__global__ void k() { int i = threadIdx.x; }", Dialect.CUDA
        )
        decl = p.function("k").body.stmts[0]
        assert isinstance(decl.init, ast.Member)
        assert decl.init.field_name == "x"

    def test_postfix_increment(self):
        p = parse_ok("void f(int i) { i++; }")
        assert isinstance(p.function("f").body.stmts[0].expr, ast.Postfix)

    def test_nested_index(self):
        p = parse_ok("void f(float* a, int* idx, int i) { float x = a[idx[i]]; }")
        init = p.function("f").body.stmts[0].init
        assert isinstance(init, ast.Index)
        assert isinstance(init.index, ast.Index)


class TestCudaSyntax:
    def test_kernel_qualifier(self):
        p = parse_ok("__global__ void k(int* p) { p[0] = 1; }", Dialect.CUDA)
        assert p.function("k").is_kernel

    def test_device_function(self):
        p = parse_ok("__device__ int f(int x) { return x * 2; }", Dialect.CUDA)
        assert p.function("f").is_device

    def test_launch_expression(self):
        p = parse_ok(
            "__global__ void k(int n) {}\n"
            "void host(int n) { k<<<(n + 255) / 256, 256>>>(n); }",
            Dialect.CUDA,
        )
        launch = p.function("host").body.stmts[0].expr
        assert isinstance(launch, ast.Launch)
        assert launch.kernel == "k"

    def test_shared_declaration(self):
        p = parse_ok("__global__ void k() { __shared__ float tile[128]; }", Dialect.CUDA)
        decl = p.function("k").body.stmts[0]
        assert decl.shared

    def test_syncthreads(self):
        p = parse_ok("__global__ void k() { __syncthreads(); }", Dialect.CUDA)
        assert isinstance(p.function("k").body.stmts[0], ast.SyncThreads)


class TestOmpPragmas:
    def test_target_teams_loop_with_clauses(self):
        p = parse_ok(
            "void f(float* a, int n) {\n"
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n]) num_threads(256)\n"
            "for (int i = 0; i < n; i++) { a[i] = 0.0f; }\n"
            "}",
            Dialect.OMP,
        )
        stmt = p.function("f").body.stmts[0]
        assert isinstance(stmt, ast.Pragma)
        assert stmt.pragma.directive == "target teams distribute parallel for"
        assert stmt.pragma.maps[0].kind == "tofrom"
        assert stmt.pragma.num_threads is not None
        assert isinstance(stmt.body, ast.For)

    def test_reduction_clause(self):
        p = parse_ok(
            "void f(float* a, int n) { float s = 0.0f;\n"
            "#pragma omp target teams distribute parallel for reduction(+: s) map(to: a[0:n])\n"
            "for (int i = 0; i < n; i++) { s += a[i]; }\n"
            "}",
            Dialect.OMP,
        )
        red = p.function("f").body.stmts[1].pragma.reduction
        assert red.op == "+" and red.names == ["s"]

    def test_collapse_clause(self):
        p = parse_ok(
            "void f(float* a, int n) {\n"
            "#pragma omp target teams distribute parallel for collapse(2) map(tofrom: a[0:n])\n"
            "for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { a[i] = 0.0f; } }\n"
            "}",
            Dialect.OMP,
        )
        assert p.function("f").body.stmts[0].pragma.collapse == 2

    def test_target_data_region(self):
        p = parse_ok(
            "void f(float* a, int n) {\n"
            "#pragma omp target data map(tofrom: a[0:n])\n"
            "{\n"
            "#pragma omp target teams distribute parallel for\n"
            "for (int i = 0; i < n; i++) { a[i] = 1.0f; }\n"
            "}\n"
            "}",
            Dialect.OMP,
        )
        outer = p.function("f").body.stmts[0]
        assert outer.pragma.directive == "target data"
        assert isinstance(outer.body, ast.Block)

    def test_atomic_pragma(self):
        p = parse_ok(
            "void f(int* c) {\n#pragma omp atomic\nc[0] += 1;\n}",
            Dialect.OMP,
        )
        stmt = p.function("f").body.stmts[0]
        assert stmt.pragma.directive == "atomic"

    def test_schedule_clause(self):
        p = parse_ok(
            "void f(float* a, int n) {\n"
            "#pragma omp parallel for schedule(static)\n"
            "for (int i = 0; i < n; i++) { a[i] = 0.0f; }\n"
            "}",
            Dialect.OMP,
        )
        assert p.function("f").body.stmts[0].pragma.schedule == "static"

    def test_loop_pragma_without_for_is_error(self):
        parse_err(
            "void f(int x) {\n#pragma omp parallel for\nx = 1;\n}",
            Dialect.OMP,
        )

    def test_unknown_omp_directive_is_error(self):
        diags = parse_err("void f() {\n#pragma omp frobnicate\nint x;\n}", Dialect.OMP)
        assert any(d.code == "unknown-omp-directive" for d in diags.errors)

    def test_non_omp_pragma_warns_and_continues(self):
        program, diags = parse(
            SourceFile("t", "void f() {\n#pragma unroll\nint x = 1;\n}", Dialect.C)
        )
        assert not diags.has_errors
        assert any(d.code == "unknown-pragma" for d in diags)
        assert isinstance(program.function("f").body.stmts[0], ast.VarDecl)


class TestErrorRecovery:
    def test_missing_semicolon_reported(self):
        diags = parse_err("void f() { int a = 1 int b = 2; }")
        assert any(d.code == "expected-token" for d in diags.errors)

    def test_multiple_errors_reported(self):
        diags = parse_err("void f() { int a = ; int b = ; }")
        assert len(diags.errors) >= 2

    def test_unclosed_block(self):
        parse_err("void f() { int a = 1;")

    def test_recovery_keeps_later_functions(self):
        program, diags = parse(
            SourceFile(
                "t",
                "void bad() { int x = ; }\nint good() { return 1; }",
                Dialect.C,
            )
        )
        assert diags.has_errors
        assert program.function("good") is not None


class TestRoundTrip:
    def test_fixture_roundtrip_cuda(self, cuda_vecadd_source):
        from repro.minilang import generate

        program, diags = parse(cuda_vecadd_source)
        assert not diags.has_errors
        text = generate(program)
        program2, diags2 = parse(
            SourceFile("rt", text, Dialect.CUDA)
        )
        assert not diags2.has_errors
        assert generate(program2) == text

    def test_fixture_roundtrip_omp(self, omp_vecadd_source):
        from repro.minilang import generate

        program, diags = parse(omp_vecadd_source)
        assert not diags.has_errors, diags.render()
        text = generate(program)
        program2, diags2 = parse(SourceFile("rt", text, Dialect.OMP))
        assert not diags2.has_errors, diags2.render()
        assert generate(program2) == text
