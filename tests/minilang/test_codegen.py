"""Tests for the AST -> source code generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.minilang import generate, parse
from repro.minilang.codegen import CodegenStyle
from repro.minilang.source import Dialect, SourceFile


def roundtrip(text: str, dialect: Dialect = Dialect.C,
              style: CodegenStyle = CodegenStyle()) -> str:
    program, diags = parse(SourceFile("t", text, dialect))
    assert not diags.has_errors, diags.render()
    return generate(program, style)


class TestFixpoint:
    @pytest.mark.parametrize("app_name", [
        "matrix-rotate", "jacobi", "atomicCost", "entropy", "randomAccess",
    ])
    def test_generate_parse_generate_is_identity(self, app_name):
        from repro.hecbench import get_app

        app = get_app(app_name)
        for dialect in (Dialect.CUDA, Dialect.OMP):
            once = roundtrip(app.source(dialect), dialect)
            twice = roundtrip(once, dialect)
            assert once == twice

    def test_semantics_preserved_through_roundtrip(self):
        from repro.hecbench import get_app
        from repro.toolchain import Executor, compiler_for

        app = get_app("layout")
        regenerated = roundtrip(app.omp_source, Dialect.OMP)
        cr = compiler_for(Dialect.OMP).compile(regenerated)
        assert cr.ok, cr.stderr
        ex = Executor()
        out1 = ex.run(cr.program, Dialect.OMP, app.args).stdout
        ref = compiler_for(Dialect.OMP).compile(app.omp_source)
        out2 = ex.run(ref.program, Dialect.OMP, app.args).stdout
        assert out1 == out2


class TestStyles:
    SRC = "int main() { float* p = (float*)malloc(8); if (p != NULL) { p[0] = 1.5f; } return 0; }"

    def test_indent_width(self):
        four = roundtrip(self.SRC, style=CodegenStyle(indent="    "))
        assert "\n    float*" in four

    def test_brace_next_line(self):
        allman = roundtrip(self.SRC, style=CodegenStyle(brace_same_line=False))
        assert "int main(int argc, char** argv)\n{" in allman or "int main()\n{" in allman

    def test_pointer_right(self):
        right = roundtrip(self.SRC, style=CodegenStyle(pointer_left=False))
        assert "float *p" in right

    def test_rename_map(self):
        renamed = roundtrip(self.SRC, style=CodegenStyle(rename={"p": "buffer"}))
        assert "buffer" in renamed
        assert " p[" not in renamed


class TestExpressions:
    def test_precedence_parens_only_when_needed(self):
        out = roundtrip("int f(int a, int b) { return (a + b) * 2 + a * b; }")
        assert "(a + b) * 2 + a * b" in out

    def test_nested_ternary_and_unary(self):
        out = roundtrip("int f(int x) { return x > 0 ? -x : ~x; }")
        assert "x > 0 ? -x : ~x" in out

    def test_string_escapes_roundtrip(self):
        out = roundtrip(r'int main() { printf("a\tb\n\"q\""); return 0; }')
        assert r'"a\tb\n\"q\""' in out

    def test_launch_syntax(self):
        out = roundtrip(
            "__global__ void k(int n) {}\n"
            "int main() { k<<<(10 + 1) / 2, 32>>>(5); return 0; }",
            Dialect.CUDA,
        )
        assert "k<<<(10 + 1) / 2, 32>>>(5);" in out

    def test_pragma_clauses_roundtrip(self):
        src = (
            "int main() { int n = 4; float s = 0.0f;\n"
            "float* a = (float*)malloc(n * sizeof(float));\n"
            "#pragma omp target teams distribute parallel for "
            "map(to: a[0:n]) reduction(+: s) collapse(1) num_threads(64) "
            "schedule(static)\n"
            "for (int i = 0; i < n; i++) { s += a[i]; }\n"
            "return 0; }"
        )
        out = roundtrip(src, Dialect.OMP)
        assert "map(to: a[0:n])" in out
        assert "reduction(+: s)" in out
        assert "num_threads(64)" in out
        assert "schedule(static)" in out

    @given(st.integers(-10**9, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_integer_literals_roundtrip(self, v):
        out = roundtrip(f"int main() {{ int x = {v}; return 0; }}")
        # negative literals render as unary minus on the magnitude
        assert str(abs(v)) in out


class TestLiteralFidelity:
    def test_double_spaces_in_string_literals_survive(self):
        # Regression: a whole-expression `.replace("  ", " ")` post-pass used
        # to collapse runs of spaces *inside* emitted string literals.
        src = 'int main() { printf("a  b    c" ); return 0; }'
        out = roundtrip(src)
        assert '"a  b    c"' in out

    def test_string_literal_in_binary_expression(self):
        src = 'int main() { int n = printf("x  y") + 1; return 0; }'
        out = roundtrip(src)
        assert '"x  y"' in out
        assert 'printf("x  y") + 1' in out

    def test_compact_style_binary_spacing(self):
        out = roundtrip(
            "int f(int a, int b) { return a * b + a / b; }",
            style=CodegenStyle(space_around_ops=False),
        )
        assert "a*b+a/b" in out
