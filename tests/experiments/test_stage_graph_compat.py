"""Stage-graph redesign compatibility: artifacts must not move.

The pipeline was decomposed from one monolithic method into a stage
graph; these tests pin that the redesign is invisible to every artifact
consumer:

* **golden session bytes** — a jobs=1 session JSONL is byte-identical to
  one recorded by the pre-redesign pipeline (the digest below was
  captured from the monolithic ``LassiPipeline.translate`` immediately
  before the rewrite);
* **both backends carry timing telemetry** in-memory without perturbing
  sessions or the cache;
* **the cache replays** stage-graph results exactly.
"""

from __future__ import annotations

import hashlib

from repro.experiments import (
    ParallelExperimentRunner,
    ResultCache,
    RunSession,
)
from repro.llm.profiles import CUDA2OMP, OMP2CUDA

#: SHA-256 of the session JSONL recorded by the pre-redesign monolithic
#: pipeline over this exact slice (jobs=1, profile=paper, seed=2024).
#: Covers 12 scenarios including the 34-correction Codestral/pathfinder
#: cell, so the whole loop structure is exercised.
GOLDEN_SLICE = dict(
    models=["gpt4", "codestral"],
    directions=[OMP2CUDA, CUDA2OMP],
    apps=["layout", "bsearch", "pathfinder"],
)
GOLDEN_SESSION_SHA256 = (
    "f0409b4e1991ce0ce680d4e13959f3a7a5b0e77f2af1d4d03e01b48cb09e4374"
)

SMALL = dict(models=["gpt4"], directions=[OMP2CUDA], apps=["layout", "bsearch"])


class TestPreRedesignByteIdentity:
    def test_jobs1_session_matches_pre_redesign_pipeline(self, tmp_path):
        path = tmp_path / "golden.jsonl"
        runner = ParallelExperimentRunner(jobs=1, session=RunSession(path))
        runner.run(**GOLDEN_SLICE)
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        assert digest == GOLDEN_SESSION_SHA256, (
            "stage-graph pipeline no longer reproduces the pre-redesign "
            "session bytes — a result field, status literal or attempt "
            "sequence drifted"
        )

    def test_tracing_does_not_perturb_the_golden_session_bytes(self, tmp_path):
        path = tmp_path / "traced.jsonl"
        runner = ParallelExperimentRunner(
            jobs=1, session=RunSession(path), trace=True
        )
        runner.run(**GOLDEN_SLICE)
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        assert digest == GOLDEN_SESSION_SHA256, (
            "telemetry leaked into the science artifact: the traced "
            "session JSONL must be byte-identical to an untraced one"
        )
        # The timing-shaped data all went to the sidecar instead.
        from repro.telemetry import load_trace_file, trace_path_for

        sidecar = trace_path_for(path)
        assert sidecar.exists()
        data = load_trace_file(sidecar)
        assert len(data["traces"]) == 12
        assert data["metrics"]["counters"]


class TestTimingTelemetryTransport:
    def test_thread_backend_results_carry_stage_seconds(self):
        results = ParallelExperimentRunner(jobs=2, backend="thread").run(**SMALL)
        for sr in results:
            assert sr.result.stage_seconds, "thread result lost telemetry"
            assert "generate" in sr.result.stage_seconds

    def test_process_backend_results_carry_stage_seconds(self):
        results = ParallelExperimentRunner(jobs=2, backend="process").run(**SMALL)
        for sr in results:
            assert sr.result.stage_seconds, "worker telemetry not shipped"
            assert "generate" in sr.result.stage_seconds

    def test_sessions_stay_timing_free_on_both_backends(self, tmp_path):
        import json

        for backend in ("thread", "process"):
            path = tmp_path / f"{backend}.jsonl"
            ParallelExperimentRunner(
                jobs=1, backend=backend, session=RunSession(path)
            ).run(**SMALL)
            for line in path.read_text(encoding="utf-8").splitlines():
                record = json.loads(line)
                if record.get("type") == "scenario":
                    assert "stage_seconds" not in record["result"]

    def test_traced_results_round_trip_byte_deterministically(self):
        import json

        results = ParallelExperimentRunner(jobs=1, trace=True).run(**SMALL)
        for sr in results:
            assert sr.result.spans, "traced run produced no spans"
            payload = sr.to_dict(include_timings=True)
            wire = json.dumps(payload, sort_keys=True)
            # The worker→parent transport: dict → JSON → dict → object →
            # dict must reproduce the exact bytes, spans included.
            rebuilt = type(sr).from_dict(json.loads(wire))
            assert rebuilt.result.spans == sr.result.spans
            assert json.dumps(
                rebuilt.to_dict(include_timings=True), sort_keys=True
            ) == wire

    def test_process_backend_ships_spans_and_writes_the_sidecar(
        self, tmp_path
    ):
        from repro.telemetry import load_trace_file, trace_path_for

        path = tmp_path / "proc.jsonl"
        runner = ParallelExperimentRunner(
            jobs=2, backend="process", session=RunSession(path), trace=True
        )
        results = runner.run(**SMALL)
        for sr in results:
            assert sr.result.spans, "worker spans not shipped to the parent"
            kinds = {s["kind"] for s in sr.result.spans}
            assert "pipeline" in kinds and "stage" in kinds
        data = load_trace_file(trace_path_for(path))
        assert len(data["traces"]) == len(results)
        runs = [
            (key, value)
            for key, value in data["metrics"]["counters"].items()
            if key.startswith("pipeline.runs")
        ]
        # The parent folds shipped worker telemetry into its registry
        # exactly once per executed scenario.
        assert sum(value for _, value in runs) == len(results)

    def test_untraced_runs_carry_no_spans(self):
        results = ParallelExperimentRunner(jobs=1).run(**SMALL)
        for sr in results:
            assert sr.result.spans == []
            assert "spans" not in sr.to_dict(include_timings=True)

    def test_cache_replays_without_timings_but_identical_results(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        warm = ParallelExperimentRunner(jobs=1, cache=cache)
        originals = warm.run(**SMALL)
        replay_runner = ParallelExperimentRunner(jobs=1, cache=cache)
        replayed = replay_runner.run(**SMALL)
        assert replay_runner.pipeline_runs == 0
        for original, replay in zip(originals, replayed):
            # Equality ignores telemetry; replays carry none (they did
            # not execute a pipeline).
            assert replay.result == original.result
            assert replay.result.stage_seconds == {}
            assert original.result.stage_seconds
