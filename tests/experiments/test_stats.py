"""Tests for headline statistics: empty/partial inputs and replicates."""

from __future__ import annotations

import pytest

from repro.experiments import direction_stats, headline_summary, replicate_stats
from repro.experiments.runner import Scenario, ScenarioResult
from repro.experiments.stats import summarize_values
from repro.llm.profiles import CUDA2OMP, OMP2CUDA
from repro.metrics.aggregate import AggregateStats
from repro.pipeline.results import LassiResult


def _scenario_result(direction, status="success", model="gpt4", app="layout"):
    source, target = (
        ("omp", "cuda") if direction == OMP2CUDA else ("cuda", "omp")
    )
    return ScenarioResult(
        scenario=Scenario(model_key=model, direction=direction, app_name=app),
        result=LassiResult(
            status=status,
            source_dialect=source,
            target_dialect=target,
            model=model,
        ),
    )


class TestDirectionStats:
    def test_empty_input_yields_no_directions(self):
        assert direction_stats([]) == {}

    def test_only_populated_directions_present(self):
        stats = direction_stats([_scenario_result(OMP2CUDA)])
        assert set(stats) == {OMP2CUDA}
        assert stats[OMP2CUDA].total == 1

    def test_unknown_direction_key_tolerated(self):
        # A filtered or future grid must not KeyError out of reporting.
        stats = direction_stats([_scenario_result("cuda2sycl")])
        assert stats["cuda2sycl"].total == 1


class TestHeadlineSummary:
    def test_empty_results(self):
        assert headline_summary([]) == "no scenarios to summarise"

    def test_single_direction_skips_the_empty_one(self):
        # Evaluating only cuda2omp must not print an all-zero
        # "OpenMP -> CUDA ... 0.0% (paper 80.0%)" block.
        text = headline_summary([_scenario_result(CUDA2OMP)])
        assert "CUDA -> OpenMP" in text
        assert "OpenMP -> CUDA" not in text
        assert "paper 85.0%" in text
        assert "paper 80.0%" not in text

    def test_both_directions_render_in_paper_order(self):
        text = headline_summary(
            [_scenario_result(CUDA2OMP), _scenario_result(OMP2CUDA)]
        )
        assert text.index("OpenMP -> CUDA") < text.index("CUDA -> OpenMP")

    def test_unknown_direction_renders_without_paper_column(self):
        text = headline_summary([_scenario_result("cuda2sycl")])
        assert "cuda2sycl (1 scenarios)" in text
        assert "paper" not in text


class TestReplicateStats:
    def _agg(self, success_rate):
        return AggregateStats(
            total=10,
            successes=int(success_rate * 10),
            success_rate=success_rate,
            within_10pct_rate=0.5,
            high_similarity_rate=0.5,
            first_try_rate=0.5,
        )

    def test_single_replicate_has_zero_stddev(self):
        summary = replicate_stats([self._agg(0.8)])["success_rate"]
        assert summary.n == 1
        assert summary.mean == pytest.approx(0.8)
        assert summary.stddev == 0.0
        assert summary.render() == "80.0%"

    def test_multi_replicate_dispersion(self):
        summary = replicate_stats(
            [self._agg(0.6), self._agg(0.8), self._agg(1.0)]
        )["success_rate"]
        assert summary.n == 3
        assert summary.mean == pytest.approx(0.8)
        assert summary.min == pytest.approx(0.6)
        assert summary.max == pytest.approx(1.0)
        assert summary.stddev == pytest.approx(0.2)  # sample stddev
        assert summary.render() == "80.0% ±20.0%"

    def test_all_four_metrics_summarised(self):
        summaries = replicate_stats([self._agg(0.5)])
        assert set(summaries) == {
            "success_rate",
            "within_10pct_rate",
            "high_similarity_rate",
            "first_try_rate",
        }

    def test_zero_replicates_rejected(self):
        with pytest.raises(ValueError):
            replicate_stats([])
        with pytest.raises(ValueError):
            summarize_values([])
