"""Distributed campaign sharding: spec parsing, deterministic
partitioning, shard + merge ≡ unsharded, merge refusals, and
cross-backend cache-store replay."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import (
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    Variant,
    load_campaign,
    merge_manifests,
    normalize_manifest,
    open_store,
    parse_shard_spec,
    shard_cell_indexes,
)
from repro.experiments.campaign import MANIFEST_NAME, shard_manifest_name
from repro.llm.profiles import OMP2CUDA

#: A tiny 2-scenario grid so shard tests stay fast.
GRID = dict(models=["gpt4"], directions=[OMP2CUDA], apps=["layout", "entropy"])


def _spec(name="mini", **kw):
    grid = dict(GRID)
    grid.update(kw)
    return CampaignSpec(
        name=name,
        variants=[
            Variant(name="baseline"),
            Variant(name="no-knowledge",
                    overrides={"include_knowledge": False}),
        ],
        **grid,
    )


def _run_sharded(root, count, spec=None, **kw):
    for i in range(count):
        CampaignRunner(
            spec or _spec(), root=root, shard=(i, count), **kw
        ).run()


class TestShardSpec:
    def test_accepts_string_tuple_and_none(self):
        assert parse_shard_spec(None) is None
        assert parse_shard_spec("0/2") == (0, 2)
        assert parse_shard_spec(" 1/3 ") == (1, 3)
        assert parse_shard_spec((2, 5)) == (2, 5)

    def test_rejects_malformed_specs(self):
        for bad in ("", "1", "1/", "/2", "1/2/3", "a/b", "-1/2", "1.5/2"):
            with pytest.raises(CampaignError):
                parse_shard_spec(bad)
        with pytest.raises(CampaignError):
            parse_shard_spec(object())

    def test_rejects_out_of_range_indexes(self):
        with pytest.raises(CampaignError):
            parse_shard_spec("2/2")
        with pytest.raises(CampaignError):
            parse_shard_spec("0/0")


class TestPartition:
    @pytest.mark.parametrize("cells,grid_size,count", [
        (1, 1, 1), (2, 2, 2), (4, 5, 2), (3, 7, 3), (2, 2, 5),
    ])
    def test_shards_partition_the_flat_cell_list(self, cells, grid_size,
                                                 count):
        # Disjoint + complete, per cell, whatever the geometry — including
        # more shards than work (some shards simply get nothing).
        for cell in range(cells):
            seen = []
            for shard in range(count):
                seen.extend(
                    shard_cell_indexes(cell, grid_size, (shard, count))
                )
            assert sorted(seen) == list(range(grid_size))
            assert len(seen) == len(set(seen))

    def test_partition_is_deterministic(self):
        assert shard_cell_indexes(1, 5, (0, 2)) == shard_cell_indexes(
            1, 5, (0, 2)
        )


class TestShardMerge:
    def test_shard_plus_merge_equals_unsharded(self, tmp_path):
        ref_root = tmp_path / "ref"
        shard_root = tmp_path / "sharded"
        CampaignRunner(_spec(), root=ref_root).run()
        _run_sharded(shard_root, 2,
                     cache_store=f"sqlite:{tmp_path / 'store.db'}")

        result = merge_manifests(shard_root / "mini")

        ref = json.loads(
            (ref_root / "mini" / MANIFEST_NAME).read_text()
        )
        merged = json.loads(
            (shard_root / "mini" / MANIFEST_NAME).read_text()
        )
        # Byte-identity modulo timing telemetry for the manifest...
        assert normalize_manifest(merged) == normalize_manifest(ref)
        # ...and full byte-identity for the canonical sessions.
        for cell in ref["cells"]:
            a = (ref_root / "mini" / cell["session"]).read_bytes()
            b = (shard_root / "mini" / cell["session"]).read_bytes()
            assert a == b
        # The merged result loads like any campaign and is complete.
        loaded = load_campaign(shard_root / "mini")
        assert all(r.complete for r in loaded.runs)
        assert len(loaded.runs) == len(result.runs) == 2

    def test_merged_matches_a_cache_replayed_reference(self, tmp_path):
        # The CI fan-in gate rebuilds its unsharded reference *from the
        # shards' fused store*, so its cells report pipeline_runs=0 while
        # the merged manifest sums real executions.  That counter is
        # execution telemetry, not a result: the gate must still pass.
        uri = f"sqlite:{tmp_path / 'store.db'}"
        _run_sharded(tmp_path / "sharded", 2, cache_store=uri)
        merge_manifests(tmp_path / "sharded" / "mini")
        replayed = CampaignRunner(
            _spec(), root=tmp_path / "ref", cache_store=uri
        ).run()
        assert replayed.total_pipeline_runs == 0

        merged = json.loads(
            (tmp_path / "sharded" / "mini" / MANIFEST_NAME).read_text()
        )
        ref = json.loads(
            (tmp_path / "ref" / "mini" / MANIFEST_NAME).read_text()
        )
        assert merged["cells"][0]["pipeline_runs"] == 2
        assert ref["cells"][0]["pipeline_runs"] == 0
        assert normalize_manifest(merged) == normalize_manifest(ref)

    def test_sharded_run_writes_partial_artifacts_only(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path, shard="0/2").run()
        campaign_dir = tmp_path / "mini"
        assert (campaign_dir / shard_manifest_name(0, 2)).exists()
        assert not (campaign_dir / MANIFEST_NAME).exists()
        sessions = sorted(
            p.name for p in (campaign_dir / "sessions").iterdir()
        )
        assert sessions == [
            "baseline-seed2024.shard-0-of-2.jsonl",
            "no-knowledge-seed2024.shard-0-of-2.jsonl",
        ]
        manifest = json.loads(
            (campaign_dir / shard_manifest_name(0, 2)).read_text()
        )
        assert manifest["type"] == "campaign-shard-manifest"
        assert manifest["shard"] == {"index": 0, "count": 2}
        assert manifest["grid_size"] == 2

    def test_shards_split_the_pipeline_work(self, tmp_path):
        # 2 cells x 2 scenarios round-robin over 2 shards: each shard
        # executes exactly half the flat list.
        runner0 = CampaignRunner(_spec(), root=tmp_path, shard=(0, 2))
        runner1 = CampaignRunner(_spec(), root=tmp_path, shard=(1, 2))
        r0 = runner0.run()
        r1 = runner1.run()
        assert r0.total_pipeline_runs == 2
        assert r1.total_pipeline_runs == 2

    def test_merge_refuses_missing_shard(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path, shard="0/2").run()
        with pytest.raises(CampaignError, match="missing"):
            merge_manifests(tmp_path / "mini")

    def test_merge_refuses_empty_directory(self, tmp_path):
        (tmp_path / "mini").mkdir()
        with pytest.raises(CampaignError, match="no shard manifests"):
            merge_manifests(tmp_path / "mini")

    def test_merge_refuses_disagreeing_shard_counts(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path, shard="0/2").run()
        CampaignRunner(_spec(), root=tmp_path, shard="1/3").run()
        with pytest.raises(CampaignError, match="disagree"):
            merge_manifests(tmp_path / "mini")

    def test_merge_refuses_fingerprint_mismatch(self, tmp_path):
        _run_sharded(tmp_path, 2)
        path = tmp_path / "mini" / shard_manifest_name(1, 2)
        manifest = json.loads(path.read_text())
        manifest["cells"][0]["config_fingerprint"] = "0" * 64
        path.write_text(json.dumps(manifest))
        with pytest.raises(CampaignError, match="fingerprint"):
            merge_manifests(tmp_path / "mini")

    def test_merge_refuses_different_specs(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path, shard="0/2").run()
        other = tmp_path / "other"
        CampaignRunner(
            _spec(apps=["layout", "bsearch"]), root=other, shard="1/2"
        ).run()
        # Graft a shard of a *different* grid into the directory.
        (tmp_path / "mini" / shard_manifest_name(1, 2)).write_text(
            (other / "mini" / shard_manifest_name(1, 2)).read_text()
        )
        with pytest.raises(CampaignError, match="different grids"):
            merge_manifests(tmp_path / "mini")

    def test_merge_refuses_incomplete_shard_cell(self, tmp_path):
        _run_sharded(tmp_path, 2)
        path = tmp_path / "mini" / shard_manifest_name(0, 2)
        manifest = json.loads(path.read_text())
        manifest["cells"][1]["completed"] = False
        path.write_text(json.dumps(manifest))
        with pytest.raises(CampaignError, match="not completed"):
            merge_manifests(tmp_path / "mini")

    def test_merge_refuses_missing_scenario_coverage(self, tmp_path):
        _run_sharded(tmp_path, 2)
        session = (
            tmp_path / "mini" / "sessions"
            / "baseline-seed2024.shard-0-of-2.jsonl"
        )
        lines = session.read_text().splitlines()
        # Drop the shard's one scenario record, keep the header: the
        # manifest still claims completion but coverage has a hole.
        session.write_text("\n".join(lines[:1]) + "\n")
        with pytest.raises(CampaignError, match="missing 1 of 2"):
            merge_manifests(tmp_path / "mini")

    def test_merge_refuses_overlapping_coverage(self, tmp_path):
        _run_sharded(tmp_path, 2)
        sessions = tmp_path / "mini" / "sessions"
        a = sessions / "baseline-seed2024.shard-0-of-2.jsonl"
        b = sessions / "baseline-seed2024.shard-1-of-2.jsonl"
        # Copy shard 1's scenario record into shard 0's session: same
        # scenario now recorded twice.
        record = b.read_text().splitlines()[1]
        with a.open("a") as handle:
            handle.write(record + "\n")
        with pytest.raises(CampaignError, match="disjoint"):
            merge_manifests(tmp_path / "mini")

    def test_merge_is_idempotent(self, tmp_path):
        _run_sharded(tmp_path, 2)
        merge_manifests(tmp_path / "mini")
        first = (tmp_path / "mini" / MANIFEST_NAME).read_bytes()
        merge_manifests(tmp_path / "mini")
        assert (tmp_path / "mini" / MANIFEST_NAME).read_bytes() == first

    def test_shard_and_unsharded_sessions_coexist(self, tmp_path):
        # Merging leaves the shard artifacts in place; a later unsharded
        # resume of the same directory must ignore them (and vice versa).
        _run_sharded(tmp_path, 2)
        merge_manifests(tmp_path / "mini")
        rerun = CampaignRunner(_spec(), root=tmp_path).run()
        assert rerun.total_pipeline_runs == 0  # everything from sessions


class TestSharedStoreReplay:
    def test_cross_backend_replay_is_identical(self, tmp_path):
        # Fill a directory store, copy its entries into a sqlite store,
        # then replay the campaign from each backend: zero executions and
        # byte-identical sessions either way.
        dir_uri = f"dir:{tmp_path / 'tree'}"
        sqlite_uri = f"sqlite:{tmp_path / 'store.db'}"
        first = CampaignRunner(
            _spec(), root=tmp_path / "a", cache_store=dir_uri
        ).run()
        assert first.total_pipeline_runs == 4

        source, dest = open_store(dir_uri), open_store(sqlite_uri)
        for ns in source.stat()["namespaces"]:
            for key in source.keys(namespace=ns):
                dest.put(key, source.get(key, namespace=ns), namespace=ns)

        from_dir = CampaignRunner(
            _spec(), root=tmp_path / "b", cache_store=dir_uri
        ).run()
        from_sqlite = CampaignRunner(
            _spec(), root=tmp_path / "c", cache_store=sqlite_uri
        ).run()
        assert from_dir.total_pipeline_runs == 0
        assert from_sqlite.total_pipeline_runs == 0
        for cell in first.runs:
            name = f"sessions/{cell.variant.name}-seed{cell.seed}.jsonl"
            assert (tmp_path / "b" / "mini" / name).read_bytes() == (
                tmp_path / "c" / "mini" / name
            ).read_bytes() == (tmp_path / "a" / "mini" / name).read_bytes()

    def test_shared_store_replays_compilations(self, tmp_path):
        from repro.experiments.store import COMPILE_NAMESPACE

        uri = f"sqlite:{tmp_path / 'store.db'}"
        CampaignRunner(_spec(), root=tmp_path / "a", cache_store=uri).run()
        store = open_store(uri)
        persisted = store.stat()["namespaces"]
        assert persisted.get(COMPILE_NAMESPACE, 0) > 0
        assert persisted.get("results", 0) == 4


class TestTracedShardMerge:
    """PR-7 acceptance: a sharded campaign with a shared cache store and
    tracing yields per-shard trace sidecars that merge fuses into one
    queryable trace per cell, whose numbers agree with the manifest."""

    def test_traced_shards_fuse_into_canonical_traces(self, tmp_path):
        from repro.telemetry import (
            collect_trace_paths,
            summarize_traces,
            trace_path_for,
        )

        uri = f"sqlite:{tmp_path / 'store.db'}"
        _run_sharded(tmp_path, 2, cache_store=uri, trace=True)
        campaign_dir = tmp_path / "mini"

        # Before the merge: per-shard sidecars only.
        shard_traces = sorted(
            p.name for p in (campaign_dir / "sessions").glob("*.trace.jsonl")
        )
        assert shard_traces == [
            "baseline-seed2024.shard-0-of-2.trace.jsonl",
            "baseline-seed2024.shard-1-of-2.trace.jsonl",
            "no-knowledge-seed2024.shard-0-of-2.trace.jsonl",
            "no-knowledge-seed2024.shard-1-of-2.trace.jsonl",
        ]

        merge_manifests(campaign_dir)
        manifest = json.loads((campaign_dir / MANIFEST_NAME).read_text())

        # The merge fused every cell's shards into a canonical sidecar...
        for cell in manifest["cells"]:
            assert trace_path_for(campaign_dir / cell["session"]).exists()
        paths = collect_trace_paths(campaign_dir)
        assert all(".shard-" not in p.name for p in paths)

        # ...and the fused trace agrees with the manifest's telemetry.
        summary = summarize_traces(paths)
        assert summary["traces"] == 4  # 2 cells x 2 scenarios, all traced
        telemetry = manifest["telemetry"]

        def executed(counters):
            return {
                key: value for key, value in counters.items()
                if not key.startswith(("cache_store.", "compile_cache."))
            }

        assert executed(summary["metrics"]["counters"]) == executed(
            telemetry["counters"]
        )
        run_total = sum(
            value for key, value in telemetry["counters"].items()
            if key.startswith("pipeline.runs")
        )
        assert run_total == 4
        assert summary["compile"]["calls"] >= 4
        assert summary["llm"]["calls"] >= 4

    def test_manifest_telemetry_is_stripped_by_normalize(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path, trace=True).run()
        manifest = json.loads(
            (tmp_path / "mini" / MANIFEST_NAME).read_text()
        )
        assert "telemetry" in manifest
        assert "telemetry" not in normalize_manifest(manifest)

    def test_untraced_campaign_writes_no_telemetry(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path).run()
        manifest = json.loads(
            (tmp_path / "mini" / MANIFEST_NAME).read_text()
        )
        assert "telemetry" not in manifest
        assert not list((tmp_path / "mini" / "sessions").glob("*.trace.jsonl"))
