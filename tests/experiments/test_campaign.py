"""Campaign subsystem: spec validation, execution, resume, cache sharing,
manifest persistence, loading, and report rendering."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.experiments import (
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    Variant,
    get_preset,
    load_campaign,
    load_spec_file,
    preset_names,
    render_campaign_report,
)
from repro.experiments.campaign import MANIFEST_NAME
from repro.llm.profiles import CUDA2OMP, OMP2CUDA

#: A tiny 2-scenario grid so campaign tests stay fast.
GRID = dict(models=["gpt4"], directions=[OMP2CUDA], apps=["layout", "entropy"])


def _spec(name="mini", variants=None, **kw):
    grid = dict(GRID)
    grid.update(kw)
    return CampaignSpec(
        name=name,
        variants=variants or [
            Variant(name="baseline"),
            Variant(name="no-knowledge",
                    overrides={"include_knowledge": False}),
        ],
        **grid,
    )


class TestSpecValidation:
    def test_unknown_override_field_rejected(self):
        with pytest.raises(CampaignError):
            Variant(name="bad", overrides={"max_corections": 3})

    def test_unknown_profile_rejected(self):
        with pytest.raises(CampaignError):
            Variant(name="bad", profile="vibes")

    def test_empty_or_repeated_seeds_rejected(self):
        with pytest.raises(CampaignError):
            Variant(name="bad", seeds=[])
        with pytest.raises(CampaignError):
            Variant(name="bad", seeds=[1, 1])

    def test_unsafe_names_rejected(self):
        with pytest.raises(CampaignError):
            Variant(name="a/b")
        with pytest.raises(CampaignError):
            _spec(name="../escape")

    def test_campaigns_need_variants_with_unique_names(self):
        with pytest.raises(CampaignError):
            CampaignSpec(name="empty", variants=[])
        with pytest.raises(CampaignError):
            CampaignSpec(name="dup", variants=[
                Variant(name="a"), Variant(name="a"),
            ])

    def test_spec_roundtrips_through_dict(self):
        spec = _spec()
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()
        assert again.variants[1].overrides == {"include_knowledge": False}

    def test_spec_file_loading(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_spec().to_dict()))
        assert load_spec_file(path).name == "mini"
        path.write_text("{broken")
        with pytest.raises(CampaignError):
            load_spec_file(path)
        path.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(CampaignError):
            load_spec_file(path)


class TestPresets:
    def test_the_paper_ablations_ship_as_presets(self):
        assert {"knowledge-ablation", "self-correction-ablation",
                "max-corrections-sweep"} <= set(preset_names())

    def test_presets_build_valid_specs(self):
        for name in preset_names():
            spec = get_preset(name)
            assert spec.name == name
            assert spec.variants

    def test_max_corrections_sweep_straddles_the_threshold(self):
        caps = {v.overrides["max_corrections"]
                for v in get_preset("max-corrections-sweep").variants}
        assert {33, 34} <= caps  # the paper's worst cell needs exactly 34

    def test_stochastic_preset_has_multi_seed_variants(self):
        spec = get_preset("stochastic-replicates")
        assert all(len(v.seeds) > 1 for v in spec.variants)
        assert all(v.profile == "stochastic" for v in spec.variants)

    def test_unknown_preset_rejected(self):
        with pytest.raises(CampaignError):
            get_preset("nope")


class TestSynthSuiteCampaigns:
    def test_synth_sweep_preset_names_a_generated_suite(self):
        spec = get_preset("synth-sweep")
        assert spec.suite == "synth:stencil,reduction:seeds=2"
        assert CampaignSpec.from_dict(spec.to_dict()).suite == spec.suite

    def test_suite_defaults_to_table4_in_old_manifests(self):
        data = _spec().to_dict()
        del data["suite"]
        assert CampaignSpec.from_dict(data).suite == "table4"

    def test_campaign_runs_and_replays_over_a_synth_suite(self, tmp_path):
        spec = CampaignSpec(
            name="mini-synth",
            suite="synth:scan:seeds=2",
            models=["gpt4"],
            directions=[OMP2CUDA],
            variants=[Variant(name="baseline")],
        )
        runner = CampaignRunner(spec, root=tmp_path, jobs=2)
        result = runner.run()
        assert result.total_pipeline_runs == 2
        assert [r.scenario.app_name for r in result.runs[0].results] == [
            "synth-scan-d1-s0", "synth-scan-d1-s1",
        ]
        # A re-run replays every generated-app cell from artifacts.
        rerun = CampaignRunner(spec, root=tmp_path, jobs=2).run()
        assert rerun.total_pipeline_runs == 0
        # ...and so does loading the campaign directory from disk.
        loaded = load_campaign(tmp_path / "mini-synth")
        assert loaded.spec.suite == "synth:scan:seeds=2"
        assert [r.scenario.app_name for r in loaded.runs[0].results] == [
            "synth-scan-d1-s0", "synth-scan-d1-s1",
        ]

    def test_rerunning_a_directory_under_a_different_grid_is_refused(
        self, tmp_path
    ):
        spec = CampaignSpec(
            name="mix",
            suite="synth:scan:seeds=1",
            models=["gpt4"],
            directions=[OMP2CUDA],
            variants=[Variant(name="baseline")],
        )
        CampaignRunner(spec, root=tmp_path, jobs=1).run()
        # Same name, different suite: must refuse, not blend sessions.
        other = CampaignSpec(
            name="mix",
            suite="synth:matmul:seeds=1",
            models=["gpt4"],
            directions=[OMP2CUDA],
            variants=[Variant(name="baseline")],
        )
        with pytest.raises(CampaignError, match="different grid"):
            CampaignRunner(other, root=tmp_path)
        # Same grid under a different app filter is refused too.
        filtered = CampaignSpec(
            name="mix",
            suite="synth:scan:seeds=1",
            models=["gpt4"],
            directions=[OMP2CUDA],
            apps=["synth-scan-d1-s0"],
            variants=[Variant(name="baseline")],
        )
        with pytest.raises(CampaignError, match="different grid"):
            CampaignRunner(filtered, root=tmp_path)
        # The identical spec still resumes (replay, zero executions) —
        # including under the canonical spelling of the same suite.
        rerun = CampaignRunner(spec, root=tmp_path, jobs=1).run()
        assert rerun.total_pipeline_runs == 0
        canonical = CampaignSpec(
            name="mix",
            suite="synth:scan:seeds=1:difficulty=1",
            models=["gpt4"],
            directions=[OMP2CUDA],
            variants=[Variant(name="baseline")],
        )
        assert CampaignRunner(
            canonical, root=tmp_path, jobs=1
        ).run().total_pipeline_runs == 0
        # Deleting the manifest does not reopen the blending hole: sessions
        # without a readable manifest cannot be tied to any grid.
        (tmp_path / "mix" / MANIFEST_NAME).unlink()
        with pytest.raises(CampaignError, match="no readable manifest"):
            CampaignRunner(other, root=tmp_path)
        with pytest.raises(CampaignError, match="no readable manifest"):
            CampaignRunner(spec, root=tmp_path)

    def test_out_of_suite_app_filter_is_a_campaign_error(self, tmp_path):
        spec = CampaignSpec(
            name="bad-filter",
            suite="synth:scan:seeds=1",
            models=["gpt4"],
            directions=[OMP2CUDA],
            apps=["jacobi"],
            variants=[Variant(name="baseline")],
        )
        with pytest.raises(CampaignError, match="unusable app filter"):
            CampaignRunner(spec, root=tmp_path)

    def test_unusable_suite_is_a_campaign_error(self, tmp_path):
        spec = CampaignSpec(
            name="bad-suite",
            suite="synth:frobnicate",
            variants=[Variant(name="baseline")],
        )
        with pytest.raises(CampaignError, match="unusable suite"):
            CampaignRunner(spec, root=tmp_path)


class TestCampaignExecution:
    def test_run_produces_directory_manifest_and_sessions(self, tmp_path):
        result = CampaignRunner(_spec(), root=tmp_path, jobs=2).run()
        directory = tmp_path / "mini"
        assert result.directory == directory
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["type"] == "campaign-manifest"
        assert [c["variant"] for c in manifest["cells"]] == [
            "baseline", "no-knowledge",
        ]
        assert all(c["completed"] for c in manifest["cells"])
        for cell in manifest["cells"]:
            assert (directory / cell["session"]).exists()
            assert cell["scenarios"] == 2

    def test_baselines_shared_across_variants(self, tmp_path):
        runner = CampaignRunner(_spec(), root=tmp_path)
        runner.run()
        # 2 apps x 2 dialects, built once despite 2 variants touching them.
        assert runner.baselines.compile_count == 4

    def test_manifest_cells_carry_a_perf_summary(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path).run()
        manifest = json.loads(
            (tmp_path / "mini" / MANIFEST_NAME).read_text()
        )
        for cell in manifest["cells"]:
            perf = cell["perf"]
            assert perf["scenarios"] == 2
            assert 0 <= perf["scored"] <= perf["scenarios"]
            if perf["speedup"] is not None:
                dist = perf["speedup"]
                assert dist["count"] == perf["scored"]
                assert dist["p50"] >= dist["min"]
                assert dist["p95"] <= dist["max"]

    def test_perf_summary_survives_replay_byte_identically(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path).run()
        manifest_path = tmp_path / "mini" / MANIFEST_NAME
        first = json.loads(manifest_path.read_text())
        replay = CampaignRunner(_spec(), root=tmp_path).run()
        assert replay.total_pipeline_runs == 0
        second = json.loads(manifest_path.read_text())
        # perf derives from session-persisted ratios, so an executed run
        # and its replay agree exactly — unlike stage_seconds.
        assert [c["perf"] for c in first["cells"]] == [
            c["perf"] for c in second["cells"]
        ]
        from repro.experiments import normalize_manifest
        assert "perf" in normalize_manifest(first)["cells"][0]

    def test_rerun_replays_everything(self, tmp_path):
        first = CampaignRunner(_spec(), root=tmp_path)
        assert first.run().total_pipeline_runs == 4

        second = CampaignRunner(_spec(), root=tmp_path)
        result = second.run()
        assert result.total_pipeline_runs == 0
        assert second.baselines.compile_count == 0
        assert all(run.complete for run in result.runs)

    def test_rerun_without_sessions_replays_from_cache(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path).run()
        shutil.rmtree(tmp_path / "mini" / "sessions")

        second = CampaignRunner(_spec(), root=tmp_path)
        result = second.run()
        # Sessions are gone: every scenario came back from the
        # content-addressed cache, nothing executed or compiled.
        assert second.cache.hits == 4
        assert result.total_pipeline_runs == 0
        assert second.baselines.compile_count == 0

    def test_identical_variants_share_cache_within_one_run(self, tmp_path):
        # An explicit max_corrections=40 is the default config: the second
        # variant's cells are content-identical and replay from the first's.
        spec = _spec(variants=[
            Variant(name="baseline"),
            Variant(name="cap-40", overrides={"max_corrections": 40}),
        ])
        runner = CampaignRunner(spec, root=tmp_path)
        result = runner.run()
        by_variant = result.by_variant()
        assert by_variant["baseline"][0].pipeline_runs == 2
        assert by_variant["cap-40"][0].pipeline_runs == 0
        assert runner.cache.hits == 2

    def test_variant_level_resume_skips_finished_cells(self, tmp_path):
        spec = _spec()

        class ExplodingRunner(CampaignRunner):
            def _write_manifest(self, runs, cells):
                super()._write_manifest(runs, cells)
                if len(runs) == 1:
                    raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ExplodingRunner(spec, root=tmp_path).run()
        manifest = json.loads(
            (tmp_path / "mini" / MANIFEST_NAME).read_text()
        )
        assert [c["completed"] for c in manifest["cells"]] == [True, False]

        resumed = CampaignRunner(spec, root=tmp_path)
        result = resumed.run()
        # The finished variant replays; only the unfinished one's 2
        # scenarios execute (its ablated config shares nothing with the
        # cached baseline cells).
        assert result.total_pipeline_runs == 2
        assert all(run.complete for run in result.runs)

    def test_multi_seed_variant_runs_one_cell_per_seed(self, tmp_path):
        spec = _spec(variants=[
            Variant(name="stoch", profile="stochastic", seeds=[1, 2, 3]),
        ])
        result = CampaignRunner(spec, root=tmp_path).run()
        assert [r.seed for r in result.runs] == [1, 2, 3]
        assert result.total_pipeline_runs == 6
        sessions = sorted(
            p.name for p in (tmp_path / "mini" / "sessions").iterdir()
        )
        assert sessions == [
            "stoch-seed1.jsonl", "stoch-seed2.jsonl", "stoch-seed3.jsonl",
        ]


class TestLoadAndReport:
    def test_load_campaign_roundtrip(self, tmp_path):
        ran = CampaignRunner(_spec(), root=tmp_path).run()
        loaded = load_campaign(tmp_path / "mini")
        assert loaded.spec.to_dict() == ran.spec.to_dict()
        assert len(loaded.runs) == len(ran.runs)
        for a, b in zip(loaded.runs, ran.runs):
            assert a.variant.name == b.variant.name
            assert a.complete
            assert {r.scenario for r in a.results} == {
                r.scenario for r in b.results
            }

    def test_load_missing_or_broken_manifest(self, tmp_path):
        with pytest.raises(CampaignError):
            load_campaign(tmp_path / "nope")
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / MANIFEST_NAME).write_text("{broken")
        with pytest.raises(CampaignError):
            load_campaign(bad)
        (bad / MANIFEST_NAME).write_text(json.dumps({"type": "other"}))
        with pytest.raises(CampaignError):
            load_campaign(bad)

    def test_report_compares_variants_per_direction(self, tmp_path):
        spec = _spec(variants=[
            Variant(name="baseline"),
            Variant(name="no-self-correction",
                    overrides={"self_correction": False}),
        ], models=["gpt4"], directions=None, apps=["matrix-rotate", "layout"])
        result = CampaignRunner(spec, root=tmp_path).run()
        text = render_campaign_report(result)
        assert "OpenMP -> CUDA" in text and "CUDA -> OpenMP" in text
        assert "baseline" in text and "no-self-correction" in text
        assert "(paper)" in text
        # matrix-rotate needs 1 correction omp2cuda: the ablated variant
        # loses it, the baseline keeps it.
        omp_block = text[text.index("OpenMP -> CUDA"):]
        base_row = [ln for ln in omp_block.splitlines()
                    if ln.startswith("baseline")][0]
        ablated_row = [ln for ln in omp_block.splitlines()
                       if ln.startswith("no-self-correction")][0]
        assert "100.0%" in base_row
        assert "50.0%" in ablated_row

    def test_report_renders_mean_plus_minus_stddev_for_replicates(
        self, tmp_path
    ):
        spec = _spec(variants=[
            Variant(name="stoch", profile="stochastic", seeds=[1, 2, 3, 4]),
        ], models=["gpt4", "codestral"], directions=[CUDA2OMP],
            apps=["layout", "entropy", "bsearch"])
        result = CampaignRunner(spec, root=tmp_path, jobs=4).run()
        text = render_campaign_report(result)
        row = [ln for ln in text.splitlines() if ln.startswith("stoch")][0]
        assert "±" in row
        assert "  4  " in row  # the seeds column

    def test_report_flags_incomplete_cells(self, tmp_path):
        CampaignRunner(_spec(), root=tmp_path).run()
        directory = tmp_path / "mini"
        # Chop one session down to a single record.
        session = directory / "sessions" / "baseline-seed2024.jsonl"
        lines = session.read_text().splitlines()
        session.write_text("\n".join(lines[:2]) + "\n")
        text = render_campaign_report(load_campaign(directory))
        assert "incomplete cell(s)" in text
        assert "baseline (seed 2024)" in text

    def test_report_flags_cell_interrupted_mid_campaign(self, tmp_path):
        # A campaign killed between cells must not silently average the
        # unfinished cell in: the manifest's expected_scenarios exposes it.
        spec = _spec()

        class ExplodingRunner(CampaignRunner):
            def _write_manifest(self, runs, cells):
                super()._write_manifest(runs, cells)
                if len(runs) == 1:
                    raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ExplodingRunner(spec, root=tmp_path).run()
        text = render_campaign_report(load_campaign(tmp_path / "mini"))
        assert "incomplete cell(s)" in text
        assert "no-knowledge (seed 2024)" in text

    def test_report_with_no_results_yet(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, root=tmp_path)._write_manifest([], spec.cells())
        text = render_campaign_report(load_campaign(tmp_path / "mini"))
        assert "no recorded scenarios yet" in text


class TestCampaignBackends:
    def test_process_backend_campaign_matches_thread(self, tmp_path):
        spec = _spec()
        thread_run = CampaignRunner(
            spec, root=tmp_path / "thread", jobs=2
        ).run()
        process_run = CampaignRunner(
            spec, root=tmp_path / "process", jobs=2, backend="process"
        ).run()
        assert [
            [r.to_dict() for r in cell.results] for cell in process_run.runs
        ] == [
            [r.to_dict() for r in cell.results] for cell in thread_run.runs
        ]

    def test_process_backend_rerun_replays_from_artifacts(self, tmp_path):
        spec = _spec()
        first = CampaignRunner(
            spec, root=tmp_path, jobs=2, backend="process"
        ).run()
        assert first.total_pipeline_runs == 4
        rerun = CampaignRunner(
            spec, root=tmp_path, jobs=2, backend="process"
        ).run()
        assert rerun.total_pipeline_runs == 0
