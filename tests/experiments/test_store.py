"""Pluggable cache stores: URI parsing, backend behaviour, corruption
accounting + quarantine, and cross-process writer safety."""

from __future__ import annotations

import json
import logging
import multiprocessing
import sqlite3
import time

import pytest

from repro.experiments.store import (
    CacheStoreError,
    DirectoryCacheStore,
    SqliteCacheStore,
    open_store,
    parse_store_uri,
)


@pytest.fixture(params=["dir", "sqlite"])
def store(request, tmp_path):
    if request.param == "dir":
        return DirectoryCacheStore(tmp_path / "tree")
    return SqliteCacheStore(tmp_path / "cache.db")


def _corrupt_one(store, namespace, key):
    """Replace an entry's body with undecodable bytes, behind the API."""
    if isinstance(store, DirectoryCacheStore):
        store._path(namespace, key).write_text("{not json", encoding="utf-8")
    else:
        with sqlite3.connect(store.path) as conn:
            conn.execute(
                "UPDATE entries SET entry=? WHERE namespace=? AND key=?",
                ("{not json", namespace, key),
            )


class TestUriParsing:
    def test_explicit_schemes(self):
        assert parse_store_uri("dir:/a/b") == ("dir", "/a/b")
        assert parse_store_uri("sqlite:/a/b.db") == ("sqlite", "/a/b.db")

    def test_bare_path_means_dir(self):
        assert parse_store_uri("some/relative/tree") == (
            "dir", "some/relative/tree",
        )

    def test_single_char_prefix_is_a_path_not_a_scheme(self):
        # Windows drive letters must not be mistaken for URI schemes.
        assert parse_store_uri("C:/caches/tree") == ("dir", "C:/caches/tree")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(CacheStoreError):
            parse_store_uri("redis:localhost")

    def test_empty_uri_and_empty_path_rejected(self):
        with pytest.raises(CacheStoreError):
            parse_store_uri("")
        with pytest.raises(CacheStoreError):
            parse_store_uri("sqlite:")

    def test_open_store_resolves_backends_and_passes_through(self, tmp_path):
        d = open_store(f"dir:{tmp_path / 'd'}")
        s = open_store(f"sqlite:{tmp_path / 's.db'}")
        bare = open_store(str(tmp_path / "bare"))
        assert isinstance(d, DirectoryCacheStore)
        assert isinstance(s, SqliteCacheStore)
        assert isinstance(bare, DirectoryCacheStore)
        assert open_store(d) is d


class TestStoreBasics:
    def test_put_get_roundtrip_and_counters(self, store):
        assert store.get("k1") is None
        assert store.counters()["misses"] == 1
        store.put("k1", {"value": 7})
        assert store.get("k1") == {"value": 7}
        counters = store.counters()
        assert counters["hits"] == 1 and counters["stores"] == 1

    def test_namespaces_isolate_entries(self, store):
        store.put("k", {"where": "root"})
        store.put("k", {"where": "results"}, namespace="results")
        assert store.get("k") == {"where": "root"}
        assert store.get("k", namespace="results") == {"where": "results"}
        assert store.get("k", namespace="compile") is None
        assert store.keys() == ["k"]
        assert store.keys(namespace="results") == ["k"]
        assert store.keys(namespace="compile") == []

    def test_put_overwrites(self, store):
        store.put("k", {"v": 1})
        store.put("k", {"v": 2})
        assert store.get("k") == {"v": 2}
        assert len(store.keys()) == 1

    def test_stat_shape(self, store):
        store.put("a", {"v": 1})
        store.put("b", {"v": 2}, namespace="results")
        stat = store.stat()
        assert stat["backend"] == store.backend
        assert stat["entries"] == 2
        assert stat["corrupt"] == 0
        assert stat["namespaces"][""] == 1
        assert stat["namespaces"]["results"] == 1
        assert stat["bytes"] > 0
        assert len(store) == 2

    def test_describe_is_a_reopenable_uri(self, store):
        store.put("k", {"v": 1})
        again = open_store(store.describe())
        assert again.get("k") == {"v": 1}

    def test_gc_keeps_fresh_entries(self, store):
        store.put("k", {"v": 1})
        report = store.gc()
        assert (report.scanned, report.kept) == (1, 1)
        assert report.pruned == 0 and report.quarantined == 0
        assert store.get("k") == {"v": 1}

    def test_gc_prunes_entries_older_than_max_age(self, store):
        store.put("old", {"v": 1})
        time.sleep(0.05)
        report = store.gc(max_age_seconds=0.01)
        assert report.pruned == 1
        assert store.get("old") is None


class TestCorruption:
    def test_corrupt_entry_is_counted_and_logged(self, store, caplog):
        store.put("k", {"v": 1})
        _corrupt_one(store, "", "k")
        with caplog.at_level(logging.WARNING, logger="repro.experiments.store"):
            assert store.get("k") is None
        assert store.counters()["corrupt"] == 1
        assert store.stat()["corrupt"] == 1
        assert any("corrupt cache entry" in r.message for r in caplog.records)

    def test_gc_quarantines_corrupt_entries(self, store):
        store.put("good", {"v": 1})
        store.put("bad", {"v": 2}, namespace="results")
        _corrupt_one(store, "results", "bad")
        report = store.gc()
        assert report.quarantined == 1 and report.kept == 1
        assert store.get("good") == {"v": 1}
        # Quarantined, not resurrected: the slot reads as absent now.
        assert store.get("bad", namespace="results") is None
        assert store.stat()["corrupt"] == 0
        # The body survives as evidence.
        if isinstance(store, DirectoryCacheStore):
            quarantined = list(
                (store.root / store.QUARANTINE_DIR).iterdir()
            )
            assert len(quarantined) == 1
            assert quarantined[0].read_text() == "{not json"
        else:
            with sqlite3.connect(store.path) as conn:
                rows = conn.execute(
                    "SELECT namespace, key, entry FROM quarantine"
                ).fetchall()
            assert rows == [("results", "bad", "{not json")]


# ----------------------------------------------------------------------
# Cross-process writer safety.  Several processes hammer the same key via
# their own store handles; afterwards the entry must decode to one of the
# writers' payloads — no torn or interleaved bodies.

_PAD = "x" * 4096


def _hammer(uri: str, worker_id: int, rounds: int) -> None:
    handle = open_store(uri)
    for i in range(rounds):
        handle.put(
            "contended",
            {"worker": worker_id, "round": i, "pad": _PAD},
            namespace="results",
        )


@pytest.mark.parametrize("scheme", ["dir", "sqlite"])
def test_concurrent_same_key_writers_never_corrupt(scheme, tmp_path):
    location = tmp_path / ("tree" if scheme == "dir" else "cache.db")
    uri = f"{scheme}:{location}"
    open_store(uri)  # create up front so every worker sees a valid store
    ctx = multiprocessing.get_context("fork")
    workers = [
        ctx.Process(target=_hammer, args=(uri, wid, 25)) for wid in range(4)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=60)
        assert w.exitcode == 0

    store = open_store(uri)
    entry = store.get("contended", namespace="results")
    assert entry is not None, "entry unreadable after concurrent writes"
    assert entry["pad"] == _PAD
    assert entry["worker"] in range(4) and entry["round"] == 24
    assert store.counters()["corrupt"] == 0
    assert store.stat()["corrupt"] == 0


def test_result_cache_counts_and_quarantines_corrupt_entries(tmp_path, caplog):
    """The ResultCache bugfix: corrupt JSON is no longer silently swallowed —
    it shows up in ``corrupt_reads``/``stats()``, logs the offending path,
    and ``gc`` moves it into quarantine."""
    from repro.experiments import ParallelExperimentRunner, ResultCache
    from repro.experiments.cache import cache_key
    from repro.experiments.runner import Scenario
    from repro.pipeline import PipelineConfig

    cache = ResultCache(tmp_path)
    scenario = Scenario("gpt4", "omp2cuda", "layout")
    fp = PipelineConfig().fingerprint()
    ParallelExperimentRunner(cache=cache).run(
        models=["gpt4"], directions=["omp2cuda"], apps=["layout"]
    )
    digest = cache_key(scenario, "paper", 2024, fp)
    path = tmp_path / f"{digest}.json"
    path.write_text("{not json", encoding="utf-8")

    with caplog.at_level(logging.WARNING, logger="repro.experiments.store"):
        assert cache.get(scenario, "paper", 2024, fp) is None
    assert cache.corrupt_reads == 1
    assert cache.stats()["corrupt"] == 1
    assert any(str(path) in r.getMessage() for r in caplog.records)

    report = cache.store.gc()
    assert report.quarantined == 1
    assert not path.exists()
