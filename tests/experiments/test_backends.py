"""Thread vs process execution backends: equality, sessions, cache keys.

The process backend must be a pure transport change: same scenarios, same
results, same on-disk artifacts.  These tests pin

* result-sequence equality between the backends for a fixed seed (both
  profiles),
* byte-identical session JSONL for ``jobs=1`` thread vs process runs,
* cache-key stability — entries written by one backend are hits for the
  other, and the digest format itself is frozen against drift.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ParallelExperimentRunner,
    ResultCache,
    RunSession,
    cache_key,
    resolve_jobs,
)
from repro.experiments.runner import Scenario
from repro.llm.profiles import OMP2CUDA
from repro.pipeline import PipelineConfig

#: Small but representative slice: 2 models x 2 apps x 1 direction.
SLICE = dict(
    models=["gpt4", "codestral"],
    directions=[OMP2CUDA],
    apps=["layout", "bsearch"],
)


def _payloads(results):
    """Full serialized content — stricter than status/metrics signatures."""
    return [r.to_dict() for r in results]


class TestBackendEquality:
    def test_process_matches_thread_backend(self):
        thread = ParallelExperimentRunner(jobs=2, backend="thread").run(**SLICE)
        process = ParallelExperimentRunner(jobs=2, backend="process").run(**SLICE)
        assert _payloads(process) == _payloads(thread)

    def test_process_matches_thread_backend_stochastic(self):
        kw = dict(profile="stochastic", seed=11)
        thread = ParallelExperimentRunner(jobs=2, backend="thread", **kw).run(**SLICE)
        process = ParallelExperimentRunner(jobs=2, backend="process", **kw).run(**SLICE)
        assert _payloads(process) == _payloads(thread)

    def test_process_counts_pipeline_runs(self):
        runner = ParallelExperimentRunner(jobs=2, backend="process")
        results = runner.run(**SLICE)
        assert runner.pipeline_runs == len(results) == 4

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ParallelExperimentRunner(backend="greenlet")


class TestSessionByteIdentity:
    def test_jobs1_sessions_are_byte_identical(self, tmp_path):
        kw = dict(models=["gpt4"], directions=[OMP2CUDA], apps=["layout", "entropy"])
        a = tmp_path / "thread.jsonl"
        b = tmp_path / "process.jsonl"
        ParallelExperimentRunner(
            jobs=1, backend="thread", session=RunSession(a)
        ).run(**kw)
        ParallelExperimentRunner(
            jobs=1, backend="process", session=RunSession(b)
        ).run(**kw)
        assert a.read_bytes() == b.read_bytes()

    def test_thread_session_resumes_under_process_backend(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        first = ParallelExperimentRunner(
            jobs=1, backend="thread", session=RunSession(path)
        )
        first.run(models=["gpt4"], directions=[OMP2CUDA], apps=["layout"])
        resumed = ParallelExperimentRunner(
            jobs=1, backend="process", session=RunSession(path, resume=True)
        )
        results = resumed.run(
            models=["gpt4"], directions=[OMP2CUDA], apps=["layout", "entropy"]
        )
        # layout replayed from the session: only entropy actually executed.
        assert resumed.pipeline_runs == 1
        assert [r.scenario.app_name for r in results] == ["layout", "entropy"]


class TestCacheCompatibility:
    def test_thread_populated_cache_replays_under_process(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kw = dict(models=["gpt4"], directions=[OMP2CUDA], apps=["layout"])
        warm = ParallelExperimentRunner(jobs=1, backend="thread", cache=cache)
        warm.run(**kw)
        assert cache.stores == 1

        replay = ParallelExperimentRunner(jobs=2, backend="process", cache=cache)
        results = replay.run(**kw)
        assert replay.pipeline_runs == 0  # pure replay, no worker processes
        assert cache.hits == 1
        assert _payloads(results) == _payloads(warm.run(**kw))

    def test_cache_key_format_is_frozen(self):
        # Backends share one identity function; this digest must not move
        # without a deliberate CACHE_FORMAT_VERSION bump (entries on disk
        # would silently stop matching).
        digest = cache_key(
            Scenario("gpt4", "omp2cuda", "layout"),
            "paper",
            2024,
            PipelineConfig().fingerprint(),
        )
        assert digest == (
            "65695de65812441ca0507806c5caabea01888a3c3e45bd3e6017955c813b9dad"
        )


class TestJobsResolution:
    def test_auto_spellings(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_jobs("auto") == cores
        assert resolve_jobs(0) == cores
        assert resolve_jobs(3) == 3

    def test_rejects_bad_spellings(self):
        for bad in (-1, "fast", 1.5, True, False):
            with pytest.raises(ValueError):
                resolve_jobs(bad)
