"""Parallel runner, run sessions, and resume semantics.

The load-bearing properties:

* the parallel runner is *observationally identical* to the serial one —
  same ordering, statuses and metrics for ``jobs=1``, ``jobs=4`` and a
  resumed session;
* concurrent workers share baselines: each (app, dialect) is compiled
  exactly once no matter how many scenarios race for it;
* resuming a session re-executes only unrecorded scenarios (asserted via
  baseline compile counts).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ExperimentRunner,
    ParallelExperimentRunner,
    RunSession,
    SessionError,
)
from repro.experiments.runner import Scenario
from repro.llm.profiles import CUDA2OMP, OMP2CUDA

#: 2 models x 2 apps x 2 directions = 8 scenarios, shared by the suite.
SLICE = dict(models=["gpt4", "wizardcoder"], apps=["matrix-rotate", "pathfinder"])


def _signature(results):
    """Everything the tables/statistics consume, per scenario, in order."""
    return [(r.scenario, r.result.status, r.metrics) for r in results]


@pytest.fixture(scope="module")
def serial_results():
    return ExperimentRunner().run(**SLICE)


class TestDeterminism:
    def test_jobs1_matches_serial(self, serial_results):
        got = ParallelExperimentRunner(jobs=1).run(**SLICE)
        assert _signature(got) == _signature(serial_results)

    def test_jobs4_matches_serial(self, serial_results):
        got = ParallelExperimentRunner(jobs=4).run(**SLICE)
        assert _signature(got) == _signature(serial_results)

    def test_resumed_session_matches_serial(self, serial_results, tmp_path):
        path = tmp_path / "grid.jsonl"
        # First leg records half the grid (one model), then "dies".
        ParallelExperimentRunner(jobs=2, session=RunSession(path)).run(
            models=["gpt4"], apps=SLICE["apps"]
        )
        # Second leg resumes and completes the full slice.
        resumed = ParallelExperimentRunner(
            jobs=2, session=RunSession(path, resume=True)
        ).run(**SLICE)
        assert _signature(resumed) == _signature(serial_results)

    def test_stochastic_profile_deterministic_across_jobs(self):
        kw = dict(models=["codestral", "deepseek"], directions=[OMP2CUDA],
                  apps=["layout", "entropy"])
        a = ParallelExperimentRunner(profile="stochastic", seed=7, jobs=1).run(**kw)
        b = ParallelExperimentRunner(profile="stochastic", seed=7, jobs=4).run(**kw)
        assert _signature(a) == _signature(b)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelExperimentRunner(jobs=-1)
        with pytest.raises(ValueError):
            ParallelExperimentRunner(jobs="many")

    def test_auto_jobs_resolve_to_cpu_count(self):
        import os

        cores = os.cpu_count() or 1
        assert ParallelExperimentRunner(jobs="auto").jobs == cores
        assert ParallelExperimentRunner(jobs=0).jobs == cores

    def test_worker_failure_cancels_queued_scenarios(self):
        executed = []

        class FailingRunner(ParallelExperimentRunner):
            def run_scenario(self, scenario, app=None):
                executed.append(scenario.app_name)
                if scenario.app_name == "layout":
                    raise RuntimeError("boom")
                return super().run_scenario(scenario, app)

        runner = FailingRunner(jobs=1)
        with pytest.raises(RuntimeError):
            runner.run(models=["gpt4"], directions=[OMP2CUDA],
                       apps=["layout", "entropy", "bsearch", "jacobi"])
        # The single worker hit the failure first; the queued scenarios were
        # cancelled instead of burning the rest of the grid's wall-clock.
        assert executed == ["layout"]


class TestBaselineSharing:
    def test_each_baseline_compiled_once_under_concurrency(self):
        # 4 models race for the same app in one direction: 8 prepare() calls
        # (source + reference per scenario) but only 2 distinct baselines.
        runner = ParallelExperimentRunner(jobs=8)
        runner.run(apps=["jacobi"], directions=[OMP2CUDA])
        assert runner.baselines.compile_count == 2
        assert runner.baselines.hit_count == 6

    def test_full_slice_compiles_per_app_dialect(self):
        runner = ParallelExperimentRunner(jobs=4)
        runner.run(**SLICE)
        # 2 apps x 2 dialects, regardless of 8 scenarios touching them.
        assert runner.baselines.compile_count == 4


class TestRunSession:
    def test_records_are_valid_jsonl(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ParallelExperimentRunner(jobs=2, session=RunSession(path)).run(
            models=["gpt4"], directions=[OMP2CUDA], apps=["layout", "entropy"]
        )
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines[0]["type"] == "session"
        assert lines[0]["profile"] == "paper" and lines[0]["seed"] == 2024
        scenario_lines = [ln for ln in lines if ln["type"] == "scenario"]
        assert len(scenario_lines) == 2
        assert {ln["scenario"]["app_name"] for ln in scenario_lines} == {
            "layout", "entropy"
        }

    def test_resume_skips_recorded_scenarios(self, tmp_path):
        path = tmp_path / "s.jsonl"
        kw = dict(models=["gpt4"], directions=[OMP2CUDA])
        first = ParallelExperimentRunner(jobs=2, session=RunSession(path))
        first.run(apps=["jacobi"], **kw)
        assert first.baselines.compile_count == 2  # jacobi omp + cuda

        second = ParallelExperimentRunner(
            jobs=2, session=RunSession(path, resume=True)
        )
        results = second.run(apps=["jacobi", "layout"], **kw)
        # jacobi came from the session: only layout's baselines were built,
        # i.e. the finished scenario was not re-executed.
        assert second.baselines.compile_count == 2  # layout omp + cuda
        assert [r.scenario.app_name for r in results] == ["jacobi", "layout"]
        assert all(r.result.status for r in results)

    def test_resume_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        runner = ParallelExperimentRunner(jobs=1, session=RunSession(path))
        runner.run(models=["gpt4"], directions=[OMP2CUDA],
                   apps=["layout", "entropy"])
        # Simulate a hard kill mid-append: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])

        session = RunSession(path, resume=True)
        assert session.dropped_lines == 1
        assert len(session) == 1  # the intact record survived
        resumed = ParallelExperimentRunner(jobs=2, session=session)
        results = resumed.run(models=["gpt4"], directions=[OMP2CUDA],
                              apps=["layout", "entropy"])
        assert len(results) == 2

    def test_resume_refuses_mismatched_profile_or_seed(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ParallelExperimentRunner(
            jobs=1, profile="stochastic", seed=3, session=RunSession(path)
        ).run(models=["gpt4"], directions=[OMP2CUDA], apps=["layout"])

        clash = ParallelExperimentRunner(
            jobs=1, profile="stochastic", seed=4,
            session=RunSession(path, resume=True),
        )
        with pytest.raises(SessionError):
            clash.run(models=["gpt4"], directions=[OMP2CUDA], apps=["layout"])

    def test_resume_into_missing_directory(self, tmp_path):
        # First --resume invocation before any run exists must not crash.
        path = tmp_path / "nested" / "dir" / "s.jsonl"
        runner = ParallelExperimentRunner(
            jobs=1, session=RunSession(path, resume=True)
        )
        results = runner.run(models=["gpt4"], directions=[OMP2CUDA],
                             apps=["layout"])
        assert len(results) == 1 and path.exists()

    def test_load_drops_structurally_broken_records(self, tmp_path):
        path = tmp_path / "s.jsonl"
        runner = ParallelExperimentRunner(jobs=1, session=RunSession(path))
        runner.run(models=["gpt4"], directions=[OMP2CUDA], apps=["layout"])
        with path.open("a") as handle:
            handle.write("123\n")  # valid JSON, not a record
            handle.write('{"type": "scenario", "scenario": {}}\n')  # missing keys
        session = RunSession(path, resume=True)
        assert session.dropped_lines == 2
        assert len(session) == 1  # the real record survived

    def test_resume_refuses_records_without_header(self, tmp_path):
        path = tmp_path / "s.jsonl"
        runner = ParallelExperimentRunner(jobs=1, session=RunSession(path))
        runner.run(models=["gpt4"], directions=[OMP2CUDA], apps=["layout"])
        # Corrupt the header line: the remaining records have no provenance.
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "session"
        path.write_text("\n".join(["{broken"] + lines[1:]) + "\n")
        with pytest.raises(SessionError):
            RunSession(path, resume=True)

    def test_fresh_session_refuses_to_clobber_existing_artifact(self, tmp_path):
        # Forgetting --resume must not wipe checkpointed results.
        path = tmp_path / "s.jsonl"
        path.write_text("precious checkpoints\n")
        with pytest.raises(SessionError):
            RunSession(path)  # resume=False
        assert path.read_text() == "precious checkpoints\n"

    def test_fresh_session_accepts_empty_existing_file(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("")
        session = RunSession(path)  # resume=False
        assert len(session) == 0

    def test_contains_and_get(self, tmp_path):
        path = tmp_path / "s.jsonl"
        runner = ParallelExperimentRunner(jobs=1, session=RunSession(path))
        runner.run(models=["gpt4"], directions=[OMP2CUDA], apps=["layout"])
        session = RunSession(path, resume=True)
        hit = Scenario("gpt4", OMP2CUDA, "layout")
        miss = Scenario("gpt4", CUDA2OMP, "layout")
        assert hit in session and miss not in session
        assert session.get(hit).result.status == "success"
        assert session.get(miss) is None
