"""Tests for the experiment runner, tables and headline statistics."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentRunner,
    direction_stats,
    headline_summary,
    render_table4,
    render_table5,
    render_translation_tables,
)
from repro.llm.profiles import CUDA2OMP, OMP2CUDA


class TestScenarioEnumeration:
    def test_full_grid_is_80(self):
        runner = ExperimentRunner()
        assert len(runner.scenarios()) == 80

    def test_filtering(self):
        runner = ExperimentRunner()
        subset = runner.scenarios(models=["gpt4"], directions=[OMP2CUDA],
                                  apps=["jacobi", "layout"])
        assert len(subset) == 2
        assert all(s.model_key == "gpt4" for s in subset)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(profile="vibes")


@pytest.fixture(scope="module")
def mini_results():
    """A 2-model x 2-app x 2-direction slice of the paper grid."""
    runner = ExperimentRunner()
    return runner.run(models=["gpt4", "wizardcoder"],
                      apps=["matrix-rotate", "pathfinder"])


class TestRunner:
    def test_mini_grid_results(self, mini_results):
        assert len(mini_results) == 8
        # matrix-rotate gpt4 omp2cuda has one planned self-correction
        by_key = {
            (r.scenario.model_key, r.scenario.direction, r.scenario.app_name): r
            for r in mini_results
        }
        r = by_key[("gpt4", OMP2CUDA, "matrix-rotate")].result
        assert r.ok and r.self_corrections == 1
        r = by_key[("wizardcoder", CUDA2OMP, "matrix-rotate")].result
        assert r.ok and r.self_corrections == 2

    def test_stochastic_profile_runs(self):
        runner = ExperimentRunner(profile="stochastic", seed=5)
        results = runner.run(models=["codestral"], directions=[OMP2CUDA],
                             apps=["layout"])
        assert len(results) == 1
        assert results[0].result.status in (
            "success", "compile-failed", "execute-failed", "output-mismatch",
            "no-code",
        )

    def test_seed_determinism(self):
        kw = dict(models=["deepseek"], directions=[CUDA2OMP], apps=["entropy"])
        a = ExperimentRunner(profile="stochastic", seed=3).run(**kw)[0]
        b = ExperimentRunner(profile="stochastic", seed=3).run(**kw)[0]
        assert a.result.status == b.result.status
        assert a.result.self_corrections == b.result.self_corrections


class TestSuiteThreading:
    def test_runner_enumerates_suite_apps(self):
        runner = ExperimentRunner(suite="synth:stencil:seeds=2")
        scenarios = runner.scenarios(models=["gpt4"], directions=[OMP2CUDA])
        assert [s.app_name for s in scenarios] == [
            "synth-stencil-d1-s0", "synth-stencil-d1-s1",
        ]

    def test_full_synth_grid_size(self):
        runner = ExperimentRunner(suite="synth:stencil,matmul:seeds=3")
        assert len(runner.scenarios()) == 6 * 4 * 2

    def test_run_executes_generated_scenarios(self):
        runner = ExperimentRunner(suite="synth:reduction:seeds=1")
        results = runner.run(models=["gpt4"], directions=[OMP2CUDA])
        assert len(results) == 1
        assert results[0].scenario.app_name == "synth-reduction-d1-s0"
        assert results[0].result.status in (
            "success", "compile-failed", "execute-failed", "output-mismatch",
            "no-code",
        )

    def test_generated_apps_draw_distinct_behaviour(self):
        # Unplanned scenarios salt the LLM stream per app, so a generated
        # grid is not one behaviour class repeated N times.
        runner = ExperimentRunner(suite="synth:all:seeds=2")
        results = runner.run(models=["deepseek"], directions=[OMP2CUDA])
        outcomes = {
            (r.result.status, r.result.self_corrections) for r in results
        }
        assert len(outcomes) > 1

    def test_merged_suite_runs_both_kinds(self):
        runner = ExperimentRunner(suite="table4+synth:scan:seeds=1")
        scenarios = runner.scenarios(models=["gpt4"], directions=[OMP2CUDA])
        names = [s.app_name for s in scenarios]
        assert "jacobi" in names and "synth-scan-d1-s0" in names

    def test_out_of_suite_apps_are_rejected(self):
        from repro.errors import UnknownApplicationError
        from repro.experiments import Scenario

        runner = ExperimentRunner(suite="synth:scan:seeds=1")
        with pytest.raises(UnknownApplicationError):
            runner.scenarios(apps=["jacobi"])
        with pytest.raises(UnknownApplicationError):
            runner.run_scenario(Scenario("gpt4", OMP2CUDA, "jacobi"))

    def test_app_filter_is_canonicalized_case_insensitively(self):
        runner = ExperimentRunner()
        scenarios = runner.scenarios(models=["gpt4"], directions=[OMP2CUDA],
                                     apps=["JACOBI"])
        assert [s.app_name for s in scenarios] == ["jacobi"]


class TestTables:
    def test_table4_contains_all_apps_and_calibrated_values(self):
        text = render_table4()
        assert "Table IV" in text
        for name in ("matrix-rotate", "jacobi", "randomAccess"):
            assert name in text
        assert "0.8641" in text  # jacobi CUDA calibrated exactly

    def test_table5_matches_registry(self):
        text = render_table5()
        assert "GPT-4" in text and "1.76 T" in text
        assert "163,840" in text
        assert "F16" in text

    def test_translation_tables_layout(self, mini_results):
        tables = render_translation_tables(mini_results)
        assert "Table VI" in tables[OMP2CUDA]
        assert "Table VII" in tables[CUDA2OMP]
        assert "Panel A" in tables[OMP2CUDA]
        assert "Self-corr" in tables[OMP2CUDA]
        # unrun cells render as N/A
        assert "N/A" in tables[OMP2CUDA]


class TestStats:
    def test_direction_stats_buckets(self, mini_results):
        stats = direction_stats(mini_results)
        assert stats[OMP2CUDA].total == 4
        assert stats[CUDA2OMP].total == 4

    def test_headline_summary_mentions_paper_numbers(self, mini_results):
        text = headline_summary(mini_results)
        assert "paper 80.0%" in text
        assert "paper 85.0%" in text
        assert "OpenMP -> CUDA" in text
