"""Tests for the experiment runner, tables and headline statistics."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentRunner,
    direction_stats,
    headline_summary,
    render_table4,
    render_table5,
    render_translation_tables,
)
from repro.llm.profiles import CUDA2OMP, OMP2CUDA


class TestScenarioEnumeration:
    def test_full_grid_is_80(self):
        runner = ExperimentRunner()
        assert len(runner.scenarios()) == 80

    def test_filtering(self):
        runner = ExperimentRunner()
        subset = runner.scenarios(models=["gpt4"], directions=[OMP2CUDA],
                                  apps=["jacobi", "layout"])
        assert len(subset) == 2
        assert all(s.model_key == "gpt4" for s in subset)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(profile="vibes")


@pytest.fixture(scope="module")
def mini_results():
    """A 2-model x 2-app x 2-direction slice of the paper grid."""
    runner = ExperimentRunner()
    return runner.run(models=["gpt4", "wizardcoder"],
                      apps=["matrix-rotate", "pathfinder"])


class TestRunner:
    def test_mini_grid_results(self, mini_results):
        assert len(mini_results) == 8
        # matrix-rotate gpt4 omp2cuda has one planned self-correction
        by_key = {
            (r.scenario.model_key, r.scenario.direction, r.scenario.app_name): r
            for r in mini_results
        }
        r = by_key[("gpt4", OMP2CUDA, "matrix-rotate")].result
        assert r.ok and r.self_corrections == 1
        r = by_key[("wizardcoder", CUDA2OMP, "matrix-rotate")].result
        assert r.ok and r.self_corrections == 2

    def test_stochastic_profile_runs(self):
        runner = ExperimentRunner(profile="stochastic", seed=5)
        results = runner.run(models=["codestral"], directions=[OMP2CUDA],
                             apps=["layout"])
        assert len(results) == 1
        assert results[0].result.status in (
            "success", "compile-failed", "execute-failed", "output-mismatch",
            "no-code",
        )

    def test_seed_determinism(self):
        kw = dict(models=["deepseek"], directions=[CUDA2OMP], apps=["entropy"])
        a = ExperimentRunner(profile="stochastic", seed=3).run(**kw)[0]
        b = ExperimentRunner(profile="stochastic", seed=3).run(**kw)[0]
        assert a.result.status == b.result.status
        assert a.result.self_corrections == b.result.self_corrections


class TestTables:
    def test_table4_contains_all_apps_and_calibrated_values(self):
        text = render_table4()
        assert "Table IV" in text
        for name in ("matrix-rotate", "jacobi", "randomAccess"):
            assert name in text
        assert "0.8641" in text  # jacobi CUDA calibrated exactly

    def test_table5_matches_registry(self):
        text = render_table5()
        assert "GPT-4" in text and "1.76 T" in text
        assert "163,840" in text
        assert "F16" in text

    def test_translation_tables_layout(self, mini_results):
        tables = render_translation_tables(mini_results)
        assert "Table VI" in tables[OMP2CUDA]
        assert "Table VII" in tables[CUDA2OMP]
        assert "Panel A" in tables[OMP2CUDA]
        assert "Self-corr" in tables[OMP2CUDA]
        # unrun cells render as N/A
        assert "N/A" in tables[OMP2CUDA]


class TestStats:
    def test_direction_stats_buckets(self, mini_results):
        stats = direction_stats(mini_results)
        assert stats[OMP2CUDA].total == 4
        assert stats[CUDA2OMP].total == 4

    def test_headline_summary_mentions_paper_numbers(self, mini_results):
        text = headline_summary(mini_results)
        assert "paper 80.0%" in text
        assert "paper 85.0%" in text
        assert "OpenMP -> CUDA" in text
