"""Content-addressed result cache: hit/miss, fingerprint invalidation,
corruption tolerance, and integration with the parallel runner."""

from __future__ import annotations

import json

from repro.experiments import ParallelExperimentRunner, ResultCache, cache_key
from repro.experiments.runner import Scenario
from repro.llm.profiles import OMP2CUDA
from repro.pipeline import PipelineConfig

SCENARIO = Scenario("gpt4", OMP2CUDA, "layout")
FP = PipelineConfig().fingerprint()


def _run_one(cache, config=None, **kw):
    runner = ParallelExperimentRunner(config=config, cache=cache, **kw)
    results = runner.run(models=["gpt4"], directions=[OMP2CUDA],
                         apps=["layout"])
    return runner, results


class TestFingerprint:
    def test_equal_configs_share_a_fingerprint(self):
        # However the config was built: defaults and explicit-default values
        # are the same cache identity.
        assert PipelineConfig().fingerprint() == PipelineConfig(
            max_corrections=40
        ).fingerprint()

    def test_every_ablation_switch_changes_the_fingerprint(self):
        base = PipelineConfig().fingerprint()
        assert PipelineConfig(max_corrections=10).fingerprint() != base
        assert PipelineConfig(include_knowledge=False).fingerprint() != base
        assert PipelineConfig(self_correction=False).fingerprint() != base
        assert PipelineConfig(verify_output=False).fingerprint() != base


class TestCacheKeys:
    def test_synth_scenarios_get_distinct_cache_keys(self):
        # A generated app can never collide with a Table IV entry (or with a
        # differently-parameterized generation of the same family).
        table4 = cache_key(SCENARIO, "paper", 2024, FP)
        synth = cache_key(
            Scenario("gpt4", OMP2CUDA, "synth-stencil-d1-s0"),
            "paper", 2024, FP,
        )
        other_seed = cache_key(
            Scenario("gpt4", OMP2CUDA, "synth-stencil-d1-s1"),
            "paper", 2024, FP,
        )
        assert len({table4, synth, other_seed}) == 3


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(SCENARIO, "paper", 2024, FP) is None
        assert cache.misses == 1

        _, results = _run_one(cache)
        assert cache.stores == 1 and len(cache) == 1

        replayed = cache.get(SCENARIO, "paper", 2024, FP)
        assert cache.hits == 1
        assert replayed is not None
        assert replayed.scenario == SCENARIO
        assert replayed.result.status == results[0].result.status
        assert replayed.metrics == results[0].metrics

    def test_key_covers_all_identity_dimensions(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run_one(cache)
        other_fp = PipelineConfig(include_knowledge=False).fingerprint()
        # Same scenario under any other identity dimension is a miss.
        assert cache.get(SCENARIO, "stochastic", 2024, FP) is None
        assert cache.get(SCENARIO, "paper", 7, FP) is None
        assert cache.get(SCENARIO, "paper", 2024, other_fp) is None
        assert cache.get(
            Scenario("codestral", OMP2CUDA, "layout"), "paper", 2024, FP
        ) is None
        # 4 probe misses here + the runner's own initial miss.
        assert cache.hits == 0 and cache.misses == 5

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run_one(cache)
        digest = cache_key(SCENARIO, "paper", 2024, FP)
        path = tmp_path / f"{digest}.json"

        path.write_text("{not json")
        assert cache.get(SCENARIO, "paper", 2024, FP) is None

        # Valid JSON whose stored key does not match its digest (tampering /
        # format drift) is rejected too.
        from repro.experiments.cache import CACHE_FORMAT_VERSION

        entry = {"version": CACHE_FORMAT_VERSION, "key": "0" * 64, "result": {}}
        path.write_text(json.dumps(entry))
        assert cache.get(SCENARIO, "paper", 2024, FP) is None

    def test_unknown_format_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run_one(cache)
        digest = cache_key(SCENARIO, "paper", 2024, FP)
        path = tmp_path / f"{digest}.json"
        entry = json.loads(path.read_text())
        entry["version"] = 999
        path.write_text(json.dumps(entry))
        assert cache.get(SCENARIO, "paper", 2024, FP) is None


class TestRunnerIntegration:
    def test_second_run_replays_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first, a = _run_one(cache)
        assert first.pipeline_runs == 1

        second, b = _run_one(cache)
        # Nothing executed: no pipeline run, no baseline compile.
        assert second.pipeline_runs == 0
        assert second.baselines.compile_count == 0
        assert [(r.scenario, r.result.status, r.metrics) for r in a] == [
            (r.scenario, r.result.status, r.metrics) for r in b
        ]

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run_one(cache)
        ablated, _ = _run_one(
            cache, config=PipelineConfig(include_knowledge=False)
        )
        assert ablated.pipeline_runs == 1  # cache did not leak across configs
        assert len(cache) == 2

    def test_profile_and_seed_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run_one(cache)
        stochastic, _ = _run_one(cache, profile="stochastic", seed=7)
        assert stochastic.pipeline_runs == 1
        reseeded, _ = _run_one(cache, profile="stochastic", seed=8)
        assert reseeded.pipeline_runs == 1
        assert len(cache) == 3

    def test_cache_hits_are_recorded_into_the_session(self, tmp_path):
        from repro.experiments import RunSession

        cache = ResultCache(tmp_path / "cache")
        _run_one(cache)
        path = tmp_path / "s.jsonl"
        _run_one(cache, session=RunSession(path))
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert sum(1 for ln in lines if ln["type"] == "scenario") == 1

    def test_session_header_records_config_fingerprint(self, tmp_path):
        from repro.experiments import RunSession

        path = tmp_path / "s.jsonl"
        _run_one(None, session=RunSession(path))
        header = json.loads(path.read_text().splitlines()[0])
        assert header["config_fingerprint"] == FP

    def test_resume_refuses_mismatched_config(self, tmp_path):
        import pytest

        from repro.experiments import RunSession, SessionError

        path = tmp_path / "s.jsonl"
        _run_one(None, session=RunSession(path))
        with pytest.raises(SessionError):
            _run_one(
                None,
                config=PipelineConfig(include_knowledge=False),
                session=RunSession(path, resume=True),
            )
