"""Tests for the prompt dictionary, knowledge docs and prompt builder."""

from __future__ import annotations

import pytest

from repro.errors import ContextWindowExceeded
from repro.llm.base import GenerationResult, LLMClient
from repro.minilang.source import Dialect
from repro.prompts import (
    PromptBuilder,
    correction_prompt,
    knowledge_document,
    system_prompt,
    translation_prompt,
)
from repro.prompts.dictionary import CORRECTION_PROMPTS, SYSTEM_PROMPTS
from repro.utils.tokens import count_tokens


class TestDictionary:
    def test_table1_system_prompts_verbatim_fragments(self):
        c2o = system_prompt(Dialect.CUDA, Dialect.OMP)
        assert "professional coding AI assistant" in c2o
        assert "CUDA code to C++ code using OpenMP directives" in c2o
        assert "Surround your new generated code" in c2o
        o2c = system_prompt(Dialect.OMP, Dialect.CUDA)
        assert "OpenMP directives to the CUDA framework" in o2c
        assert "general" in SYSTEM_PROMPTS

    def test_table2_translation_prompts(self):
        o2c = translation_prompt(Dialect.OMP, Dialect.CUDA)
        assert o2c.startswith("Generate new code to refactor")
        assert "Avoid explanation of the code." in o2c
        c2o = translation_prompt(Dialect.CUDA, Dialect.OMP)
        assert "target teams" in c2o
        assert "static scheduling" in c2o.lower()

    def test_table3_correction_templates(self):
        compile_p = correction_prompt("compile", "CODE", "nvcc x", "ERR")
        assert compile_p.startswith("CODE")
        assert "compiled with nvcc x" in compile_p
        assert "compile error: ERR" in compile_p
        assert "Re-factor the above code" in compile_p
        execute_p = correction_prompt("execute", "CODE", "nvcc x", "ERR")
        assert "executed after a successful compile" in execute_p
        assert set(CORRECTION_PROMPTS) == {"compile", "execute"}

    def test_unknown_direction_or_kind(self):
        with pytest.raises(KeyError):
            translation_prompt(Dialect.C, Dialect.CUDA)
        with pytest.raises(KeyError):
            correction_prompt("link", "c", "cmd", "e")


class TestKnowledge:
    def test_token_budgets_match_paper_within_10pct(self):
        # §III-B: OpenMP reference card 7,290 tokens; CUDA ch.5 4,053 tokens.
        omp = count_tokens(knowledge_document(Dialect.OMP))
        cuda = count_tokens(knowledge_document(Dialect.CUDA))
        assert abs(omp - 7290) / 7290 < 0.10
        assert abs(cuda - 4053) / 4053 < 0.10

    def test_omp_card_content(self):
        card = knowledge_document(Dialect.OMP)
        assert "target teams distribute parallel for" in card
        assert "map(tofrom" in card or "map(tofrom:" in card
        assert "reduction" in card

    def test_cuda_guide_content(self):
        guide = knowledge_document(Dialect.CUDA)
        assert "__global__" in guide
        assert "cudaMemcpy" in guide
        assert "atomicAdd" in guide

    def test_no_document_for_plain_c(self):
        with pytest.raises(ValueError):
            knowledge_document(Dialect.C)


class FakeLLM(LLMClient):
    """Echo client for builder tests."""

    def __init__(self, context_length=32768):
        self.name = "fake"
        self.context_length = context_length
        self.prompts = []

    def chat(self, messages):
        self.prompts.append(messages[-1].content)
        return GenerationResult(text="SUMMARY-OR-DESCRIPTION", model=self.name)


class TestPromptBuilder:
    def test_full_bundle_structure(self):
        llm = FakeLLM()
        builder = PromptBuilder(Dialect.OMP, Dialect.CUDA)
        bundle = builder.build(llm, "int main() { return 0; }")
        assert bundle.system == system_prompt(Dialect.OMP, Dialect.CUDA)
        assert bundle.knowledge
        assert bundle.knowledge_summary == "SUMMARY-OR-DESCRIPTION"
        assert bundle.code_description == "SUMMARY-OR-DESCRIPTION"
        assert "Think carefully before developing" in bundle.translation_request
        assert "int main() { return 0; }" in bundle.full_user_prompt
        assert bundle.prompt_tokens > 0
        # two self-prompting calls happened (summary + description)
        assert len(llm.prompts) == 2

    def test_knowledge_ablation(self):
        llm = FakeLLM()
        builder = PromptBuilder(Dialect.OMP, Dialect.CUDA, include_knowledge=False)
        bundle = builder.build(llm, "int main() { return 0; }")
        assert bundle.knowledge == ""
        assert bundle.knowledge_summary == ""
        assert len(llm.prompts) == 1  # only the code description

    def test_context_window_enforced(self):
        llm = FakeLLM(context_length=1000)
        builder = PromptBuilder(Dialect.OMP, Dialect.CUDA)
        with pytest.raises(ContextWindowExceeded):
            builder.build(llm, "int main() { return 0; }")

    def test_correction_messages(self):
        llm = FakeLLM()
        builder = PromptBuilder(Dialect.CUDA, Dialect.OMP)
        msgs = builder.correction_messages(llm, "compile", "CODE", "clang++", "boom")
        assert msgs[0].role == "system"
        assert "boom" in msgs[1].content
