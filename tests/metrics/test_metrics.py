"""Tests for Sim-T / Sim-L, runtime ratio and aggregates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import aggregate, runtime_ratio, sim_l, sim_t, within_10pct_or_faster
from repro.metrics.aggregate import ScenarioMetrics

CODE_A = """
int main() {
  int n = 10;
  float* a = (float*)malloc(n * sizeof(float));
  for (int i = 0; i < n; i++) {
    a[i] = i;
  }
  return 0;
}
"""

code_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=300
)


class TestSimT:
    def test_identical_code(self):
        assert sim_t(CODE_A, CODE_A) == 1.0

    def test_empty_both(self):
        assert sim_t("", "") == 1.0

    def test_disjoint_code_low(self):
        assert sim_t("aaa bbb ccc;", "xxx yyy zzz;") < 0.3

    def test_renamed_variables_reduce_similarity(self):
        renamed = CODE_A.replace("a", "buf").replace("n", "count").replace("i", "j")
        s = sim_t(CODE_A, renamed)
        assert 0.3 < s < 1.0

    def test_comments_ignored(self):
        commented = CODE_A.replace("int n = 10;", "int n = 10; // size")
        assert sim_t(CODE_A, commented) == 1.0

    def test_symmetry(self):
        other = CODE_A.replace("float", "double")
        assert sim_t(CODE_A, other) == pytest.approx(sim_t(other, CODE_A))

    @given(code_text, code_text)
    @settings(max_examples=40, deadline=None)
    def test_bounds(self, a, b):
        s = sim_t(a, b)
        assert 0.0 <= s <= 1.0


class TestSimL:
    def test_identical(self):
        assert sim_l(CODE_A, CODE_A) == 1.0

    def test_order_insensitive(self):
        a = "int a = 1;\nint b = 2;\nint c = 3;"
        b = "int c = 3;\nint a = 1;\nint b = 2;"
        assert sim_l(a, b) == 1.0

    def test_whitespace_normalized(self):
        a = "int   a  =  1;"
        b = "int a = 1;"
        assert sim_l(a, b) == 1.0

    def test_duplicate_lines_counted_as_multiset(self):
        a = "x++;\nx++;\nx++;"
        b = "x++;"
        assert sim_l(a, b) == pytest.approx(1 / 3)

    def test_denominator_is_longer_code(self):
        a = "int a = 1;"
        b = "int a = 1;\nint b = 2;\nint c = 3;\nint d = 4;"
        assert sim_l(a, b) == pytest.approx(1 / 4)

    @given(code_text, code_text)
    @settings(max_examples=40, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        s = sim_l(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(sim_l(b, a))


class TestRuntimeRatio:
    def test_ratio_definition(self):
        # reference 2s, generated 1s -> generated faster -> ratio 2
        assert runtime_ratio(2.0, 1.0) == 2.0

    def test_zero_generated_runtime(self):
        assert runtime_ratio(1.0, 0.0) is None

    def test_within_10pct_boundary(self):
        assert within_10pct_or_faster(1.0)
        assert within_10pct_or_faster(1 / 1.1 + 1e-12)
        assert not within_10pct_or_faster(1 / 1.2)
        assert not within_10pct_or_faster(None)

    def test_faster_is_within(self):
        assert within_10pct_or_faster(5.0)


class TestAggregate:
    def make(self, ok, ratio=1.0, sim=0.7, corr=0):
        if not ok:
            return ScenarioMetrics(ok=False)
        return ScenarioMetrics(ok=True, ratio=ratio, sim_t=sim,
                               self_corrections=corr)

    def test_success_rate(self):
        stats = aggregate([self.make(True)] * 8 + [self.make(False)] * 2)
        assert stats.success_rate == pytest.approx(0.8)
        assert stats.total == 10
        assert stats.successes == 8

    def test_rates_computed_over_successes_only(self):
        results = [
            self.make(True, ratio=2.0, sim=0.9, corr=0),
            self.make(True, ratio=0.5, sim=0.3, corr=2),
            self.make(False),
        ]
        stats = aggregate(results)
        assert stats.within_10pct_rate == pytest.approx(0.5)
        assert stats.high_similarity_rate == pytest.approx(0.5)
        assert stats.first_try_rate == pytest.approx(0.5)

    def test_empty(self):
        stats = aggregate([])
        assert stats.total == 0
        assert stats.success_rate == 0.0

    def test_summary_lines(self):
        stats = aggregate([self.make(True)])
        text = "\n".join(stats.summary_lines())
        assert "successful translations: 1" in text


class TestSpeedupDistribution:
    def test_empty_and_unscored_return_none(self):
        from repro.metrics.runtime import speedup_distribution
        assert speedup_distribution([]) is None
        assert speedup_distribution([None, 0.0, -1.0]) is None

    def test_distribution_fields(self):
        from repro.metrics.runtime import speedup_distribution
        dist = speedup_distribution([0.4, 1.0, 2.0, 4.0])
        assert dist["count"] == 4
        assert dist["min"] == 0.4 and dist["max"] == 4.0
        assert dist["p50"] == pytest.approx(1.5)
        assert dist["geomean"] == pytest.approx((0.4 * 1.0 * 2.0 * 4.0) ** 0.25)
        # ratio <= 1/2 counts as "correct but >= 2x slower".
        assert dist["slower"] == 1
        assert dist["slow_factor"] == 2.0

    def test_slow_factor_is_tunable(self):
        from repro.metrics.runtime import speedup_distribution
        dist = speedup_distribution([0.4, 0.2, 1.0], slow_factor=4.0)
        assert dist["slower"] == 1  # only 0.2 <= 1/4

    def test_geomean_skips_nonpositive(self):
        from repro.metrics.runtime import geomean
        assert geomean([]) is None
        assert geomean([0.0, -2.0]) is None
        assert geomean([4.0, 1.0]) == pytest.approx(2.0)

    def test_percentile_interpolates(self):
        from repro.metrics.runtime import percentile
        with pytest.raises(ValueError):
            percentile([], 50.0)
        assert percentile([3.0], 95.0) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
