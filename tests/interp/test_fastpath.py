"""Flat-schedule launch fast path: equivalence with the generic path.

Barrier-free, atomics-free kernels run through a flattened single-pass
schedule (bulk step charge, hoisted env copy, memoized geometry tuples).
These tests pin that the fast path is behaviourally identical to the
generic nested loops — same results, same profile events, same step
accounting, same limit faults — and that gating (barriers, atomics) sends
the right kernels down the right path.
"""

from __future__ import annotations

from repro.interp import Limits, ProgramRunner
from repro.minilang import parse
from repro.minilang.source import Dialect, SourceFile

from tests.interp.helpers import run_source

VECADD = (
    "__global__ void add(float* a, float* b, float* c, int n) {\n"
    "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
    "  if (i < n) { c[i] = a[i] + b[i]; }\n"
    "}\n"
    "int main() {\n"
    "  int n = 64;\n"
    "  float* a; float* b; float* c;\n"
    "  cudaMalloc(&a, n * sizeof(float));\n"
    "  cudaMalloc(&b, n * sizeof(float));\n"
    "  cudaMalloc(&c, n * sizeof(float));\n"
    "  float* h = (float*)malloc(n * sizeof(float));\n"
    "  for (int i = 0; i < n; i++) { h[i] = i; }\n"
    "  cudaMemcpy(a, h, n * sizeof(float), 1);\n"
    "  cudaMemcpy(b, h, n * sizeof(float), 1);\n"
    "  add<<<2, 32>>>(a, b, c, n);\n"
    "  add<<<2, 32>>>(a, c, b, n);\n"
    "  cudaMemcpy(h, b, n * sizeof(float), 2);\n"
    '  printf("%.1f %.1f\\n", h[0], h[63]);\n'
    "  return 0;\n"
    "}\n"
)


def _runner(text: str, limits=None) -> ProgramRunner:
    program, diags = parse(SourceFile("t.cu", text, Dialect.CUDA))
    assert not diags.has_errors, diags.render()
    return ProgramRunner(program, Dialect.CUDA, limits=limits)


class TestFlatScheduleEquivalence:
    def test_fast_path_selected_for_plain_kernel(self):
        runner = _runner(VECADD)
        out = runner.run()
        assert out.ok, out.error
        fc = runner._compiler_for("add")
        assert not fc.barrier_mode and not fc.has_atomics
        # Repeated same-shape launches reuse one memoized schedule.
        assert list(runner._geom_cache) == [(2, 32)]

    def test_results_match_generic_path(self):
        fast = _runner(VECADD)
        fast_out = fast.run()

        generic = _runner(VECADD)
        # Force the generic nested loops by pretending the kernel has
        # atomics; everything observable must come out identical.
        generic._compiler_for("add").has_atomics = True
        generic_out = generic.run()

        assert not generic._geom_cache
        assert fast_out.stdout == generic_out.stdout == "0.0 189.0\n"
        assert fast_out.exit_code == generic_out.exit_code == 0
        assert fast_out.steps_used == generic_out.steps_used
        fast_ev = fast_out.profile.kernel_events
        generic_ev = generic_out.profile.kernel_events
        assert [(e.name, e.total_threads, e.block_size) for e in fast_ev] == [
            (e.name, e.total_threads, e.block_size) for e in generic_ev
        ]
        assert [e.counters.ops for e in fast_ev] == [
            e.counters.ops for e in generic_ev
        ]

    def test_atomics_kernel_takes_generic_path_and_still_works(self):
        src = (
            "__global__ void count(int* c, int n) {\n"
            "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
            "  if (i < n) { atomicAdd(&c[0], 1); }\n"
            "}\n"
            "int main() {\n"
            "  int* c;\n"
            "  cudaMalloc(&c, sizeof(int));\n"
            "  int h[1];\n"
            "  h[0] = 0;\n"
            "  cudaMemcpy(c, h, sizeof(int), 1);\n"
            "  count<<<4, 16>>>(c, 50);\n"
            "  cudaMemcpy(h, c, sizeof(int), 2);\n"
            '  printf("%d\\n", h[0]);\n'
            "  return 0;\n"
            "}\n"
        )
        runner = _runner(src)
        out = runner.run()
        assert out.ok and out.stdout == "50\n"
        assert runner._compiler_for("count").has_atomics
        assert not runner._geom_cache

    def test_barrier_kernel_unaffected(self):
        src = (
            "__global__ void scan(int* d) {\n"
            "  __shared__ int tmp[4];\n"
            "  tmp[threadIdx.x] = d[threadIdx.x];\n"
            "  __syncthreads();\n"
            "  d[threadIdx.x] = tmp[3 - threadIdx.x];\n"
            "}\n"
            "int main() {\n"
            "  int* d;\n"
            "  cudaMalloc(&d, 4 * sizeof(int));\n"
            "  int h[4];\n"
            "  for (int i = 0; i < 4; i++) { h[i] = i + 1; }\n"
            "  cudaMemcpy(d, h, 4 * sizeof(int), 1);\n"
            "  scan<<<1, 4>>>(d);\n"
            "  cudaMemcpy(h, d, 4 * sizeof(int), 2);\n"
            '  printf("%d %d %d %d\\n", h[0], h[1], h[2], h[3]);\n'
            "  return 0;\n"
            "}\n"
        )
        out = run_source(src, Dialect.CUDA)
        assert out.ok, out.error
        assert out.stdout == "4 3 2 1\n"

    def test_step_budget_still_enforced_on_fast_path(self):
        out = run_source(VECADD, Dialect.CUDA, limits=Limits(max_steps=50))
        assert out.error is not None
        assert "timed out" in out.error
        # The bulk charge must bottom out exactly like the per-thread
        # nested path does (steps_left == -1), not report a steps_used
        # inflated by the whole launch width.
        assert out.steps_used == 51

    def test_huge_launch_skips_geometry_memo(self):
        src = (
            "__global__ void noop(int n) {}\n"
            "int main() { noop<<<1024, 128>>>(0); return 0; }\n"
        )
        runner = _runner(src)
        out = runner.run()
        assert out.ok
        assert not runner._geom_cache  # 131072 threads > memo bound
