"""Tests for simulated OpenMP execution: target regions, mapping semantics,
reductions, collapse, host parallelism, and profile events."""

from __future__ import annotations

from repro.gpu.stats import HostParallelEvent
from repro.minilang.source import Dialect
from tests.interp.helpers import run_source


def run_omp(text: str, argv=None, **kw):
    return run_source(text, Dialect.OMP, argv=argv, **kw)


class TestTargetLoop:
    def test_vecadd_end_to_end(self, omp_vecadd_source):
        out = run_source(omp_vecadd_source.text, Dialect.OMP)
        assert out.ok, (out.error, out.error_detail)
        assert out.stdout == "checksum 97920.0000\n"

    def test_map_tofrom_roundtrip(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 10;\n"
            "  int* a = (int*)malloc(n * sizeof(int));\n"
            "  for (int i = 0; i < n; i++) a[i] = i;\n"
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n"
            "  for (int i = 0; i < n; i++) { a[i] = a[i] * 10; }\n"
            '  printf("%d %d\\n", a[0], a[9]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "0 90\n"

    def test_missing_from_map_loses_results(self):
        # map(to:) only: device writes never come back — classic wrong-output
        # bug the verification stage must catch.
        out = run_omp(
            "int main() {\n"
            "  int n = 4;\n"
            "  int* a = (int*)malloc(n * sizeof(int));\n"
            "  for (int i = 0; i < n; i++) a[i] = 1;\n"
            "#pragma omp target teams distribute parallel for map(to: a[0:n])\n"
            "  for (int i = 0; i < n; i++) { a[i] = 99; }\n"
            '  printf("%d\\n", a[0]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.ok
        assert out.stdout == "1\n"

    def test_unmapped_array_in_target_region_crashes(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 4;\n"
            "  int* a = (int*)malloc(n * sizeof(int));\n"
            "  int* b = (int*)malloc(n * sizeof(int));\n"
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n"
            "  for (int i = 0; i < n; i++) { a[i] = b[i]; }\n"
            "  return 0;\n"
            "}"
        )
        assert out.error is not None
        assert "illegal memory access" in out.error

    def test_reduction_sum(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 100;\n"
            "  double s = 5.0;\n"
            "  float* a = (float*)malloc(n * sizeof(float));\n"
            "  for (int i = 0; i < n; i++) a[i] = 1.0f;\n"
            "#pragma omp target teams distribute parallel for map(to: a[0:n]) reduction(+: s)\n"
            "  for (int i = 0; i < n; i++) { s += a[i]; }\n"
            '  printf("%.1f\\n", s);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "105.0\n"

    def test_reduction_max(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 50;\n"
            "  float m = -1000.0f;\n"
            "  float* a = (float*)malloc(n * sizeof(float));\n"
            "  for (int i = 0; i < n; i++) a[i] = i * 1.0f;\n"
            "#pragma omp target teams distribute parallel for map(to: a[0:n]) reduction(max: m)\n"
            "  for (int i = 0; i < n; i++) { if (a[i] > m) m = a[i]; }\n"
            '  printf("%.1f\\n", m);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "49.0\n"

    def test_collapse_two_levels(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 8;\n"
            "  int* a = (int*)malloc(n * n * sizeof(int));\n"
            "#pragma omp target teams distribute parallel for collapse(2) map(from: a[0:n*n])\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    for (int j = 0; j < n; j++) {\n"
            "      a[i * n + j] = i * 10 + j;\n"
            "    }\n"
            "  }\n"
            '  printf("%d %d\\n", a[0], a[63]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "0 77\n"
        ev = out.profile.kernel_events[0]
        assert ev.total_threads == 64  # collapsed width

    def test_kernel_event_omp_api(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 32;\n"
            "  float* a = (float*)malloc(n * sizeof(float));\n"
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n"
            "  for (int i = 0; i < n; i++) { a[i] = i * 2.0f; }\n"
            '  printf("%.0f\\n", a[31]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "62\n"
        ev = out.profile.kernel_events[0]
        assert ev.api == "omp"
        assert ev.total_threads == 32
        assert ev.parallel_limit is None  # full combined directive

    def test_num_threads_clause_caps_parallelism(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 32;\n"
            "  float* a = (float*)malloc(n * sizeof(float));\n"
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n]) num_threads(1)\n"
            "  for (int i = 0; i < n; i++) { a[i] = 1.0f; }\n"
            "  return 0;\n"
            "}"
        )
        assert out.profile.kernel_events[0].parallel_limit == 1

    def test_bare_target_is_serial_on_device(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 16;\n"
            "  float* a = (float*)malloc(n * sizeof(float));\n"
            "#pragma omp target map(tofrom: a[0:n])\n"
            "  {\n"
            "    for (int i = 0; i < n; i++) { a[i] = 3.0f; }\n"
            "  }\n"
            '  printf("%.0f\\n", a[15]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "3\n"
        ev = out.profile.kernel_events[0]
        assert ev.parallel_limit == 1

    def test_descending_canonical_loop(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 10;\n"
            "  int* a = (int*)malloc(n * sizeof(int));\n"
            "#pragma omp target teams distribute parallel for map(from: a[0:n])\n"
            "  for (int i = n - 1; i >= 0; i--) { a[i] = i; }\n"
            '  printf("%d %d\\n", a[0], a[9]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "0 9\n"

    def test_strided_canonical_loop(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 10;\n"
            "  int* a = (int*)malloc(n * sizeof(int));\n"
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n"
            "  for (int i = 0; i < n; i += 2) { a[i] = 1; }\n"
            "  int s = 0;\n"
            "  for (int i = 0; i < n; i++) s += a[i];\n"
            '  printf("%d\\n", s);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "5\n"


class TestTargetData:
    PROG = (
        "int main() {\n"
        "  int n = 16;\n"
        "  float* a = (float*)malloc(n * sizeof(float));\n"
        "  for (int i = 0; i < n; i++) a[i] = 1.0f;\n"
        "#pragma omp target data map(tofrom: a[0:n])\n"
        "  {\n"
        "    for (int iter = 0; iter < 5; iter++) {\n"
        "#pragma omp target teams distribute parallel for\n"
        "      for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0f; }\n"
        "    }\n"
        "  }\n"
        '  printf("%.0f\\n", a[0]);\n'
        "  return 0;\n"
        "}"
    )

    def test_data_region_keeps_array_resident(self):
        out = run_omp(self.PROG)
        assert out.ok, (out.error, out.error_detail)
        assert out.stdout == "6\n"
        # One h2d on entry + one d2h on exit — inner regions move nothing.
        omp_transfers = [t for t in out.profile.transfer_events if t.api == "omp"]
        assert len(omp_transfers) == 2

    def test_without_data_region_transfers_each_iteration(self):
        prog = self.PROG.replace(
            "#pragma omp target data map(tofrom: a[0:n])\n", ""
        ).replace(
            "#pragma omp target teams distribute parallel for\n",
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n",
        )
        out = run_omp(prog)
        assert out.ok, (out.error, out.error_detail)
        assert out.stdout == "6\n"
        omp_transfers = [t for t in out.profile.transfer_events if t.api == "omp"]
        assert len(omp_transfers) == 10  # 5 iterations x (h2d + d2h)

    def test_host_sees_host_copy_inside_data_region(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 4;\n"
            "  int* a = (int*)malloc(n * sizeof(int));\n"
            "  a[0] = 7;\n"
            "#pragma omp target data map(to: a[0:n])\n"
            "  {\n"
            '    printf("%d\\n", a[0]);\n'  # host access: host copy
            "  }\n"
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "7\n"


class TestHostParallel:
    def test_parallel_for_result_and_event(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 64;\n"
            "  int* a = (int*)malloc(n * sizeof(int));\n"
            "#pragma omp parallel for\n"
            "  for (int i = 0; i < n; i++) { a[i] = i; }\n"
            "  int s = 0;\n"
            "  for (int i = 0; i < n; i++) s += a[i];\n"
            '  printf("%d\\n", s);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "2016\n"
        events = [e for e in out.profile.events if isinstance(e, HostParallelEvent)]
        assert len(events) == 1
        assert events[0].num_threads == 64

    def test_parallel_for_reduction(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 10;\n"
            "  int s = 100;\n"
            "#pragma omp parallel for reduction(+: s)\n"
            "  for (int i = 0; i < n; i++) { s += i; }\n"
            '  printf("%d\\n", s);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "145\n"

    def test_atomic_pragma_counts(self):
        out = run_omp(
            "int main() {\n"
            "  int n = 20;\n"
            "  int c = 0;\n"
            "#pragma omp parallel for\n"
            "  for (int i = 0; i < n; i++) {\n"
            "#pragma omp atomic\n"
            "    c += 1;\n"
            "  }\n"
            '  printf("%d\\n", c);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "20\n"
