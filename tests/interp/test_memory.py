"""Unit tests for the guest memory model."""

from __future__ import annotations

import pytest

from repro.errors import GuestRuntimeError
from repro.interp.memory import Buffer, MemoryManager, Pointer
from repro.minilang import types as ty


class TestAlloc:
    def test_alloc_sizes_and_types(self):
        mm = MemoryManager()
        p = mm.alloc(40, ty.FLOAT, "host")
        assert p.buf.length == 10
        assert p.buf.elem_bytes == 4
        assert p.buf.is_float
        assert p.buf.cells == [0.0] * 10

    def test_int_buffer_zero_init(self):
        mm = MemoryManager()
        p = mm.alloc(16, ty.INT, "device")
        assert p.buf.cells == [0, 0, 0, 0]
        assert p.buf.space == "device"

    def test_negative_size_faults(self):
        mm = MemoryManager()
        with pytest.raises(GuestRuntimeError):
            mm.alloc(-8, ty.INT, "host")

    def test_memory_limit_host(self):
        mm = MemoryManager()
        mm.byte_limit = 1024
        with pytest.raises(GuestRuntimeError) as exc:
            mm.alloc(2048, ty.CHAR, "host")
        assert "bad_alloc" in str(exc.value)

    def test_memory_limit_device(self):
        mm = MemoryManager()
        mm.byte_limit = 1024
        with pytest.raises(GuestRuntimeError) as exc:
            mm.alloc(2048, ty.CHAR, "device")
        assert "out of memory" in str(exc.value)

    def test_free_accounting(self):
        mm = MemoryManager()
        p = mm.alloc(100, ty.CHAR, "host")
        assert mm.host_bytes == 100
        mm.free(p, "host")
        assert mm.host_bytes == 0

    def test_free_wrong_space(self):
        mm = MemoryManager()
        p = mm.alloc(8, ty.INT, "device")
        with pytest.raises(GuestRuntimeError):
            mm.free(p, "host")


class TestAccessChecks:
    def test_host_access_to_device_buffer(self):
        mm = MemoryManager()
        p = mm.alloc(8, ty.INT, "device")
        with pytest.raises(GuestRuntimeError) as exc:
            MemoryManager.check_access(p.buf, 0, device=False)
        assert "Segmentation fault" in str(exc.value)

    def test_device_access_to_unmapped_host_buffer(self):
        mm = MemoryManager()
        p = mm.alloc(8, ty.INT, "host")
        with pytest.raises(GuestRuntimeError) as exc:
            MemoryManager.check_access(p.buf, 0, device=True)
        assert "illegal memory access" in str(exc.value)

    def test_bounds(self):
        mm = MemoryManager()
        p = mm.alloc(8, ty.INT, "host")
        MemoryManager.check_access(p.buf, 1, device=False)  # ok
        with pytest.raises(GuestRuntimeError):
            MemoryManager.check_access(p.buf, 2, device=False)
        with pytest.raises(GuestRuntimeError):
            MemoryManager.check_access(p.buf, -1, device=False)

    def test_use_after_free(self):
        mm = MemoryManager()
        p = mm.alloc(8, ty.INT, "host")
        mm.free(p, "host")
        with pytest.raises(GuestRuntimeError):
            MemoryManager.check_access(p.buf, 0, device=False)


class TestMapping:
    def test_map_to_copies_in(self):
        mm = MemoryManager()
        p = mm.alloc(16, ty.INT, "host")
        p.buf.cells[:] = [1, 2, 3, 4]
        moved = mm.map_enter(p.buf, "to")
        assert moved == 16
        assert p.buf.shadow.cells == [1, 2, 3, 4]
        assert mm.map_exit(p.buf) == 0  # 'to' does not copy out

    def test_map_from_copies_out_only(self):
        mm = MemoryManager()
        p = mm.alloc(16, ty.INT, "host")
        p.buf.cells[:] = [9, 9, 9, 9]
        assert mm.map_enter(p.buf, "from") == 0
        assert p.buf.shadow.cells == [0, 0, 0, 0]  # uninitialized device copy
        p.buf.shadow.cells[:] = [5, 6, 7, 8]
        assert mm.map_exit(p.buf) == 16
        assert p.buf.cells == [5, 6, 7, 8]

    def test_nested_maps_refcounted(self):
        mm = MemoryManager()
        p = mm.alloc(16, ty.INT, "host")
        assert mm.map_enter(p.buf, "tofrom") == 16
        assert mm.map_enter(p.buf, "tofrom") == 0  # already present
        assert mm.map_exit(p.buf) == 0
        assert p.buf.shadow is not None
        assert mm.map_exit(p.buf) == 16
        assert p.buf.shadow is None

    def test_device_access_redirected_to_shadow(self):
        mm = MemoryManager()
        p = mm.alloc(16, ty.INT, "host")
        mm.map_enter(p.buf, "to")
        target = MemoryManager.check_access(p.buf, 0, device=True)
        assert target is p.buf.shadow


class TestPointer:
    def test_offset_and_equality(self):
        buf = Buffer(10, 4, False, "host")
        a = Pointer(buf, 2)
        b = a.offset_by(3)
        assert b.off == 5
        assert a == Pointer(buf, 2)
        assert a != b
        assert a != None  # noqa: E711 - NULL comparison semantics

    def test_read_string(self):
        buf = Buffer(4, 8, False, "host")
        buf.cells[0] = "hello"
        assert Pointer(buf, 0).read_string() == "hello"
        buf2 = Buffer(4, 1, False, "host")
        buf2.cells[:3] = [104, 105, 0]
        assert Pointer(buf2, 0).read_string() == "hi"
