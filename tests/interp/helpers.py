"""Helpers for interpreter tests: parse+analyze+run a source snippet."""

from __future__ import annotations

from typing import List, Optional

from repro.interp import Limits, ProgramRunner, RunOutcome
from repro.minilang import analyze, parse
from repro.minilang.source import Dialect, SourceFile


def run_source(
    text: str,
    dialect: Dialect = Dialect.C,
    argv: Optional[List[str]] = None,
    limits: Optional[Limits] = None,
    expect_clean_compile: bool = True,
) -> RunOutcome:
    sf = SourceFile("test", text, dialect)
    program, diags = parse(sf)
    if expect_clean_compile:
        assert not diags.has_errors, diags.render(sf)
        res = analyze(program, dialect)
        assert res.ok, res.diagnostics.render(sf)
    runner = ProgramRunner(program, dialect, limits=limits)
    return runner.run(argv or [])
