"""Unit tests for C-semantics value helpers and printf."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GuestRuntimeError
from repro.interp.values import c_div, c_mod, c_printf, truthy


class TestCDiv:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_matches_c_truncation(self, a, b):
        if b == 0:
            with pytest.raises(GuestRuntimeError):
                c_div(a, b)
        else:
            q = c_div(a, b)
            assert q == int(a / b)  # trunc toward zero

    def test_float_semantics(self):
        assert c_div(1.0, 0.0) == math.inf
        assert c_div(-1.0, 0.0) == -math.inf
        assert math.isnan(c_div(0.0, 0.0))
        assert c_div(7.0, 2.0) == 3.5


class TestCMod:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_sign_of_dividend_and_identity(self, a, b):
        if b == 0:
            with pytest.raises(GuestRuntimeError):
                c_mod(a, b)
        else:
            r = c_mod(a, b)
            assert a == c_div(a, b) * b + r  # C identity
            if r != 0:
                assert (r > 0) == (a > 0)

    def test_float_fmod(self):
        assert c_mod(7.5, 2.0) == pytest.approx(1.5)
        assert math.isnan(c_mod(1.0, 0.0))


class TestTruthy:
    def test_null_pointer_false(self):
        assert not truthy(None)

    def test_numbers(self):
        assert truthy(1) and truthy(-1) and truthy(0.5)
        assert not truthy(0) and not truthy(0.0)


class TestPrintf:
    def test_basic_conversions(self):
        assert c_printf("%d %f %s", [3, 1.5, "x"]) == "3 1.500000 x"

    def test_width_precision_flags(self):
        assert c_printf("[%06.2f]", [3.14159]) == "[003.14]"
        assert c_printf("[%-4d]", [7]) == "[7   ]"

    def test_unsigned_wraps(self):
        assert c_printf("%u", [-1]) == "4294967295"

    def test_hex(self):
        assert c_printf("%x %X", [255, 255]) == "ff FF"

    def test_char_from_int(self):
        assert c_printf("%c", [65]) == "A"

    def test_percent_escape_consumes_no_args(self):
        assert c_printf("100%%", []) == "100%"

    def test_missing_arg_faults(self):
        with pytest.raises(GuestRuntimeError):
            c_printf("%d %d", [1])

    def test_long_modifier_stripped(self):
        assert c_printf("%ld %lu", [10, 10]) == "10 10"

    def test_g_and_e(self):
        assert c_printf("%e", [12345.678]) == "1.234568e+04"
        assert c_printf("%g", [0.0001]) == "0.0001"
