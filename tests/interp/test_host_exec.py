"""Tests for host-side execution: expressions, control flow, memory, printf."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.minilang.source import Dialect
from tests.interp.helpers import run_source


class TestArithmetic:
    def test_integer_arithmetic(self):
        out = run_source(
            'int main() { printf("%d\\n", (7 + 3) * 2 - 5 / 2); return 0; }'
        )
        assert out.stdout == "18\n"

    def test_c_division_truncates_toward_zero(self):
        out = run_source(
            'int main() { printf("%d %d\\n", -7 / 2, 7 / -2); return 0; }'
        )
        assert out.stdout == "-3 -3\n"

    def test_c_modulo_sign_of_dividend(self):
        out = run_source(
            'int main() { printf("%d %d\\n", -7 % 3, 7 % -3); return 0; }'
        )
        assert out.stdout == "-1 1\n"

    def test_float_arithmetic(self):
        out = run_source(
            'int main() { printf("%.3f\\n", 1.5f * 2.0f + 0.25f); return 0; }'
        )
        assert out.stdout == "3.250\n"

    def test_mixed_int_float_promotes(self):
        out = run_source('int main() { printf("%.2f\\n", 3 / 2.0); return 0; }')
        assert out.stdout == "1.50\n"

    def test_integer_division_by_zero_faults(self):
        out = run_source(
            "int main() { int z = 0; int y = 5 / z; return y; }"
        )
        assert out.error is not None
        assert "Floating point exception" in out.error

    def test_float_division_by_zero_gives_inf(self):
        out = run_source(
            'int main() { float z = 0.0f; printf("%f\\n", 1.0f / z); return 0; }'
        )
        assert out.error is None
        assert "inf" in out.stdout

    def test_bitwise_and_shifts(self):
        out = run_source(
            'int main() { printf("%d %d %d\\n", 12 & 10, 12 | 3, 1 << 10); return 0; }'
        )
        assert out.stdout == "8 15 1024\n"

    def test_int_var_assignment_truncates_floats(self):
        out = run_source('int main() { int x = 0; x = 7.9; printf("%d\\n", x); return 0; }')
        assert out.stdout == "7\n"

    def test_ternary(self):
        out = run_source(
            'int main() { int x = 5; printf("%d\\n", x > 3 ? 10 : 20); return 0; }'
        )
        assert out.stdout == "10\n"

    def test_logical_short_circuit(self):
        # Division by zero on the right of && must not execute.
        out = run_source(
            "int main() { int z = 0; if (0 && (5 / z)) { return 1; } return 0; }"
        )
        assert out.error is None

    def test_increment_decrement(self):
        out = run_source(
            'int main() { int i = 5; int a = i++; int b = ++i; int c = i--;\n'
            'printf("%d %d %d %d\\n", a, b, c, i); return 0; }'
        )
        assert out.stdout == "5 7 7 6\n"

    def test_compound_assignment(self):
        out = run_source(
            'int main() { int x = 10; x += 5; x *= 2; x -= 4; x /= 2; x %= 7;\n'
            'printf("%d\\n", x); return 0; }'
        )
        assert out.stdout == "6\n"

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=25, deadline=None)
    def test_addition_matches_python(self, a, b):
        out = run_source(
            f'int main() {{ printf("%d\\n", {a} + ({b})); return 0; }}'
        )
        assert out.stdout == f"{a + b}\n"


class TestControlFlow:
    def test_for_loop_sum(self):
        out = run_source(
            'int main() { int s = 0; for (int i = 1; i <= 100; i++) { s += i; }\n'
            'printf("%d\\n", s); return 0; }'
        )
        assert out.stdout == "5050\n"

    def test_nested_loops_with_break_continue(self):
        out = run_source(
            "int main() { int s = 0;\n"
            "for (int i = 0; i < 10; i++) {\n"
            "  if (i % 2 == 0) continue;\n"
            "  if (i > 6) break;\n"
            "  s += i;\n"
            "}\n"
            'printf("%d\\n", s); return 0; }'
        )
        assert out.stdout == "9\n"  # 1 + 3 + 5

    def test_while_and_do_while(self):
        out = run_source(
            "int main() { int n = 0; while (n < 5) n++; int m = 0;\n"
            "do { m++; } while (m < 3);\n"
            'printf("%d %d\\n", n, m); return 0; }'
        )
        assert out.stdout == "5 3\n"

    def test_do_while_executes_at_least_once(self):
        out = run_source(
            'int main() { int n = 99; do { n = 1; } while (0); printf("%d\\n", n); return 0; }'
        )
        assert out.stdout == "1\n"

    def test_recursion(self):
        out = run_source(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n"
            'int main() { printf("%d\\n", fib(15)); return 0; }'
        )
        assert out.stdout == "610\n"

    def test_early_return_value(self):
        out = run_source(
            "int f(int x) { if (x > 0) { return 1; } return -1; }\n"
            'int main() { printf("%d %d\\n", f(5), f(-5)); return 0; }'
        )
        assert out.stdout == "1 -1\n"

    def test_infinite_loop_hits_step_limit(self):
        from repro.interp import Limits

        out = run_source(
            "int main() { while (1) { } return 0; }",
            limits=Limits(max_steps=5000),
        )
        assert out.error is not None
        assert "timed out" in out.error


class TestMemory:
    def test_malloc_write_read(self):
        out = run_source(
            "int main() { int* p = (int*)malloc(10 * sizeof(int));\n"
            "for (int i = 0; i < 10; i++) p[i] = i * i;\n"
            'printf("%d\\n", p[7]); free(p); return 0; }'
        )
        assert out.stdout == "49\n"

    def test_out_of_bounds_read_segfaults(self):
        out = run_source(
            "int main() { int* p = (int*)malloc(4 * sizeof(int));\n"
            "int x = p[10]; return x; }"
        )
        assert out.error is not None
        assert "Segmentation fault" in out.error

    def test_negative_index_segfaults(self):
        out = run_source(
            "int main() { int* p = (int*)malloc(4 * sizeof(int)); p[-1] = 3; return 0; }"
        )
        assert "Segmentation fault" in out.error

    def test_use_after_free(self):
        out = run_source(
            "int main() { int* p = (int*)malloc(8); free(p); p[0] = 1; return 0; }"
        )
        assert out.error is not None

    def test_double_free(self):
        out = run_source(
            "int main() { int* p = (int*)malloc(8); free(p); free(p); return 0; }"
        )
        assert "double free" in out.error

    def test_free_null_ok(self):
        out = run_source("int main() { free(NULL); return 0; }")
        assert out.error is None

    def test_null_deref(self):
        out = run_source("int main() { int* p = NULL; return p[0]; }")
        assert "Segmentation fault" in out.error

    def test_pointer_arithmetic(self):
        out = run_source(
            "int main() { int* p = (int*)malloc(5 * sizeof(int));\n"
            "for (int i = 0; i < 5; i++) p[i] = i + 10;\n"
            "int* q = p + 2;\n"
            'printf("%d %d\\n", q[0], *(q + 1)); free(p); return 0; }'
        )
        assert out.stdout == "12 13\n"

    def test_int_array_stores_truncate(self):
        out = run_source(
            "int main() { int* p = (int*)malloc(sizeof(int)); p[0] = 3.7;\n"
            'printf("%d\\n", p[0]); free(p); return 0; }'
        )
        assert out.stdout == "3\n"

    def test_local_fixed_array(self):
        out = run_source(
            "int main() { int buf[16]; for (int i = 0; i < 16; i++) buf[i] = i;\n"
            'printf("%d\\n", buf[15]); return 0; }'
        )
        assert out.stdout == "15\n"

    def test_memset_zeroes(self):
        out = run_source(
            "int main() { int* p = (int*)malloc(4 * sizeof(int));\n"
            "p[2] = 9; memset(p, 0, 4 * sizeof(int));\n"
            'printf("%d\\n", p[2]); free(p); return 0; }'
        )
        assert out.stdout == "0\n"

    def test_global_variables(self):
        out = run_source(
            "int counter = 10;\n"
            "void bump() { counter += 5; }\n"
            'int main() { bump(); bump(); printf("%d\\n", counter); return 0; }'
        )
        assert out.stdout == "20\n"


class TestIo:
    def test_printf_widths_and_precision(self):
        out = run_source(
            'int main() { printf("[%5d][%-5d][%.2f][%8.3f]\\n", 42, 42, 3.14159, 2.5); return 0; }'
        )
        assert out.stdout == "[   42][42   ][3.14][   2.500]\n"

    def test_printf_e_and_x(self):
        out = run_source(
            'int main() { printf("%e %x\\n", 12345.678, 255); return 0; }'
        )
        assert out.stdout == "1.234568e+04 ff\n"

    def test_printf_string_and_char(self):
        out = run_source(
            'int main() { printf("%s %c\\n", "hello", 65); return 0; }'
        )
        assert out.stdout == "hello A\n"

    def test_printf_percent_literal(self):
        out = run_source('int main() { printf("100%%\\n"); return 0; }')
        assert out.stdout == "100%\n"

    def test_printf_missing_argument_faults(self):
        out = run_source('int main() { printf("%d %d\\n", 1); return 0; }')
        assert out.error is not None

    def test_argv_and_atoi(self):
        out = run_source(
            "int main(int argc, char** argv) {\n"
            'printf("%d %d\\n", argc, atoi(argv[1]) * 2); return 0; }',
            argv=["21"],
        )
        assert out.stdout == "2 42\n"

    def test_exit_code(self):
        out = run_source("int main() { exit(3); return 0; }")
        assert out.exit_code == 3

    def test_main_return_code(self):
        out = run_source("int main() { return 7; }")
        assert out.exit_code == 7
        assert not out.ok


class TestRand:
    def test_rand_deterministic_sequence(self):
        src = (
            "int main() { srand(42); "
            'printf("%d %d %d\\n", rand() % 1000, rand() % 1000, rand() % 1000); return 0; }'
        )
        a = run_source(src)
        b = run_source(src)
        assert a.stdout == b.stdout

    def test_rand_same_across_dialects(self):
        src = (
            "int main() { srand(7); int s = 0;"
            "for (int i = 0; i < 10; i++) { s += rand() % 100; }"
            'printf("%d\\n", s); return 0; }'
        )
        a = run_source(src, Dialect.OMP)
        b = run_source(src, Dialect.CUDA)
        assert a.stdout == b.stdout

    def test_rand_in_range(self):
        out = run_source(
            "int main() { srand(1); for (int i = 0; i < 100; i++) {"
            " int r = rand(); if (r < 0) { return 1; } }"
            ' printf("ok\\n"); return 0; }'
        )
        assert out.stdout == "ok\n"


class TestMathBuiltins:
    def test_sqrt_and_pow(self):
        out = run_source(
            'int main() { printf("%.1f %.1f\\n", sqrtf(16.0f), powf(2.0f, 10.0f)); return 0; }'
        )
        assert out.stdout == "4.0 1024.0\n"

    def test_min_max_abs(self):
        out = run_source(
            'int main() { printf("%d %d %d\\n", min(3, 5), max(3, 5), abs(-9)); return 0; }'
        )
        assert out.stdout == "3 5 9\n"

    def test_log_of_negative_is_nan(self):
        out = run_source('int main() { printf("%f\\n", logf(-1.0f)); return 0; }')
        assert "nan" in out.stdout

    def test_fmin_fmax(self):
        out = run_source(
            'int main() { printf("%.1f %.1f\\n", fminf(1.5f, 2.5f), fmaxf(1.5f, 2.5f)); return 0; }'
        )
        assert out.stdout == "1.5 2.5\n"
