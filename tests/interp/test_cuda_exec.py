"""Tests for simulated CUDA execution: launches, memory spaces, atomics,
shared memory + barriers, and profile events."""

from __future__ import annotations

from repro.minilang.source import Dialect
from tests.interp.helpers import run_source


def run_cuda(text: str, argv=None, **kw):
    return run_source(text, Dialect.CUDA, argv=argv, **kw)


class TestKernelLaunch:
    def test_vecadd_end_to_end(self, cuda_vecadd_source):
        out = run_source(cuda_vecadd_source.text, Dialect.CUDA)
        assert out.ok, (out.error, out.error_detail)
        # sum of a[i]+b[i] = sum 3i for i in 0..255 = 3*255*256/2
        assert out.stdout == "checksum 97920.0000\n"

    def test_thread_geometry(self):
        out = run_cuda(
            "__global__ void k(int* p) {\n"
            "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
            "  p[i] = blockIdx.x * 1000 + threadIdx.x;\n"
            "}\n"
            "int main() {\n"
            "  int* d;\n"
            "  cudaMalloc(&d, 8 * sizeof(int));\n"
            "  k<<<2, 4>>>(d);\n"
            "  int* h = (int*)malloc(8 * sizeof(int));\n"
            "  cudaMemcpy(h, d, 8 * sizeof(int), cudaMemcpyDeviceToHost);\n"
            '  printf("%d %d %d %d\\n", h[0], h[3], h[4], h[7]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "0 3 1000 1003\n"

    def test_grid_stride_loop(self):
        out = run_cuda(
            "__global__ void k(int* p, int n) {\n"
            "  for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n; i += blockDim.x * gridDim.x) {\n"
            "    p[i] = i;\n"
            "  }\n"
            "}\n"
            "int main() {\n"
            "  int n = 100;\n"
            "  int* d;\n"
            "  cudaMalloc(&d, n * sizeof(int));\n"
            "  k<<<2, 16>>>(d, n);\n"
            "  int* h = (int*)malloc(n * sizeof(int));\n"
            "  cudaMemcpy(h, d, n * sizeof(int), cudaMemcpyDeviceToHost);\n"
            "  int s = 0;\n"
            "  for (int i = 0; i < n; i++) s += h[i];\n"
            '  printf("%d\\n", s);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "4950\n"

    def test_invalid_block_size(self):
        out = run_cuda(
            "__global__ void k() {}\n"
            "int main() { k<<<1, 2048>>>(); return 0; }"
        )
        assert "invalid configuration argument" in out.error

    def test_zero_grid(self):
        out = run_cuda(
            "__global__ void k() {}\n"
            "int main() { k<<<0, 32>>>(); return 0; }"
        )
        assert "invalid configuration argument" in out.error

    def test_device_function_call(self):
        out = run_cuda(
            "__device__ float square(float x) { return x * x; }\n"
            "__global__ void k(float* p) { p[threadIdx.x] = square(threadIdx.x); }\n"
            "int main() {\n"
            "  float* d;\n"
            "  cudaMalloc(&d, 4 * sizeof(float));\n"
            "  k<<<1, 4>>>(d);\n"
            "  float* h = (float*)malloc(4 * sizeof(float));\n"
            "  cudaMemcpy(h, d, 4 * sizeof(float), cudaMemcpyDeviceToHost);\n"
            '  printf("%.0f %.0f\\n", h[2], h[3]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "4 9\n"

    def test_kernel_printf(self):
        out = run_cuda(
            '__global__ void k() { printf("t%d\\n", threadIdx.x); }\n'
            "int main() { k<<<1, 3>>>(); cudaDeviceSynchronize(); return 0; }"
        )
        assert out.stdout == "t0\nt1\nt2\n"


class TestMemorySpaces:
    def test_host_deref_of_device_pointer_segfaults(self):
        out = run_cuda(
            "int main() {\n"
            "  float* d;\n"
            "  cudaMalloc(&d, 16);\n"
            "  d[0] = 1.0f;\n"
            "  return 0;\n"
            "}"
        )
        assert "Segmentation fault" in out.error

    def test_kernel_deref_of_host_pointer_illegal_access(self):
        out = run_cuda(
            "__global__ void k(float* p) { p[0] = 1.0f; }\n"
            "int main() {\n"
            "  float* h = (float*)malloc(16);\n"
            "  k<<<1, 1>>>(h);\n"
            "  return 0;\n"
            "}"
        )
        assert "illegal memory access" in out.error

    def test_kernel_oob_is_illegal_access(self):
        out = run_cuda(
            "__global__ void k(float* p, int n) {\n"
            "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
            "  p[i] = 1.0f;\n"  # missing bounds guard
            "}\n"
            "int main() {\n"
            "  float* d;\n"
            "  cudaMalloc(&d, 100 * sizeof(float));\n"
            "  k<<<1, 128>>>(d, 100);\n"
            "  return 0;\n"
            "}"
        )
        assert "illegal memory access" in out.error

    def test_missing_h2d_copy_gives_zeros(self):
        out = run_cuda(
            "__global__ void k(float* p, int n) {\n"
            "  int i = threadIdx.x;\n"
            "  if (i < n) p[i] = p[i] * 2.0f;\n"
            "}\n"
            "int main() {\n"
            "  int n = 4;\n"
            "  float* h = (float*)malloc(n * sizeof(float));\n"
            "  for (int i = 0; i < n; i++) h[i] = 5.0f;\n"
            "  float* d;\n"
            "  cudaMalloc(&d, n * sizeof(float));\n"
            "  k<<<1, 4>>>(d, n);\n"
            "  cudaMemcpy(h, d, n * sizeof(float), cudaMemcpyDeviceToHost);\n"
            '  printf("%.1f\\n", h[0]);\n'
            "  return 0;\n"
            "}"
        )
        # Device memory starts zeroed; result is wrong (0) but no crash.
        assert out.ok
        assert out.stdout == "0.0\n"

    def test_wrong_memcpy_direction_is_silent_noop(self):
        out = run_cuda(
            "int main() {\n"
            "  int n = 4;\n"
            "  float* h = (float*)malloc(n * sizeof(float));\n"
            "  h[0] = 7.0f;\n"
            "  float* d;\n"
            "  cudaMalloc(&d, n * sizeof(float));\n"
            "  cudaMemcpy(d, h, n * sizeof(float), cudaMemcpyDeviceToHost);\n"
            "  float* h2 = (float*)malloc(n * sizeof(float));\n"
            "  cudaMemcpy(h2, d, n * sizeof(float), cudaMemcpyDeviceToHost);\n"
            '  printf("%.1f\\n", h2[0]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.ok
        assert out.stdout == "0.0\n"

    def test_cuda_free_and_double_free(self):
        out = run_cuda(
            "int main() { float* d; cudaMalloc(&d, 16); cudaFree(d); cudaFree(d); return 0; }"
        )
        assert out.error is not None

    def test_cuda_memset(self):
        out = run_cuda(
            "int main() {\n"
            "  int n = 4;\n"
            "  float* d;\n"
            "  cudaMalloc(&d, n * sizeof(float));\n"
            "  cudaMemset(d, 0, n * sizeof(float));\n"
            "  float* h = (float*)malloc(n * sizeof(float));\n"
            "  h[1] = 9.0f;\n"
            "  cudaMemcpy(h, d, n * sizeof(float), cudaMemcpyDeviceToHost);\n"
            '  printf("%.1f\\n", h[1]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "0.0\n"


class TestAtomics:
    def test_atomic_add_counts_all_threads(self):
        out = run_cuda(
            "__global__ void k(int* c) { atomicAdd(&c[0], 1); }\n"
            "int main() {\n"
            "  int* d;\n"
            "  cudaMalloc(&d, sizeof(int));\n"
            "  k<<<4, 64>>>(d);\n"
            "  int* h = (int*)malloc(sizeof(int));\n"
            "  cudaMemcpy(h, d, sizeof(int), cudaMemcpyDeviceToHost);\n"
            '  printf("%d\\n", h[0]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "256\n"
        assert out.profile.total_atomics == 256

    def test_atomic_max(self):
        out = run_cuda(
            "__global__ void k(int* c) { atomicMax(&c[0], threadIdx.x * 3); }\n"
            "int main() {\n"
            "  int* d;\n"
            "  cudaMalloc(&d, sizeof(int));\n"
            "  k<<<1, 32>>>(d);\n"
            "  int* h = (int*)malloc(sizeof(int));\n"
            "  cudaMemcpy(h, d, sizeof(int), cudaMemcpyDeviceToHost);\n"
            '  printf("%d\\n", h[0]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "93\n"

    def test_atomic_returns_old_value(self):
        out = run_cuda(
            "__global__ void k(int* c, int* old) {\n"
            "  old[threadIdx.x] = atomicAdd(&c[0], 10);\n"
            "}\n"
            "int main() {\n"
            "  int* d;\n"
            "  int* o;\n"
            "  cudaMalloc(&d, sizeof(int));\n"
            "  cudaMalloc(&o, 2 * sizeof(int));\n"
            "  k<<<1, 2>>>(d, o);\n"
            "  int* h = (int*)malloc(2 * sizeof(int));\n"
            "  cudaMemcpy(h, o, 2 * sizeof(int), cudaMemcpyDeviceToHost);\n"
            '  printf("%d %d\\n", h[0], h[1]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.stdout == "0 10\n"


class TestSharedMemoryAndBarriers:
    REDUCE = (
        "__global__ void reduce(float* in, float* out, int n) {\n"
        "  __shared__ float tile[64];\n"
        "  int tid = threadIdx.x;\n"
        "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
        "  tile[tid] = 0.0f;\n"
        "  if (i < n) tile[tid] = in[i];\n"
        "  __syncthreads();\n"
        "  for (int s = blockDim.x / 2; s > 0; s = s / 2) {\n"
        "    if (tid < s) { tile[tid] += tile[tid + s]; }\n"
        "    __syncthreads();\n"
        "  }\n"
        "  if (tid == 0) { atomicAdd(&out[0], tile[0]); }\n"
        "}\n"
    )

    def test_block_reduction(self):
        out = run_cuda(
            self.REDUCE
            + "int main() {\n"
            "  int n = 200;\n"
            "  float* h = (float*)malloc(n * sizeof(float));\n"
            "  for (int i = 0; i < n; i++) h[i] = 1.0f;\n"
            "  float* din;\n"
            "  float* dout;\n"
            "  cudaMalloc(&din, n * sizeof(float));\n"
            "  cudaMalloc(&dout, sizeof(float));\n"
            "  cudaMemcpy(din, h, n * sizeof(float), cudaMemcpyHostToDevice);\n"
            "  reduce<<<4, 64>>>(din, dout, n);\n"
            "  float* r = (float*)malloc(sizeof(float));\n"
            "  cudaMemcpy(r, dout, sizeof(float), cudaMemcpyDeviceToHost);\n"
            '  printf("%.1f\\n", r[0]);\n'
            "  return 0;\n"
            "}"
        )
        assert out.ok, (out.error, out.error_detail)
        assert out.stdout == "200.0\n"

    def test_barrier_divergence_detected(self):
        out = run_cuda(
            "__global__ void k(int* p) {\n"
            "  if (threadIdx.x < 2) { __syncthreads(); }\n"
            "  p[threadIdx.x] = 1;\n"
            "}\n"
            "int main() {\n"
            "  int* d;\n"
            "  cudaMalloc(&d, 4 * sizeof(int));\n"
            "  k<<<1, 4>>>(d);\n"
            "  return 0;\n"
            "}"
        )
        assert out.error is not None
        assert "timed out" in out.error or "launch" in out.error


class TestProfileEvents:
    def test_kernel_event_recorded(self, cuda_vecadd_source):
        out = run_source(cuda_vecadd_source.text, Dialect.CUDA)
        kernels = out.profile.kernel_events
        assert len(kernels) == 1
        ev = kernels[0]
        assert ev.name == "add"
        assert ev.total_threads == 256
        assert ev.block_size == 128
        assert ev.api == "cuda"
        assert ev.counters.ops > 0
        assert ev.counters.load_bytes > 0

    def test_transfer_events_recorded(self, cuda_vecadd_source):
        out = run_source(cuda_vecadd_source.text, Dialect.CUDA)
        transfers = out.profile.transfer_events
        directions = [t.direction for t in transfers]
        assert directions.count("h2d") == 2
        assert directions.count("d2h") == 1
        assert all(t.bytes == 256 * 4 for t in transfers)

    def test_omp_pragma_in_cuda_dialect_runs_serially(self):
        out = run_source(
            "int main() {\n"
            "  int n = 8;\n"
            "  int* a = (int*)malloc(n * sizeof(int));\n"
            "#pragma omp parallel for\n"
            "  for (int i = 0; i < n; i++) { a[i] = i; }\n"
            "  int s = 0;\n"
            "  for (int i = 0; i < n; i++) s += a[i];\n"
            '  printf("%d\\n", s);\n'
            "  return 0;\n"
            "}",
            Dialect.CUDA,
            expect_clean_compile=False,
        )
        assert out.stdout == "28\n"
        # No device events: the pragma was ignored by "nvcc".
        assert out.profile.kernel_events == []
