"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.minilang.source import Dialect, SourceFile


@pytest.fixture
def cuda_vecadd_source() -> SourceFile:
    text = r"""
__global__ void add(float* a, float* b, float* c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    c[i] = a[i] + b[i];
  }
}

int main(int argc, char** argv) {
  int n = 256;
  float* a = (float*)malloc(n * sizeof(float));
  float* b = (float*)malloc(n * sizeof(float));
  float* c = (float*)malloc(n * sizeof(float));
  for (int i = 0; i < n; i++) {
    a[i] = i * 1.0f;
    b[i] = i * 2.0f;
  }
  float* d_a;
  float* d_b;
  float* d_c;
  cudaMalloc(&d_a, n * sizeof(float));
  cudaMalloc(&d_b, n * sizeof(float));
  cudaMalloc(&d_c, n * sizeof(float));
  cudaMemcpy(d_a, a, n * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(d_b, b, n * sizeof(float), cudaMemcpyHostToDevice);
  add<<<(n + 127) / 128, 128>>>(d_a, d_b, d_c, n);
  cudaDeviceSynchronize();
  cudaMemcpy(c, d_c, n * sizeof(float), cudaMemcpyDeviceToHost);
  double checksum = 0.0;
  for (int i = 0; i < n; i++) {
    checksum += c[i];
  }
  printf("checksum %.4f\n", checksum);
  cudaFree(d_a);
  cudaFree(d_b);
  cudaFree(d_c);
  free(a);
  free(b);
  free(c);
  return 0;
}
"""
    return SourceFile("vecadd.cu", text, Dialect.CUDA)


@pytest.fixture
def omp_vecadd_source() -> SourceFile:
    text = r"""
int main(int argc, char** argv) {
  int n = 256;
  float* a = (float*)malloc(n * sizeof(float));
  float* b = (float*)malloc(n * sizeof(float));
  float* c = (float*)malloc(n * sizeof(float));
  for (int i = 0; i < n; i++) {
    a[i] = i * 1.0f;
    b[i] = i * 2.0f;
  }
  #pragma omp target teams distribute parallel for map(to: a[0:n]) map(to: b[0:n]) map(from: c[0:n])
  for (int i = 0; i < n; i++) {
    c[i] = a[i] + b[i];
  }
  double checksum = 0.0;
  for (int i = 0; i < n; i++) {
    checksum += c[i];
  }
  printf("checksum %.4f\n", checksum);
  free(a);
  free(b);
  free(c);
  return 0;
}
"""
    return SourceFile("vecadd.cpp", text, Dialect.OMP)
