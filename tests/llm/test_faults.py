"""Tests for the fault catalogue."""

from __future__ import annotations

import pytest

from repro.hecbench import get_app
from repro.llm.faults import FAULTS, faults_for, get_fault
from repro.llm.transpiler import Transpiler
from repro.minilang.source import Dialect
from repro.toolchain import Executor, compiler_for


@pytest.fixture(scope="module")
def cuda_code():
    app = get_app("matrix-rotate")
    return Transpiler().translate(app.omp_source, Dialect.OMP, Dialect.CUDA)


@pytest.fixture(scope="module")
def omp_code():
    app = get_app("matrix-rotate")
    return Transpiler().translate(app.cuda_source, Dialect.CUDA, Dialect.OMP)


class TestCatalogue:
    def test_registry_lookup(self):
        assert get_fault("missing-semicolon").stage == "compile"
        with pytest.raises(KeyError):
            get_fault("no-such-fault")

    def test_faults_for_filters_dialect_and_stage(self):
        cuda_compile = faults_for(Dialect.CUDA, "compile")
        assert all(f.stage == "compile" for f in cuda_compile)
        assert all(
            f.dialect in (None, Dialect.CUDA) for f in cuda_compile
        )
        assert any(f.fault_id == "kernel-called-directly" for f in cuda_compile)
        omp_all = faults_for(Dialect.OMP)
        assert not any(f.fault_id == "kernel-called-directly" for f in omp_all)

    def test_every_fault_has_description(self):
        for fault in FAULTS.values():
            assert fault.description
            assert fault.stage in ("compile", "runtime", "output", "perf")


def _compile_and_run(code, dialect, app):
    cr = compiler_for(dialect).compile(code)
    if not cr.ok:
        return cr, None
    run = Executor().run(cr.program, dialect, app.args)
    return cr, run


class TestCompileFaults:
    @pytest.mark.parametrize("fault_id", [
        "undeclared-index-cuda", "missing-semicolon",
        "kernel-called-directly", "missing-launch-arg",
        "missing-device-decl",
    ])
    def test_cuda_compile_faults_break_compilation_with_signature(
        self, fault_id, cuda_code
    ):
        app = get_app("matrix-rotate")
        fault = get_fault(fault_id)
        broken = fault.apply(cuda_code)
        assert broken is not None, f"{fault_id} should apply"
        cr, _ = _compile_and_run(broken, Dialect.CUDA, app)
        assert not cr.ok
        assert any(sig in cr.stderr for sig in fault.error_signature), (
            fault_id, cr.stderr
        )

    @pytest.mark.parametrize("fault_id", [
        "undeclared-index-omp", "cuda-api-in-omp", "bad-directive-spelling",
    ])
    def test_omp_compile_faults(self, fault_id, omp_code):
        app = get_app("matrix-rotate")
        fault = get_fault(fault_id)
        broken = fault.apply(omp_code)
        assert broken is not None
        cr, _ = _compile_and_run(broken, Dialect.OMP, app)
        assert not cr.ok
        assert any(sig in cr.stderr for sig in fault.error_signature)


class TestRuntimeFaults:
    def test_oob_guard_cuda_triggers_illegal_access(self):
        # pathfinder: cols=160 does not divide the 128-thread block evenly,
        # so the <= guard lets an out-of-range thread through.
        app = get_app("pathfinder")
        code = Transpiler().translate(app.omp_source, Dialect.OMP, Dialect.CUDA)
        fault = get_fault("oob-guard-cuda")
        broken = fault.apply(code)
        assert broken is not None
        cr, run = _compile_and_run(broken, Dialect.CUDA, app)
        assert cr.ok
        assert not run.ok
        assert "illegal memory access" in run.stderr

    def test_missing_cudamalloc_faults_at_runtime(self, cuda_code):
        app = get_app("matrix-rotate")
        broken = get_fault("missing-cudamalloc").apply(cuda_code)
        cr, run = _compile_and_run(broken, Dialect.CUDA, app)
        assert cr.ok
        assert not run.ok


class TestOutputFaults:
    def test_missing_copyback_changes_output_silently(self, cuda_code):
        app = get_app("matrix-rotate")
        broken = get_fault("missing-copyback-cuda").apply(cuda_code)
        assert broken is not None
        cr, run = _compile_and_run(broken, Dialect.CUDA, app)
        assert cr.ok and run.ok  # silent wrong answer
        cr2, good = _compile_and_run(cuda_code, Dialect.CUDA, app)
        assert run.stdout != good.stdout


class TestPerfFaults:
    def test_weak_parallelism_slows_down_without_changing_output(self):
        from repro.llm.transpiler import TranspileOptions

        app = get_app("bsearch")
        # Hoisted translation (single pass) so the loop compute, not the
        # region overhead, is the baseline the fault degrades.
        code = Transpiler(
            TranspileOptions(hoist_invariant_repeat=True)
        ).translate(app.cuda_source, Dialect.CUDA, Dialect.OMP)
        broken = get_fault("weak-parallelism-omp").apply(code)
        assert broken is not None
        ex = Executor()
        good_cr, _ = _compile_and_run(code, Dialect.OMP, app)
        bad_cr, _ = _compile_and_run(broken, Dialect.OMP, app)
        good = ex.run(good_cr.program, Dialect.OMP, app.args,
                      work_scale=app.work_scale, launch_scale=app.launch_scale)
        bad = ex.run(bad_cr.program, Dialect.OMP, app.args,
                     work_scale=app.work_scale, launch_scale=app.launch_scale)
        assert bad.stdout == good.stdout
        assert bad.runtime_seconds > 5 * good.runtime_seconds

    def test_tiny_block_slows_compute_kernels(self):
        app = get_app("entropy")
        code = Transpiler().translate(app.omp_source, Dialect.OMP, Dialect.CUDA)
        broken = get_fault("tiny-block-cuda").apply(code)
        assert broken is not None
        ex = Executor()
        good_cr, _ = _compile_and_run(code, Dialect.CUDA, app)
        bad_cr, _ = _compile_and_run(broken, Dialect.CUDA, app)
        good = ex.run(good_cr.program, Dialect.CUDA, app.args,
                      work_scale=app.work_scale, launch_scale=app.launch_scale)
        bad = ex.run(bad_cr.program, Dialect.CUDA, app.args,
                     work_scale=app.work_scale, launch_scale=app.launch_scale)
        assert bad.stdout == good.stdout
        assert bad.runtime_seconds > good.runtime_seconds
