"""Tests for SimulatedLLM, the registry and the live-client adapters."""

from __future__ import annotations

import pytest

from repro.errors import TransportError, UnknownModelError
from repro.hecbench import get_app
from repro.llm.base import ChatMessage
from repro.llm.clients import OllamaClient, OpenAIChatClient
from repro.llm.profiles import CellPlan, MODEL_STYLES, paper_plan
from repro.llm.registry import MIN_CONTEXT_LENGTH, all_models, get_model
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.prompts.builder import PromptBuilder
from repro.utils.text import extract_code_block


class TestRegistry:
    def test_table5_rows(self):
        models = all_models()
        assert [m.name for m in models] == [
            "GPT-4", "Codestral", "Wizard Coder", "DeepSeek Coder v2",
        ]
        gpt4 = get_model("gpt4")
        assert gpt4.parameters == "1.76 T"
        assert gpt4.context_length == 32768
        assert gpt4.hosting == "api"
        wizard = get_model("wizardcoder")
        assert wizard.context_length == 16384
        assert wizard.quantization == "8-bit"
        deepseek = get_model("deepseek")
        assert deepseek.context_length == 163840
        assert deepseek.quantization == "F16"

    def test_min_context_is_wizard(self):
        assert MIN_CONTEXT_LENGTH == 16384

    def test_lookup_by_name_or_key(self):
        assert get_model("Codestral").key == "codestral"
        with pytest.raises(UnknownModelError):
            get_model("llama")

    def test_every_model_has_a_style(self):
        for m in all_models():
            assert m.key in MODEL_STYLES


def build_and_translate(model="gpt4", app_name="layout",
                        src=Dialect.OMP, tgt=Dialect.CUDA, plan=None):
    app = get_app(app_name)
    llm = SimulatedLLM(model, src, tgt, plan=plan)
    builder = PromptBuilder(src, tgt)
    bundle = builder.build(llm, app.source(src))
    response = llm.chat([
        ChatMessage("system", bundle.system),
        ChatMessage("user", bundle.full_user_prompt),
    ])
    return llm, app, extract_code_block(response.text)


class TestSimulatedLLM:
    def test_implements_protocol(self):
        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA,
                           plan=CellPlan())
        assert llm.context_length == 32768
        out = llm.generate("hello")
        assert out.model == "GPT-4"

    def test_clean_plan_emits_compilable_translation(self):
        from repro.toolchain import compiler_for

        _, app, code = build_and_translate(plan=CellPlan())
        assert code is not None
        assert "__global__" in code
        assert compiler_for(Dialect.CUDA).compile(code).ok

    def test_self_prompting_responses_distinct(self):
        llm = SimulatedLLM("codestral", Dialect.CUDA, Dialect.OMP,
                           plan=CellPlan())
        summary = llm.generate("Summarize the following OpenMP reference...")
        describe = llm.generate(
            "Describe succinctly what the following CUDA program computes:"
            "\n\n__global__ void k() {}"
        )
        assert summary.text != describe.text
        assert "CUDA" in describe.text

    def test_planned_fault_then_repair_on_matching_error(self):
        plan = CellPlan(self_corrections=1, fault_ids=("missing-semicolon",))
        llm, app, code = build_and_translate(plan=plan)
        from repro.toolchain import compiler_for

        cr = compiler_for(Dialect.CUDA).compile(code)
        assert not cr.ok  # first generation carries the fault
        # correction with the real stderr lands the repair
        from repro.prompts.dictionary import correction_prompt

        fixed_resp = llm.chat([ChatMessage("user", correction_prompt(
            "compile", code, cr.command, cr.stderr
        ))])
        fixed = extract_code_block(fixed_resp.text)
        assert compiler_for(Dialect.CUDA).compile(fixed).ok

    def test_repair_requires_matching_error_text(self):
        plan = CellPlan(self_corrections=1, fault_ids=("missing-semicolon",))
        llm, app, code = build_and_translate(plan=plan)
        from repro.prompts.dictionary import correction_prompt
        from repro.toolchain import compiler_for

        # a correction prompt quoting an unrelated error does not advance
        resp = llm.chat([ChatMessage("user", correction_prompt(
            "compile", code, "nvcc", "error: something entirely unrelated"
        ))])
        still_broken = extract_code_block(resp.text)
        assert not compiler_for(Dialect.CUDA).compile(still_broken).ok

    def test_na_compile_plan_never_compiles(self):
        from repro.prompts.dictionary import correction_prompt
        from repro.toolchain import compiler_for

        plan = CellPlan(outcome="na-compile",
                        fault_ids=("kernel-called-directly",))
        llm, app, code = build_and_translate(plan=plan)
        for _ in range(3):
            cr = compiler_for(Dialect.CUDA).compile(code)
            assert not cr.ok
            resp = llm.chat([ChatMessage("user", correction_prompt(
                "compile", code, cr.command, cr.stderr
            ))])
            code = extract_code_block(resp.text)

    def test_stochastic_plan_is_seed_deterministic(self):
        a = SimulatedLLM("deepseek", Dialect.CUDA, Dialect.OMP, seed=7)
        b = SimulatedLLM("deepseek", Dialect.CUDA, Dialect.OMP, seed=7)
        c = SimulatedLLM("deepseek", Dialect.CUDA, Dialect.OMP, seed=8)
        assert a.plan == b.plan
        # different seeds eventually give different plans (not guaranteed for
        # any single pair, so just check the objects are well-formed)
        assert c.plan.outcome in ("ok", "na-compile", "na-runtime", "na-output")

    def test_paper_plan_coverage(self):
        # all 80 cells planned
        from repro.llm.profiles import all_paper_plans

        plans = all_paper_plans()
        assert len(plans) == 80
        assert paper_plan("gpt4", "omp2cuda", "jacobi") is not None
        assert paper_plan("gpt4", "omp2cuda", "unknown-app") is None


class TestClients:
    def test_ollama_round_trip_with_fake_transport(self):
        seen = {}

        def transport(url, payload):
            seen["url"] = url
            seen["payload"] = payload
            return {
                "message": {"content": "```c\nint main(){return 0;}\n```"},
                "prompt_eval_count": 11,
                "eval_count": 7,
            }

        client = OllamaClient("codestral:22b", 32768, transport=transport)
        out = client.chat([ChatMessage("user", "translate this")])
        assert seen["url"].endswith("/api/chat")
        assert seen["payload"]["model"] == "codestral:22b"
        assert seen["payload"]["stream"] is False
        assert out.prompt_tokens == 11
        assert out.completion_tokens == 7
        assert "int main" in out.text

    def test_ollama_malformed_response(self):
        client = OllamaClient("m", 1000, transport=lambda u, p: {"oops": 1})
        with pytest.raises(TransportError):
            client.chat([ChatMessage("user", "x")])

    def test_openai_round_trip_with_fake_transport(self):
        def transport(url, payload):
            assert url.endswith("/v1/chat/completions")
            return {
                "choices": [{"message": {"content": "hello"}}],
                "usage": {"prompt_tokens": 5, "completion_tokens": 2},
            }

        client = OpenAIChatClient("gpt-4", 32768, transport=transport)
        out = client.chat([ChatMessage("system", "s"), ChatMessage("user", "u")])
        assert out.text == "hello"
        assert out.total_tokens == 7

    def test_openai_malformed_response(self):
        client = OpenAIChatClient("m", 1000, transport=lambda u, p: {"choices": []})
        with pytest.raises(TransportError):
            client.chat([ChatMessage("user", "x")])

    def test_chat_message_role_validated(self):
        with pytest.raises(ValueError):
            ChatMessage("wizard", "hi")
