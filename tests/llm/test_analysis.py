"""Tests for the transpiler's static-analysis helpers."""

from __future__ import annotations

from repro.llm.analysis import (
    assigned_scalars,
    collect_identifiers,
    declared_names,
    pointer_access_kinds,
    substitute,
)
from repro.minilang import parse
from repro.minilang.source import Dialect, SourceFile


def body_of(text: str, dialect: Dialect = Dialect.C):
    program, diags = parse(SourceFile("t", text, dialect))
    assert not diags.has_errors, diags.render()
    return program.function("f").body


class TestCollectIdentifiers:
    def test_collects_reads_writes_and_calls(self):
        body = body_of(
            "void f(float* a, int n) { int i = n + g(a[0]); a[i] = 0.0f; }"
        )
        names = collect_identifiers(body)
        assert {"a", "n", "i", "g"} <= names

    def test_collects_pragma_clause_names(self):
        body = body_of(
            "void f(float* a, int n) { float s = 0.0f;\n"
            "#pragma omp target teams distribute parallel for "
            "map(to: a[0:n]) reduction(+: s)\n"
            "for (int i = 0; i < n; i++) { s += a[i]; }\n"
            "}",
            Dialect.OMP,
        )
        names = collect_identifiers(body)
        assert {"a", "s", "n"} <= names


class TestPointerAccessKinds:
    def test_read_only(self):
        body = body_of("void f(float* a, float* b, int n) { b[0] = a[0] + a[1]; }")
        acc = pointer_access_kinds(body)
        assert acc["a"].map_kind == "to"
        assert acc["b"].map_kind == "from"

    def test_read_write(self):
        body = body_of("void f(float* a) { a[0] = a[0] * 2.0f; }")
        assert pointer_access_kinds(body)["a"].map_kind == "tofrom"

    def test_compound_assignment_is_read_write(self):
        body = body_of("void f(int* a) { a[3] += 1; }")
        assert pointer_access_kinds(body)["a"].map_kind == "tofrom"

    def test_address_of_element_is_read_write(self):
        body = body_of(
            "__global__ void f(int* a) { atomicAdd(&a[0], 1); }", Dialect.CUDA
        )
        assert pointer_access_kinds(body)["a"].map_kind == "tofrom"

    def test_nested_index_reads_inner(self):
        body = body_of("void f(float* a, int* idx, int i) { float x = a[idx[i]]; }")
        acc = pointer_access_kinds(body)
        assert acc["a"].read
        assert acc["idx"].read and not acc["idx"].written


class TestSubstitute:
    def test_renames_everywhere(self):
        body = body_of("void f(float* a, int n) { a[n] = a[n - 1]; g(a, n); }")
        substitute(body, {"a": "d_a", "n": "size"})
        names = collect_identifiers(body)
        assert "a" not in names and "n" not in names
        assert {"d_a", "size"} <= names

    def test_renames_pragma_clauses(self):
        body = body_of(
            "void f(float* a, int n) {\n"
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n"
            "for (int i = 0; i < n; i++) { a[i] = 0.0f; }\n"
            "}",
            Dialect.OMP,
        )
        substitute(body, {"a": "arr"})
        from repro.minilang import ast

        pragma = next(
            s for s in ast.walk_stmts(body) if isinstance(s, ast.Pragma)
        )
        assert pragma.pragma.maps[0].name == "arr"

    def test_empty_mapping_noop(self):
        body = body_of("void f(int x) { x = x + 1; }")
        substitute(body, {})
        assert "x" in collect_identifiers(body)


class TestScalarHelpers:
    def test_assigned_scalars(self):
        body = body_of("void f(int a, int b, int c) { a = 1; b += 2; c++; }")
        assert assigned_scalars(body) == {"a", "b", "c"}

    def test_declared_names(self):
        body = body_of("void f() { int x = 1; { float y = 2.0f; } }")
        assert declared_names(body) == {"x", "y"}
