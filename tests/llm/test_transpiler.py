"""Tests for the rule-based CUDA <-> OpenMP transpiler."""

from __future__ import annotations

import pytest

from repro.hecbench import all_apps, get_app
from repro.llm.transpiler import TranspileError, TranspileOptions, Transpiler
from repro.minilang.source import Dialect
from repro.toolchain import Executor, compiler_for


def run_translated(app, src_d, tgt_d, options=None):
    tr = Transpiler(options)
    code = tr.translate(app.source(src_d), src_d, tgt_d)
    cr = compiler_for(tgt_d).compile(code)
    assert cr.ok, cr.stderr
    ex = Executor()
    run = ex.run(cr.program, tgt_d, app.args,
                 work_scale=app.work_scale, launch_scale=app.launch_scale)
    assert run.ok, run.stderr
    ref_cr = compiler_for(tgt_d).compile(app.source(tgt_d))
    ref = ex.run(ref_cr.program, tgt_d, app.args,
                 work_scale=app.work_scale, launch_scale=app.launch_scale)
    return code, run, ref


@pytest.mark.parametrize("app_name", [a.name for a in all_apps()])
@pytest.mark.parametrize("direction", ["omp2cuda", "cuda2omp"])
class TestFullMatrix:
    def test_translation_is_correct(self, app_name, direction):
        app = get_app(app_name)
        src_d, tgt_d = (
            (Dialect.OMP, Dialect.CUDA) if direction == "omp2cuda"
            else (Dialect.CUDA, Dialect.OMP)
        )
        code, run, ref = run_translated(app, src_d, tgt_d)
        assert run.stdout == ref.stdout


class TestStyles:
    def test_literal_mode_correct_and_slower_for_jacobi(self):
        app = get_app("jacobi")
        _, smart, ref = run_translated(app, Dialect.CUDA, Dialect.OMP)
        _, literal, _ = run_translated(
            app, Dialect.CUDA, Dialect.OMP,
            TranspileOptions(use_data_region=False),
        )
        assert smart.stdout == literal.stdout
        # literal re-maps per sweep -> much slower than the data-region style
        assert literal.runtime_seconds > 5 * smart.runtime_seconds
        # ... and lands near the slow OpenMP reference
        assert literal.runtime_seconds == pytest.approx(
            ref.runtime_seconds, rel=0.5
        )

    def test_hoisting_collapses_idempotent_repeats(self):
        app = get_app("bsearch")
        _, plain, _ = run_translated(app, Dialect.CUDA, Dialect.OMP)
        _, hoisted, _ = run_translated(
            app, Dialect.CUDA, Dialect.OMP,
            TranspileOptions(hoist_invariant_repeat=True),
        )
        assert hoisted.stdout == plain.stdout
        assert hoisted.runtime_seconds < plain.runtime_seconds / 4

    def test_hoisting_refuses_loop_carried_repeats(self):
        # matrix-rotate's repeat loop swaps buffers: must NOT be hoisted.
        app = get_app("matrix-rotate")
        tr = Transpiler(TranspileOptions(hoist_invariant_repeat=True))
        code = tr.translate(app.cuda_source, Dialect.CUDA, Dialect.OMP)
        cr = compiler_for(Dialect.OMP).compile(code)
        run = Executor().run(cr.program, Dialect.OMP, app.args)
        ref_cr = compiler_for(Dialect.OMP).compile(app.omp_source)
        ref = Executor().run(ref_cr.program, Dialect.OMP, app.args)
        assert run.stdout == ref.stdout

    def test_privatize_atomics_reduces_atomic_traffic(self):
        app = get_app("atomicCost")
        _, plain, ref = run_translated(app, Dialect.CUDA, Dialect.OMP)
        code, privatized, _ = run_translated(
            app, Dialect.CUDA, Dialect.OMP,
            TranspileOptions(privatize_atomics=True),
        )
        assert privatized.stdout == plain.stdout
        assert privatized.profile.total_atomics < plain.profile.total_atomics / 3
        assert privatized.runtime_seconds < ref.runtime_seconds

    def test_reduction_styles(self):
        app = get_app("jacobi")
        atomic_code, run_a, _ = run_translated(
            app, Dialect.CUDA, Dialect.OMP,
            TranspileOptions(reduction_style="atomic"),
        )
        red_code, run_r, _ = run_translated(
            app, Dialect.CUDA, Dialect.OMP,
            TranspileOptions(reduction_style="reduction"),
        )
        assert run_a.stdout == run_r.stdout
        assert "reduction(+:" in red_code
        assert "#pragma omp atomic" in atomic_code

    def test_rename_scheme_changes_identifiers_consistently(self):
        app = get_app("layout")
        plain, _, _ = run_translated(app, Dialect.CUDA, Dialect.OMP)
        renamed, run, ref = run_translated(
            app, Dialect.CUDA, Dialect.OMP,
            TranspileOptions(rename_scheme="verbose"),
        )
        assert run.stdout == ref.stdout
        assert "v_repeat" in renamed
        assert plain != renamed

    def test_hoist_decls_restructures_but_preserves_output(self):
        app = get_app("pathfinder")
        code, run, ref = run_translated(
            app, Dialect.CUDA, Dialect.OMP, TranspileOptions(hoist_decls=True)
        )
        assert run.stdout == ref.stdout
        # declarations come before the first assignment
        lines = [ln.strip() for ln in code.splitlines() if ln.strip()]
        first_assign = next(
            i for i, ln in enumerate(lines) if ln.startswith("cols =")
        )
        decl = next(i for i, ln in enumerate(lines) if ln == "int cols;")
        assert decl < first_assign

    def test_kernel_naming_and_block_size(self):
        app = get_app("layout")
        tr = Transpiler(TranspileOptions(
            kernel_name_template="kernel_{i}", block_size=128
        ))
        code = tr.translate(app.omp_source, Dialect.OMP, Dialect.CUDA)
        assert "__global__ void kernel_0" in code
        assert ", 128>>>" in code


class TestErrors:
    def test_same_dialect_rejected(self):
        with pytest.raises(ValueError):
            Transpiler().translate("int main(){}", Dialect.CUDA, Dialect.CUDA)

    def test_unparsable_source_rejected(self):
        with pytest.raises(TranspileError):
            Transpiler().translate("int main() { int x = ; }",
                                   Dialect.OMP, Dialect.CUDA)

    def test_non_canonical_loop_rejected(self):
        src = (
            "int main() { int n = 4; int i = 0;\n"
            "float* a = (float*)malloc(n * sizeof(float));\n"
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n"
            "for (i = 0; i < n; i += 2) { a[i] = 1.0f; }\n"
            "return 0; }"
        )
        with pytest.raises(TranspileError):
            Transpiler().translate(src, Dialect.OMP, Dialect.CUDA)
