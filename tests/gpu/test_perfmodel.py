"""Tests for the analytic performance model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import A100_40GB, PerformanceModel
from repro.gpu.stats import (
    ExecutionProfile,
    HostParallelEvent,
    KernelEvent,
    OpCounters,
    TransferEvent,
)


def make_counters(ops=0.0, load=0.0, store=0.0, atomics=0.0) -> OpCounters:
    c = OpCounters()
    c.ops = ops
    c.load_bytes = load
    c.store_bytes = store
    c.atomics = atomics
    return c


def kernel(ops=1e6, mem=1e6, atomics=0, threads=4096, block=256, api="cuda",
           limit=None) -> KernelEvent:
    return KernelEvent(
        name="k", total_threads=threads, block_size=block,
        counters=make_counters(ops=ops, load=mem / 2, store=mem / 2,
                               atomics=atomics),
        api=api, parallel_limit=limit,
    )


class TestKernelTime:
    def setup_method(self):
        self.pm = PerformanceModel()

    def test_more_work_takes_longer(self):
        t1, _, _ = self.pm.kernel_time(kernel(ops=1e6))
        t2, _, _ = self.pm.kernel_time(kernel(ops=1e8))
        assert t2 > t1

    def test_serialized_kernel_much_slower(self):
        fast, _, _ = self.pm.kernel_time(kernel(ops=1e6, threads=4096))
        slow, _, _ = self.pm.kernel_time(kernel(ops=1e6, threads=4096, limit=1))
        assert slow > fast * 100

    def test_occupancy_penalty_for_tiny_launches(self):
        wide, _, _ = self.pm.kernel_time(kernel(ops=1e6, threads=4096))
        narrow, _, _ = self.pm.kernel_time(kernel(ops=1e6, threads=64))
        assert narrow > wide

    def test_omp_region_pays_more_overhead_than_cuda_launch(self):
        _, cuda_oh, _ = self.pm.kernel_time(kernel(api="cuda"))
        _, omp_oh, _ = self.pm.kernel_time(kernel(api="omp"))
        assert omp_oh > cuda_oh

    def test_omp_compute_efficiency_below_cuda(self):
        c, _, _ = self.pm.kernel_time(kernel(ops=1e9, mem=0, api="cuda"))
        o, _, _ = self.pm.kernel_time(kernel(ops=1e9, mem=0, api="omp"))
        assert o > c

    def test_atomics_cost_time(self):
        _, _, none = self.pm.kernel_time(kernel(atomics=0))
        _, _, many = self.pm.kernel_time(kernel(atomics=1e6))
        assert none == 0
        assert many == pytest.approx(1e6 / A100_40GB.atomic_rate)

    def test_tiny_block_wastes_warp_lanes(self):
        full, _, _ = self.pm.kernel_time(kernel(ops=1e8, threads=4096, block=256))
        tiny, _, _ = self.pm.kernel_time(kernel(ops=1e8, threads=4096, block=1))
        assert tiny > full * 5

    def test_memory_bound_kernel_uses_bandwidth(self):
        t, _, _ = self.pm.kernel_time(kernel(ops=0, mem=1.3e12, threads=4096))
        # one second of data at effective bandwidth (full occupancy)
        assert t == pytest.approx(1.0, rel=0.01)


class TestTransferTime:
    def test_bytes_over_pcie(self):
        pm = PerformanceModel()
        bw, lat = pm.transfer_time(TransferEvent(bytes=int(2e10), direction="h2d"))
        assert bw == pytest.approx(1.0)
        assert lat == A100_40GB.transfer_latency

    def test_omp_map_transfers_slower(self):
        pm = PerformanceModel()
        cuda_bw, _ = pm.transfer_time(TransferEvent(bytes=10**9, direction="h2d"))
        omp_bw, _ = pm.transfer_time(
            TransferEvent(bytes=10**9, direction="h2d", api="omp")
        )
        assert omp_bw > cuda_bw

    def test_d2d_uses_hbm(self):
        pm = PerformanceModel()
        pcie, _ = pm.transfer_time(TransferEvent(bytes=10**9, direction="h2d"))
        hbm, _ = pm.transfer_time(TransferEvent(bytes=10**9, direction="d2d"))
        assert hbm < pcie


class TestHostTime:
    def test_serial_vs_parallel(self):
        pm = PerformanceModel()
        c = make_counters(ops=1e9)
        serial = pm.host_time(c, 1)
        parallel = pm.host_time(c, 64)
        assert parallel < serial

    def test_parallel_capped_at_core_count(self):
        pm = PerformanceModel()
        c = make_counters(ops=1e9)
        assert pm.host_time(c, 64) == pytest.approx(pm.host_time(c, 1024))


class TestBreakdown:
    def make_profile(self) -> ExecutionProfile:
        p = ExecutionProfile()
        p.host = make_counters(ops=1e6)
        p.events.append(kernel())
        p.events.append(TransferEvent(bytes=10**6, direction="h2d"))
        p.events.append(HostParallelEvent(counters=make_counters(ops=1e6),
                                          num_threads=8))
        return p

    def test_total_is_sum_of_components(self):
        pm = PerformanceModel()
        bd = pm.breakdown(self.make_profile())
        assert bd.total == pytest.approx(
            bd.host + bd.kernel_compute + bd.kernel_overhead + bd.atomic
            + bd.transfer_bandwidth + bd.transfer_latency
        )

    def test_work_scale_scales_throughput_terms(self):
        pm = PerformanceModel()
        p = self.make_profile()
        b1 = pm.breakdown(p, work_scale=1.0, launch_scale=1.0)
        b2 = pm.breakdown(p, work_scale=10.0, launch_scale=1.0)
        assert b2.kernel_compute == pytest.approx(10 * b1.kernel_compute)
        assert b2.kernel_overhead == pytest.approx(b1.kernel_overhead)

    def test_launch_scale_scales_overhead_terms(self):
        pm = PerformanceModel()
        p = self.make_profile()
        b1 = pm.breakdown(p, work_scale=1.0, launch_scale=1.0)
        b2 = pm.breakdown(p, work_scale=1.0, launch_scale=7.0)
        assert b2.kernel_overhead == pytest.approx(7 * b1.kernel_overhead)
        assert b2.transfer_latency == pytest.approx(7 * b1.transfer_latency)
        assert b2.kernel_compute == pytest.approx(b1.kernel_compute)

    def test_launch_scale_defaults_to_work_scale(self):
        pm = PerformanceModel()
        p = self.make_profile()
        assert pm.seconds(p, 5.0) == pytest.approx(pm.seconds(p, 5.0, 5.0))

    def test_invalid_scales_rejected(self):
        pm = PerformanceModel()
        with pytest.raises(ValueError):
            pm.breakdown(ExecutionProfile(), work_scale=0)
        with pytest.raises(ValueError):
            pm.breakdown(ExecutionProfile(), work_scale=1, launch_scale=-1)

    @given(st.floats(min_value=0.1, max_value=1e6),
           st.floats(min_value=0.1, max_value=1e6))
    @settings(max_examples=30, deadline=None)
    def test_time_monotone_in_scales(self, w, lat):
        pm = PerformanceModel()
        p = self.make_profile()
        base = pm.seconds(p, w, lat)
        assert pm.seconds(p, w * 2, lat) > base
        assert pm.seconds(p, w, lat * 2) > base


class TestOpCounters:
    def test_add_and_scaled(self):
        a = make_counters(ops=1, load=2, store=3, atomics=4)
        b = make_counters(ops=10, load=20, store=30, atomics=40)
        a.add(b)
        assert (a.ops, a.load_bytes, a.store_bytes, a.atomics) == (11, 22, 33, 44)
        s = a.scaled(2.0)
        assert s.ops == 22 and s.atomics == 88

    def test_mem_bytes(self):
        c = make_counters(load=5, store=7)
        assert c.mem_bytes == 12

    def test_profile_summary(self):
        p = ExecutionProfile()
        p.events.append(kernel(atomics=5))
        p.events.append(TransferEvent(bytes=100, direction="d2h"))
        s = p.summary()
        assert s["kernel_launches"] == 1
        assert s["atomics"] == 5
        assert s["transfer_bytes"] == 100
