"""Tests for the synthetic kernel generator (repro.synth)."""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import UnknownApplicationError, UnknownSuiteError
from repro.synth import (
    FAMILIES,
    SynthSpec,
    SynthSuiteSpec,
    app_from_name,
    differential_check,
    family_names,
    generate_app,
    generate_suite_apps,
    is_synth_name,
    parse_suite_spec,
)
from repro.toolchain import Executor

ALL_FAMILIES = family_names()


def _digest(app) -> str:
    h = hashlib.sha256()
    h.update(app.cuda_source.encode("utf-8"))
    h.update(b"\x00")
    h.update(app.omp_source.encode("utf-8"))
    return h.hexdigest()


class TestNaming:
    def test_name_round_trip(self):
        spec = SynthSpec("stencil", difficulty=2, seed=7)
        assert spec.name == "synth-stencil-d2-s7"
        rebuilt = generate_app(SynthSpec.from_name(spec.name))
        direct = generate_app(spec)
        assert rebuilt.cuda_source == direct.cuda_source
        assert rebuilt.omp_source == direct.omp_source
        assert rebuilt.work_scale == direct.work_scale

    def test_is_synth_name(self):
        assert is_synth_name("synth-matmul-d1-s0")
        assert not is_synth_name("jacobi")
        assert not is_synth_name("synth-matmul")

    def test_unknown_family_in_name_raises(self):
        with pytest.raises(UnknownApplicationError, match="known families"):
            app_from_name("synth-frobnicate-d1-s0")

    def test_malformed_name_raises(self):
        with pytest.raises(UnknownApplicationError):
            app_from_name("synth-stencil-s0-d1")

    def test_zero_difficulty_name_is_an_unknown_app(self):
        # The name grammar admits d0 but generation requires >= 1; it must
        # surface as the usual unknown-app error, not a raw ValueError.
        with pytest.raises(UnknownApplicationError, match="difficulty"):
            app_from_name("synth-stencil-d0-s0")


class TestDeterminism:
    def test_same_spec_is_byte_identical_in_process(self):
        for family in ALL_FAMILIES:
            spec = SynthSpec(family, difficulty=2, seed=3)
            assert _digest(generate_app(spec)) == _digest(generate_app(spec))

    def test_byte_identical_across_processes(self):
        """Same (family, difficulty, seed) -> same bytes in a fresh process."""
        specs = [SynthSpec(f, difficulty=2, seed=5) for f in ALL_FAMILIES]
        expected = {s.name: _digest(generate_app(s)) for s in specs}
        script = (
            "import hashlib, json\n"
            "from repro.synth import SynthSpec, generate_app\n"
            "out = {}\n"
            f"for name in {json.dumps(list(expected))}:\n"
            "    app = generate_app(SynthSpec.from_name(name))\n"
            "    h = hashlib.sha256()\n"
            "    h.update(app.cuda_source.encode('utf-8'))\n"
            "    h.update(b'\\x00')\n"
            "    h.update(app.omp_source.encode('utf-8'))\n"
            "    out[name] = h.hexdigest()\n"
            "print(json.dumps(out))\n"
        )
        env = dict(os.environ)
        repro_root = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repro_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        assert json.loads(proc.stdout) == expected

    def test_seeds_actually_vary_the_sources(self):
        for family in ALL_FAMILIES:
            digests = {
                _digest(generate_app(SynthSpec(family, 1, s)))
                for s in range(4)
            }
            assert len(digests) > 1, f"{family}: seeds produced one program"

    def test_difficulty_changes_the_program(self):
        a = generate_app(SynthSpec("stencil", 1, 0))
        b = generate_app(SynthSpec("stencil", 3, 0))
        assert a.cuda_source != b.cuda_source


@pytest.fixture(scope="module")
def executor():
    return Executor()


@pytest.mark.parametrize("family", ALL_FAMILIES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_differential_agreement(family, seed, executor):
    """Every family agrees CUDA-vs-OMP at 3 seeds (the self-check oracle)."""
    app = generate_app(SynthSpec(family, difficulty=1 + seed % 3, seed=seed))
    report = differential_check(app, executor)
    assert report.ok, f"{app.name} failed [{report.stage}]: {report.detail}"


class TestAppSpecs:
    def test_generated_apps_carry_perf_scales(self):
        for family in ALL_FAMILIES:
            app = generate_app(SynthSpec(family, 1, 0))
            assert app.work_scale > 0
            assert app.launch_scale > 0
            assert app.paper_runtime_cuda is None
            assert app.category.startswith("Synthetic")

    def test_detects_broken_pairs(self, executor):
        """A corrupted pair must fail the oracle, not slip through."""
        import dataclasses

        app = generate_app(SynthSpec("reduction", 1, 0))
        broken = dataclasses.replace(
            app, omp_source=app.omp_source.replace("sum += ", "sum += 2.0 * ")
        )
        report = differential_check(broken, executor)
        assert not report.ok
        assert report.stage == "output-mismatch"


class TestSuiteSpecs:
    def test_parse_and_round_trip(self):
        spec = parse_suite_spec("synth:stencil,reduction:seeds=3:difficulty=2")
        assert spec.families == ("stencil", "reduction")
        assert spec.seeds == 3
        assert spec.difficulty == 2
        assert parse_suite_spec(spec.spec_string) == spec

    def test_defaults_and_all(self):
        spec = parse_suite_spec("synth:all")
        assert spec.families == tuple(FAMILIES)
        assert spec.seeds == 1
        assert spec.difficulty == 1

    def test_generate_suite_apps_family_major(self):
        apps = generate_suite_apps(["stencil", "matmul"], seeds=2)
        assert [a.name for a in apps] == [
            "synth-stencil-d1-s0", "synth-stencil-d1-s1",
            "synth-matmul-d1-s0", "synth-matmul-d1-s1",
        ]

    def test_unknown_family_rejected(self):
        with pytest.raises(UnknownSuiteError, match="known families"):
            parse_suite_spec("synth:frobnicate")

    def test_bad_option_rejected(self):
        with pytest.raises(UnknownSuiteError, match="bad synth suite option"):
            parse_suite_spec("synth:stencil:turbo=9")
        with pytest.raises(UnknownSuiteError, match="integer"):
            parse_suite_spec("synth:stencil:seeds=lots")
        with pytest.raises(UnknownSuiteError, match="seeds >= 1"):
            SynthSuiteSpec(families=("stencil",), seeds=0)
