"""The repro.* logging namespace."""

from __future__ import annotations

import logging

import pytest

from repro.telemetry.log import configure, get_logger


class TestGetLogger:
    def test_names_are_namespaced(self):
        assert get_logger("cli").name == "repro.cli"
        assert get_logger().name == "repro"

    def test_children_propagate_to_the_namespace_root(self):
        assert get_logger("experiments.parallel").parent.name in (
            "repro.experiments", "repro"
        )


class TestConfigure:
    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            configure("loud")

    def test_repeated_calls_do_not_stack_handlers(self):
        configure("info")
        configure("debug")
        configure("info")
        root = get_logger()
        handlers = [
            h for h in root.handlers if isinstance(h, logging.StreamHandler)
        ]
        assert len(handlers) == 1
        assert root.level == logging.INFO
        assert root.propagate is False

    def test_messages_reach_the_current_stderr_bare(self, capsys):
        configure("info")
        get_logger("cli").info("0 pipeline run(s) executed; artifacts in x")
        err = capsys.readouterr().err
        # Bare %(message)s format: CI greps for the exact anchored line.
        assert err == "0 pipeline run(s) executed; artifacts in x\n"

    def test_level_filters_debug_messages(self, capsys):
        configure("info")
        get_logger("x").debug("hidden")
        assert capsys.readouterr().err == ""
        configure("debug")
        get_logger("x").debug("shown")
        assert "shown" in capsys.readouterr().err

    def test_rebinds_to_a_swapped_stderr(self, capsys):
        # capsys swaps sys.stderr per test; each configure() call must
        # re-point the shared handler at the current object.
        configure("info")
        get_logger("y").info("first")
        configure("info")
        get_logger("y").info("second")
        err = capsys.readouterr().err
        assert "first" in err and "second" in err
