"""Runtime profiles: determinism pin, snapshot loading, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.hecbench import get_app
from repro.minilang.source import Dialect
from repro.pipeline.baseline import BaselinePreparer
from repro.telemetry.profile import (
    DEFAULT_TOLERANCE,
    TOLERANCE_ENV,
    RuntimeProfile,
    diff_profile_snapshots,
    load_profile_snapshot,
    profile_from_execution,
    regression_gate,
    render_profile_diff,
    resolve_tolerance,
)

#: Frozen digest of the layout/CUDA baseline profile.  The interpreter,
#: the performance model and the profile condensation are all
#: deterministic; if this digest moves, execution cost semantics changed
#: and every committed perf baseline (benchmarks/perf_baseline.json)
#: must be regenerated with `repro perf profile`.
LAYOUT_CUDA_DIGEST = (
    "4321c2a2884a4ffce4574dc53509e485c3b30795a86502b9c95472c6a92d7e8a"
)


def layout_profile() -> RuntimeProfile:
    app = get_app("layout")
    baseline = BaselinePreparer().prepare(
        app.cuda_source, Dialect.CUDA, args=app.args,
        work_scale=app.work_scale, launch_scale=app.launch_scale,
    )
    profile = profile_from_execution(baseline.execution)
    assert profile is not None
    return profile


def sample_profile(**overrides) -> dict:
    data = dict(
        steps=100, kernel_launches=2, flat_launches=1, barrier_launches=1,
        slow_launches=0, omp_launches=0, barrier_waits=8, atomics=4,
        host_ops=50, kernel_ops=200, mem_read_bytes=1024,
        mem_write_bytes=512, transfers=2, transfer_bytes=2048,
        sim_seconds=0.25,
    )
    data.update(overrides)
    return data


class TestRuntimeProfile:
    def test_round_trips_through_dict(self):
        profile = RuntimeProfile.from_dict(sample_profile())
        assert RuntimeProfile.from_dict(profile.to_dict()) == profile

    def test_missing_fields_default_to_zero(self):
        profile = RuntimeProfile.from_dict({"steps": 7})
        assert profile.steps == 7
        assert profile.kernel_launches == 0
        assert profile.sim_seconds == 0.0

    def test_canonical_json_is_sorted_and_compact(self):
        text = RuntimeProfile.from_dict(sample_profile()).canonical_json()
        assert ": " not in text and ", " not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_digest_is_stable_for_equal_profiles(self):
        a = RuntimeProfile.from_dict(sample_profile())
        b = RuntimeProfile.from_dict(sample_profile())
        assert a.digest() == b.digest()
        c = RuntimeProfile.from_dict(sample_profile(steps=101))
        assert a.digest() != c.digest()


class TestProfileFromExecution:
    def test_frozen_digest_of_a_fixed_scenario(self):
        # Byte-determinism across processes: the digest is a constant.
        assert layout_profile().digest() == LAYOUT_CUDA_DIGEST

    def test_two_runs_produce_identical_profiles(self):
        assert layout_profile() == layout_profile()

    def test_launch_path_split_sums_to_total(self):
        profile = layout_profile()
        assert profile.kernel_launches == (
            profile.flat_launches + profile.barrier_launches
            + profile.slow_launches + profile.omp_launches
        )
        assert profile.steps > 0 and profile.sim_seconds > 0

    def test_execution_without_interpreter_profile_is_none(self):
        class Bare:
            profile = None

        assert profile_from_execution(Bare()) is None


class TestResolveTolerance:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        assert resolve_tolerance() == DEFAULT_TOLERANCE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "0.25")
        assert resolve_tolerance() == 0.25

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "0.25")
        assert resolve_tolerance(0.05) == 0.05


class TestLoadProfileSnapshot:
    def test_bench_artifact_profiles_block(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(
            {"bench": "x", "profiles": {"layout/cuda": sample_profile()}}
        ), encoding="utf-8")
        snap = load_profile_snapshot(path)
        assert list(snap) == ["layout/cuda"]

    def test_campaign_manifest_perf_cells(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({
            "type": "campaign-manifest",
            "cells": [
                {"variant": "full", "seed": 1,
                 "perf": {"scenarios": 4, "scored": 3,
                          "speedup": {"geomean": 1.2}}},
                {"variant": "bare", "seed": 1, "perf": None},
            ],
        }), encoding="utf-8")
        snap = load_profile_snapshot(path)
        assert list(snap) == ["full/seed1"]

    def test_manifest_without_perf_blocks_raises(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(
            {"cells": [{"variant": "v", "seed": 1}]}
        ), encoding="utf-8")
        with pytest.raises(ValueError, match="perf"):
            load_profile_snapshot(path)

    def test_bare_mapping_and_single_profile(self, tmp_path):
        mapping = tmp_path / "map.json"
        mapping.write_text(json.dumps(
            {"a": sample_profile(), "b": sample_profile()}
        ), encoding="utf-8")
        assert sorted(load_profile_snapshot(mapping)) == ["a", "b"]
        single = tmp_path / "one.json"
        single.write_text(json.dumps(sample_profile()), encoding="utf-8")
        assert list(load_profile_snapshot(single)) == ["profile"]

    def test_unrecognized_layout_raises(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": "world"}), encoding="utf-8")
        with pytest.raises(ValueError, match="unrecognized"):
            load_profile_snapshot(path)


class TestDiffProfileSnapshots:
    def test_identical_snapshots_are_ok(self):
        snap = {"layout/cuda": sample_profile()}
        report = diff_profile_snapshots(snap, snap, tolerance=0.10)
        assert report["ok"] and not report["regressions"]

    def test_within_tolerance_is_ok(self):
        base = {"p": sample_profile(steps=100)}
        curr = {"p": sample_profile(steps=109)}
        assert diff_profile_snapshots(base, curr, tolerance=0.10)["ok"]

    def test_cost_counter_regression_beyond_tolerance(self):
        base = {"p": sample_profile(steps=100)}
        curr = {"p": sample_profile(steps=120)}
        report = diff_profile_snapshots(base, curr, tolerance=0.10)
        assert not report["ok"] and report["regressions"] == ["p"]
        bad = [d for d in report["entries"][0]["deltas"] if d["regressed"]]
        assert [d["counter"] for d in bad] == ["steps"]

    def test_cost_improvement_is_not_a_regression(self):
        base = {"p": sample_profile(steps=100, sim_seconds=1.0)}
        curr = {"p": sample_profile(steps=50, sim_seconds=0.5)}
        assert diff_profile_snapshots(base, curr, tolerance=0.10)["ok"]

    def test_speedup_drop_is_a_regression(self):
        base = {"cell": {"scenarios": 4, "scored": 4,
                         "speedup": {"geomean": 1.5, "slower": 0}}}
        curr = {"cell": {"scenarios": 4, "scored": 4,
                         "speedup": {"geomean": 1.0, "slower": 0}}}
        report = diff_profile_snapshots(base, curr, tolerance=0.10)
        assert not report["ok"]
        bad = [d for d in report["entries"][0]["deltas"] if d["regressed"]]
        assert [d["counter"] for d in bad] == ["speedup.geomean"]

    def test_more_slow_scenarios_is_a_regression(self):
        base = {"cell": {"speedup": {"slower": 1}}}
        curr = {"cell": {"speedup": {"slower": 2}}}
        assert not diff_profile_snapshots(base, curr, tolerance=0.10)["ok"]

    def test_coverage_loss_fails_even_without_deltas(self):
        base = {"a": sample_profile(), "b": sample_profile()}
        curr = {"a": sample_profile()}
        report = diff_profile_snapshots(base, curr, tolerance=0.10)
        assert not report["ok"]
        assert report["only_in_baseline"] == ["b"]
        assert not report["regressions"]

    def test_new_profiles_in_current_stay_ok(self):
        base = {"a": sample_profile()}
        curr = {"a": sample_profile(), "b": sample_profile()}
        report = diff_profile_snapshots(base, curr, tolerance=0.10)
        assert report["ok"] and report["only_in_current"] == ["b"]

    def test_env_tolerance_applies(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "0.5")
        base = {"p": sample_profile(steps=100)}
        curr = {"p": sample_profile(steps=140)}
        assert diff_profile_snapshots(base, curr)["ok"]

    def test_render_mentions_regressed_counters_and_verdict(self):
        base = {"p": sample_profile(steps=100)}
        curr = {"p": sample_profile(steps=200)}
        text = render_profile_diff(
            diff_profile_snapshots(base, curr, tolerance=0.10)
        )
        assert "p: REGRESSED" in text
        assert "steps: 100 -> 200 (2.000x)" in text
        assert "verdict: 1 profile(s) regressed" in text


class TestRegressionGate:
    def test_gate_round_trip(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(
            {"profiles": {"p": sample_profile(steps=100)}}
        ), encoding="utf-8")
        good = tmp_path / "good.json"
        good.write_text(base.read_text(encoding="utf-8"), encoding="utf-8")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"profiles": {"p": sample_profile(steps=150)}}
        ), encoding="utf-8")
        _, ok = regression_gate(base, good, tolerance=0.10)
        assert ok
        report, ok = regression_gate(base, bad, tolerance=0.10)
        assert not ok and report["regressions"] == ["p"]
