"""Flight recorder: bounded ring, dumps, SIGTERM plumbing."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.pipeline.events import StageFinished, StageStarted
from repro.telemetry.recorder import (
    FLIGHT_DIR_ENV,
    FlightRecorder,
    configure_flight_recorder,
    get_flight_recorder,
    install_sigterm_handler,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestRing:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder(StageStarted(stage=f"s{i}"))
        assert len(recorder) == 3

    def test_events_capture_dataclass_fields_with_offsets(self):
        recorder = FlightRecorder()
        recorder(StageFinished(stage="generate", seconds=0.25,
                               outcome="proceed"))
        [record] = list(recorder._events)
        assert record["event"] == "StageFinished"
        assert record["stage"] == "generate"
        assert record["outcome"] == "proceed"
        assert record["t"] >= 0.0

    def test_long_string_fields_are_truncated(self):
        recorder = FlightRecorder()
        recorder(StageFinished(stage="x" * 2000, seconds=0.0, outcome="halt"))
        [record] = list(recorder._events)
        assert len(record["stage"]) == 501  # 500 chars + ellipsis

    def test_clear_drops_events_and_context(self):
        recorder = FlightRecorder()
        recorder(StageStarted(stage="s"))
        recorder.set_context(scenario="x")
        recorder.clear()
        assert len(recorder) == 0


class TestDump:
    def test_dump_writes_events_context_and_exception(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        recorder(StageStarted(stage="generate"))
        recorder.set_context(scenario={"app": "layout"})
        try:
            raise RuntimeError("boom")
        except RuntimeError as exc:
            path = recorder.dump("pipeline-exception", exc)
        assert path == tmp_path / f"flight-{os.getpid()}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["reason"] == "pipeline-exception"
        assert payload["context"] == {"scenario": {"app": "layout"}}
        assert payload["events"][0]["event"] == "StageStarted"
        assert payload["exception"]["type"] == "RuntimeError"
        assert "boom" in payload["exception"]["traceback"]

    def test_dump_honours_the_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path / "flights"))
        recorder = FlightRecorder()
        path = recorder.dump("sigterm")
        assert path is not None and path.parent == tmp_path / "flights"

    def test_dump_never_raises_on_unwritable_directory(self, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("x", encoding="utf-8")
        recorder = FlightRecorder(directory=target / "nested")
        assert recorder.dump("sigterm") is None


class TestProfiledExecutionDump:
    def test_dump_triggered_from_inside_a_profiled_execution(self, tmp_path):
        # A diagnostic subscriber may dump the ring the moment an
        # execution finishes — with the profiling layer on, that dump
        # must carry the runtime profile of the execution that fired it.
        from repro.hecbench import get_app
        from repro.llm.profiles import CellPlan
        from repro.llm.simulated import SimulatedLLM
        from repro.minilang.source import Dialect
        from repro.pipeline import build_pipeline
        from repro.pipeline.events import ExecutionFinished

        recorder = FlightRecorder(directory=tmp_path)
        dumps = []

        def on_event(event):
            recorder(event)
            if isinstance(event, ExecutionFinished) and event.profile:
                dumps.append(recorder.dump("profiled-execution"))

        llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
        pipeline = build_pipeline(
            llm, Dialect.OMP, Dialect.CUDA, subscribers=[on_event]
        )
        app = get_app("layout")
        result = pipeline.run(
            app.omp_source, reference_target_code=app.cuda_source,
            args=app.args, work_scale=app.work_scale,
            launch_scale=app.launch_scale,
        )
        assert result.ok
        assert dumps and dumps[0] is not None
        payload = json.loads(dumps[0].read_text(encoding="utf-8"))
        assert payload["reason"] == "profiled-execution"
        execs = [
            e for e in payload["events"] if e["event"] == "ExecutionFinished"
        ]
        assert execs and isinstance(execs[-1].get("profile"), dict)
        assert execs[-1]["profile"]["steps"] > 0


class TestGlobals:
    def test_get_flight_recorder_is_a_stable_singleton(self):
        assert get_flight_recorder() is get_flight_recorder()

    def test_configure_rebuilds_the_singleton(self, tmp_path):
        recorder = configure_flight_recorder(tmp_path, capacity=7)
        assert get_flight_recorder() is recorder
        assert recorder.capacity == 7 and recorder.directory == tmp_path


class TestSigterm:
    def test_install_refuses_off_the_main_thread(self):
        with ThreadPoolExecutor(max_workers=1) as pool:
            assert pool.submit(install_sigterm_handler).result() is False

    def test_install_on_main_thread_and_restore(self):
        previous = signal.getsignal(signal.SIGTERM)
        try:
            assert install_sigterm_handler() is True
            assert signal.getsignal(signal.SIGTERM) is not previous
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_sigterm_dumps_the_ring_and_preserves_exit_semantics(
        self, tmp_path
    ):
        script = (
            "import os, signal\n"
            "from repro.pipeline.events import StageStarted\n"
            "from repro.telemetry.recorder import (\n"
            "    configure_flight_recorder, install_sigterm_handler)\n"
            "recorder = configure_flight_recorder(os.environ['FD'])\n"
            "recorder(StageStarted(stage='generate'))\n"
            "assert install_sigterm_handler()\n"
            "os.kill(os.getpid(), signal.SIGTERM)\n"
        )
        env = dict(os.environ, PYTHONPATH=REPO_SRC, FD=str(tmp_path))
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, timeout=60,
        )
        # The handler re-raises after dumping: still killed by SIGTERM.
        assert proc.returncode == -signal.SIGTERM, proc.stderr.decode()
        dumps = list(tmp_path.glob("flight-*.json"))
        assert len(dumps) == 1
        payload = json.loads(dumps[0].read_text(encoding="utf-8"))
        assert payload["reason"] == "sigterm"
        assert payload["events"][0]["event"] == "StageStarted"
