"""SpanTracer against the real pipeline event types."""

from __future__ import annotations

from repro.pipeline.events import (
    CompileFinished,
    ExecutionFinished,
    LlmCallFinished,
    PipelineFinished,
    PipelineStarted,
    StageFinished,
    StageStarted,
)
from repro.telemetry.spans import Span, SpanTracer


def trace_one_run(tracer):
    tracer(PipelineStarted(model="GPT-4", source_dialect="omp",
                           target_dialect="cuda"))
    tracer(StageStarted(stage="generate"))
    tracer(LlmCallFinished(stage="generate", purpose="generate",
                           model="GPT-4", seconds=0.25,
                           prompt_tokens=120, completion_tokens=40))
    tracer(StageFinished(stage="generate", seconds=0.3, outcome="proceed"))
    tracer(StageStarted(stage="compile-correct"))
    tracer(CompileFinished(stage="compile-correct", ok=True, seconds=0.02,
                           cached=False))
    tracer(StageFinished(stage="compile-correct", seconds=0.05,
                         outcome="proceed"))
    tracer(StageStarted(stage="execute-correct"))
    tracer(ExecutionFinished(stage="execute-correct", ok=True, seconds=0.1,
                             steps=500, launches=3))
    tracer(StageFinished(stage="execute-correct", seconds=0.12,
                         outcome="proceed"))
    tracer(PipelineFinished(status="success", seconds=0.5))
    return tracer.drain()


class TestSpanTracer:
    def test_builds_the_span_tree(self):
        spans = trace_one_run(SpanTracer())
        by_id = {s["id"]: s for s in spans}
        root = by_id[0]
        assert root["kind"] == "pipeline" and "parent" not in root
        assert root["wall"] == 0.5
        assert root["attrs"]["status"] == "success"
        assert root["attrs"]["model"] == "GPT-4"
        assert "cpu" in root

        stages = [s for s in spans if s["kind"] == "stage"]
        assert [s["name"] for s in stages] == [
            "generate", "compile-correct", "execute-correct"
        ]
        assert all(s["parent"] == 0 for s in stages)
        assert [s["wall"] for s in stages] == [0.3, 0.05, 0.12]
        assert all(s["attrs"]["outcome"] == "proceed" for s in stages)
        assert all("cpu" in s for s in stages)

    def test_leaf_spans_parent_to_their_stage(self):
        spans = trace_one_run(SpanTracer())
        by_kind = {s["kind"]: s for s in spans}
        stage_ids = {s["name"]: s["id"] for s in spans if s["kind"] == "stage"}
        assert by_kind["llm"]["parent"] == stage_ids["generate"]
        assert by_kind["compile"]["parent"] == stage_ids["compile-correct"]
        assert by_kind["exec"]["parent"] == stage_ids["execute-correct"]
        assert by_kind["llm"]["attrs"] == {
            "purpose": "generate", "model": "GPT-4",
            "prompt_tokens": 120, "completion_tokens": 40,
        }
        assert by_kind["exec"]["attrs"] == {
            "ok": True, "steps": 500, "launches": 3,
        }

    def test_exec_leaf_carries_the_runtime_profile(self):
        profile = {"steps": 500, "kernel_launches": 3, "flat_launches": 3,
                   "atomics": 0, "sim_seconds": 0.125}
        tracer = SpanTracer()
        tracer(PipelineStarted(model="GPT-4", source_dialect="omp",
                               target_dialect="cuda"))
        tracer(StageStarted(stage="execute-correct"))
        tracer(ExecutionFinished(stage="execute-correct", ok=True,
                                 seconds=0.1, steps=500, launches=3,
                                 profile=profile))
        tracer(StageFinished(stage="execute-correct", seconds=0.12,
                             outcome="proceed"))
        tracer(PipelineFinished(status="success", seconds=0.5))
        spans = tracer.drain()
        exec_span = next(s for s in spans if s["kind"] == "exec")
        assert exec_span["attrs"]["profile"] == profile

    def test_leaf_start_is_backdated_by_its_duration(self):
        spans = trace_one_run(SpanTracer())
        llm = next(s for s in spans if s["kind"] == "llm")
        stage = next(s for s in spans if s["name"] == "generate"
                     and s["kind"] == "stage")
        # The event arrived 0.25s after the call began; the span must not
        # start after it ended, and never before the run's origin.
        assert 0.0 <= llm["start"] <= stage["start"] + 0.3

    def test_drain_resets_for_the_next_run(self):
        tracer = SpanTracer()
        first = trace_one_run(tracer)
        second = trace_one_run(tracer)
        assert [s["id"] for s in first] == [s["id"] for s in second]
        assert tracer.drain() == []

    def test_tracer_ignores_events_before_pipeline_started(self):
        tracer = SpanTracer()
        tracer(StageFinished(stage="generate", seconds=0.1, outcome="proceed"))
        tracer(CompileFinished(stage="x", ok=True, seconds=0.1, cached=False))
        spans = tracer.drain()
        # No root: leaves float parentless but nothing crashes.
        assert all(s["kind"] != "pipeline" for s in spans)


class TestSpanRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        span = Span(id=3, name="generate", kind="llm", start=0.1234567,
                    wall=0.25, parent=1, cpu=0.2,
                    attrs={"purpose": "generate"})
        restored = Span.from_dict(span.to_dict())
        assert restored.id == 3 and restored.parent == 1
        assert restored.start == round(0.1234567, 6)
        assert restored.attrs == {"purpose": "generate"}

    def test_to_dict_omits_empty_optional_fields(self):
        data = Span(id=0, name="pipeline", kind="pipeline", start=0.0).to_dict()
        assert "parent" not in data and "cpu" not in data
        assert "attrs" not in data
