"""Unit tests for the metrics registry and snapshot algebra."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
    record_run,
)


class TestInstruments:
    def test_counter_accumulates_per_label_series(self):
        reg = MetricsRegistry()
        c = reg.counter("pipeline.runs")
        c.inc(status="success")
        c.inc(status="success")
        c.inc(status="no-code")
        assert c.value(status="success") == 2
        assert c.value(status="no-code") == 1
        assert c.value(status="compile-failed") == 0

    def test_counter_rejects_negative_increments(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_label_keys_are_sorted_into_a_stable_series_name(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(b=2, a=1)
        reg.counter("c").inc(a=1, b=2)
        assert reg.snapshot()["counters"] == {"c{a=1,b=2}": 2.0}

    def test_gauge_is_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("cache.entries")
        assert g.value() is None
        g.set(3)
        g.set(7)
        assert g.value() == 7.0

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 2.0):
            h.observe(v)
        series = h.series()
        assert series["count"] == 4
        assert series["min"] == 0.05 and series["max"] == 2.0
        assert series["counts"] == [1, 2, 1]  # <=0.1, <=1.0, +inf
        assert series["sum"] == pytest.approx(3.05)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestSnapshots:
    def test_snapshot_is_json_able_and_detached(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(0.2)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        reg.counter("c").inc()
        assert snap["counters"]["c"] == 1.0  # copy, not a live view

    def test_providers_land_in_gauges_namespaced(self):
        reg = MetricsRegistry()
        reg.register_provider("compile_cache", lambda: {"hits": 3, "rate": 0.5})
        gauges = reg.snapshot()["gauges"]
        assert gauges["compile_cache.hits"] == 3.0
        assert gauges["compile_cache.rate"] == 0.5

    def test_broken_provider_does_not_break_snapshots(self):
        reg = MetricsRegistry()
        reg.register_provider("bad", lambda: 1 / 0)
        reg.register_provider("good", lambda: {"x": 1})
        assert reg.snapshot()["gauges"] == {"good.x": 1.0}

    def test_non_numeric_provider_values_are_dropped(self):
        reg = MetricsRegistry()
        reg.register_provider("p", lambda: {"n": 1, "path": "/tmp/x"})
        assert reg.snapshot()["gauges"] == {"p.n": 1.0}

    def test_reset_clears_series_but_keeps_providers(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.register_provider("p", lambda: {"x": 9})
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {"p.x": 9.0}


class TestSnapshotAlgebra:
    def test_diff_subtracts_counters_and_keeps_after_gauges(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(1)
        before = reg.snapshot()
        reg.counter("c").inc(2)
        reg.counter("new").inc()
        reg.gauge("g").set(10)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["counters"] == {"c": 2.0, "new": 1.0}
        assert delta["gauges"]["g"] == 10.0

    def test_diff_subtracts_histogram_counts(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        before = reg.snapshot()
        reg.histogram("h", buckets=(1.0,)).observe(2.0)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["counts"] == [0, 1]

    def test_diff_drops_unchanged_series(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(0.1)
        snap = reg.snapshot()
        delta = diff_snapshots(snap, reg.snapshot())
        assert delta["counters"] == {} and delta["histograms"] == {}

    def test_merge_sums_counters_and_histograms(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((reg_a, 1), (reg_b, 2)):
            reg.counter("c").inc(n)
            for _ in range(n):
                reg.histogram("h", buckets=(1.0,)).observe(0.5)
        merged = merge_snapshots([reg_a.snapshot(), reg_b.snapshot()])
        assert merged["counters"]["c"] == 3.0
        assert merged["histograms"]["h"]["count"] == 3
        assert merged["histograms"]["h"]["counts"] == [3, 0]

    def test_merge_tolerates_junk_entries(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        merged = merge_snapshots([None, "nope", reg.snapshot()])
        assert merged["counters"] == {"c": 1.0}


class TestRecordRun:
    SPANS = [
        {"id": 0, "name": "pipeline", "kind": "pipeline", "start": 0.0,
         "wall": 1.0, "attrs": {"status": "success"}},
        {"id": 1, "name": "generate", "kind": "stage", "start": 0.0,
         "wall": 0.4, "parent": 0, "attrs": {"outcome": "proceed"}},
        {"id": 2, "name": "generate", "kind": "llm", "start": 0.0,
         "wall": 0.3, "parent": 1,
         "attrs": {"purpose": "generate", "prompt_tokens": 100,
                   "completion_tokens": 40}},
        {"id": 3, "name": "compile", "kind": "compile", "start": 0.5,
         "wall": 0.01, "parent": 1, "attrs": {"ok": True, "cached": True}},
        {"id": 4, "name": "execute", "kind": "exec", "start": 0.6,
         "wall": 0.2, "parent": 1,
         "attrs": {"ok": True, "steps": 50, "launches": 2}},
    ]

    def test_record_run_derives_counters_from_spans(self):
        reg = MetricsRegistry()
        record_run("success", 2, 3, self.SPANS, registry=reg)
        counters = reg.snapshot()["counters"]
        assert counters["pipeline.runs{status=success}"] == 1.0
        assert counters["pipeline.corrections"] == 2.0
        assert counters["pipeline.attempts"] == 3.0
        assert counters["llm.calls{purpose=generate}"] == 1.0
        assert counters["llm.prompt_tokens"] == 100.0
        assert counters["llm.completion_tokens"] == 40.0
        assert counters["compile.calls{cached=true}"] == 1.0
        assert counters["exec.runs{ok=true}"] == 1.0
        assert counters["interp.steps"] == 50.0
        assert counters["interp.launches"] == 2.0
        hists = reg.snapshot()["histograms"]
        assert hists["llm.seconds"]["count"] == 1
        assert hists["stage.seconds{stage=generate}"]["count"] == 1

    def test_record_run_without_spans_counts_the_status_only(self):
        reg = MetricsRegistry()
        record_run("no-code", 0, 0, registry=reg)
        assert reg.snapshot()["counters"] == {
            "pipeline.runs{status=no-code}": 1.0
        }

    def test_record_run_derives_profile_counters(self):
        spans = [dict(s) for s in self.SPANS]
        spans[4] = dict(spans[4], attrs={
            "ok": True, "steps": 50, "launches": 2,
            "profile": {"atomics": 7, "barrier_waits": 12,
                        "flat_launches": 1, "barrier_launches": 1,
                        "slow_launches": 0, "omp_launches": 0},
        })
        reg = MetricsRegistry()
        record_run("success", 0, 0, spans, registry=reg)
        counters = reg.snapshot()["counters"]
        assert counters["interp.atomics"] == 7.0
        assert counters["interp.barrier_waits"] == 12.0
        assert counters["interp.path_launches{path=flat}"] == 1.0
        assert counters["interp.path_launches{path=barrier}"] == 1.0
        # Zero-launch paths emit no empty series.
        assert "interp.path_launches{path=slow}" not in counters
