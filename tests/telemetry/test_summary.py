"""Trace aggregation and rendering (repro trace show|summarize)."""

from __future__ import annotations

import pytest

from repro.telemetry import metrics as _metrics
from repro.telemetry.summary import (
    collect_trace_paths,
    critical_path_report,
    percentile,
    render_critical_path,
    render_trace_show,
    render_trace_summary,
    summarize_traces,
    trace_critical_path,
)
from repro.telemetry.tracefile import TraceWriter, load_trace_file


def spans_for(app, wall, status="success", cached=False):
    return [
        {"id": 0, "name": "pipeline", "kind": "pipeline", "start": 0.0,
         "wall": wall, "attrs": {"status": status}},
        {"id": 1, "name": "generate", "kind": "stage", "start": 0.0,
         "wall": wall / 2, "parent": 0, "attrs": {"outcome": "proceed"}},
        {"id": 2, "name": "generate", "kind": "llm", "start": 0.0,
         "wall": wall / 4, "parent": 1,
         "attrs": {"purpose": "generate", "prompt_tokens": 10,
                   "completion_tokens": 5}},
        {"id": 3, "name": "compile", "kind": "compile", "start": 0.1,
         "wall": 0.01, "parent": 1, "attrs": {"ok": True, "cached": cached}},
        {"id": 4, "name": "execute", "kind": "exec", "start": 0.2,
         "wall": 0.05, "parent": 1,
         "attrs": {"ok": True, "steps": 100, "launches": 2}},
    ]


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "sess.trace.jsonl"
    with TraceWriter(path) as writer:
        writer.write_trace(
            {"model": "gpt4", "direction": "omp2cuda", "app": "fast"},
            spans_for("fast", 0.1, cached=True),
        )
        writer.write_trace(
            {"model": "gpt4", "direction": "omp2cuda", "app": "slow"},
            spans_for("slow", 0.9, status="output-mismatch"),
        )
    return path


class TestPercentile:
    def test_empty_and_single(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0

    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0


class TestCollectTracePaths:
    def test_trace_file_resolves_to_itself(self, trace_file):
        assert collect_trace_paths(trace_file) == [trace_file]

    def test_session_resolves_to_its_sidecar(self, trace_file, tmp_path):
        session = tmp_path / "sess.jsonl"
        session.write_text("", encoding="utf-8")
        assert collect_trace_paths(session) == [trace_file]

    def test_untraced_session_raises_with_a_hint(self, tmp_path):
        session = tmp_path / "bare.jsonl"
        session.write_text("", encoding="utf-8")
        with pytest.raises(FileNotFoundError, match="--trace"):
            collect_trace_paths(session)

    def test_directory_prefers_canonical_over_shard_traces(self, tmp_path):
        sessions = tmp_path / "sessions"
        sessions.mkdir()
        for name in ("v.trace.jsonl", "v.shard-0-of-2.trace.jsonl"):
            with TraceWriter(sessions / name):
                pass
        assert collect_trace_paths(tmp_path) == [sessions / "v.trace.jsonl"]

    def test_unmerged_campaign_falls_back_to_shard_traces(self, tmp_path):
        sessions = tmp_path / "sessions"
        sessions.mkdir()
        with TraceWriter(sessions / "v.shard-0-of-2.trace.jsonl"):
            pass
        assert collect_trace_paths(tmp_path) == [
            sessions / "v.shard-0-of-2.trace.jsonl"
        ]

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_trace_paths(tmp_path)

    def test_campaign_dir_with_empty_sessions_dir_raises(self, tmp_path):
        # A campaign directory created but never run with --trace.
        (tmp_path / "sessions").mkdir()
        (tmp_path / "manifest.json").write_text("{}", encoding="utf-8")
        with pytest.raises(FileNotFoundError, match="--trace"):
            collect_trace_paths(tmp_path)


class TestTruncatedTail:
    def test_truncated_trace_file_keeps_the_parsed_prefix(
        self, trace_file, tmp_path
    ):
        # A killed worker can die mid-line; everything before the torn
        # record must still summarize.
        truncated = tmp_path / "torn.trace.jsonl"
        text = trace_file.read_text(encoding="utf-8")
        lines = text.splitlines(keepends=True)
        # Keep the header + first trace, tear the second trace record
        # mid-line (everything after it — the metrics record — is lost).
        torn = lines[:2] + [lines[2][: len(lines[2]) // 2]]
        truncated.write_text("".join(torn), encoding="utf-8")
        data = load_trace_file(truncated)
        assert len(data["traces"]) == 1
        summary = summarize_traces([truncated])
        assert summary["traces"] == 1
        report = critical_path_report([truncated])
        assert report["scenarios"] == 1


class TestSummarize:
    def test_summary_aggregates_every_dimension(self, trace_file):
        summary = summarize_traces([trace_file])
        assert summary["traces"] == 2
        assert summary["stages"]["generate"]["entries"] == 2
        assert summary["stages"]["generate"]["max"] == pytest.approx(0.45)
        assert summary["llm"]["calls"] == 2
        assert summary["llm"]["calls_by_purpose"] == {"generate": 2}
        assert summary["llm"]["prompt_tokens"] == 20
        assert summary["compile"] == {
            "calls": 2, "cached": 1, "cache_rate": 0.5
        }
        assert summary["exec"] == {"runs": 2, "steps": 200, "launches": 4}
        slowest = summary["slowest"]
        assert slowest[0]["scenario"]["app"] == "slow"
        assert slowest[0]["status"] == "output-mismatch"

    def test_top_limits_the_slowest_list(self, trace_file):
        assert len(summarize_traces([trace_file], top=1)["slowest"]) == 1

    def test_summary_carries_the_files_metric_deltas(self, tmp_path):
        path = tmp_path / "m.trace.jsonl"
        with TraceWriter(path) as writer:
            _metrics.REGISTRY.counter("test.summary").inc(5)
        summary = summarize_traces([path])
        assert summary["metrics"]["counters"]["test.summary"] == 5.0


class TestCriticalPath:
    def test_attributes_leaf_walls_and_overhead(self):
        trace = {
            "scenario": {"app": "x"},
            "spans": spans_for("x", 1.0),
        }
        row = trace_critical_path(trace)
        # llm 0.25, compile 0.01, exec 0.05 -> overhead 0.69 dominates.
        assert row["walls"]["llm"] == pytest.approx(0.25)
        assert row["walls"]["compile"] == pytest.approx(0.01)
        assert row["walls"]["exec"] == pytest.approx(0.05)
        assert row["walls"]["overhead"] == pytest.approx(0.69)
        assert row["dominant"] == "overhead"

    def test_dominant_leaf_wins_over_overhead(self):
        spans = spans_for("x", 1.0)
        spans[2]["wall"] = 0.9  # the llm leaf now dominates
        row = trace_critical_path({"scenario": {}, "spans": spans})
        assert row["dominant"] == "llm"

    def test_empty_trace_charges_nothing(self):
        row = trace_critical_path({"scenario": {}, "spans": []})
        assert row["wall"] == 0.0
        assert set(row["walls"].values()) == {0.0}

    def test_report_aggregates_counts_and_fractions(self, trace_file):
        report = critical_path_report([trace_file])
        assert report["scenarios"] == 2
        assert sum(report["dominant_counts"].values()) == 2
        fractions = report["mean_fractions"]
        assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-3)
        assert report["total_wall"] == pytest.approx(1.0)

    def test_render_lists_buckets_and_slowest(self, trace_file):
        text = render_critical_path(critical_path_report([trace_file]))
        assert "critical path over 2 scenario(s)" in text
        for bucket in ("llm", "compile", "exec", "overhead"):
            assert bucket in text
        assert "Slowest scenarios" in text
        assert "gpt4/omp2cuda/slow" in text

    def test_render_respects_top(self, trace_file):
        text = render_critical_path(critical_path_report([trace_file]), top=1)
        assert text.count("dominant=") == 1


class TestRendering:
    def test_summary_text_mentions_every_section(self, trace_file):
        text = render_trace_summary(summarize_traces([trace_file]))
        assert "2 trace(s)" in text
        assert "Per-stage latency" in text
        assert "LLM calls: 2" in text
        assert "cache rate" in text
        assert "Slowest traces" in text
        assert "gpt4/omp2cuda/slow" in text

    def test_show_renders_indented_span_trees(self, trace_file):
        text = render_trace_show([trace_file])
        assert "trace 0 · gpt4/omp2cuda/fast" in text
        assert "  pipeline (pipeline)" in text
        assert "    generate (stage)" in text
        assert "      compile (compile)" in text

    def test_show_respects_the_limit(self, trace_file):
        text = render_trace_show([trace_file], limit=1)
        assert "trace 0" in text and "trace 1" not in text
        assert "truncated" in text
