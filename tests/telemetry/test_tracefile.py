"""Trace-file writer, tolerant reader and shard merge."""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry import metrics as _metrics
from repro.telemetry.tracefile import (
    TRACE_FORMAT_VERSION,
    TraceWriter,
    iter_trace_records,
    load_trace_file,
    merge_trace_files,
    trace_path_for,
)

SPANS = [{"id": 0, "name": "pipeline", "kind": "pipeline", "start": 0.0,
          "wall": 0.5, "attrs": {"status": "success"}}]


def scenario(n):
    return {"model": "gpt4", "direction": "omp2cuda", "app": f"app{n}"}


class TestTracePath:
    def test_session_to_sidecar(self):
        assert trace_path_for("sessions/run.jsonl") == Path(
            "sessions/run.trace.jsonl"
        )

    def test_shard_session_keeps_its_shard_suffix(self):
        assert trace_path_for("v-seed1.shard-0-of-2.jsonl").name == (
            "v-seed1.shard-0-of-2.trace.jsonl"
        )


class TestTraceWriter:
    def test_header_traces_and_metrics_delta(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with TraceWriter(path) as writer:
            _metrics.REGISTRY.counter("test.tracefile").inc(3)
            assert writer.write_trace(scenario(0), SPANS) == 0
            assert writer.write_trace(scenario(1), SPANS) == 1
        data = load_trace_file(path)
        assert data["header"]["format"] == TRACE_FORMAT_VERSION
        assert [t["trace_id"] for t in data["traces"]] == [0, 1]
        assert data["traces"][0]["scenario"]["app"] == "app0"
        # Only what happened while the writer was open lands in its delta.
        assert data["metrics"]["counters"]["test.tracefile"] == 3.0

    def test_lines_are_compact_sorted_json(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with TraceWriter(path) as writer:
            writer.write_trace(scenario(0), SPANS)
        for line in path.read_text(encoding="utf-8").splitlines():
            parsed = json.loads(line)
            assert line == json.dumps(
                parsed, sort_keys=True, separators=(",", ":")
            )

    def test_resume_continues_trace_ids(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with TraceWriter(path) as writer:
            writer.write_trace(scenario(0), SPANS)
        with TraceWriter(path, resume=True) as writer:
            assert writer.write_trace(scenario(1), SPANS) == 1
        data = load_trace_file(path)
        assert [t["trace_id"] for t in data["traces"]] == [0, 1]

    def test_fresh_open_truncates_a_stale_file(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with TraceWriter(path) as writer:
            writer.write_trace(scenario(0), SPANS)
        with TraceWriter(path) as writer:  # resume=False: a fresh run
            pass
        assert load_trace_file(path)["traces"] == []

    def test_close_is_idempotent(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.trace.jsonl")
        writer.close()
        writer.close()
        records = list(iter_trace_records(tmp_path / "t.trace.jsonl"))
        assert [r["record"] for r in records] == ["header", "metrics"]


class TestTolerantReader:
    def test_truncated_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path) as writer:
            writer.write_trace(scenario(0), SPANS)
            writer.write_trace(scenario(1), SPANS)
        lines = path.read_text(encoding="utf-8").splitlines()
        # A reaped worker dies mid-line: keep header + first trace, then
        # half of the second trace's record.
        truncated = lines[0] + "\n" + lines[1] + "\n" + lines[2][: 30]
        path.write_text(truncated, encoding="utf-8")
        data = load_trace_file(path)
        assert [t["trace_id"] for t in data["traces"]] == [0]

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_trace_records(tmp_path / "absent.trace.jsonl")) == []


class TestMerge:
    def test_merge_remaps_ids_and_fuses_metric_deltas(self, tmp_path):
        shards = []
        for i in range(2):
            shard = tmp_path / f"v.shard-{i}-of-2.trace.jsonl"
            with TraceWriter(shard) as writer:
                _metrics.REGISTRY.counter("test.merge").inc()
                writer.write_trace(scenario(i * 2), SPANS)
                writer.write_trace(scenario(i * 2 + 1), SPANS)
            shards.append(shard)
        out = tmp_path / "v.trace.jsonl"
        assert merge_trace_files(shards, out) == 4
        data = load_trace_file(out)
        assert [t["trace_id"] for t in data["traces"]] == [0, 1, 2, 3]
        assert [t["scenario"]["app"] for t in data["traces"]] == [
            "app0", "app1", "app2", "app3"
        ]
        assert data["metrics"]["counters"]["test.merge"] == 2.0

    def test_merge_of_no_shards_writes_an_empty_canonical_file(self, tmp_path):
        out = tmp_path / "empty.trace.jsonl"
        assert merge_trace_files([], out) == 0
        data = load_trace_file(out)
        assert data["traces"] == []
        assert data["header"]["format"] == TRACE_FORMAT_VERSION
