"""Table VII: CUDA -> OpenMP translation results for all four LLMs."""

from __future__ import annotations

import pytest

from repro.experiments import render_translation_tables
from repro.llm.profiles import CUDA2OMP, all_paper_plans

#: Paper Table VII N/A pattern (model, app).
PAPER_NA = {
    ("gpt4", "dense-embedding"),
    ("codestral", "jacobi"), ("codestral", "dense-embedding"),
    ("deepseek", "dense-embedding"), ("deepseek", "pathfinder"),
    ("deepseek", "randomAccess"),
}


def test_table7(benchmark, paper_results):
    results = [r for r in paper_results if r.scenario.direction == CUDA2OMP]
    text = benchmark.pedantic(
        lambda: render_translation_tables(results)[CUDA2OMP],
        rounds=1, iterations=1,
    )
    print("\n" + text)

    measured_na = {
        (r.scenario.model_key, r.scenario.app_name)
        for r in results if not r.result.ok
    }
    assert measured_na == PAPER_NA

    plans = all_paper_plans()
    by_key = {
        (r.scenario.model_key, r.scenario.app_name): r.result for r in results
    }
    for r in results:
        if r.result.ok:
            plan = plans[(r.scenario.model_key, CUDA2OMP, r.scenario.app_name)]
            assert r.result.self_corrections == plan.self_corrections

    # The paper's standout cell: Codestral's pathfinder needed 34 rounds.
    assert by_key[("codestral", "pathfinder")].self_corrections == 34
    # ...and its bsearch translation ran ~20x slower (ratio ~0.05).
    assert by_key[("codestral", "bsearch")].ratio == pytest.approx(0.05, abs=0.03)
