"""Table IV: baseline runtimes of the ten HeCBench apps on the simulated
A100, side by side with the paper's measurements."""

from __future__ import annotations

import pytest

from repro.experiments import render_table4
from repro.hecbench import all_apps
from repro.minilang.source import Dialect
from repro.utils.tables import render_table


def test_table4(benchmark, baselines):
    text = benchmark.pedantic(
        lambda: render_table4(baselines), rounds=1, iterations=1
    )
    print("\n" + text)

    # paper-vs-measured companion table
    rows = []
    for app in all_apps():
        cuda = baselines.prepare(app.cuda_source, Dialect.CUDA, app.args,
                                 app.work_scale, app.launch_scale)
        omp = baselines.prepare(app.omp_source, Dialect.OMP, app.args,
                                app.work_scale, app.launch_scale)
        rows.append([
            app.name,
            app.paper_runtime_cuda, cuda.runtime_seconds,
            app.paper_runtime_omp, omp.runtime_seconds,
        ])
        # CUDA column calibrated exactly; OpenMP column preserves the winner.
        assert cuda.runtime_seconds == pytest.approx(
            app.paper_runtime_cuda, rel=0.02
        )
    print("\n" + render_table(
        ["Application", "paper CUDA", "sim CUDA", "paper OpenMP", "sim OpenMP"],
        rows,
        title="Table IV paper-vs-measured",
    ))
