"""Figure 1: the LASSI framework architecture, rendered from the live
pipeline's stage graph (not a hard-coded picture)."""

from __future__ import annotations

from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline import LassiPipeline


def render_architecture() -> str:
    llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
    pipeline = LassiPipeline(llm, Dialect.OMP, Dialect.CUDA)
    stages = pipeline.stage_names()
    width = max(len(s) for s in stages) + 4
    lines = ["Figure 1: The LASSI framework (stage graph of the live pipeline)"]
    for i, stage in enumerate(stages):
        lines.append("+" + "-" * width + "+")
        lines.append("| " + stage.ljust(width - 1) + "|")
        if "self-correction" in stage:
            lines.append("|" + "  <--- error feedback to LLM".ljust(width) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def test_fig1_architecture(benchmark):
    text = benchmark(render_architecture)
    assert "Source code preparation" in text
    assert "Compile self-correction loop" in text
    assert "Execute self-correction loop" in text
    assert "Automated output verification" in text
    print("\n" + text)
