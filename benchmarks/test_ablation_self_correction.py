"""Ablation: self-correction disabled (§III-D is LASSI's core mechanism).

The paper's framing: without feedback loops, every scenario that needed at
least one correction fails outright.  We rerun a representative slice of the
grid with ``self_correction=False`` and show the success-rate collapse.
"""

from __future__ import annotations

from repro.experiments import ExperimentRunner
from repro.pipeline import PipelineConfig

MODELS = ["gpt4", "wizardcoder"]
APPS = ["matrix-rotate", "jacobi", "bsearch", "entropy", "colorwheel"]


def run_slice(config=None):
    runner = ExperimentRunner(config=config)
    return runner.run(models=MODELS, apps=APPS)


def test_ablation_self_correction(benchmark, paper_results):
    ablated = benchmark.pedantic(
        lambda: run_slice(PipelineConfig(self_correction=False)),
        rounds=1, iterations=1,
    )
    keys = {(r.scenario.model_key, r.scenario.direction, r.scenario.app_name)
            for r in ablated}
    full = [r for r in paper_results
            if (r.scenario.model_key, r.scenario.direction,
                r.scenario.app_name) in keys]

    full_ok = sum(1 for r in full if r.result.ok)
    ablated_ok = sum(1 for r in ablated if r.result.ok)
    needed_corrections = sum(
        1 for r in full if r.result.ok and r.result.self_corrections > 0
    )
    print(f"\nAblation: self-correction OFF over {len(ablated)} scenarios")
    print(f"  with self-correction:    {full_ok}/{len(full)} succeed")
    print(f"  without self-correction: {ablated_ok}/{len(ablated)} succeed")
    print(f"  scenarios that needed >=1 correction: {needed_corrections}")
    # Every scenario that needed corrections fails without the loops.
    assert ablated_ok == full_ok - needed_corrections
    assert ablated_ok < full_ok
