"""Tables I-III: the LASSI prompt dictionary, rendered from the live code."""

from __future__ import annotations

from repro.minilang.source import Dialect
from repro.prompts import correction_prompt, system_prompt, translation_prompt
from repro.prompts.dictionary import SYSTEM_PROMPTS


def render_prompt_tables() -> str:
    lines = ["Table I: LASSI System Prompts", "-" * 60]
    lines.append("[General purpose]")
    lines.append(SYSTEM_PROMPTS["general"])
    lines.append("[CUDA to OpenMP]")
    lines.append(system_prompt(Dialect.CUDA, Dialect.OMP))
    lines.append("[OpenMP to CUDA]")
    lines.append(system_prompt(Dialect.OMP, Dialect.CUDA))
    lines.append("")
    lines.append("Table II: Target Language-specific Translation Prompts")
    lines.append("-" * 60)
    lines.append("[OpenMP to CUDA]")
    lines.append(translation_prompt(Dialect.OMP, Dialect.CUDA))
    lines.append("[CUDA to OpenMP]")
    lines.append(translation_prompt(Dialect.CUDA, Dialect.OMP))
    lines.append("")
    lines.append("Table III: Compilation and Execution Self-correction Prompts")
    lines.append("-" * 60)
    lines.append("[Compile error]")
    lines.append(correction_prompt("compile", "[generated code]",
                                   "[compiler command]", "[stderr]"))
    lines.append("[Execution error]")
    lines.append(correction_prompt("execute", "[generated code]",
                                   "[compiler command]", "[stderr]"))
    return "\n".join(lines)


def test_tables_1_2_3(benchmark):
    text = benchmark(render_prompt_tables)
    assert "professional coding AI assistant" in text
    assert "Re-factor the above code with a fix" in text
    print("\n" + text)
