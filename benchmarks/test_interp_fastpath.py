"""Per-launch latency of the interpreter's flat-schedule fast path.

Barrier-free, atomics-free kernels run through a flattened single-pass
schedule (bulk step charge, hoisted env copy, memoized geometry tuples);
kernels with ``__syncthreads`` go through the generator-based interleaver.
This microbench launches the *same arithmetic* both ways — once as a plain
kernel, once with a (semantically idle) trailing barrier — and reports the
per-launch latency of each, plus the compile cache's hit rate over repeated
front-ends of identical source.

Emits ``BENCH_interp_fastpath.json`` (picked up as a CI artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.minilang import parse
from repro.minilang.source import Dialect, SourceFile
from repro.interp import ProgramRunner
from repro.toolchain import CUDA_COMPILER, clear_compile_cache, compile_cache_stats

#: Kernel launches measured per variant.
LAUNCHES = 60
#: Launch geometry (threads = GRID_DIM * BLOCK_DIM per launch).
GRID_DIM, BLOCK_DIM = 4, 64
#: Repeated front-ends of one source for the compile-cache leg.
COMPILES = 25

BENCH_ARTIFACT = Path("BENCH_interp_fastpath.json")


def _kernel_source(with_barrier: bool) -> str:
    # Identical arithmetic; the barrier variant only appends __syncthreads()
    # so the work per thread matches and the schedule is the only variable.
    barrier = "  __syncthreads();\n" if with_barrier else ""
    return (
        "__global__ void work(float* a, float* b, int n) {\n"
        "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
        "  if (i < n) {\n"
        "    float x = a[i];\n"
        "    for (int k = 0; k < 8; k++) { x = x * 1.0001f + 0.5f; }\n"
        "    b[i] = x;\n"
        "  }\n"
        f"{barrier}"
        "}\n"
        "int main(int argc, char** argv) {\n"
        f"  int n = {GRID_DIM * BLOCK_DIM};\n"
        "  int iters = atoi(argv[1]);\n"
        "  float* a; float* b;\n"
        "  cudaMalloc(&a, n * sizeof(float));\n"
        "  cudaMalloc(&b, n * sizeof(float));\n"
        "  for (int it = 0; it < iters; it++) {\n"
        f"    work<<<{GRID_DIM}, {BLOCK_DIM}>>>(a, b, n);\n"
        "  }\n"
        "  return 0;\n"
        "}\n"
    )


def _per_launch_seconds(source_text: str) -> float:
    program, diags = parse(SourceFile("bench.cu", source_text, Dialect.CUDA))
    assert not diags.has_errors, diags.render()
    # One warm-up launch on the SAME runner compiles the kernel body to
    # closures (they are cached per ProgramRunner), so the measured run is
    # pure launch+execute.  The runner's profile accumulates across runs,
    # hence the +1 in the event-count assertion.
    runner = ProgramRunner(program, Dialect.CUDA)
    warmup = runner.run(["1"])
    assert warmup.ok, warmup.error
    start = time.perf_counter()
    outcome = runner.run([str(LAUNCHES)])
    elapsed = time.perf_counter() - start
    assert outcome.ok, outcome.error
    assert len(outcome.profile.kernel_events) == LAUNCHES + 1
    return elapsed / LAUNCHES


def test_fastpath_per_launch_latency():
    fast_s = _per_launch_seconds(_kernel_source(with_barrier=False))
    barrier_s = _per_launch_seconds(_kernel_source(with_barrier=True))

    clear_compile_cache()
    for _ in range(COMPILES):
        result = CUDA_COMPILER.compile(_kernel_source(with_barrier=False))
        assert result.ok, result.stderr
    cache = compile_cache_stats()

    BENCH_ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "interp_fastpath",
                "launches": LAUNCHES,
                "threads_per_launch": GRID_DIM * BLOCK_DIM,
                "per_launch_us_fastpath": round(fast_s * 1e6, 1),
                "per_launch_us_barrier": round(barrier_s * 1e6, 1),
                "barrier_vs_fastpath": round(barrier_s / fast_s, 2),
                "compile_cache": {
                    "compiles": COMPILES,
                    "hits": cache["hits"],
                    "misses": cache["misses"],
                    "hit_rate": round(cache["hit_rate"], 4),
                },
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # The flat schedule must beat the generator interleaver for the same
    # arithmetic, and repeated identical front-ends must be nearly all hits.
    assert fast_s < barrier_s, (
        f"flat schedule ({fast_s * 1e6:.0f}us/launch) should be faster than "
        f"the barrier interleaver ({barrier_s * 1e6:.0f}us/launch)"
    )
    assert cache["misses"] == 1 and cache["hits"] == COMPILES - 1
