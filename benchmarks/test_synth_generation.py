"""Throughput and reliability of the synthetic scenario generator.

Measures two things over the full family catalogue at several seeds:

* **generation rate** — paired CUDA+OMP scenarios rendered per second
  (pure template expansion; must be effectively free next to the pipeline
  runs it feeds);
* **differential pass rate** — the fraction of generated pairs whose two
  dialects compile, execute, and print byte-identical output through the
  interpreter.  The generator's contract is 100%: a disagreeing pair is a
  template bug, not a benchmark.

Emits ``BENCH_synth_generation.json`` (picked up as a CI artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.synth import (
    SynthSpec,
    differential_check,
    family_names,
    generate_app,
)
from repro.toolchain import Executor

BENCH_ARTIFACT = Path("BENCH_synth_generation.json")

#: Seeds per family; every (family, seed) pair is checked differentially.
SEEDS = 3

#: Template expansion is string work; even a slow CI box renders far more
#: than this many scenarios per second.
MIN_GENERATION_RATE = 20.0


def test_synth_generation_rate_and_agreement():
    specs = [
        SynthSpec(family, difficulty=1 + seed % 3, seed=seed)
        for family in family_names()
        for seed in range(SEEDS)
    ]

    start = time.perf_counter()
    apps = [generate_app(spec) for spec in specs]
    generation_s = time.perf_counter() - start
    generation_rate = len(apps) / generation_s

    executor = Executor()
    start = time.perf_counter()
    reports = [differential_check(app, executor) for app in apps]
    check_s = time.perf_counter() - start

    failures = [r for r in reports if not r.ok]
    pass_rate = (len(reports) - len(failures)) / len(reports)

    BENCH_ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "synth_generation",
                "families": len(family_names()),
                "seeds_per_family": SEEDS,
                "scenarios": len(apps),
                "generation_seconds": round(generation_s, 4),
                "scenarios_generated_per_second": round(generation_rate, 1),
                "differential_check_seconds": round(check_s, 4),
                "differential_pass_rate": round(pass_rate, 4),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert pass_rate == 1.0, "differential failures: " + ", ".join(
        f"{r.app_name}[{r.stage}]" for r in failures
    )
    assert generation_rate > MIN_GENERATION_RATE, (
        f"generated only {generation_rate:.1f} scenarios/s "
        f"(floor {MIN_GENERATION_RATE})"
    )
