"""Table V: the four evaluated LLMs (registry-rendered)."""

from __future__ import annotations

from repro.experiments import render_table5


def test_table5(benchmark):
    text = benchmark(render_table5)
    assert "GPT-4" in text and "DeepSeek Coder v2" in text
    print("\n" + text)
