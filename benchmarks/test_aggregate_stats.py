"""§V-B/C headline statistics: measured vs paper."""

from __future__ import annotations

import pytest

from repro.experiments import direction_stats, headline_summary
from repro.experiments.stats import PAPER_HEADLINES
from repro.llm.profiles import CUDA2OMP, OMP2CUDA


def test_headline_statistics(benchmark, paper_results):
    text = benchmark.pedantic(
        lambda: headline_summary(paper_results), rounds=1, iterations=1
    )
    print("\n" + text)

    stats = direction_stats(paper_results)
    # Success rates match the paper exactly (80% and 85%).
    assert stats[OMP2CUDA].success_rate == pytest.approx(
        PAPER_HEADLINES[OMP2CUDA]["success_rate"], abs=1e-9
    )
    assert stats[CUDA2OMP].success_rate == pytest.approx(
        PAPER_HEADLINES[CUDA2OMP]["success_rate"], abs=1e-9
    )
    # Within-10%-or-faster and first-try rates land close to the paper.
    assert stats[OMP2CUDA].within_10pct_rate == pytest.approx(
        PAPER_HEADLINES[OMP2CUDA]["within_10pct_rate"], abs=0.15
    )
    assert stats[CUDA2OMP].within_10pct_rate == pytest.approx(
        PAPER_HEADLINES[CUDA2OMP]["within_10pct_rate"], abs=0.15
    )
    assert stats[OMP2CUDA].first_try_rate == pytest.approx(
        PAPER_HEADLINES[OMP2CUDA]["first_try_rate"], abs=0.05
    )
    assert stats[CUDA2OMP].first_try_rate == pytest.approx(
        PAPER_HEADLINES[CUDA2OMP]["first_try_rate"], abs=0.05
    )
    # Sim-T >= 0.6 rate: our transpiler-based generations are more
    # reference-like than real LLM output; documented deviation — assert the
    # direction ordering only (cuda2omp translations more similar).
    assert stats[CUDA2OMP].high_similarity_rate >= stats[OMP2CUDA].high_similarity_rate - 0.2
