"""§V-D discussion anecdotes, reproduced mechanistically.

1. Codestral / bsearch (CUDA->OpenMP): the translated code drops the
   256-thread configuration and serializes the device loop — the paper saw
   a ~20x slowdown with identical output.
2. DeepSeek / atomicCost (CUDA->OpenMP): the translation privatizes the
   histogram, issuing a fraction of the atomic operations — the paper saw a
   66x speedup with identical output (our reduced-scale model reproduces the
   direction and the mechanism; the magnitude is occupancy-limited, see
   EXPERIMENTS.md).
"""

from __future__ import annotations


from repro.experiments.runner import ExperimentRunner, Scenario
from repro.hecbench import get_app
from repro.minilang.source import Dialect
from repro.pipeline import BaselinePreparer


def run_cell(model, app_name):
    runner = ExperimentRunner()
    return runner.run_scenario(Scenario(model, "cuda2omp", app_name)).result


def test_bsearch_single_thread_slowdown(benchmark):
    result = benchmark.pedantic(
        lambda: run_cell("codestral", "bsearch"), rounds=1, iterations=1
    )
    assert result.ok
    app = get_app("bsearch")
    ref = BaselinePreparer().prepare(
        app.omp_source, Dialect.OMP, app.args, app.work_scale, app.launch_scale
    )
    slowdown = result.runtime_seconds / ref.runtime_seconds
    print(f"\nCodestral bsearch CUDA->OpenMP: generated {result.runtime_seconds:.4f}s"
          f" vs reference {ref.runtime_seconds:.4f}s -> {slowdown:.1f}x slower"
          f" (paper: ~20x)")
    print("generated pragma:", [
        ln.strip() for ln in result.generated_code.splitlines()
        if "#pragma omp target" in ln
    ][0])
    assert slowdown > 5  # large slowdown, same output
    assert "num_threads(1)" in result.generated_code


def test_atomiccost_privatization_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: run_cell("deepseek", "atomicCost"), rounds=1, iterations=1
    )
    assert result.ok
    app = get_app("atomicCost")
    ref = BaselinePreparer().prepare(
        app.omp_source, Dialect.OMP, app.args, app.work_scale, app.launch_scale
    )
    speedup = ref.runtime_seconds / result.runtime_seconds
    print(f"\nDeepSeek atomicCost CUDA->OpenMP: generated "
          f"{result.runtime_seconds:.3f}s vs reference {ref.runtime_seconds:.3f}s"
          f" -> {speedup:.1f}x faster (paper: 66x; occupancy-limited here)")
    assert speedup > 1.3
    assert "local_" in result.generated_code  # the privatized histogram
