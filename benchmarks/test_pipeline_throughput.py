"""Micro-benchmarks of the substrate itself (pytest-benchmark timings).

Not a paper artifact: these track the cost of the pieces the 80-scenario
experiment leans on, so performance regressions in the simulator show up.
"""

from __future__ import annotations

from repro.hecbench import get_app
from repro.llm.transpiler import Transpiler
from repro.minilang.source import Dialect
from repro.toolchain import Executor, compiler_for


def test_compile_throughput(benchmark):
    app = get_app("jacobi")
    result = benchmark(
        lambda: compiler_for(Dialect.CUDA).compile(app.cuda_source)
    )
    assert result.ok


def test_execute_throughput(benchmark):
    app = get_app("layout")
    program = compiler_for(Dialect.OMP).compile(app.omp_source).program
    ex = Executor()
    run = benchmark(lambda: ex.run(program, Dialect.OMP, app.args))
    assert run.ok


def test_transpile_throughput(benchmark):
    app = get_app("pathfinder")
    tr = Transpiler()
    code = benchmark(
        lambda: tr.translate(app.cuda_source, Dialect.CUDA, Dialect.OMP)
    )
    assert "#pragma omp" in code
