"""Cost of the runtime-profiling layer, and the perf-gate's input.

Two deliverables, emitted as ``BENCH_perf_profile.json``:

* **collection overhead** — wall time of a grid with profile collection
  on (the default: every execution condensed into a
  :class:`~repro.telemetry.profile.RuntimeProfile` riding the
  ``ExecutionFinished`` event and the result's ``profile`` block) versus
  the same grid with both collection seams stubbed out, best-of-N on
  each side.  Must stay under :data:`MAX_PROFILE_OVERHEAD` — profiling
  is bookkeeping, not science.
* **the profiles block** — deterministic baseline profiles of the
  grid's applications (the same snapshot ``repro perf profile``
  builds).  The CI perf-gate job diffs this block against the committed
  ``benchmarks/perf_baseline.json`` with ``repro perf regress``; a
  drift beyond tolerance means execution cost semantics changed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import api
from repro.experiments import ParallelExperimentRunner
from repro.pipeline import BaselinePreparer
from repro.pipeline.stages import finalize, loops

#: Ceiling on profiled-vs-stubbed grid wall time.
MAX_PROFILE_OVERHEAD = 0.05
#: Trials per leg; the minimum of each side is compared.
TRIALS = 3
#: The measured grid: 1 model x 1 direction x 4 apps = 4 scenarios.
GRID = dict(
    models=["gpt4"],
    directions=["omp2cuda"],
    apps=["layout", "pathfinder", "matrix-rotate", "bsearch"],
)

BENCH_ARTIFACT = Path("BENCH_perf_profile.json")


def _timed_grid(baselines) -> float:
    runner = ParallelExperimentRunner(jobs=1, baselines=baselines)
    start = time.perf_counter()
    results = runner.run(**GRID)
    elapsed = time.perf_counter() - start
    assert len(results) == 4
    return elapsed


def test_profile_collection_overhead_stays_under_budget(monkeypatch):
    baselines = BaselinePreparer()
    # Warm the shared baselines and the process-wide compile cache so
    # both timed legs pay identical toolchain costs.
    _timed_grid(baselines)

    profiled = min(_timed_grid(baselines) for _ in range(TRIALS))
    sample = ParallelExperimentRunner(jobs=1, baselines=baselines).run(
        models=["gpt4"], directions=["omp2cuda"], apps=["layout"]
    )[0].result
    assert sample.profile is not None, "profiled leg produced no profile"

    # The disabled leg: both collection seams are module-level precisely
    # so this bench can stub them and measure the difference.
    monkeypatch.setattr(
        loops, "_execution_profile_payload", lambda execution: None
    )
    monkeypatch.setattr(
        finalize, "score_profiles", lambda reference, generated: None
    )
    disabled = min(_timed_grid(baselines) for _ in range(TRIALS))
    monkeypatch.undo()

    overhead = max(0.0, profiled / disabled - 1.0)

    # The snapshot the perf-gate diffs against the committed baseline.
    snapshot = api.profile_baselines(apps=GRID["apps"])
    assert snapshot == api.profile_baselines(apps=GRID["apps"]), (
        "baseline profiles are not deterministic"
    )

    BENCH_ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "perf_profile",
                "scenarios": len(GRID["apps"]),
                "trials": TRIALS,
                "profiled_seconds": round(profiled, 4),
                "disabled_seconds": round(disabled, 4),
                "overhead_fraction": round(overhead, 5),
                "budget_fraction": MAX_PROFILE_OVERHEAD,
                "profiles": snapshot["profiles"],
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert overhead < MAX_PROFILE_OVERHEAD, (
        f"profile collection costs {overhead:.1%} of grid wall time "
        f"(budget {MAX_PROFILE_OVERHEAD:.0%}): "
        f"profiled {profiled:.3f}s vs disabled {disabled:.3f}s"
    )
