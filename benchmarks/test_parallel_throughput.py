"""Wall-clock speedup of the parallel grid over the serial baseline.

The real §V workload is bounded by LLM round-trips (network latency to a
hosted model or inference time on local hardware), which a worker pool
overlaps.  The :class:`SimulatedLLM` responds instantly, so to measure what
parallelism buys we re-introduce a fixed per-scenario latency modelling the
round-trip — small enough to keep the bench a smoke test, large enough to
dominate the pure-Python compute that the GIL serialises anyway.

Emits ``BENCH_parallel_throughput.json`` (picked up as a CI artifact) with
the serial/parallel timings and the measured speedup.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments import ParallelExperimentRunner

#: Modelled LLM round-trip per scenario (seconds).
SCENARIO_LATENCY = 0.15
#: Worker threads for the parallel leg.
JOBS = 4
#: The measured grid: 2 models x 1 direction x 4 apps = 8 scenarios.
GRID = dict(
    models=["gpt4", "codestral"],
    directions=["omp2cuda"],
    apps=["layout", "entropy", "bsearch", "pathfinder"],
)
#: Minimum accepted speedup.  Latency overlap alone yields ~1.5x even on a
#: single-core box; keep head-room so a loaded CI runner does not flake.
MIN_SPEEDUP = 1.1

BENCH_ARTIFACT = Path("BENCH_parallel_throughput.json")


class _LatencyModelRunner(ParallelExperimentRunner):
    """Grid runner with a fixed LLM round-trip latency per scenario."""

    def run_scenario(self, scenario, app=None):
        time.sleep(SCENARIO_LATENCY)
        return super().run_scenario(scenario, app)


def _timed_grid(jobs: int):
    runner = _LatencyModelRunner(jobs=jobs)
    start = time.perf_counter()
    results = runner.run(**GRID)
    elapsed = time.perf_counter() - start
    return results, elapsed


def test_parallel_grid_beats_serial():
    serial_results, serial_s = _timed_grid(jobs=1)
    parallel_results, parallel_s = _timed_grid(jobs=JOBS)

    # Parallelism must not change the science: same cells, same statuses.
    assert [r.scenario for r in parallel_results] == [
        r.scenario for r in serial_results
    ]
    assert [r.result.status for r in parallel_results] == [
        r.result.status for r in serial_results
    ]

    speedup = serial_s / parallel_s
    BENCH_ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "parallel_throughput",
                "scenarios": len(serial_results),
                "scenario_latency_s": SCENARIO_LATENCY,
                "jobs": JOBS,
                "serial_seconds": round(serial_s, 4),
                "parallel_seconds": round(parallel_s, 4),
                "speedup": round(speedup, 3),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert speedup > MIN_SPEEDUP, (
        f"parallel grid ({parallel_s:.2f}s with jobs={JOBS}) should beat "
        f"serial ({serial_s:.2f}s); measured speedup {speedup:.2f}x"
    )
