"""Wall-clock speedup of the parallel grid backends over the serial baseline.

The real §V workload is bounded by LLM round-trips (network latency to a
hosted model or inference time on local hardware), which a worker pool
overlaps.  The :class:`SimulatedLLM` responds instantly, so to measure what
parallelism buys we re-introduce a fixed per-scenario latency modelling the
round-trip — sized like a short hosted-model completion, large enough to
dominate the pure-Python compute.

Three legs run over the same 8-scenario grid with fresh runners:

* ``serial``  — ``jobs=1`` (the baseline);
* ``thread``  — ``jobs=4, backend="thread"`` — overlaps the modelled
  latency but leaves the pipeline compute GIL-serialized;
* ``process`` — ``jobs=4, backend="process"`` — overlaps the latency *and*
  spreads the compute across worker processes (on a multi-core box; on a
  single core it degenerates to the thread backend's profile).

Emits ``BENCH_parallel_throughput.json`` (picked up as a CI artifact) with
all three timings, both speedups, and the process-wide compile-cache
counters.  CI additionally fails the bench job if the process backend is
slower than the thread backend at ``jobs=4`` (see ``.github/workflows``),
a comparison that is only meaningful on the multi-core runners.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api import build_pipeline
from repro.experiments import ParallelExperimentRunner
from repro.hecbench import get_app
from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.metrics.aggregate import merge_stage_seconds
from repro.minilang.source import Dialect
from repro.toolchain import compile_cache_stats

#: Modelled LLM round-trip per scenario (seconds).
SCENARIO_LATENCY = 1.5
#: Worker count for both parallel legs.
JOBS = 4
#: The measured grid: 2 models x 1 direction x 4 cheap apps = 8 scenarios.
GRID = dict(
    models=["gpt4", "codestral"],
    directions=["omp2cuda"],
    apps=["layout", "pathfinder", "matrix-rotate", "bsearch"],
)
#: Floor for the thread leg: latency overlap alone must beat serial even on
#: a loaded single-core runner.
MIN_THREAD_SPEEDUP = 1.5
#: Floor for the process leg (the headline number; typically >3x).
MIN_PROCESS_SPEEDUP = 2.0
#: Ceiling on the stage-graph engine's own bookkeeping (event publication,
#: outcome dispatch, timing collection) as a fraction of per-scenario wall
#: time — the redesign must not tax the hot path.
MAX_STAGE_GRAPH_OVERHEAD = 0.05
#: Translations measured for the overhead figure.
OVERHEAD_RUNS = 10

BENCH_ARTIFACT = Path("BENCH_parallel_throughput.json")


def _stage_graph_overhead() -> float:
    """Fraction of translate wall time *not* spent inside stages.

    Everything between stage boundaries — event publication, the timing
    collector, outcome dispatch, context setup — is stage-graph machinery
    the monolithic seed pipeline did not have; the engine's per-stage
    clocks let us measure it directly as (wall - sum(stage_seconds)).
    """
    app = get_app("layout")
    llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
    pipeline = build_pipeline(llm, Dialect.OMP, Dialect.CUDA)
    wall = 0.0
    staged = 0.0
    for _ in range(OVERHEAD_RUNS):
        start = time.perf_counter()
        result = pipeline.run(
            app.omp_source,
            reference_target_code=app.cuda_source,
            args=app.args,
            work_scale=app.work_scale,
            launch_scale=app.launch_scale,
        )
        wall += time.perf_counter() - start
        staged += sum(result.stage_seconds.values())
        assert result.ok
    return (wall - staged) / wall


class _LatencyModelRunner(ParallelExperimentRunner):
    """Grid runner with a fixed LLM round-trip latency per scenario.

    Module-level on purpose: the process backend ships this class to its
    workers, so the latency model applies inside them too.
    """

    def run_scenario(self, scenario, app=None):
        time.sleep(SCENARIO_LATENCY)
        return super().run_scenario(scenario, app)


def _timed_grid(jobs: int, backend: str = "thread"):
    runner = _LatencyModelRunner(jobs=jobs, backend=backend)
    start = time.perf_counter()
    results = runner.run(**GRID)
    elapsed = time.perf_counter() - start
    return results, elapsed


def test_parallel_grid_beats_serial():
    serial_results, serial_s = _timed_grid(jobs=1)
    thread_results, thread_s = _timed_grid(jobs=JOBS, backend="thread")
    process_results, process_s = _timed_grid(jobs=JOBS, backend="process")

    # Parallelism must not change the science: same cells, same statuses,
    # on either backend.
    for results in (thread_results, process_results):
        assert [r.scenario for r in results] == [
            r.scenario for r in serial_results
        ]
        assert [r.result.status for r in results] == [
            r.result.status for r in serial_results
        ]

    thread_speedup = serial_s / thread_s
    process_speedup = serial_s / process_s

    # Per-stage latency attribution (generation vs. correction vs.
    # toolchain), from the serial leg's event-bus telemetry: the modelled
    # LLM sleep happens outside the pipeline, so stage clocks are clean.
    stage_breakdown = {
        stage: {
            "total_s": round(stats.total_seconds, 4),
            "mean_s": round(stats.mean_seconds, 6),
            "runs": stats.runs,
        }
        for stage, stats in merge_stage_seconds(
            r.result.stage_seconds for r in serial_results
        ).items()
    }
    overhead_fraction = _stage_graph_overhead()

    BENCH_ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "parallel_throughput",
                "scenarios": len(serial_results),
                "scenario_latency_s": SCENARIO_LATENCY,
                "jobs": JOBS,
                "serial_seconds": round(serial_s, 4),
                "thread_seconds": round(thread_s, 4),
                "process_seconds": round(process_s, 4),
                "thread_speedup": round(thread_speedup, 3),
                "process_speedup": round(process_speedup, 3),
                # Headline number: the process backend at jobs=4.
                "speedup": round(process_speedup, 3),
                "stage_breakdown": stage_breakdown,
                "stage_graph_overhead_fraction": round(overhead_fraction, 5),
                "compile_cache": compile_cache_stats(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert overhead_fraction < MAX_STAGE_GRAPH_OVERHEAD, (
        f"stage-graph machinery costs {overhead_fraction:.1%} of "
        f"per-scenario wall time (budget {MAX_STAGE_GRAPH_OVERHEAD:.0%})"
    )
    assert thread_speedup > MIN_THREAD_SPEEDUP, (
        f"thread grid ({thread_s:.2f}s with jobs={JOBS}) should beat serial "
        f"({serial_s:.2f}s); measured speedup {thread_speedup:.2f}x"
    )
    assert process_speedup > MIN_PROCESS_SPEEDUP, (
        f"process grid ({process_s:.2f}s with jobs={JOBS}) should beat "
        f"serial ({serial_s:.2f}s); measured speedup {process_speedup:.2f}x"
    )
