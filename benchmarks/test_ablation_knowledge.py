"""Ablation: language-knowledge context stripped from the prompt (§III-B).

Without the knowledge document the prompt budget shrinks dramatically; the
pipeline still runs (the simulated model's competence is in its transpiler),
so this ablation quantifies the *prompt-size* side of the paper's design:
the knowledge documents consume most of the context budget, which is why
the paper sized them against the smallest context window in Table V.
"""

from __future__ import annotations

from repro.experiments import ExperimentRunner
from repro.pipeline import PipelineConfig


def test_ablation_knowledge_context(benchmark):
    def run_pair():
        with_k = ExperimentRunner(config=PipelineConfig()).run(
            models=["gpt4"], directions=["omp2cuda"], apps=["layout"]
        )[0]
        without_k = ExperimentRunner(
            config=PipelineConfig(include_knowledge=False)
        ).run(models=["gpt4"], directions=["omp2cuda"], apps=["layout"])[0]
        return with_k, without_k

    with_k, without_k = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert with_k.result.ok and without_k.result.ok
    print("\nAblation: knowledge context")
    print(f"  prompt tokens with knowledge:    {with_k.result.prompt_tokens}")
    print(f"  prompt tokens without knowledge: {without_k.result.prompt_tokens}")
    assert with_k.result.prompt_tokens > 2 * without_k.result.prompt_tokens
