"""Campaign cache replay: cold run vs. cached re-run of a paper ablation.

The §III-B knowledge-ablation campaign executes its full grid once; a
re-run (sessions cleared, cache kept) replays every cell from the
content-addressed result cache without compiling a single baseline or
executing a single pipeline.  The measured speedup is what a campaign
sweep saves whenever variants share cells or a sweep is re-reported.

A third leg replays the same campaign into a *fresh* directory from a
shared sqlite cache store warmed with the cold run's entries — the
cross-host path a distributed (sharded) campaign takes when another
machine picks up the store artifact.

Emits ``BENCH_campaign_cache.json`` (picked up as a CI artifact) with the
cold/cached/shared-store timings, the replay speedups, and the execution
counters.
"""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

from repro.experiments import CampaignRunner, get_preset, open_store
from repro.experiments.store import RESULTS_NAMESPACE

BENCH_ARTIFACT = Path("BENCH_campaign_cache.json")

#: Cached replay must beat cold execution by at least this factor; the
#: replay only reads JSON, so even a loaded CI box clears 2x easily.
MIN_SPEEDUP = 2.0


def _timed_run(root, **kw):
    runner = CampaignRunner(
        get_preset("knowledge-ablation"), root=root, jobs=4, **kw
    )
    start = time.perf_counter()
    result = runner.run()
    return runner, result, time.perf_counter() - start


def test_campaign_cache_replay(benchmark, tmp_path):
    cold_runner, cold, cold_s = _timed_run(tmp_path)
    assert cold.total_pipeline_runs == sum(
        len(run.results) for run in cold.runs
    )

    # Drop the sessions so the re-run exercises the cache, not the sessions.
    shutil.rmtree(cold.directory / "sessions")

    def rerun():
        return _timed_run(tmp_path)

    warm_runner, warm, warm_s = benchmark.pedantic(rerun, rounds=1, iterations=1)
    assert warm.total_pipeline_runs == 0
    assert warm_runner.baselines.compile_count == 0
    assert warm_runner.cache.hits == cold.total_pipeline_runs
    assert [r.result.status for run in warm.runs for r in run.results] == [
        r.result.status for run in cold.runs for r in run.results
    ]

    # Shared-store leg: warm a sqlite store with the cold run's entries
    # and replay into a fresh directory through it — the path a second
    # host takes after downloading a sharded campaign's store artifact.
    store = open_store(f"sqlite:{tmp_path / 'store.db'}")
    tree = open_store(f"dir:{cold.directory / 'cache'}")
    for key in tree.keys():
        store.put(key, tree.get(key), namespace=RESULTS_NAMESPACE)
    shared_runner, shared, shared_s = _timed_run(
        tmp_path / "shared-host", cache_store=store
    )
    assert shared.total_pipeline_runs == 0
    assert shared_runner.baselines.compile_count == 0
    assert [r.result.status for run in shared.runs for r in run.results] == [
        r.result.status for run in cold.runs for r in run.results
    ]

    speedup = cold_s / warm_s
    shared_speedup = cold_s / shared_s
    BENCH_ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "campaign_cache",
                "campaign": cold.spec.name,
                "scenarios": sum(len(run.results) for run in cold.runs),
                "cold_seconds": round(cold_s, 4),
                "cached_seconds": round(warm_s, 4),
                "shared_store_seconds": round(shared_s, 4),
                "speedup": round(speedup, 3),
                "shared_store_speedup": round(shared_speedup, 3),
                "pipeline_runs_cold": cold.total_pipeline_runs,
                "pipeline_runs_cached": warm.total_pipeline_runs,
                "pipeline_runs_shared_store": shared.total_pipeline_runs,
                "cache_hits": warm_runner.cache.hits,
                "shared_store_hits": shared_runner.cache.hits,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\ncampaign cache replay: cold {cold_s:.2f}s -> cached "
          f"{warm_s:.2f}s ({speedup:.1f}x); sqlite store replay "
          f"{shared_s:.2f}s ({shared_speedup:.1f}x)")
    assert speedup > MIN_SPEEDUP
    assert shared_speedup > MIN_SPEEDUP
