"""Cost of the telemetry layer: the 5% bookkeeping budget, measured.

Three figures, emitted as ``BENCH_telemetry_overhead.json`` (a CI
artifact; the bench-backends job gates on the overhead fraction):

* **events/sec through the bus** — a representative event mix published
  to an :class:`EventBus` with the production subscriber set attached
  (a :class:`SpanTracer` plus a :class:`FlightRecorder`), i.e. the
  marginal cost of every instrumented point in a traced pipeline;
* **span serialization rate** — span dicts → compact JSONL, the
  per-trace cost of the ``.trace.jsonl`` sidecar writer;
* **overhead fraction** — wall time of a traced grid (spans, metrics,
  flight ring, sidecar writes) over an untraced one, best-of-N trials
  on both sides so scheduler noise cancels.  Must stay under
  :data:`MAX_TELEMETRY_OVERHEAD`.

Both grid legs share one warmed :class:`BaselinePreparer` and the
process-wide compile cache, so they pay identical toolchain costs and
the difference isolates the telemetry machinery.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments import ParallelExperimentRunner, RunSession
from repro.pipeline import (
    BaselinePreparer,
    CompileFinished,
    EventBus,
    ExecutionFinished,
    LlmCallFinished,
    PipelineFinished,
    PipelineStarted,
    StageFinished,
    StageStarted,
)
from repro.telemetry import FlightRecorder, SpanTracer
from repro.telemetry.tracefile import _dumps

#: Ceiling on traced-vs-untraced grid wall time (the bookkeeping budget).
MAX_TELEMETRY_OVERHEAD = 0.05
#: Trials per leg; the minimum of each side is compared.
TRIALS = 3
#: The measured grid: 1 model x 1 direction x 4 apps = 4 scenarios.
GRID = dict(
    models=["gpt4"],
    directions=["omp2cuda"],
    apps=["layout", "pathfinder", "matrix-rotate", "bsearch"],
)
#: Event-mix repetitions for the bus throughput figure.
EVENT_ROUNDS = 20_000

BENCH_ARTIFACT = Path("BENCH_telemetry_overhead.json")

#: One pipeline run's worth of bus traffic (8 events/round).
EVENT_MIX = (
    PipelineStarted(model="GPT-4", source_dialect="omp",
                    target_dialect="cuda"),
    StageStarted(stage="generate"),
    LlmCallFinished(stage="generate", purpose="generate", model="GPT-4",
                    seconds=0.01, prompt_tokens=100, completion_tokens=40),
    StageFinished(stage="generate", seconds=0.02, outcome="proceed"),
    StageStarted(stage="compile-correct"),
    CompileFinished(stage="compile-correct", ok=True, seconds=0.001,
                    cached=True),
    ExecutionFinished(stage="compile-correct", ok=True, seconds=0.005,
                      steps=100, launches=2),
    StageFinished(stage="compile-correct", seconds=0.01, outcome="proceed"),
)


def _events_per_second() -> float:
    bus = EventBus()
    tracer = SpanTracer()
    bus.subscribe(tracer)
    bus.subscribe(FlightRecorder())
    start = time.perf_counter()
    for _ in range(EVENT_ROUNDS):
        for event in EVENT_MIX:
            bus.publish(event)
        bus.publish(PipelineFinished(status="success", seconds=0.05))
        tracer.drain()
    elapsed = time.perf_counter() - start
    return EVENT_ROUNDS * (len(EVENT_MIX) + 1) / elapsed


def _span_serialization_rate(spans) -> float:
    rounds = 2_000
    start = time.perf_counter()
    for i in range(rounds):
        _dumps({"record": "trace", "trace_id": i,
                "scenario": {"model": "gpt4"}, "spans": spans})
    elapsed = time.perf_counter() - start
    return rounds * len(spans) / elapsed


def _timed_grid(baselines, trace: bool, session_path=None) -> float:
    session = RunSession(session_path) if session_path is not None else None
    runner = ParallelExperimentRunner(
        jobs=1, baselines=baselines, session=session, trace=trace
    )
    start = time.perf_counter()
    results = runner.run(**GRID)
    elapsed = time.perf_counter() - start
    assert len(results) == 4
    return elapsed


def test_telemetry_overhead_stays_under_budget(tmp_path):
    baselines = BaselinePreparer()
    # Warm the shared baselines and the process-wide compile cache so
    # both timed legs pay identical toolchain costs.
    _timed_grid(baselines, trace=False)

    plain = min(_timed_grid(baselines, trace=False) for _ in range(TRIALS))
    traced = min(
        _timed_grid(baselines, trace=True,
                    session_path=tmp_path / f"t{i}.jsonl")
        for i in range(TRIALS)
    )
    overhead = max(0.0, traced / plain - 1.0)

    # Spans from one real traced run feed the serialization figure.
    tracer_runner = ParallelExperimentRunner(
        jobs=1, baselines=baselines, trace=True
    )
    sample = tracer_runner.run(
        models=["gpt4"], directions=["omp2cuda"], apps=["layout"]
    )[0].result.spans
    assert sample, "traced run produced no spans"

    events_per_s = _events_per_second()
    spans_per_s = _span_serialization_rate(sample)

    BENCH_ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "telemetry_overhead",
                "scenarios": len(GRID["apps"]),
                "trials": TRIALS,
                "untraced_seconds": round(plain, 4),
                "traced_seconds": round(traced, 4),
                "overhead_fraction": round(overhead, 5),
                "budget_fraction": MAX_TELEMETRY_OVERHEAD,
                "bus_events_per_second": round(events_per_s),
                "span_serialization_per_second": round(spans_per_s),
                "sample_spans_per_trace": len(sample),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert events_per_s > 50_000, (
        f"event bus + tracer + flight ring sustain only "
        f"{events_per_s:,.0f} events/s"
    )
    assert spans_per_s > 10_000, (
        f"span serialization sustains only {spans_per_s:,.0f} spans/s"
    )
    assert overhead < MAX_TELEMETRY_OVERHEAD, (
        f"tracing costs {overhead:.1%} of grid wall time "
        f"(budget {MAX_TELEMETRY_OVERHEAD:.0%}): "
        f"traced {traced:.3f}s vs untraced {plain:.3f}s"
    )
