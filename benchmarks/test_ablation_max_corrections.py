"""Ablation: sweep of the self-correction iteration cap.

The paper's worst successful cell needed 34 corrections (Codestral /
pathfinder, Table VIIa).  Sweeping ``max_corrections`` shows the success
threshold sits exactly there.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentRunner, Scenario
from repro.pipeline import PipelineConfig


def run_sweep():
    out = {}
    for cap in (0, 10, 33, 34, 40):
        runner = ExperimentRunner(config=PipelineConfig(max_corrections=cap))
        result = runner.run_scenario(
            Scenario("codestral", "cuda2omp", "pathfinder")
        ).result
        out[cap] = result
    return out


def test_max_corrections_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\nAblation: max_corrections sweep (Codestral/pathfinder, 34 needed)")
    for cap, r in results.items():
        print(f"  cap={cap:3d}: {r.status} after {r.self_corrections} corrections")
    assert not results[0].ok
    assert not results[10].ok
    assert not results[33].ok
    assert results[34].ok
    assert results[40].ok
    assert results[34].self_corrections == 34
