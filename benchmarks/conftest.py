"""Shared fixtures for the benchmark harness.

The full §V experiment (80 pipeline runs) is executed once per benchmark
session and shared by every table/statistics bench.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentRunner
from repro.pipeline import BaselinePreparer


@pytest.fixture(scope="session")
def paper_results():
    """All 80 scenario results under the paper profile."""
    runner = ExperimentRunner()
    return runner.run()


@pytest.fixture(scope="session")
def baselines():
    return BaselinePreparer()
