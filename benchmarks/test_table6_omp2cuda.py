"""Table VI: OpenMP -> CUDA translation results for all four LLMs."""

from __future__ import annotations

from repro.experiments import render_translation_tables
from repro.llm.profiles import OMP2CUDA, all_paper_plans

#: Paper Table VI N/A pattern (model, app), for shape assertions.
PAPER_NA = {
    ("gpt4", "dense-embedding"), ("gpt4", "bsearch"), ("gpt4", "randomAccess"),
    ("codestral", "colorwheel"),
    ("wizardcoder", "randomAccess"),
    ("deepseek", "dense-embedding"), ("deepseek", "colorwheel"),
    ("deepseek", "randomAccess"),
}


def test_table6(benchmark, paper_results):
    results = [r for r in paper_results if r.scenario.direction == OMP2CUDA]
    text = benchmark.pedantic(
        lambda: render_translation_tables(results)[OMP2CUDA],
        rounds=1, iterations=1,
    )
    print("\n" + text)

    # The N/A pattern matches the paper cell-for-cell.
    measured_na = {
        (r.scenario.model_key, r.scenario.app_name)
        for r in results if not r.result.ok
    }
    assert measured_na == PAPER_NA

    # Self-correction counts match the paper cell-for-cell.
    plans = all_paper_plans()
    for r in results:
        if r.result.ok:
            plan = plans[(r.scenario.model_key, OMP2CUDA, r.scenario.app_name)]
            assert r.result.self_corrections == plan.self_corrections
