"""Result records produced by the pipeline.

Both record types round-trip through plain dicts (``to_dict`` /
``from_dict``) so a :class:`~repro.experiments.session.RunSession` can
persist every result to a JSONL artifact and rebuild it on resume.

Terminal statuses are a :class:`Status` str-enum whose members serialize
to the exact historical string literals (``"success"``, ``"no-code"``,
…) — session files and cache entries written before the enum existed
load unchanged, and new ones are byte-identical to old ones.

Per-stage wall-clock timings (:attr:`LassiResult.stage_seconds`,
populated by the engine via the event bus) are telemetry, not science:
they are excluded from equality comparisons and from ``to_dict`` by
default so sessions and caches stay deterministic; pass
``include_timings=True`` to carry them across a process boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.metrics.aggregate import ScenarioMetrics


class Status(str, enum.Enum):
    """Terminal pipeline statuses (values are the on-disk literals)."""

    SUCCESS = "success"
    NO_CODE = "no-code"
    COMPILE_FAILED = "compile-failed"
    EXECUTE_FAILED = "execute-failed"
    OUTPUT_MISMATCH = "output-mismatch"

    # str() and format() must yield the bare value on every supported
    # Python version (3.9-3.12 disagree on mixed-in enum repr/format);
    # session JSONL byte-identity depends on it.
    __str__ = str.__str__
    __format__ = str.__format__


@dataclass
class Attempt:
    """One generation attempt inside the self-correction loops."""

    index: int
    kind: str  # "initial" | "compile-correction" | "execute-correction"
    code: Optional[str]
    compiled: bool = False
    executed: bool = False
    stderr: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "code": self.code,
            "compiled": self.compiled,
            "executed": self.executed,
            "stderr": self.stderr,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Attempt":
        return cls(
            index=data["index"],
            kind=data["kind"],
            code=data.get("code"),
            compiled=data.get("compiled", False),
            executed=data.get("executed", False),
            stderr=data.get("stderr", ""),
        )


@dataclass
class LassiResult:
    """Full record of one pipeline run (one Table VI/VII cell)."""

    status: str  # a Status member (plain strings with the same values
    #              compare and serialize identically)
    source_dialect: str
    target_dialect: str
    model: str
    generated_code: Optional[str] = None
    stdout: str = ""
    runtime_seconds: Optional[float] = None
    ratio: Optional[float] = None
    sim_t: Optional[float] = None
    sim_l: Optional[float] = None
    self_corrections: int = 0
    attempts: List[Attempt] = field(default_factory=list)
    prompt_tokens: int = 0
    verified: bool = False
    failure_detail: str = ""
    #: Wall-clock seconds per stage name, accumulated over re-entries
    #: (telemetry — excluded from equality and default serialization).
    stage_seconds: Dict[str, float] = field(default_factory=dict, compare=False)
    #: Serialized telemetry spans from a :class:`~repro.telemetry.spans.
    #: SpanTracer`, when the run was traced (telemetry — same exclusions
    #: as ``stage_seconds``; this is how process-backend workers ship
    #: their spans to the parent).
    spans: List[Dict[str, Any]] = field(default_factory=list, compare=False)
    #: Deterministic runtime-profile block from :class:`~repro.pipeline.
    #: stages.finalize.ComputeMetrics`: the generated and reference
    #: :class:`~repro.telemetry.profile.RuntimeProfile` dicts plus the
    #: speedup score.  Observability, not science: excluded from equality
    #: and from default serialization (session bytes stay pinned), but —
    #: unlike wall-clock timings — its counts are exact, so it also rides
    #: campaign manifests as a per-cell summary.
    profile: Optional[Dict[str, Any]] = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == Status.SUCCESS

    def metrics(self) -> ScenarioMetrics:
        """Project onto the five table columns (§V-A)."""
        if not self.ok:
            return ScenarioMetrics(ok=False)
        return ScenarioMetrics(
            ok=True,
            runtime_seconds=self.runtime_seconds,
            ratio=self.ratio,
            sim_t=self.sim_t,
            sim_l=self.sim_l,
            self_corrections=self.self_corrections,
        )

    def to_dict(self, include_timings: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "status": str(self.status),
            "source_dialect": self.source_dialect,
            "target_dialect": self.target_dialect,
            "model": self.model,
            "generated_code": self.generated_code,
            "stdout": self.stdout,
            "runtime_seconds": self.runtime_seconds,
            "ratio": self.ratio,
            "sim_t": self.sim_t,
            "sim_l": self.sim_l,
            "self_corrections": self.self_corrections,
            "attempts": [a.to_dict() for a in self.attempts],
            "prompt_tokens": self.prompt_tokens,
            "verified": self.verified,
            "failure_detail": self.failure_detail,
        }
        if include_timings:
            data["stage_seconds"] = dict(self.stage_seconds)
            if self.spans:
                data["spans"] = [dict(s) for s in self.spans]
            if self.profile is not None:
                data["profile"] = dict(self.profile)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LassiResult":
        return cls(
            status=Status(data["status"]),
            source_dialect=data["source_dialect"],
            target_dialect=data["target_dialect"],
            model=data["model"],
            generated_code=data.get("generated_code"),
            stdout=data.get("stdout", ""),
            runtime_seconds=data.get("runtime_seconds"),
            ratio=data.get("ratio"),
            sim_t=data.get("sim_t"),
            sim_l=data.get("sim_l"),
            self_corrections=data.get("self_corrections", 0),
            attempts=[Attempt.from_dict(a) for a in data.get("attempts", [])],
            prompt_tokens=data.get("prompt_tokens", 0),
            verified=data.get("verified", False),
            failure_detail=data.get("failure_detail", ""),
            stage_seconds=dict(data.get("stage_seconds", {})),
            spans=[dict(s) for s in data.get("spans", [])],
            profile=(
                dict(data["profile"])
                if data.get("profile") is not None
                else None
            ),
        )
