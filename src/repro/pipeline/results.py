"""Result records produced by the pipeline.

Both record types round-trip through plain dicts (``to_dict`` /
``from_dict``) so a :class:`~repro.experiments.session.RunSession` can
persist every result to a JSONL artifact and rebuild it on resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.metrics.aggregate import ScenarioMetrics


@dataclass
class Attempt:
    """One generation attempt inside the self-correction loops."""

    index: int
    kind: str  # "initial" | "compile-correction" | "execute-correction"
    code: Optional[str]
    compiled: bool = False
    executed: bool = False
    stderr: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "code": self.code,
            "compiled": self.compiled,
            "executed": self.executed,
            "stderr": self.stderr,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Attempt":
        return cls(
            index=data["index"],
            kind=data["kind"],
            code=data.get("code"),
            compiled=data.get("compiled", False),
            executed=data.get("executed", False),
            stderr=data.get("stderr", ""),
        )


@dataclass
class LassiResult:
    """Full record of one pipeline run (one Table VI/VII cell)."""

    status: str  # success | no-code | compile-failed | execute-failed |
    #              output-mismatch
    source_dialect: str
    target_dialect: str
    model: str
    generated_code: Optional[str] = None
    stdout: str = ""
    runtime_seconds: Optional[float] = None
    ratio: Optional[float] = None
    sim_t: Optional[float] = None
    sim_l: Optional[float] = None
    self_corrections: int = 0
    attempts: List[Attempt] = field(default_factory=list)
    prompt_tokens: int = 0
    verified: bool = False
    failure_detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "success"

    def metrics(self) -> ScenarioMetrics:
        """Project onto the five table columns (§V-A)."""
        if not self.ok:
            return ScenarioMetrics(ok=False)
        return ScenarioMetrics(
            ok=True,
            runtime_seconds=self.runtime_seconds,
            ratio=self.ratio,
            sim_t=self.sim_t,
            sim_l=self.sim_l,
            self_corrections=self.self_corrections,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "source_dialect": self.source_dialect,
            "target_dialect": self.target_dialect,
            "model": self.model,
            "generated_code": self.generated_code,
            "stdout": self.stdout,
            "runtime_seconds": self.runtime_seconds,
            "ratio": self.ratio,
            "sim_t": self.sim_t,
            "sim_l": self.sim_l,
            "self_corrections": self.self_corrections,
            "attempts": [a.to_dict() for a in self.attempts],
            "prompt_tokens": self.prompt_tokens,
            "verified": self.verified,
            "failure_detail": self.failure_detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LassiResult":
        return cls(
            status=data["status"],
            source_dialect=data["source_dialect"],
            target_dialect=data["target_dialect"],
            model=data["model"],
            generated_code=data.get("generated_code"),
            stdout=data.get("stdout", ""),
            runtime_seconds=data.get("runtime_seconds"),
            ratio=data.get("ratio"),
            sim_t=data.get("sim_t"),
            sim_l=data.get("sim_l"),
            self_corrections=data.get("self_corrections", 0),
            attempts=[Attempt.from_dict(a) for a in data.get("attempts", [])],
            prompt_tokens=data.get("prompt_tokens", 0),
            verified=data.get("verified", False),
            failure_detail=data.get("failure_detail", ""),
        )
