"""Result records produced by the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.metrics.aggregate import ScenarioMetrics


@dataclass
class Attempt:
    """One generation attempt inside the self-correction loops."""

    index: int
    kind: str  # "initial" | "compile-correction" | "execute-correction"
    code: Optional[str]
    compiled: bool = False
    executed: bool = False
    stderr: str = ""


@dataclass
class LassiResult:
    """Full record of one pipeline run (one Table VI/VII cell)."""

    status: str  # success | no-code | compile-failed | execute-failed |
    #              output-mismatch
    source_dialect: str
    target_dialect: str
    model: str
    generated_code: Optional[str] = None
    stdout: str = ""
    runtime_seconds: Optional[float] = None
    ratio: Optional[float] = None
    sim_t: Optional[float] = None
    sim_l: Optional[float] = None
    self_corrections: int = 0
    attempts: List[Attempt] = field(default_factory=list)
    prompt_tokens: int = 0
    verified: bool = False
    failure_detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "success"

    def metrics(self) -> ScenarioMetrics:
        """Project onto the five table columns (§V-A)."""
        if not self.ok:
            return ScenarioMetrics(ok=False)
        return ScenarioMetrics(
            ok=True,
            runtime_seconds=self.runtime_seconds,
            ratio=self.ratio,
            sim_t=self.sim_t,
            sim_l=self.sim_l,
            self_corrections=self.self_corrections,
        )
