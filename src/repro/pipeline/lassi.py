"""The LASSI orchestrator: generation + self-correcting loops (§III-C/D).

Loop structure follows the paper exactly:

* generate, extract the fenced code block, save it;
* **compile loop** — while the compiler returns errors, re-prompt with the
  generated code + compiler stderr (Table III "Compile error") and try
  again;
* **execute loop** — once compiling, run it; on a runtime error re-prompt
  with the code + runtime stderr (Table III "Execution error").  If the
  repaired code stops compiling, control naturally falls back into the
  compile loop (§III-D2: "If a compile error occurs again, then the
  pipeline remains in the compilation self-correction loop");
* iterate until clean or ``max_corrections`` re-prompts have been spent;
* finally compare stdout against the reference baseline (automated
  §VI-future-work verification) and compute the §V-A metrics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.errors import ContextWindowExceeded
from repro.llm.base import ChatMessage, LLMClient
from repro.metrics.runtime import runtime_ratio
from repro.metrics.similarity import sim_l, sim_t
from repro.minilang.source import Dialect
from repro.pipeline.baseline import Baseline, BaselinePreparer
from repro.pipeline.results import Attempt, LassiResult
from repro.pipeline.verification import verify_output
from repro.prompts.builder import PromptBuilder
from repro.toolchain import Executor, compiler_for
from repro.utils.text import extract_code_block


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable pipeline behaviour (ablation switches included)."""

    #: Cap on self-correction re-prompts (the paper observed up to 34).
    max_corrections: int = 40
    #: Include the language-knowledge document + self-prompt summary
    #: (§III-B).  Ablating this models direct prompting a la Nichols et al.
    include_knowledge: bool = True
    #: Run the automated output comparison (§VI future work, implemented).
    verify_output: bool = True
    #: Self-correction enabled at all (ablation: max_corrections=0 happens
    #: through this switch so the loop structure is untouched).
    self_correction: bool = True

    @property
    def effective_max_corrections(self) -> int:
        return self.max_corrections if self.self_correction else 0

    def fingerprint(self) -> str:
        """Content hash of the configuration (the cache/session identity).

        Two configs with equal field values — however they were built —
        share a fingerprint, so e.g. an explicit ``max_corrections=40``
        variant hits the same cache entries as the defaults.
        """
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class LassiPipeline:
    """One configured LASSI instance (LLM-agnostic by construction)."""

    def __init__(
        self,
        llm: LLMClient,
        source_dialect: Dialect,
        target_dialect: Dialect,
        config: Optional[PipelineConfig] = None,
        executor: Optional[Executor] = None,
        baseline_preparer: Optional[BaselinePreparer] = None,
    ) -> None:
        self.llm = llm
        self.source_dialect = source_dialect
        self.target_dialect = target_dialect
        self.config = config or PipelineConfig()
        self.executor = executor or Executor()
        self.baselines = baseline_preparer or BaselinePreparer(self.executor)
        self.prompt_builder = PromptBuilder(
            source_dialect,
            target_dialect,
            include_knowledge=self.config.include_knowledge,
        )

    # ------------------------------------------------------------------
    def translate(
        self,
        source_code: str,
        reference_target_code: Optional[str] = None,
        args: Sequence[str] = (),
        work_scale: float = 1.0,
        launch_scale: Optional[float] = None,
    ) -> LassiResult:
        """Run the full pipeline for one program.

        ``reference_target_code`` is the human-written program in the target
        language (the HeCBench counterpart); it provides the expected stdout,
        the runtime-Ratio denominator and the similarity reference.  Raises
        :class:`~repro.errors.BaselineError` when either original program
        does not work — §III-A halts the pipeline in that case.
        """
        result = LassiResult(
            status="no-code",
            source_dialect=self.source_dialect.value,
            target_dialect=self.target_dialect.value,
            model=self.llm.name,
        )

        # §III-A: both originals must compile and run before translating.
        self.baselines.prepare(
            source_code, self.source_dialect, args, work_scale, launch_scale
        )
        reference: Optional[Baseline] = None
        if reference_target_code is not None:
            reference = self.baselines.prepare(
                reference_target_code, self.target_dialect, args,
                work_scale, launch_scale,
            )

        # §III-B/C: context preparation + generation.
        try:
            bundle = self.prompt_builder.build(self.llm, source_code)
        except ContextWindowExceeded as exc:
            result.status = "no-code"
            result.failure_detail = str(exc)
            return result
        result.prompt_tokens = bundle.prompt_tokens
        response = self.llm.chat([
            ChatMessage("system", bundle.system),
            ChatMessage("user", bundle.full_user_prompt),
        ])
        code = extract_code_block(
            response.text,
            prefer_langs=["cuda", "cu"] if self.target_dialect is Dialect.CUDA
            else ["cpp", "c++"],
        )

        compiler = compiler_for(self.target_dialect)
        corrections = 0
        attempt_index = 0
        kind = "initial"
        execution = None

        while True:
            attempt = Attempt(index=attempt_index, kind=kind, code=code)
            result.attempts.append(attempt)
            attempt_index += 1

            if code is None:
                result.status = "no-code"
                result.failure_detail = "response contained no code block"
                return result

            compile_result = compiler.compile(code)
            attempt.compiled = compile_result.ok
            if not compile_result.ok:
                attempt.stderr = compile_result.stderr
                if corrections >= self.config.effective_max_corrections:
                    result.status = "compile-failed"
                    result.failure_detail = compile_result.stderr
                    result.generated_code = code
                    result.self_corrections = corrections
                    return result
                code = self._correct(
                    "compile", code, compile_result.command, compile_result.stderr
                )
                corrections += 1
                kind = "compile-correction"
                continue

            execution = self.executor.run(
                compile_result.program, self.target_dialect, args,
                work_scale=work_scale, launch_scale=launch_scale,
            )
            attempt.executed = execution.ok
            if not execution.ok:
                attempt.stderr = execution.stderr
                if corrections >= self.config.effective_max_corrections:
                    result.status = "execute-failed"
                    result.failure_detail = execution.stderr
                    result.generated_code = code
                    result.self_corrections = corrections
                    return result
                code = self._correct(
                    "execute", code, compile_result.command, execution.stderr
                )
                corrections += 1
                kind = "execute-correction"
                continue
            break

        result.generated_code = code
        result.self_corrections = corrections
        result.stdout = execution.stdout
        result.runtime_seconds = execution.runtime_seconds

        # Verification + metrics against the reference target program.
        if reference is not None:
            if self.config.verify_output:
                verdict = verify_output(reference.stdout, execution.stdout)
                result.verified = verdict.matches
                if not verdict.matches:
                    result.status = "output-mismatch"
                    result.failure_detail = verdict.detail
                    return result
            result.ratio = runtime_ratio(
                reference.runtime_seconds, execution.runtime_seconds
            )
            result.sim_t = sim_t(reference.source, code)
            result.sim_l = sim_l(reference.source, code)

        result.status = "success"
        return result

    # ------------------------------------------------------------------
    def _correct(self, kind: str, code: str, command: str, stderr: str) -> Optional[str]:
        """One Table III correction round; returns the re-extracted code."""
        messages = self.prompt_builder.correction_messages(
            self.llm, kind, code, command, stderr
        )
        response = self.llm.chat(messages)
        return extract_code_block(
            response.text,
            prefer_langs=["cuda", "cu"] if self.target_dialect is Dialect.CUDA
            else ["cpp", "c++"],
        )

    # ------------------------------------------------------------------
    def stage_names(self) -> list:
        """The Figure 1 stage graph, in order (used by the ASCII renderer)."""
        stages = [
            "Source code preparation (baseline compile + run)",
            "Language-specific context preparation",
        ]
        if self.config.include_knowledge:
            stages.append("Self-prompt: knowledge summary")
        stages.append("Self-prompt: source code description")
        stages.append("Code generation (LLM)")
        if self.config.self_correction:
            stages.append("Compile self-correction loop")
            stages.append("Execute self-correction loop")
        else:
            stages.append("Compile (single attempt)")
            stages.append("Execute (single attempt)")
        if self.config.verify_output:
            stages.append("Automated output verification")
        stages.append("Metrics (Runtime, Ratio, Sim-T, Sim-L, Self-corr)")
        return stages
