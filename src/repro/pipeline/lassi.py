"""The LASSI orchestrator, as a thin shim over the stage-graph engine.

Historically this module held a 170-line monolithic ``translate`` method;
the pipeline is now an explicit stage graph (see
:mod:`repro.pipeline.engine` and :mod:`repro.pipeline.stages`), and
:class:`LassiPipeline` remains as the backward-compatible construction
API: same signature, same attributes, byte-identical
:class:`~repro.pipeline.results.LassiResult`\\ s.  New code should prefer
:func:`repro.api.build_pipeline` / :func:`repro.pipeline.build_pipeline`.

Loop structure follows the paper exactly (now encoded as graph edges):

* generate, extract the fenced code block, save it;
* **compile loop** — while the compiler returns errors, re-prompt with the
  generated code + compiler stderr (Table III "Compile error") and try
  again;
* **execute loop** — once compiling, run it; on a runtime error re-prompt
  with the code + runtime stderr (Table III "Execution error").  If the
  repaired code stops compiling, control falls back into the compile loop
  via the jump edge (§III-D2: "If a compile error occurs again, then the
  pipeline remains in the compilation self-correction loop");
* iterate until clean or ``max_corrections`` re-prompts have been spent;
* finally compare stdout against the reference baseline (automated
  §VI-future-work verification) and compute the §V-A metrics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.llm.base import LLMClient
from repro.minilang.source import Dialect
from repro.pipeline.baseline import BaselinePreparer
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import PipelineBuilder, StagePipeline
from repro.pipeline.events import EventBus
from repro.pipeline.results import LassiResult
from repro.toolchain import Executor

__all__ = ["LassiPipeline", "PipelineConfig"]


class LassiPipeline:
    """One configured LASSI instance (LLM-agnostic by construction).

    Backward-compatible shim: construction and :meth:`translate` behave
    exactly as the pre-stage-graph pipeline did, while delegating to a
    :class:`~repro.pipeline.engine.StagePipeline` underneath (exposed as
    :attr:`pipeline`, with its event bus as :attr:`events`).
    """

    def __init__(
        self,
        llm: LLMClient,
        source_dialect: Dialect,
        target_dialect: Dialect,
        config: Optional[PipelineConfig] = None,
        executor: Optional[Executor] = None,
        baseline_preparer: Optional[BaselinePreparer] = None,
    ) -> None:
        builder = PipelineBuilder(
            llm,
            source_dialect,
            target_dialect,
            config=config,
            executor=executor,
            baseline_preparer=baseline_preparer,
        )
        #: The underlying stage-graph pipeline.
        self.pipeline: StagePipeline = builder.build()
        # Legacy attribute surface, kept for existing callers.
        self.llm = llm
        self.source_dialect = source_dialect
        self.target_dialect = target_dialect
        self.config = builder.config
        self.executor = builder.executor
        self.baselines = builder.baselines
        self.prompt_builder = builder.prompt_builder

    @property
    def events(self) -> EventBus:
        """The underlying pipeline's event bus."""
        return self.pipeline.events

    # ------------------------------------------------------------------
    def translate(
        self,
        source_code: str,
        reference_target_code: Optional[str] = None,
        args: Sequence[str] = (),
        work_scale: float = 1.0,
        launch_scale: Optional[float] = None,
    ) -> LassiResult:
        """Run the full pipeline for one program (see
        :meth:`StagePipeline.run` for semantics)."""
        return self.pipeline.run(
            source_code,
            reference_target_code=reference_target_code,
            args=args,
            work_scale=work_scale,
            launch_scale=launch_scale,
        )

    # ------------------------------------------------------------------
    def stage_names(self) -> List[str]:
        """The Figure 1 stage graph, in order (used by the ASCII renderer).

        Derived from the live stage graph — no longer a hand-maintained
        string list.
        """
        return self.pipeline.stage_names()
