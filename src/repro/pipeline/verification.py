"""Automated output verification.

The paper compares the generated code's standard output against the
reference manually and lists automated verification as future work (§VI);
this module implements that extension.  Success requires the normalized
stdout of the generated program to match the reference program's exactly —
both dialect versions of every suite app produce byte-identical output by
construction, so exact matching is the right bar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.text import normalize_stdout


@dataclass(frozen=True)
class VerificationResult:
    matches: bool
    expected: str
    actual: str

    @property
    def detail(self) -> str:
        if self.matches:
            return "output matches the reference"
        exp_lines = self.expected.splitlines()
        act_lines = self.actual.splitlines()
        for i, (e, a) in enumerate(zip(exp_lines, act_lines)):
            if e != a:
                return (
                    f"first difference at line {i + 1}: "
                    f"expected {e!r}, got {a!r}"
                )
        return (
            f"line count differs: expected {len(exp_lines)}, "
            f"got {len(act_lines)}"
        )


def verify_output(expected_stdout: str, actual_stdout: str) -> VerificationResult:
    """Compare normalized stdouts (trailing whitespace / edge blanks ignored)."""
    expected = normalize_stdout(expected_stdout)
    actual = normalize_stdout(actual_stdout)
    return VerificationResult(
        matches=(expected == actual), expected=expected, actual=actual
    )
