"""The stage-graph engine: assembles and drives the Figure 1 pipeline.

:class:`PipelineBuilder` turns a :class:`~repro.pipeline.config.PipelineConfig`
into a concrete stage sequence — ablation switches are graph edits here,
not ``if`` branches inside a monolithic method — and
:class:`StagePipeline` executes that sequence for one translation at a
time, publishing typed events and accumulating per-stage wall-clock time
into the result via the event bus.

Control flow: stages normally fall through in order; a stage may *jump*
to a named stage (the execute loop's fall-back edge into the compile
loop) or *halt* with the result finalized.  Stage names are validated as
unique at construction; jump targets are dynamic (an outcome names its
target at run time) and are validated when the jump is taken.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.errors import PipelineError
from repro.llm.base import LLMClient
from repro.minilang.source import Dialect
from repro.pipeline.baseline import BaselinePreparer
from repro.pipeline.config import PipelineConfig
from repro.pipeline.events import (
    EventBus,
    PipelineEvent,
    PipelineFinished,
    PipelineStarted,
    StageFinished,
    StageStarted,
    Subscriber,
)
from repro.pipeline.results import LassiResult, Status
from repro.pipeline.stages import (
    HALT,
    JUMP,
    BaselinePrep,
    CompileCorrectLoop,
    ComputeMetrics,
    ContextPrep,
    ExecuteCorrectLoop,
    Generate,
    PipelineContext,
    SelfCorrector,
    Stage,
    VerifyOutput,
)
from repro.prompts.builder import PromptBuilder
from repro.toolchain import Executor, compiler_for


class StagePipeline:
    """Executes a stage graph for one program at a time.

    Construct via :class:`PipelineBuilder` (or
    :func:`build_pipeline`) for the standard LASSI graph; any sequence of
    objects implementing the :class:`~repro.pipeline.stages.base.Stage`
    protocol works.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        llm: LLMClient,
        source_dialect: Dialect,
        target_dialect: Dialect,
        config: PipelineConfig,
        events: Optional[EventBus] = None,
    ) -> None:
        self.stages: List[Stage] = list(stages)
        if not self.stages:
            raise PipelineError("a pipeline needs at least one stage")
        self.llm = llm
        self.source_dialect = source_dialect
        self.target_dialect = target_dialect
        self.config = config
        self.events = events if events is not None else EventBus()
        self._index = {stage.name: i for i, stage in enumerate(self.stages)}
        if len(self._index) != len(self.stages):
            names = [stage.name for stage in self.stages]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise PipelineError(
                f"stage names must be unique; duplicated: {', '.join(dupes)}"
            )

    # ------------------------------------------------------------------
    def run(
        self,
        source_code: str,
        reference_target_code: Optional[str] = None,
        args: Sequence[str] = (),
        work_scale: float = 1.0,
        launch_scale: Optional[float] = None,
    ) -> LassiResult:
        """Run the full stage graph for one program.

        ``reference_target_code`` is the human-written program in the
        target language (the HeCBench counterpart); it provides the
        expected stdout, the runtime-Ratio denominator and the similarity
        reference.  Raises :class:`~repro.errors.BaselineError` when
        either original program does not work — §III-A halts the pipeline
        in that case.
        """
        result = LassiResult(
            status=Status.NO_CODE,
            source_dialect=self.source_dialect.value,
            target_dialect=self.target_dialect.value,
            model=self.llm.name,
        )
        ctx = PipelineContext(
            source_code=source_code,
            args=tuple(args),
            work_scale=work_scale,
            launch_scale=launch_scale,
            reference_code=reference_target_code,
            result=result,
            events=self.events,
        )

        def collect_timing(event: PipelineEvent) -> None:
            if isinstance(event, StageFinished):
                result.stage_seconds[event.stage] = (
                    result.stage_seconds.get(event.stage, 0.0) + event.seconds
                )

        unsubscribe = self.events.subscribe(collect_timing)
        self.events.publish(PipelineStarted(
            model=self.llm.name,
            source_dialect=self.source_dialect.value,
            target_dialect=self.target_dialect.value,
        ))
        run_start = time.perf_counter()
        failed = True
        try:
            i = 0
            while i < len(self.stages):
                stage = self.stages[i]
                self.events.publish(StageStarted(stage=stage.name))
                start = time.perf_counter()
                try:
                    outcome = stage.run(ctx)
                except BaseException:
                    self.events.publish(StageFinished(
                        stage=stage.name,
                        seconds=time.perf_counter() - start,
                        outcome="error",
                    ))
                    raise
                self.events.publish(StageFinished(
                    stage=stage.name,
                    seconds=time.perf_counter() - start,
                    outcome=outcome.describe(),
                ))
                if outcome.action == HALT:
                    break
                if outcome.action == JUMP:
                    target = outcome.jump_to
                    if target is None or target not in self._index:
                        raise PipelineError(
                            f"stage {stage.name!r} jumped to unknown stage "
                            f"{target!r}"
                        )
                    i = self._index[target]
                else:
                    i += 1
            failed = False
        finally:
            self.events.publish(PipelineFinished(
                status="error" if failed else str(result.status),
                seconds=time.perf_counter() - run_start,
            ))
            unsubscribe()
        return result

    #: Back-compat alias: the monolithic pipeline called this ``translate``.
    translate = run

    # ------------------------------------------------------------------
    def subscribe(self, callback: Subscriber) -> "StagePipeline":
        """Attach an event subscriber; returns ``self`` for chaining."""
        self.events.subscribe(callback)
        return self

    def stage_names(self) -> List[str]:
        """The Figure 1 stage graph, in order — derived from the stages
        themselves (used by the ASCII architecture renderer)."""
        return [label for stage in self.stages for label in stage.describe()]


class PipelineBuilder:
    """Assembles the standard LASSI stage graph for one configuration.

    The config's ablation switches become stage-graph edits here:
    ``verify_output=False`` drops the verification stage entirely,
    ``include_knowledge`` selects the prompt-builder sub-steps, and
    ``self_correction=False`` zeroes the loop budgets (the loop stages
    stay so the single-attempt path is the same code).
    """

    def __init__(
        self,
        llm: LLMClient,
        source_dialect: Dialect,
        target_dialect: Dialect,
        config: Optional[PipelineConfig] = None,
        executor: Optional[Executor] = None,
        baseline_preparer: Optional[BaselinePreparer] = None,
    ) -> None:
        self.llm = llm
        self.source_dialect = source_dialect
        self.target_dialect = target_dialect
        self.config = config or PipelineConfig()
        self.executor = executor or Executor()
        self.baselines = baseline_preparer or BaselinePreparer(self.executor)
        self.prompt_builder = PromptBuilder(
            source_dialect,
            target_dialect,
            include_knowledge=self.config.include_knowledge,
        )
        self._subscribers: List[Subscriber] = []

    # ------------------------------------------------------------------
    def subscribe(self, callback: Subscriber) -> "PipelineBuilder":
        """Queue an event subscriber for the built pipeline's bus."""
        self._subscribers.append(callback)
        return self

    def default_stages(self) -> List[Stage]:
        """The standard graph for ``self.config``, in execution order."""
        corrector = SelfCorrector(
            self.llm, self.prompt_builder, self.target_dialect
        )
        stages: List[Stage] = [
            BaselinePrep(self.baselines, self.source_dialect, self.target_dialect),
            ContextPrep(self.llm, self.prompt_builder, self.config),
            Generate(self.llm, self.target_dialect),
            CompileCorrectLoop(
                compiler_for(self.target_dialect), corrector, self.config
            ),
            ExecuteCorrectLoop(
                self.executor, corrector, self.config, self.target_dialect
            ),
        ]
        if self.config.verify_output:
            stages.append(VerifyOutput())
        stages.append(ComputeMetrics())
        return stages

    def build(self, stages: Optional[Sequence[Stage]] = None) -> StagePipeline:
        """Build the pipeline (``stages`` overrides the default graph)."""
        pipeline = StagePipeline(
            stages=list(stages) if stages is not None else self.default_stages(),
            llm=self.llm,
            source_dialect=self.source_dialect,
            target_dialect=self.target_dialect,
            config=self.config,
        )
        for callback in self._subscribers:
            pipeline.events.subscribe(callback)
        return pipeline


def build_pipeline(
    llm: LLMClient,
    source_dialect: Dialect,
    target_dialect: Dialect,
    config: Optional[PipelineConfig] = None,
    executor: Optional[Executor] = None,
    baseline_preparer: Optional[BaselinePreparer] = None,
    subscribers: Sequence[Subscriber] = (),
) -> StagePipeline:
    """One-call assembly of the standard LASSI stage graph."""
    builder = PipelineBuilder(
        llm,
        source_dialect,
        target_dialect,
        config=config,
        executor=executor,
        baseline_preparer=baseline_preparer,
    )
    for callback in subscribers:
        builder.subscribe(callback)
    return builder.build()
