"""Source-code preparation stage (§III-A of the paper).

Compiles and executes the original code in both the source and the target
language before any translation happens.  A failure **halts** the pipeline
(the paper: "LASSI halts and does not move forward with the translation
until the user corrects the code").  Successful runs are cached per
(source, dialect, args) so the 80-scenario experiment pays the baseline cost
once per app, not once per model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import BaselineError
from repro.minilang.source import Dialect
from repro.toolchain import CompileResult, Executor, compiler_for
from repro.toolchain.executor import ExecutionResult


@dataclass
class Baseline:
    """A verified-working original program plus its captured behaviour."""

    dialect: Dialect
    source: str
    compile_result: CompileResult
    execution: ExecutionResult

    @property
    def stdout(self) -> str:
        return self.execution.stdout

    @property
    def runtime_seconds(self) -> float:
        return self.execution.runtime_seconds

    @property
    def compile_command(self) -> str:
        return self.compile_result.command


class BaselinePreparer:
    """Prepares and caches baselines (the §III-A stage)."""

    def __init__(self, executor: Optional[Executor] = None) -> None:
        self.executor = executor or Executor()
        self._cache: Dict[Tuple[str, str, Tuple[str, ...], float, float], Baseline] = {}

    def prepare(
        self,
        source: str,
        dialect: Dialect,
        args: Sequence[str] = (),
        work_scale: float = 1.0,
        launch_scale: Optional[float] = None,
    ) -> Baseline:
        """Compile + run the original code; raises BaselineError on failure."""
        key = (
            source, dialect.value, tuple(args), work_scale,
            launch_scale if launch_scale is not None else work_scale,
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        compiler = compiler_for(dialect)
        compile_result = compiler.compile(source)
        if not compile_result.ok:
            raise BaselineError(
                f"original {dialect.display_name} code failed to compile; "
                f"LASSI halts until the user corrects it:\n"
                f"{compile_result.stderr}"
            )
        execution = self.executor.run(
            compile_result.program, dialect, args,
            work_scale=work_scale, launch_scale=launch_scale,
        )
        if not execution.ok:
            raise BaselineError(
                f"original {dialect.display_name} code failed to execute; "
                f"LASSI halts until the user corrects it:\n{execution.stderr}"
            )
        baseline = Baseline(
            dialect=dialect,
            source=source,
            compile_result=compile_result,
            execution=execution,
        )
        self._cache[key] = baseline
        return baseline
