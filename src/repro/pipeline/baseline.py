"""Source-code preparation stage (§III-A of the paper).

Compiles and executes the original code in both the source and the target
language before any translation happens.  A failure **halts** the pipeline
(the paper: "LASSI halts and does not move forward with the translation
until the user corrects the code").  Successful runs are cached per
(source, dialect, args) so the 80-scenario experiment pays the baseline cost
once per app, not once per model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import BaselineError
from repro.minilang.source import Dialect
from repro.toolchain import CompileResult, Executor, compiler_for
from repro.toolchain.executor import ExecutionResult


@dataclass
class Baseline:
    """A verified-working original program plus its captured behaviour."""

    dialect: Dialect
    source: str
    compile_result: CompileResult
    execution: ExecutionResult

    @property
    def stdout(self) -> str:
        return self.execution.stdout

    @property
    def runtime_seconds(self) -> float:
        return self.execution.runtime_seconds

    @property
    def compile_command(self) -> str:
        return self.compile_result.command


#: Cache key: (source, dialect, args, work_scale, launch_scale).
BaselineKey = Tuple[str, str, Tuple[str, ...], float, float]


class BaselinePreparer:
    """Prepares and caches baselines (the §III-A stage).

    Safe to share across concurrent pipeline workers: a per-key lock
    serialises the compile+run of each distinct baseline so the grid pays
    for every (app, dialect) exactly once, while different baselines can
    still be prepared in parallel.  ``compile_count`` / ``hit_count`` expose
    how many baselines were actually built versus served from cache — the
    resume and dedup tests assert on them.
    """

    def __init__(self, executor: Optional[Executor] = None) -> None:
        self.executor = executor or Executor()
        self._cache: Dict[BaselineKey, Baseline] = {}
        self._lock = threading.Lock()
        self._key_locks: Dict[BaselineKey, threading.Lock] = {}
        #: Number of baselines actually compiled+run (cache misses).
        self.compile_count = 0
        #: Number of ``prepare`` calls served from the cache.
        self.hit_count = 0

    def prepare(
        self,
        source: str,
        dialect: Dialect,
        args: Sequence[str] = (),
        work_scale: float = 1.0,
        launch_scale: Optional[float] = None,
    ) -> Baseline:
        """Compile + run the original code; raises BaselineError on failure."""
        key = (
            source, dialect.value, tuple(args), work_scale,
            launch_scale if launch_scale is not None else work_scale,
        )
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.hit_count += 1
                return cached
            key_lock = self._key_locks.setdefault(key, threading.Lock())

        with key_lock:
            # Another worker may have built this baseline while we waited.
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self.hit_count += 1
                    return cached
            baseline = self._build(source, dialect, args, work_scale, launch_scale)
            with self._lock:
                self._cache[key] = baseline
                self.compile_count += 1
            return baseline

    def _build(
        self,
        source: str,
        dialect: Dialect,
        args: Sequence[str],
        work_scale: float,
        launch_scale: Optional[float],
    ) -> Baseline:
        compiler = compiler_for(dialect)
        compile_result = compiler.compile(source)
        if not compile_result.ok:
            raise BaselineError(
                f"original {dialect.display_name} code failed to compile; "
                f"LASSI halts until the user corrects it:\n"
                f"{compile_result.stderr}"
            )
        execution = self.executor.run(
            compile_result.program, dialect, args,
            work_scale=work_scale, launch_scale=launch_scale,
        )
        if not execution.ok:
            raise BaselineError(
                f"original {dialect.display_name} code failed to execute; "
                f"LASSI halts until the user corrects it:\n{execution.stderr}"
            )
        return Baseline(
            dialect=dialect,
            source=source,
            compile_result=compile_result,
            execution=execution,
        )
