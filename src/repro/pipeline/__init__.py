"""The LASSI pipeline (§III of the paper), as an explicit stage graph.

Stages, in the paper's order (each a node in
:mod:`repro.pipeline.stages`, assembled by
:class:`~repro.pipeline.engine.PipelineBuilder`):

1. **Source code preparation** (``BaselinePrep`` over
   :mod:`repro.pipeline.baseline`) — compile and execute the original code
   in both languages; halt on failure.
2. **Context preparation** (``ContextPrep`` over :mod:`repro.prompts`) —
   prompt dictionary + language knowledge + self-prompting summaries.
3. **Code generation** (``Generate``) — query the LLM, filter out the
   fenced code block.
4. **Self-correcting loops** (``CompileCorrectLoop`` /
   ``ExecuteCorrectLoop``) — compile; on error re-prompt with stderr; then
   execute; on error re-prompt and jump back to the compile loop; repeat
   until clean or the iteration cap is hit.
5. **Verification** (``VerifyOutput`` over
   :mod:`repro.pipeline.verification`) — automated stdout comparison
   against the reference (the paper did this manually and lists automating
   it as future work; we implement it).
6. **Metrics** (``ComputeMetrics``) — the §V-A columns.

The engine publishes typed :mod:`~repro.pipeline.events` around every
stage and accumulates per-stage wall time into
:attr:`LassiResult.stage_seconds`.  :class:`LassiPipeline` remains the
backward-compatible construction shim; prefer :func:`build_pipeline` (or
the :mod:`repro.api` facade) in new code.
"""

from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import PipelineBuilder, StagePipeline, build_pipeline
from repro.pipeline.events import (
    AttemptRecorded,
    CompileFinished,
    CorrectionIssued,
    EventBus,
    ExecutionFinished,
    LlmCallFinished,
    PipelineEvent,
    PipelineFinished,
    PipelineStarted,
    StageFinished,
    StageStarted,
)
from repro.pipeline.lassi import LassiPipeline
from repro.pipeline.results import Attempt, LassiResult, Status
from repro.pipeline.baseline import Baseline, BaselinePreparer
from repro.pipeline.stages import PipelineContext, Stage, StageOutcome

__all__ = [
    "Attempt",
    "AttemptRecorded",
    "Baseline",
    "BaselinePreparer",
    "CompileFinished",
    "CorrectionIssued",
    "EventBus",
    "ExecutionFinished",
    "LassiPipeline",
    "LassiResult",
    "LlmCallFinished",
    "PipelineBuilder",
    "PipelineConfig",
    "PipelineContext",
    "PipelineEvent",
    "PipelineFinished",
    "PipelineStarted",
    "Stage",
    "StageFinished",
    "StageOutcome",
    "StagePipeline",
    "StageStarted",
    "Status",
    "build_pipeline",
]
