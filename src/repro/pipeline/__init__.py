"""The LASSI pipeline (§III of the paper).

Stages, in the paper's order:

1. **Source code preparation** (:mod:`repro.pipeline.baseline`) — compile
   and execute the original code in both languages; halt on failure.
2. **Context preparation** (:mod:`repro.prompts`) — prompt dictionary +
   language knowledge + self-prompting summaries.
3. **Code generation** — query the LLM, filter out the fenced code block.
4. **Self-correcting loops** (:class:`~repro.pipeline.lassi.LassiPipeline`)
   — compile; on error re-prompt with stderr; then execute; on error
   re-prompt; repeat until clean or the iteration cap is hit.
5. **Verification** (:mod:`repro.pipeline.verification`) — automated stdout
   comparison against the reference (the paper did this manually and lists
   automating it as future work; we implement it).
"""

from repro.pipeline.lassi import LassiPipeline, PipelineConfig
from repro.pipeline.results import Attempt, LassiResult
from repro.pipeline.baseline import Baseline, BaselinePreparer

__all__ = [
    "LassiPipeline",
    "PipelineConfig",
    "LassiResult",
    "Attempt",
    "Baseline",
    "BaselinePreparer",
]
