"""Preparation stages: §III-A baselines and §III-B/C context assembly."""

from __future__ import annotations

from typing import List

from repro.errors import ContextWindowExceeded
from repro.llm.base import LLMClient
from repro.minilang.source import Dialect
from repro.pipeline.baseline import BaselinePreparer
from repro.pipeline.config import PipelineConfig
from repro.pipeline.results import Status
from repro.pipeline.stages.base import PipelineContext, StageOutcome
from repro.prompts.builder import PromptBuilder


class BaselinePrep:
    """§III-A: both originals must compile and run before translating.

    Raises :class:`~repro.errors.BaselineError` (propagated to the caller,
    exactly as the monolithic pipeline did) when either original fails —
    the paper halts until the user corrects the input code.
    """

    name = "baseline-prep"

    def __init__(
        self,
        baselines: BaselinePreparer,
        source_dialect: Dialect,
        target_dialect: Dialect,
    ) -> None:
        self.baselines = baselines
        self.source_dialect = source_dialect
        self.target_dialect = target_dialect

    def run(self, ctx: PipelineContext) -> StageOutcome:
        self.baselines.prepare(
            ctx.source_code, self.source_dialect, ctx.args,
            ctx.work_scale, ctx.launch_scale,
        )
        if ctx.reference_code is not None:
            ctx.reference = self.baselines.prepare(
                ctx.reference_code, self.target_dialect, ctx.args,
                ctx.work_scale, ctx.launch_scale,
            )
        return StageOutcome.proceed()

    def describe(self) -> List[str]:
        return ["Source code preparation (baseline compile + run)"]


class ContextPrep:
    """§III-B/C: prompt dictionary + knowledge + self-prompt summaries.

    Runs the self-prompting LLM calls (knowledge summary, code
    description) and assembles the full translation prompt.  A prompt that
    cannot fit the model's context window halts the run with a
    ``no-code`` result carrying the budget failure as ``failure_detail``.
    """

    name = "context-prep"

    def __init__(
        self,
        llm: LLMClient,
        prompt_builder: PromptBuilder,
        config: PipelineConfig,
    ) -> None:
        self.llm = llm
        self.prompt_builder = prompt_builder
        self.config = config

    def run(self, ctx: PipelineContext) -> StageOutcome:
        try:
            ctx.bundle = self.prompt_builder.build(self.llm, ctx.source_code)
        except ContextWindowExceeded as exc:
            ctx.result.status = Status.NO_CODE
            ctx.result.failure_detail = str(exc)
            return StageOutcome.halt()
        ctx.result.prompt_tokens = ctx.bundle.prompt_tokens
        return StageOutcome.proceed()

    def describe(self) -> List[str]:
        names = ["Language-specific context preparation"]
        if self.config.include_knowledge:
            names.append("Self-prompt: knowledge summary")
        names.append("Self-prompt: source code description")
        return names
