"""Concrete stages of the Figure 1 pipeline graph.

The :class:`~repro.pipeline.stages.base.Stage` protocol (``name``,
``run(ctx) -> StageOutcome``, ``describe()``) is what the engine executes;
everything here is a plain class implementing it structurally.  Assemble
the default graph with :class:`~repro.pipeline.engine.PipelineBuilder`, or
hand the engine any custom stage sequence.
"""

from repro.pipeline.stages.base import (
    HALT,
    JUMP,
    PROCEED,
    PipelineContext,
    Stage,
    StageOutcome,
)
from repro.pipeline.stages.prep import BaselinePrep, ContextPrep
from repro.pipeline.stages.generate import Generate
from repro.pipeline.stages.loops import (
    CompileCorrectLoop,
    ExecuteCorrectLoop,
    SelfCorrector,
)
from repro.pipeline.stages.finalize import ComputeMetrics, VerifyOutput

__all__ = [
    "HALT",
    "JUMP",
    "PROCEED",
    "BaselinePrep",
    "CompileCorrectLoop",
    "ComputeMetrics",
    "ContextPrep",
    "ExecuteCorrectLoop",
    "Generate",
    "PipelineContext",
    "SelfCorrector",
    "Stage",
    "StageOutcome",
    "VerifyOutput",
]
