"""The §III-D self-correcting loop stages.

Loop structure follows the paper exactly:

* **compile loop** (:class:`CompileCorrectLoop`) — while the compiler
  returns errors, re-prompt with the generated code + compiler stderr
  (Table III "Compile error") and try again;
* **execute loop** (:class:`ExecuteCorrectLoop`) — once compiling, run it;
  on a runtime error re-prompt with the code + runtime stderr (Table III
  "Execution error") and **jump back** to the compile loop — §III-D2: "If
  a compile error occurs again, then the pipeline remains in the
  compilation self-correction loop".  The repaired code re-records an
  attempt and re-compiles before re-executing, exactly as the monolithic
  ``while`` loop did;
* iterate until clean or ``max_corrections`` re-prompts have been spent.

Both stages share one :class:`SelfCorrector` (the Table III re-prompt +
code re-extraction) and one corrections budget carried on the
:class:`~repro.pipeline.stages.base.PipelineContext`.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.llm.base import GenerationResult, LLMClient
from repro.minilang.source import Dialect
from repro.pipeline.config import PipelineConfig
from repro.pipeline.events import (
    AttemptRecorded,
    CompileFinished,
    CorrectionIssued,
    ExecutionFinished,
    LlmCallFinished,
)
from repro.pipeline.results import Attempt, Status
from repro.pipeline.stages.base import PipelineContext, StageOutcome
from repro.pipeline.stages.generate import extract_target_code
from repro.prompts.builder import PromptBuilder
from repro.telemetry.profile import profile_from_execution
from repro.toolchain.compiler import CompilerDriver, compile_cache_stats
from repro.toolchain.executor import Executor, ExecutionResult


def _execution_profile_payload(execution: ExecutionResult) -> Optional[dict]:
    """The widened ``ExecutionFinished.profile`` payload (None when no
    interpreter profile is attached).  Module-level so the perf-profile
    benchmark can stub it out to measure collection overhead."""
    runtime_profile = profile_from_execution(execution)
    return runtime_profile.to_dict() if runtime_profile is not None else None


class SelfCorrector:
    """One Table III correction round; returns the re-extracted code."""

    def __init__(
        self,
        llm: LLMClient,
        prompt_builder: PromptBuilder,
        target_dialect: Dialect,
    ) -> None:
        self.llm = llm
        self.prompt_builder = prompt_builder
        self.target_dialect = target_dialect
        #: Telemetry hook: the loop stages read the round-trip's token
        #: counts and model name off this after each :meth:`correct`.
        self.last_response: Optional[GenerationResult] = None

    def correct(
        self, kind: str, code: str, command: str, stderr: str
    ) -> Optional[str]:
        messages = self.prompt_builder.correction_messages(
            self.llm, kind, code, command, stderr
        )
        response = self.llm.chat(messages)
        self.last_response = response
        return extract_target_code(response.text, self.target_dialect)


def _publish_correction_call(
    ctx: PipelineContext,
    stage: str,
    purpose: str,
    corrector: SelfCorrector,
    seconds: float,
) -> None:
    """Emit the telemetry event for a just-finished correction round-trip."""
    response = corrector.last_response
    ctx.events.publish(LlmCallFinished(
        stage=stage,
        purpose=purpose,
        model=response.model if response is not None else corrector.llm.name,
        seconds=seconds,
        prompt_tokens=response.prompt_tokens if response is not None else 0,
        completion_tokens=response.completion_tokens if response is not None else 0,
    ))


class CompileCorrectLoop:
    """Record attempts and compile, re-prompting until clean or exhausted.

    Entered once after generation and re-entered (via the execute loop's
    jump edge) after every runtime correction.  Each entry records one
    attempt per candidate; a candidate with no code block at all fails the
    run as ``no-code`` — with the stderr that triggered the failed
    correction preserved on the recorded attempt.
    """

    name = "compile-correct"

    def __init__(
        self,
        compiler: CompilerDriver,
        corrector: SelfCorrector,
        config: PipelineConfig,
    ) -> None:
        self.compiler = compiler
        self.corrector = corrector
        self.config = config

    def run(self, ctx: PipelineContext) -> StageOutcome:
        result = ctx.result
        while True:
            code = ctx.code
            attempt = Attempt(
                index=ctx.attempt_index, kind=ctx.attempt_kind, code=code
            )
            if code is None:
                # The correction (or generation) produced no code block:
                # keep the stderr that drove the re-prompt on the record
                # instead of losing it with the missing code.
                attempt.stderr = ctx.pending_stderr
            result.attempts.append(attempt)
            ctx.events.publish(AttemptRecorded(
                stage=self.name, index=ctx.attempt_index, kind=ctx.attempt_kind
            ))
            ctx.attempt_index += 1

            if code is None:
                result.status = Status.NO_CODE
                result.failure_detail = "response contained no code block"
                return StageOutcome.halt()

            hits_before = compile_cache_stats().get("hits", 0)
            compile_start = time.perf_counter()
            compile_result = self.compiler.compile(code)
            ctx.events.publish(CompileFinished(
                stage=self.name,
                ok=compile_result.ok,
                seconds=time.perf_counter() - compile_start,
                cached=compile_cache_stats().get("hits", 0) > hits_before,
            ))
            attempt.compiled = compile_result.ok
            if compile_result.ok:
                ctx.compile_result = compile_result
                ctx.current_attempt = attempt
                ctx.pending_stderr = ""
                return StageOutcome.proceed()

            attempt.stderr = compile_result.stderr
            if ctx.corrections >= self.config.effective_max_corrections:
                result.status = Status.COMPILE_FAILED
                result.failure_detail = compile_result.stderr
                result.generated_code = code
                result.self_corrections = ctx.corrections
                return StageOutcome.halt()

            correct_start = time.perf_counter()
            ctx.code = self.corrector.correct(
                "compile", code, compile_result.command,
                compile_result.stderr,
            )
            _publish_correction_call(
                ctx, self.name, "compile-correction", self.corrector,
                time.perf_counter() - correct_start,
            )
            ctx.corrections += 1
            ctx.attempt_kind = "compile-correction"
            ctx.pending_stderr = compile_result.stderr
            ctx.events.publish(CorrectionIssued(
                stage=self.name, kind="compile",
                corrections=ctx.corrections, stderr=compile_result.stderr,
            ))

    def describe(self) -> List[str]:
        if self.config.self_correction:
            return ["Compile self-correction loop"]
        return ["Compile (single attempt)"]


class ExecuteCorrectLoop:
    """Run the compiled program; on a runtime fault, correct and fall back.

    On success, finalizes the run's generated code, correction count,
    stdout and runtime before verification — matching the monolithic
    pipeline's field ordering exactly.
    """

    name = "execute-correct"

    def __init__(
        self,
        executor: Executor,
        corrector: SelfCorrector,
        config: PipelineConfig,
        target_dialect: Dialect,
        compile_stage: str = CompileCorrectLoop.name,
    ) -> None:
        self.executor = executor
        self.corrector = corrector
        self.config = config
        self.target_dialect = target_dialect
        self.compile_stage = compile_stage

    def run(self, ctx: PipelineContext) -> StageOutcome:
        result = ctx.result
        compile_result = ctx.compile_result
        attempt = ctx.current_attempt
        code = ctx.code
        assert compile_result is not None and attempt is not None, (
            "ExecuteCorrectLoop requires a compiled attempt"
        )
        assert code is not None

        exec_start = time.perf_counter()
        execution = self.executor.run(
            compile_result.program, self.target_dialect, ctx.args,
            work_scale=ctx.work_scale, launch_scale=ctx.launch_scale,
        )
        profile = execution.profile
        ctx.events.publish(ExecutionFinished(
            stage=self.name,
            ok=execution.ok,
            seconds=time.perf_counter() - exec_start,
            steps=execution.steps_used,
            launches=profile.total_kernel_launches if profile is not None else 0,
            profile=_execution_profile_payload(execution),
        ))
        attempt.executed = execution.ok
        if execution.ok:
            ctx.execution = execution
            result.generated_code = code
            result.self_corrections = ctx.corrections
            result.stdout = execution.stdout
            result.runtime_seconds = execution.runtime_seconds
            return StageOutcome.proceed()

        attempt.stderr = execution.stderr
        if ctx.corrections >= self.config.effective_max_corrections:
            result.status = Status.EXECUTE_FAILED
            result.failure_detail = execution.stderr
            result.generated_code = code
            result.self_corrections = ctx.corrections
            return StageOutcome.halt()

        correct_start = time.perf_counter()
        ctx.code = self.corrector.correct(
            "execute", code, compile_result.command, execution.stderr
        )
        _publish_correction_call(
            ctx, self.name, "execute-correction", self.corrector,
            time.perf_counter() - correct_start,
        )
        ctx.corrections += 1
        ctx.attempt_kind = "execute-correction"
        ctx.pending_stderr = execution.stderr
        ctx.events.publish(CorrectionIssued(
            stage=self.name, kind="execute",
            corrections=ctx.corrections, stderr=execution.stderr,
        ))
        return StageOutcome.jump(self.compile_stage)

    def describe(self) -> List[str]:
        if self.config.self_correction:
            return ["Execute self-correction loop"]
        return ["Execute (single attempt)"]
