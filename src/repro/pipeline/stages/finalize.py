"""Terminal stages: automated verification and the §V-A metrics."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.metrics.runtime import runtime_ratio
from repro.metrics.similarity import sim_l, sim_t
from repro.pipeline.results import Status
from repro.pipeline.stages.base import PipelineContext, StageOutcome
from repro.pipeline.verification import verify_output
from repro.telemetry.profile import RuntimeProfile, profile_from_execution


def score_profiles(
    reference: Optional[RuntimeProfile],
    generated: Optional[RuntimeProfile],
) -> Optional[Dict[str, Any]]:
    """The ``profile`` block: both runtime profiles plus the speedup score.

    ``speedup`` is the paper's Ratio over the *simulated* clocks
    (reference seconds / generated seconds, > 1 = generated faster);
    ``step_ratio`` is the same comparison over exact interpreter steps,
    immune to performance-model changes.  Returns ``None`` when the
    generated run carried no interpreter profile.
    """
    if generated is None:
        return None
    block: Dict[str, Any] = {"generated": generated.to_dict()}
    if reference is not None:
        block["reference"] = reference.to_dict()
        block["speedup"] = runtime_ratio(
            reference.sim_seconds, generated.sim_seconds
        )
        block["step_ratio"] = (
            round(reference.steps / generated.steps, 6)
            if generated.steps > 0
            else None
        )
    return block


class VerifyOutput:
    """Automated stdout comparison against the reference baseline.

    The paper did this manually and lists automating it as future work; we
    implement it.  Present in the graph only when
    ``PipelineConfig.verify_output`` is set — ablating verification is a
    stage-graph edit, not a branch.
    """

    name = "verify"

    def run(self, ctx: PipelineContext) -> StageOutcome:
        if ctx.reference is None:
            return StageOutcome.proceed()
        execution = ctx.execution
        assert execution is not None, "VerifyOutput requires an execution"
        verdict = verify_output(ctx.reference.stdout, execution.stdout)
        ctx.result.verified = verdict.matches
        if not verdict.matches:
            ctx.result.status = Status.OUTPUT_MISMATCH
            ctx.result.failure_detail = verdict.detail
            return StageOutcome.halt()
        return StageOutcome.proceed()

    def describe(self) -> List[str]:
        return ["Automated output verification"]


class ComputeMetrics:
    """§V-A metrics against the reference target program; marks success."""

    name = "metrics"

    def run(self, ctx: PipelineContext) -> StageOutcome:
        result = ctx.result
        if ctx.reference is not None:
            execution = ctx.execution
            assert execution is not None and ctx.code is not None
            result.ratio = runtime_ratio(
                ctx.reference.runtime_seconds, execution.runtime_seconds
            )
            result.sim_t = sim_t(ctx.reference.source, ctx.code)
            result.sim_l = sim_l(ctx.reference.source, ctx.code)
            result.profile = score_profiles(
                profile_from_execution(ctx.reference.execution),
                profile_from_execution(execution),
            )
        result.status = Status.SUCCESS
        return StageOutcome.halt()

    def describe(self) -> List[str]:
        return ["Metrics (Runtime, Ratio, Sim-T, Sim-L, Self-corr)"]
