"""Generation stage: the §III-C translation request."""

from __future__ import annotations

import time
from typing import List, Optional

from repro.llm.base import ChatMessage, LLMClient
from repro.minilang.source import Dialect
from repro.pipeline.events import LlmCallFinished
from repro.pipeline.stages.base import PipelineContext, StageOutcome
from repro.utils.text import extract_code_block


def preferred_langs(target_dialect: Dialect) -> List[str]:
    """Fence-tag preference for extracting the target-language block."""
    if target_dialect is Dialect.CUDA:
        return ["cuda", "cu"]
    return ["cpp", "c++"]


def extract_target_code(response_text: str, target_dialect: Dialect) -> Optional[str]:
    """LASSI's "filter out the code block" step, shared with the loops."""
    return extract_code_block(
        response_text, prefer_langs=preferred_langs(target_dialect)
    )


class Generate:
    """Query the LLM with the assembled prompt and extract the code block.

    A response with no fenced code block leaves ``ctx.code`` as ``None``;
    the compile loop records that as the (failed) initial attempt, exactly
    like the monolithic pipeline did.
    """

    name = "generate"

    def __init__(self, llm: LLMClient, target_dialect: Dialect) -> None:
        self.llm = llm
        self.target_dialect = target_dialect

    def run(self, ctx: PipelineContext) -> StageOutcome:
        bundle = ctx.bundle
        assert bundle is not None, "Generate requires ContextPrep's bundle"
        start = time.perf_counter()
        response = self.llm.chat([
            ChatMessage("system", bundle.system),
            ChatMessage("user", bundle.full_user_prompt),
        ])
        ctx.events.publish(LlmCallFinished(
            stage=self.name,
            purpose="generate",
            model=response.model,
            seconds=time.perf_counter() - start,
            prompt_tokens=response.prompt_tokens,
            completion_tokens=response.completion_tokens,
        ))
        ctx.code = extract_target_code(response.text, self.target_dialect)
        return StageOutcome.proceed()

    def describe(self) -> List[str]:
        return ["Code generation (LLM)"]
