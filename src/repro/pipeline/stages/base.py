"""Stage protocol, outcomes, and the mutable per-run pipeline context.

A stage is a named unit of the Figure 1 graph.  It reads and mutates one
:class:`PipelineContext` (the per-translation state) and returns a
:class:`StageOutcome` telling the engine what to do next: fall through to
the next stage, jump to a named stage (the §III-D2 "execute failure falls
back into the compile loop" edge), or halt with the result finalized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple

from repro.pipeline.baseline import Baseline
from repro.pipeline.events import EventBus
from repro.pipeline.results import Attempt, LassiResult
from repro.prompts.builder import PromptBundle
from repro.toolchain.compiler import CompileResult
from repro.toolchain.executor import ExecutionResult

PROCEED = "proceed"
JUMP = "jump"
HALT = "halt"


@dataclass(frozen=True)
class StageOutcome:
    """What the engine should do after a stage returns."""

    action: str  # PROCEED | JUMP | HALT
    jump_to: Optional[str] = None

    @classmethod
    def proceed(cls) -> "StageOutcome":
        return cls(action=PROCEED)

    @classmethod
    def halt(cls) -> "StageOutcome":
        """The stage finalized ``ctx.result``; the run is over."""
        return cls(action=HALT)

    @classmethod
    def jump(cls, target: str) -> "StageOutcome":
        """Transfer control to the stage named ``target``."""
        return cls(action=JUMP, jump_to=target)

    def describe(self) -> str:
        if self.action == JUMP:
            return f"jump:{self.jump_to}"
        return self.action


@dataclass
class PipelineContext:
    """Mutable state one translation threads through the stage graph.

    Stages communicate exclusively through this object; the engine creates
    one per :meth:`~repro.pipeline.engine.StagePipeline.run` call.
    """

    source_code: str
    args: Tuple[str, ...]
    work_scale: float
    launch_scale: Optional[float]
    reference_code: Optional[str]
    result: LassiResult
    events: EventBus

    # Filled in as stages run:
    reference: Optional[Baseline] = None
    bundle: Optional[PromptBundle] = None
    #: Candidate code under test (None when a response had no code block).
    code: Optional[str] = None
    #: Kind of the next attempt to record ("initial" or a correction kind).
    attempt_kind: str = "initial"
    attempt_index: int = 0
    corrections: int = 0
    #: The stderr that triggered the last correction; recorded on the next
    #: attempt when that correction produced no code block at all.
    pending_stderr: str = ""
    compile_result: Optional[CompileResult] = None
    execution: Optional[ExecutionResult] = None
    current_attempt: Optional[Attempt] = None


class Stage(Protocol):
    """One node of the pipeline graph.

    ``name`` is the stable machine name used for jump targets, event
    payloads and :attr:`LassiResult.stage_seconds` keys; ``describe``
    yields the human-readable Figure 1 labels this stage contributes.
    """

    name: str

    def run(self, ctx: PipelineContext) -> StageOutcome:
        """Execute against ``ctx`` and say what happens next."""
        ...  # pragma: no cover - protocol

    def describe(self) -> List[str]:
        """Figure 1 display strings, in graph order."""
        ...  # pragma: no cover - protocol


__all__ = [
    "HALT",
    "JUMP",
    "PROCEED",
    "PipelineContext",
    "Stage",
    "StageOutcome",
]
