"""Pipeline configuration (the ablation switches).

Lives in its own module so the stage implementations, the engine and the
:class:`~repro.pipeline.lassi.LassiPipeline` shim can all import it
without cycles.  Re-exported from :mod:`repro.pipeline` (and, for
backward compatibility, from :mod:`repro.pipeline.lassi`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable pipeline behaviour (ablation switches included).

    Under the stage-graph API each switch is a graph edit performed by
    :class:`~repro.pipeline.engine.PipelineBuilder`: ``verify_output``
    adds/removes the verification stage, ``include_knowledge`` adds/removes
    the self-prompt knowledge sub-steps, and ``self_correction`` zeroes the
    loop budgets (the loop stages stay in the graph so the single-attempt
    path is the same code).
    """

    #: Cap on self-correction re-prompts (the paper observed up to 34).
    max_corrections: int = 40
    #: Include the language-knowledge document + self-prompt summary
    #: (§III-B).  Ablating this models direct prompting a la Nichols et al.
    include_knowledge: bool = True
    #: Run the automated output comparison (§VI future work, implemented).
    verify_output: bool = True
    #: Self-correction enabled at all (ablation: max_corrections=0 happens
    #: through this switch so the loop structure is untouched).
    self_correction: bool = True

    @property
    def effective_max_corrections(self) -> int:
        return self.max_corrections if self.self_correction else 0

    def fingerprint(self) -> str:
        """Content hash of the configuration (the cache/session identity).

        Two configs with equal field values — however they were built —
        share a fingerprint, so e.g. an explicit ``max_corrections=40``
        variant hits the same cache entries as the defaults.
        """
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
