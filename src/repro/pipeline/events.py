"""Typed pipeline events and the subscriber bus.

Every :class:`~repro.pipeline.engine.StagePipeline` owns an
:class:`EventBus`.  The engine publishes :class:`StageStarted` /
:class:`StageFinished` (with wall-clock seconds) around every stage
execution, and the self-correction stages publish
:class:`CorrectionIssued` / :class:`AttemptRecorded` from inside their
loops.  Subscribers are plain callables — telemetry, progress displays and
the engine's own per-stage timing collector all attach the same way::

    pipeline = build_pipeline(llm, src, tgt)
    pipeline.events.subscribe(lambda e: print(e))
    pipeline.run(source_code)

Subscriber exceptions are contained: a broken subscriber must not turn
an observability bug into a pipeline outcome.  :meth:`EventBus.publish`
catches the exception, logs it at warning level with the subscriber's
name, increments the ``telemetry_subscriber_errors`` counter, and keeps
delivering the event to the remaining subscribers.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.telemetry.log import get_logger
from repro.telemetry.metrics import counter as _metrics_counter

_logger = get_logger("pipeline.events")


class PipelineEvent:
    """Base class for everything published on the :class:`EventBus`."""

    __slots__ = ()


@dataclass(frozen=True)
class PipelineStarted(PipelineEvent):
    """A pipeline run is beginning (published before the first stage)."""

    model: str
    source_dialect: str
    target_dialect: str


@dataclass(frozen=True)
class PipelineFinished(PipelineEvent):
    """The run ended — normally or by an escaping exception.

    ``status`` is the result's terminal status string, or ``"error"``
    when a stage raised (the exception propagates after this event);
    ``seconds`` is the whole run's wall-clock time.
    """

    status: str
    seconds: float


@dataclass(frozen=True)
class StageStarted(PipelineEvent):
    """A stage is about to run (re-entered stages fire this every entry)."""

    stage: str


@dataclass(frozen=True)
class StageFinished(PipelineEvent):
    """A stage returned (or raised).

    ``seconds`` is the wall-clock time of this entry; ``outcome`` is
    ``"proceed"``, ``"halt"``, ``"jump:<target>"`` or ``"error"`` (the
    stage raised — the exception propagates after this event).
    """

    stage: str
    seconds: float
    outcome: str


@dataclass(frozen=True)
class CorrectionIssued(PipelineEvent):
    """A Table III re-prompt was sent to the LLM.

    ``kind`` is ``"compile"`` or ``"execute"``; ``corrections`` counts the
    re-prompts issued so far in this run, including this one; ``stderr``
    is the toolchain output that triggered the re-prompt.
    """

    stage: str
    kind: str
    corrections: int
    stderr: str


@dataclass(frozen=True)
class AttemptRecorded(PipelineEvent):
    """A generation attempt entered the self-correction loop."""

    stage: str
    index: int
    kind: str


@dataclass(frozen=True)
class LlmCallFinished(PipelineEvent):
    """One LLM round-trip completed.

    ``purpose`` is ``"generate"``, ``"compile-correction"`` or
    ``"execute-correction"``; token counts come from the client's
    :class:`~repro.llm.base.GenerationResult`.
    """

    stage: str
    purpose: str
    model: str
    seconds: float
    prompt_tokens: int
    completion_tokens: int


@dataclass(frozen=True)
class CompileFinished(PipelineEvent):
    """One compiler invocation returned.

    ``cached`` reports whether the process-wide compile memo served the
    result (derived from its hit counter around the call — exact in the
    single-pipeline-per-thread model the bus assumes).
    """

    stage: str
    ok: bool
    seconds: float
    cached: bool


@dataclass(frozen=True)
class ExecutionFinished(PipelineEvent):
    """One simulated program execution returned.

    ``steps`` / ``launches`` are the interpreter step count and kernel
    launch count the run consumed — the step-budget accounting surfaced
    as telemetry.  ``profile``, when present, is the execution's full
    :class:`~repro.telemetry.profile.RuntimeProfile` as a plain dict
    (deterministic counts: dispatch-path launches, barrier waits,
    atomics, memory traffic, simulated seconds).
    """

    stage: str
    ok: bool
    seconds: float
    steps: int
    launches: int
    profile: Optional[Dict[str, Any]] = None


Subscriber = Callable[[PipelineEvent], None]


class EventBus:
    """Synchronous fan-out of :class:`PipelineEvent`\\ s to subscribers.

    Not thread-safe by design: one pipeline instance serves one
    translation at a time (the grid runners build a fresh pipeline per
    scenario), so events for a run are published from a single thread.
    """

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Attach ``callback``; returns a zero-argument unsubscribe."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass  # already unsubscribed

        return unsubscribe

    def unsubscribe(self, callback: Subscriber) -> bool:
        """Detach ``callback`` by identity; ``False`` if not subscribed.

        Complements the closure :meth:`subscribe` returns for callers
        holding the original callable rather than the closure (tracer
        attach/detach across pipeline reuse).
        """
        try:
            self._subscribers.remove(callback)
        except ValueError:
            return False
        return True

    @contextmanager
    def subscribed(self, callback: Subscriber) -> Iterator[Subscriber]:
        """Attach ``callback`` for the duration of a ``with`` block.

        Guarantees temporary subscribers — progress displays, test
        tracers — cannot leak across pipeline reuse even when the body
        raises.
        """
        detach = self.subscribe(callback)
        try:
            yield callback
        finally:
            detach()

    def publish(self, event: PipelineEvent) -> None:
        """Deliver ``event`` to every subscriber, containing their faults.

        A raising subscriber is an observability bug, not a pipeline
        outcome: the exception is logged at warning level with the
        subscriber's name, counted on ``telemetry_subscriber_errors``,
        and delivery continues to the remaining subscribers.
        """
        for callback in list(self._subscribers):
            try:
                callback(event)
            except Exception as exc:
                name = getattr(
                    callback, "__qualname__", type(callback).__name__
                )
                _logger.warning(
                    "event subscriber %s raised %s: %s on %s",
                    name,
                    type(exc).__name__,
                    exc,
                    type(event).__name__,
                )
                _metrics_counter("telemetry_subscriber_errors").inc(
                    subscriber=str(name)
                )

    def __len__(self) -> int:
        return len(self._subscribers)
