"""Typed pipeline events and the subscriber bus.

Every :class:`~repro.pipeline.engine.StagePipeline` owns an
:class:`EventBus`.  The engine publishes :class:`StageStarted` /
:class:`StageFinished` (with wall-clock seconds) around every stage
execution, and the self-correction stages publish
:class:`CorrectionIssued` / :class:`AttemptRecorded` from inside their
loops.  Subscribers are plain callables — telemetry, progress displays and
the engine's own per-stage timing collector all attach the same way::

    pipeline = build_pipeline(llm, src, tgt)
    pipeline.events.subscribe(lambda e: print(e))
    pipeline.run(source_code)

Subscriber exceptions propagate: a broken subscriber is library misuse,
not a pipeline outcome, and silently swallowing it would hide the bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List


class PipelineEvent:
    """Base class for everything published on the :class:`EventBus`."""

    __slots__ = ()


@dataclass(frozen=True)
class StageStarted(PipelineEvent):
    """A stage is about to run (re-entered stages fire this every entry)."""

    stage: str


@dataclass(frozen=True)
class StageFinished(PipelineEvent):
    """A stage returned (or raised).

    ``seconds`` is the wall-clock time of this entry; ``outcome`` is
    ``"proceed"``, ``"halt"``, ``"jump:<target>"`` or ``"error"`` (the
    stage raised — the exception propagates after this event).
    """

    stage: str
    seconds: float
    outcome: str


@dataclass(frozen=True)
class CorrectionIssued(PipelineEvent):
    """A Table III re-prompt was sent to the LLM.

    ``kind`` is ``"compile"`` or ``"execute"``; ``corrections`` counts the
    re-prompts issued so far in this run, including this one; ``stderr``
    is the toolchain output that triggered the re-prompt.
    """

    stage: str
    kind: str
    corrections: int
    stderr: str


@dataclass(frozen=True)
class AttemptRecorded(PipelineEvent):
    """A generation attempt entered the self-correction loop."""

    stage: str
    index: int
    kind: str


Subscriber = Callable[[PipelineEvent], None]


class EventBus:
    """Synchronous fan-out of :class:`PipelineEvent`\\ s to subscribers.

    Not thread-safe by design: one pipeline instance serves one
    translation at a time (the grid runners build a fresh pipeline per
    scenario), so events for a run are published from a single thread.
    """

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Attach ``callback``; returns a zero-argument unsubscribe."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass  # already unsubscribed

        return unsubscribe

    def publish(self, event: PipelineEvent) -> None:
        for callback in list(self._subscribers):
            callback(event)

    def __len__(self) -> int:
        return len(self._subscribers)
