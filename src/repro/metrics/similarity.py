"""Code-similarity metrics Sim-T and Sim-L (§V-A of the paper).

* **Sim-T** — token-based: both codes are lexically tokenized and compared
  with the Ratcliff-Obershelp longest-contiguous-matching-subsequence
  algorithm; the ratio lies in [0, 1] and the paper treats >= 0.6 as "high
  similarity".
* **Sim-L** — line-based: the number of identical (whitespace-normalized)
  lines, counted order-insensitively as a multiset intersection, divided by
  the line count of the longer code.
"""

from __future__ import annotations

from collections import Counter
from difflib import SequenceMatcher
from typing import List

from repro.utils.text import strip_comments
from repro.utils.tokens import tokenize_code

#: The paper's heuristic threshold for "reasonable similarity".
HIGH_SIMILARITY_THRESHOLD = 0.6


def _normalized_lines(code: str) -> List[str]:
    out = []
    for line in strip_comments(code).splitlines():
        norm = " ".join(line.split())
        if norm:
            out.append(norm)
    return out


def sim_t(code_a: str, code_b: str) -> float:
    """Token-based Ratcliff-Obershelp similarity in [0, 1]."""
    tokens_a = tokenize_code(strip_comments(code_a))
    tokens_b = tokenize_code(strip_comments(code_b))
    if not tokens_a and not tokens_b:
        return 1.0
    matcher = SequenceMatcher(a=tokens_a, b=tokens_b, autojunk=False)
    return matcher.ratio()


def sim_l(code_a: str, code_b: str) -> float:
    """Line-based similarity: identical lines regardless of order, over the
    line count of the longer code."""
    lines_a = _normalized_lines(code_a)
    lines_b = _normalized_lines(code_b)
    longer = max(len(lines_a), len(lines_b))
    if longer == 0:
        return 1.0
    common = Counter(lines_a) & Counter(lines_b)
    return sum(common.values()) / longer
