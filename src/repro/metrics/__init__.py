"""Evaluation metrics (§V-A of the paper)."""

from repro.metrics.similarity import sim_l, sim_t
from repro.metrics.runtime import runtime_ratio, within_10pct_or_faster
from repro.metrics.aggregate import AggregateStats, aggregate

__all__ = [
    "sim_t",
    "sim_l",
    "runtime_ratio",
    "within_10pct_or_faster",
    "AggregateStats",
    "aggregate",
]
