"""Runtime metrics: the Ratio column, the "within 10% or faster" test,
and the speedup-distribution statistics the profiling layer reports."""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

#: "Correct but slow" threshold: a scenario counts as slow when the
#: generated code is at least this many times slower than the reference.
SLOW_FACTOR = 2.0


def runtime_ratio(reference_seconds: float, generated_seconds: float) -> Optional[float]:
    """The paper's Ratio: reference runtime (human-written code in the target
    language) divided by the LASSI-generated code's runtime.  > 1 means the
    generated code is faster."""
    if generated_seconds <= 0:
        return None
    return reference_seconds / generated_seconds


def within_10pct_or_faster(ratio: Optional[float]) -> bool:
    """§V-B/C: "within 10% of or at a faster runtime than the original".

    Ratio = t_ref / t_gen, so t_gen <= 1.1 * t_ref  <=>  ratio >= 1/1.1.
    """
    if ratio is None:
        return False
    return ratio >= (1.0 / 1.1)


def geomean(values: Sequence[float]) -> Optional[float]:
    """Geometric mean of positive ratios; ``None`` on an empty input."""
    positive = [v for v in values if v > 0]
    if not positive:
        return None
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (len(sorted_values) - 1) * (q / 100.0)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def speedup_distribution(
    ratios: Sequence[float], slow_factor: float = SLOW_FACTOR
) -> Optional[Dict[str, Any]]:
    """Distribution of speedup ratios (ref/gen, > 1 = generated faster).

    Returns ``None`` when no scored ratios exist; otherwise a dict with
    the scenario count, geomean, p50/p95 and the count of "correct but
    >= slow_factor x slower" scenarios (``ratio <= 1/slow_factor``).
    Values round to 6 decimals so campaign manifests stay stable.
    """
    scored = sorted(r for r in ratios if r is not None and r > 0)
    if not scored:
        return None
    gm = geomean(scored)
    return {
        "count": len(scored),
        "geomean": round(gm, 6) if gm is not None else None,
        "p50": round(percentile(scored, 50.0), 6),
        "p95": round(percentile(scored, 95.0), 6),
        "min": round(scored[0], 6),
        "max": round(scored[-1], 6),
        "slow_factor": slow_factor,
        "slower": sum(1 for r in scored if r <= 1.0 / slow_factor),
    }
