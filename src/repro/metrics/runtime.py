"""Runtime metrics: the Ratio column and the "within 10% or faster" test."""

from __future__ import annotations

from typing import Optional


def runtime_ratio(reference_seconds: float, generated_seconds: float) -> Optional[float]:
    """The paper's Ratio: reference runtime (human-written code in the target
    language) divided by the LASSI-generated code's runtime.  > 1 means the
    generated code is faster."""
    if generated_seconds <= 0:
        return None
    return reference_seconds / generated_seconds


def within_10pct_or_faster(ratio: Optional[float]) -> bool:
    """§V-B/C: "within 10% of or at a faster runtime than the original".

    Ratio = t_ref / t_gen, so t_gen <= 1.1 * t_ref  <=>  ratio >= 1/1.1.
    """
    if ratio is None:
        return False
    return ratio >= (1.0 / 1.1)
