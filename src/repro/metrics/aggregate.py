"""Aggregate statistics over a set of translation results (§V-B/C).

Computes the paper's headline numbers for a direction:

* success rate — fraction of scenarios producing executable code with the
  expected output (80% OMP->CUDA, 85% CUDA->OMP in the paper);
* within-10%-or-faster fraction *of the successful* scenarios (78.1% /
  61.8%);
* Sim-T >= 0.6 fraction of the successful scenarios (40.6% / 47.1%);
* zero-self-correction fraction of the successful scenarios (65.6% / 55.9%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.metrics.runtime import within_10pct_or_faster
from repro.metrics.similarity import HIGH_SIMILARITY_THRESHOLD


@dataclass(frozen=True)
class ScenarioMetrics:
    """The five Table VI/VII columns for one scenario (None => N/A)."""

    ok: bool
    runtime_seconds: Optional[float] = None
    ratio: Optional[float] = None
    sim_t: Optional[float] = None
    sim_l: Optional[float] = None
    self_corrections: Optional[int] = None


@dataclass(frozen=True)
class AggregateStats:
    total: int
    successes: int

    success_rate: float
    within_10pct_rate: float
    high_similarity_rate: float
    first_try_rate: float

    def summary_lines(self) -> list:
        return [
            f"scenarios: {self.total}",
            f"successful translations: {self.successes} "
            f"({self.success_rate:.1%})",
            f"within 10% or faster (of successes): {self.within_10pct_rate:.1%}",
            f"Sim-T >= {HIGH_SIMILARITY_THRESHOLD} (of successes): "
            f"{self.high_similarity_rate:.1%}",
            f"zero self-corrections (of successes): {self.first_try_rate:.1%}",
        ]


def aggregate(results: Sequence[ScenarioMetrics]) -> AggregateStats:
    """Fold scenario metrics into the paper's headline statistics."""
    total = len(results)
    successes = [r for r in results if r.ok]
    n_ok = len(successes)

    def frac(pred) -> float:
        if not successes:
            return 0.0
        return sum(1 for r in successes if pred(r)) / n_ok

    return AggregateStats(
        total=total,
        successes=n_ok,
        success_rate=(n_ok / total) if total else 0.0,
        within_10pct_rate=frac(lambda r: within_10pct_or_faster(r.ratio)),
        high_similarity_rate=frac(
            lambda r: r.sim_t is not None and r.sim_t >= HIGH_SIMILARITY_THRESHOLD
        ),
        first_try_rate=frac(lambda r: (r.self_corrections or 0) == 0),
    )


@dataclass(frozen=True)
class StageTimeStats:
    """Accumulated wall time of one pipeline stage across many runs."""

    total_seconds: float
    runs: int  # runs in which the stage executed at least once

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.runs if self.runs else 0.0


def merge_stage_seconds(
    timing_maps: Iterable[Mapping[str, float]],
) -> Dict[str, StageTimeStats]:
    """Fold per-run ``LassiResult.stage_seconds`` maps into per-stage totals.

    The input is plain ``{stage-name: seconds}`` mappings (kept dict-typed
    so this module stays import-cycle-free of :mod:`repro.pipeline`);
    stage order of first appearance is preserved, which for pipeline runs
    means graph order.  Runs that never entered a stage (early halts,
    cache replays with empty telemetry) simply don't count toward that
    stage's ``runs``.
    """
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for timings in timing_maps:
        for stage, seconds in timings.items():
            totals[stage] = totals.get(stage, 0.0) + seconds
            counts[stage] = counts.get(stage, 0) + 1
    return {
        stage: StageTimeStats(total_seconds=totals[stage], runs=counts[stage])
        for stage in totals
    }
