"""Lexer for the mini-language.

Produces a flat token stream.  ``#pragma`` lines are captured as single
``PRAGMA`` tokens (their clause text is parsed later by
:mod:`repro.minilang.pragma`); ``#include`` lines are tolerated and skipped so
LLM-style output that carries includes still lexes.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List, Optional

from repro.minilang.diagnostics import DiagnosticBag
from repro.minilang.source import Span


class TokenKind(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_LIT = "integer literal"
    FLOAT_LIT = "float literal"
    STRING_LIT = "string literal"
    CHAR_LIT = "char literal"
    PUNCT = "punctuation"
    PRAGMA = "pragma"
    EOF = "end of file"


KEYWORDS = frozenset(
    {
        "int", "float", "double", "char", "bool", "void", "long", "unsigned",
        "size_t",
        "if", "else", "for", "while", "do", "return", "break", "continue",
        "sizeof", "true", "false", "NULL", "nullptr", "const",
        "__global__", "__device__", "__host__", "__shared__", "__restrict__",
        "struct",
    }
)

# Longest-first multi-character punctuation. ``<<<``/``>>>`` are lexed as
# single tokens only when the CUDA dialect is active — in plain C they would
# be shift-assign sequences, and none of our programs use nested templates.
_PUNCT3 = ["<<<", ">>>", "<<=", ">>=", "..."]
_PUNCT2 = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--", "->",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::",
]
_PUNCT1 = list("+-*/%<>=!&|^~?:;,.(){}[]#")

_NUMBER_RE = re.compile(
    r"""
      0[xX][0-9a-fA-F]+[uUlL]*
    | (?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fFlL]?
    | \d+[eE][+-]?\d+[fF]?
    | \d+[uUlLfF]*
    """,
    re.VERBOSE,
)
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.span})"


class Lexer:
    """Single-pass lexer.  Errors become diagnostics, never exceptions."""

    def __init__(self, text: str, diagnostics: Optional[DiagnosticBag] = None,
                 cuda_launch_syntax: bool = False) -> None:
        self.text = text
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticBag()
        self.cuda_launch_syntax = cuda_launch_syntax
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level helpers -------------------------------------------------
    def _span(self) -> Span:
        return Span(self.line, self.col)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        p = self.pos + offset
        return self.text[p] if p < len(self.text) else ""

    def _match(self, s: str) -> bool:
        return self.text.startswith(s, self.pos)

    # -- token producers ---------------------------------------------------
    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    def next_token(self) -> Token:
        self._skip_trivia()
        span = self._span()
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", span)
        ch = self._peek()

        if ch == "#":
            return self._lex_directive(span)

        if ch == '"':
            return self._lex_string(span)

        if ch == "'":
            return self._lex_char(span)

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            m = _NUMBER_RE.match(self.text, self.pos)
            assert m is not None
            text = m.group(0)
            self._advance(len(text))
            is_float = (
                "." in text
                or (
                    not text.lower().startswith("0x")
                    and ("e" in text.lower() or text.rstrip("uUlL").endswith(("f", "F")))
                )
            )
            kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
            return Token(kind, text, span)

        m = _IDENT_RE.match(self.text, self.pos)
        if m:
            text = m.group(0)
            self._advance(len(text))
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, span)

        if self.cuda_launch_syntax:
            for p in ("<<<", ">>>"):
                if self._match(p):
                    self._advance(3)
                    return Token(TokenKind.PUNCT, p, span)
        for p in _PUNCT3:
            if p in ("<<<", ">>>"):
                continue
            if self._match(p):
                self._advance(3)
                return Token(TokenKind.PUNCT, p, span)
        for p in _PUNCT2:
            if self._match(p):
                self._advance(2)
                return Token(TokenKind.PUNCT, p, span)
        if ch in _PUNCT1:
            self._advance(1)
            return Token(TokenKind.PUNCT, ch, span)

        self.diagnostics.error(
            "invalid-character",
            f"invalid character {ch!r} in source",
            span,
        )
        self._advance(1)
        return self.next_token()

    # -- pieces ------------------------------------------------------------
    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance(1)
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance(1)
            elif ch == "/" and self._peek(1) == "*":
                start = self._span()
                self._advance(2)
                while self.pos < len(self.text) and not self._match("*/"):
                    self._advance(1)
                if self.pos >= len(self.text):
                    self.diagnostics.error(
                        "unterminated-comment", "unterminated /* comment", start
                    )
                else:
                    self._advance(2)
            else:
                return

    def _lex_directive(self, span: Span) -> Token:
        # Capture the full logical line (with backslash continuations).
        start = self.pos
        while self.pos < len(self.text):
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
                continue
            if self._peek() == "\n":
                break
            self._advance(1)
        text = self.text[start:self.pos].replace("\\\n", " ").strip()
        if text.startswith("#pragma"):
            return Token(TokenKind.PRAGMA, text, span)
        if text.startswith(("#include", "#define", "#ifdef", "#ifndef", "#endif", "#if", "#else")):
            # Tolerated and skipped: LLM output routinely carries includes.
            return self.next_token()
        self.diagnostics.error(
            "unknown-directive", f"unknown preprocessor directive: {text.split()[0] if text.split() else '#'}", span
        )
        return self.next_token()

    def _lex_string(self, span: Span) -> Token:
        start = self.pos
        self._advance(1)
        while self.pos < len(self.text):
            ch = self._peek()
            if ch == "\\":
                self._advance(2)
                continue
            if ch == '"':
                self._advance(1)
                return Token(TokenKind.STRING_LIT, self.text[start:self.pos], span)
            if ch == "\n":
                break
            self._advance(1)
        self.diagnostics.error("unterminated-string", "unterminated string literal", span)
        return Token(TokenKind.STRING_LIT, self.text[start:self.pos] + '"', span)

    def _lex_char(self, span: Span) -> Token:
        start = self.pos
        self._advance(1)
        if self._peek() == "\\":
            self._advance(2)
        elif self.pos < len(self.text):
            self._advance(1)
        if self._peek() == "'":
            self._advance(1)
            return Token(TokenKind.CHAR_LIT, self.text[start:self.pos], span)
        self.diagnostics.error("unterminated-char", "unterminated character literal", span)
        return Token(TokenKind.CHAR_LIT, self.text[start:self.pos] + "'", span)


def lex(text: str, cuda_launch_syntax: bool = False) -> List[Token]:
    """Convenience: lex ``text`` and return tokens, raising on lex errors."""
    bag = DiagnosticBag()
    toks = Lexer(text, bag, cuda_launch_syntax=cuda_launch_syntax).tokens()
    return toks
