"""Semantic analysis: symbol resolution, type checking, dialect legality.

The analyzer's product is a :class:`DiagnosticBag` whose rendered text is the
"compiler stderr" that the LASSI pipeline feeds back to the LLM.  Messages are
worded to match the clang/nvcc phrasing that real LLMs are trained on (e.g.
``use of undeclared identifier 'foo'``), since the simulated LLM's repair
matcher keys on them the way a real model attends to error tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.minilang import ast
from repro.minilang import types as ty
from repro.minilang.builtins import BUILTINS, CONSTANTS, GEOMETRY_BUILTINS, return_type
from repro.minilang.diagnostics import DiagnosticBag
from repro.minilang.source import Dialect, Span


@dataclass
class _Scope:
    vars: Dict[str, ty.Type] = field(default_factory=dict)
    parent: Optional["_Scope"] = None

    def lookup(self, name: str) -> Optional[ty.Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def declare(self, name: str, type_: ty.Type) -> bool:
        if name in self.vars:
            return False
        self.vars[name] = type_
        return True


@dataclass
class AnalysisResult:
    """Outcome of semantic analysis."""

    diagnostics: DiagnosticBag
    program: ast.Program

    @property
    def ok(self) -> bool:
        return not self.diagnostics.has_errors


class _FunctionContext:
    def __init__(self, fn: ast.FuncDef, in_device: bool) -> None:
        self.fn = fn
        self.in_device = in_device
        self.loop_depth = 0
        self.saw_return_value = False


class Analyzer:
    def __init__(self, program: ast.Program, dialect: Dialect) -> None:
        self.program = program
        self.dialect = dialect
        self.diagnostics = DiagnosticBag()
        self.functions: Dict[str, ast.FuncDef] = {}

    # ------------------------------------------------------------------
    def run(self) -> AnalysisResult:
        for fn in self.program.functions:
            prev = self.functions.get(fn.name)
            if prev is not None and prev.body.stmts and fn.body.stmts:
                self.diagnostics.error(
                    "redefinition", f"redefinition of '{fn.name}'", fn.span
                )
            # A definition supersedes a forward declaration.
            if prev is None or fn.body.stmts:
                self.functions[fn.name] = fn

        if "main" not in self.functions:
            self.diagnostics.error(
                "no-main", "undefined reference to 'main'", Span(1, 1),
                hint="a program entry point 'int main(...)' is required",
            )

        global_scope = _Scope()
        for gv in self.program.globals:
            self._check_global(gv, global_scope)

        for fn in self.functions.values():
            self._check_function(fn, global_scope)
        return AnalysisResult(self.diagnostics, self.program)

    # ------------------------------------------------------------------
    def _check_global(self, gv: ast.GlobalVar, scope: _Scope) -> None:
        decl = gv.decl
        var_type = decl.type
        if decl.array_size is not None:
            var_type = decl.type.pointer_to()
        if not scope.declare(decl.name, var_type):
            self.diagnostics.error(
                "redefinition", f"redefinition of '{decl.name}'", gv.span
            )
        if decl.init is not None:
            ctx = _FunctionContext(
                ast.FuncDef(ty.VOID, "<global-init>", [], ast.Block()), in_device=False
            )
            init_type = self._expr_type(decl.init, scope, ctx)
            if init_type is not None and not ty.assignable(var_type, init_type):
                self.diagnostics.error(
                    "type-mismatch",
                    f"cannot initialize a variable of type '{var_type}' with an "
                    f"rvalue of type '{init_type}'",
                    decl.init.span,
                )

    def _check_function(self, fn: ast.FuncDef, global_scope: _Scope) -> None:
        if fn.qualifier in ("__global__", "__device__") and self.dialect is not Dialect.CUDA:
            self.diagnostics.error(
                "undeclared-ident",
                f"use of undeclared identifier '{fn.qualifier}'",
                fn.span,
                hint="CUDA function qualifiers require nvcc",
            )
        if fn.is_kernel and not fn.return_type.is_void:
            self.diagnostics.error(
                "kernel-return-type",
                f"a __global__ function must have a void return type, "
                f"but '{fn.name}' returns '{fn.return_type}'",
                fn.span,
            )
        scope = _Scope(parent=global_scope)
        for param in fn.params:
            if param.name and not scope.declare(param.name, param.type):
                self.diagnostics.error(
                    "redefinition",
                    f"redefinition of parameter '{param.name}'",
                    param.span,
                )
        ctx = _FunctionContext(fn, in_device=fn.qualifier in ("__global__", "__device__"))
        self._check_stmt(fn.body, scope, ctx)
        if (
            not fn.return_type.is_void
            and fn.name != "main"
            and fn.body.stmts
            and not ctx.saw_return_value
        ):
            self.diagnostics.warning(
                "missing-return",
                f"non-void function '{fn.name}' does not return a value on all paths",
                fn.span,
            )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope, ctx: _FunctionContext) -> None:
        if isinstance(stmt, ast.Block):
            inner = _Scope(parent=scope)
            for s in stmt.stmts:
                self._check_stmt(s, inner, ctx)
        elif isinstance(stmt, ast.VarDecl):
            self._check_vardecl(stmt, scope, ctx)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr_type(stmt.expr, scope, ctx)
        elif isinstance(stmt, ast.If):
            self._expr_type(stmt.cond, scope, ctx)
            self._check_stmt(stmt.then, scope, ctx)
            if stmt.other is not None:
                self._check_stmt(stmt.other, scope, ctx)
        elif isinstance(stmt, ast.For):
            inner = _Scope(parent=scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, ctx)
            if stmt.cond is not None:
                self._expr_type(stmt.cond, inner, ctx)
            if stmt.step is not None:
                self._expr_type(stmt.step, inner, ctx)
            ctx.loop_depth += 1
            self._check_stmt(stmt.body, inner, ctx)
            ctx.loop_depth -= 1
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._expr_type(stmt.cond, scope, ctx)
            ctx.loop_depth += 1
            self._check_stmt(stmt.body, scope, ctx)
            ctx.loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                vt = self._expr_type(stmt.value, scope, ctx)
                ctx.saw_return_value = True
                if (
                    vt is not None
                    and ctx.fn.return_type.is_void
                ):
                    self.diagnostics.error(
                        "void-return-value",
                        f"void function '{ctx.fn.name}' should not return a value",
                        stmt.span,
                    )
            elif not ctx.fn.return_type.is_void:
                self.diagnostics.error(
                    "missing-return-value",
                    f"non-void function '{ctx.fn.name}' should return a value",
                    stmt.span,
                )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if ctx.loop_depth == 0:
                word = "break" if isinstance(stmt, ast.Break) else "continue"
                self.diagnostics.error(
                    "break-outside-loop",
                    f"'{word}' statement not in loop statement",
                    stmt.span,
                )
        elif isinstance(stmt, ast.Pragma):
            self._check_pragma(stmt, scope, ctx)
        elif isinstance(stmt, ast.SyncThreads):
            if not ctx.in_device:
                self.diagnostics.error(
                    "host-syncthreads",
                    "calling a __device__ function(\"__syncthreads\") from a "
                    "__host__ function is not allowed",
                    stmt.span,
                )

    def _check_vardecl(self, decl: ast.VarDecl, scope: _Scope, ctx: _FunctionContext) -> None:
        var_type = decl.type
        if decl.array_size is not None:
            st = self._expr_type(decl.array_size, scope, ctx)
            if st is not None and not st.is_integer:
                self.diagnostics.error(
                    "array-size-type",
                    f"size of array '{decl.name}' has non-integer type '{st}'",
                    decl.span,
                )
            var_type = decl.type.pointer_to()
        if decl.shared and not ctx.in_device:
            self.diagnostics.error(
                "shared-outside-kernel",
                "__shared__ variables are only allowed in device code",
                decl.span,
            )
        if not scope.declare(decl.name, var_type):
            self.diagnostics.error(
                "redefinition", f"redefinition of '{decl.name}'", decl.span
            )
        if decl.init is not None:
            it = self._expr_type(decl.init, scope, ctx)
            if it is not None and not ty.assignable(var_type, it):
                self.diagnostics.error(
                    "type-mismatch",
                    f"cannot initialize a variable of type '{var_type}' with an "
                    f"rvalue of type '{it}'",
                    decl.init.span,
                )

    def _check_pragma(self, stmt: ast.Pragma, scope: _Scope, ctx: _FunctionContext) -> None:
        pragma = stmt.pragma
        if self.dialect is Dialect.CUDA:
            # nvcc without -fopenmp: pragma is ignored with a warning; the
            # attached statement still compiles (and will run serially).
            self.diagnostics.warning(
                "unknown-pragma",
                f"ignoring '#pragma omp {pragma.directive}' [-Wunknown-pragmas]",
                stmt.span,
            )
            if stmt.body is not None:
                self._check_stmt(stmt.body, scope, ctx)
            return
        if ctx.in_device:
            self.diagnostics.error(
                "pragma-in-kernel",
                "OpenMP directives are not allowed in device code",
                stmt.span,
            )
        for mc in pragma.maps:
            if scope.lookup(mc.name) is None:
                self.diagnostics.error(
                    "undeclared-ident",
                    f"use of undeclared identifier '{mc.name}' in map clause",
                    stmt.span,
                )
            for bound in (mc.lower, mc.length):
                if bound is not None:
                    self._expr_type(bound, scope, ctx)
        if pragma.reduction is not None:
            for name in pragma.reduction.names:
                rt = scope.lookup(name)
                if rt is None:
                    self.diagnostics.error(
                        "undeclared-ident",
                        f"use of undeclared identifier '{name}' in reduction clause",
                        stmt.span,
                    )
                elif rt.is_pointer:
                    self.diagnostics.error(
                        "reduction-pointer",
                        f"a reduction list item must be of scalar type, "
                        f"'{name}' has type '{rt}'",
                        stmt.span,
                    )
        for expr in (pragma.num_threads, pragma.thread_limit, pragma.num_teams,
                     pragma.schedule_chunk):
            if expr is not None:
                self._expr_type(expr, scope, ctx)

        if pragma.is_loop:
            if not isinstance(stmt.body, ast.For):
                self.diagnostics.error(
                    "pragma-requires-for",
                    f"statement after '#pragma omp {pragma.directive}' must be a for loop",
                    stmt.span,
                )
                if stmt.body is not None:
                    self._check_stmt(stmt.body, scope, ctx)
                return
            self._check_canonical_loop(stmt.body, pragma, scope, ctx)
            self._check_stmt(stmt.body, scope, ctx)
        elif pragma.directive == "atomic":
            body = stmt.body
            ok = (
                isinstance(body, ast.ExprStmt)
                and isinstance(body.expr, (ast.Assign, ast.Unary, ast.Postfix))
            )
            if not ok:
                self.diagnostics.error(
                    "invalid-atomic",
                    "the statement following '#pragma omp atomic' must be an "
                    "expression statement updating an l-value",
                    stmt.span,
                )
            if body is not None:
                self._check_stmt(body, scope, ctx)
        elif stmt.body is not None:
            self._check_stmt(stmt.body, scope, ctx)

    def _check_canonical_loop(
        self, loop: ast.For, pragma: ast.OmpPragma, scope: _Scope, ctx: _FunctionContext
    ) -> None:
        """OpenMP loop directives require canonical form: init, test, incr."""
        if loop.init is None or loop.cond is None or loop.step is None:
            self.diagnostics.error(
                "non-canonical-loop",
                "OpenMP loop directive requires a canonical for loop "
                "(initializer, condition and increment)",
                loop.span,
            )
        depth_needed = pragma.collapse
        cur: ast.Stmt = loop
        for level in range(1, depth_needed):
            body = cur.body if isinstance(cur, ast.For) else None
            inner = None
            if isinstance(body, ast.For):
                inner = body
            elif isinstance(body, ast.Block):
                fors = [s for s in body.stmts if isinstance(s, ast.For)]
                others = [
                    s for s in body.stmts
                    if not isinstance(s, (ast.For, ast.Block))
                ]
                if len(fors) == 1 and not others:
                    inner = fors[0]
            if inner is None:
                self.diagnostics.error(
                    "bad-collapse",
                    f"cannot collapse {depth_needed} loops: loop nest is not "
                    f"perfectly nested at depth {level + 1}",
                    loop.span,
                )
                return
            cur = inner

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expr_type(
        self, expr: ast.Expr, scope: _Scope, ctx: _FunctionContext
    ) -> Optional[ty.Type]:
        """Type-check ``expr``; returns None if a sub-expression errored."""
        if isinstance(expr, ast.IntLit):
            return ty.INT
        if isinstance(expr, ast.FloatLit):
            return ty.FLOAT if expr.text.rstrip().endswith(("f", "F")) else ty.DOUBLE
        if isinstance(expr, ast.StrLit):
            return ty.Type(ty.Kind.CHAR, 1)
        if isinstance(expr, ast.CharLit):
            return ty.CHAR
        if isinstance(expr, ast.BoolLit):
            return ty.BOOL
        if isinstance(expr, ast.NullLit):
            return ty.Type(ty.Kind.VOID, 1)
        if isinstance(expr, ast.Ident):
            return self._ident_type(expr, scope, ctx)
        if isinstance(expr, ast.Member):
            return self._member_type(expr, scope, ctx)
        if isinstance(expr, ast.Unary):
            return self._unary_type(expr, scope, ctx)
        if isinstance(expr, ast.Postfix):
            t = self._expr_type(expr.operand, scope, ctx)
            self._require_lvalue(expr.operand, "increment/decrement operand")
            return t
        if isinstance(expr, ast.Binary):
            return self._binary_type(expr, scope, ctx)
        if isinstance(expr, ast.Assign):
            return self._assign_type(expr, scope, ctx)
        if isinstance(expr, ast.Ternary):
            self._expr_type(expr.cond, scope, ctx)
            t1 = self._expr_type(expr.then, scope, ctx)
            t2 = self._expr_type(expr.other, scope, ctx)
            if t1 is None or t2 is None:
                return None
            if t1 == t2:
                return t1
            if t1.is_numeric and t2.is_numeric:
                return ty.unify_arith(t1, t2)
            return t1
        if isinstance(expr, ast.Call):
            return self._call_type(expr, scope, ctx)
        if isinstance(expr, ast.Launch):
            return self._launch_type(expr, scope, ctx)
        if isinstance(expr, ast.Index):
            base = self._expr_type(expr.base, scope, ctx)
            idx = self._expr_type(expr.index, scope, ctx)
            if idx is not None and not idx.is_integer:
                self.diagnostics.error(
                    "subscript-type",
                    f"array subscript is not an integer (got '{idx}')",
                    expr.index.span,
                )
            if base is None:
                return None
            if not base.is_pointer:
                self.diagnostics.error(
                    "subscript-nonpointer",
                    "subscripted value is not an array or pointer",
                    expr.span,
                )
                return None
            return base.pointee()
        if isinstance(expr, ast.Cast):
            self._expr_type(expr.operand, scope, ctx)
            return expr.type
        if isinstance(expr, ast.SizeOf):
            return ty.SIZE_T
        raise AssertionError(f"unhandled expression node {type(expr).__name__}")

    def _ident_type(
        self, expr: ast.Ident, scope: _Scope, ctx: _FunctionContext
    ) -> Optional[ty.Type]:
        name = expr.name
        t = scope.lookup(name)
        if t is not None:
            return t
        if name in CONSTANTS:
            value, cuda_only = CONSTANTS[name]
            if cuda_only and self.dialect is not Dialect.CUDA:
                self.diagnostics.error(
                    "undeclared-ident", f"use of undeclared identifier '{name}'", expr.span
                )
                return None
            return ty.FLOAT if isinstance(value, float) else ty.INT
        if name in GEOMETRY_BUILTINS:
            if self.dialect is not Dialect.CUDA or not ctx.in_device:
                self.diagnostics.error(
                    "undeclared-ident",
                    f"use of undeclared identifier '{name}'",
                    expr.span,
                    hint=(
                        f"'{name}' is only available in CUDA device code"
                        if self.dialect is Dialect.CUDA
                        else None
                    ),
                )
                return None
            # Usable only through .x member access; bare use is an error.
            return ty.INT
        if name in self.functions or name in BUILTINS:
            self.diagnostics.error(
                "function-as-value",
                f"reference to function '{name}' requires a call",
                expr.span,
            )
            return None
        self.diagnostics.error(
            "undeclared-ident", f"use of undeclared identifier '{name}'", expr.span
        )
        return None

    def _member_type(
        self, expr: ast.Member, scope: _Scope, ctx: _FunctionContext
    ) -> Optional[ty.Type]:
        if isinstance(expr.obj, ast.Ident) and expr.obj.name in GEOMETRY_BUILTINS:
            if self.dialect is not Dialect.CUDA:
                self.diagnostics.error(
                    "undeclared-ident",
                    f"use of undeclared identifier '{expr.obj.name}'",
                    expr.obj.span,
                )
                return None
            if not ctx.in_device:
                self.diagnostics.error(
                    "geometry-in-host",
                    f"'{expr.obj.name}' is not allowed in host code",
                    expr.obj.span,
                )
                return None
            if expr.field_name not in ("x", "y", "z"):
                self.diagnostics.error(
                    "bad-member",
                    f"no member named '{expr.field_name}' in 'uint3'",
                    expr.span,
                )
                return None
            return ty.INT
        self.diagnostics.error(
            "bad-member",
            "member reference base is not a structure",
            expr.span,
        )
        return None

    def _unary_type(
        self, expr: ast.Unary, scope: _Scope, ctx: _FunctionContext
    ) -> Optional[ty.Type]:
        t = self._expr_type(expr.operand, scope, ctx)
        if t is None:
            return None
        op = expr.op
        if op == "&":
            self._require_lvalue(expr.operand, "operand of '&'")
            return t.pointer_to()
        if op == "*":
            if not t.is_pointer:
                self.diagnostics.error(
                    "deref-nonpointer",
                    f"indirection requires pointer operand ('{t}' invalid)",
                    expr.span,
                )
                return None
            return t.pointee()
        if op == "!":
            return ty.BOOL
        if op == "~":
            if not t.is_integer:
                self.diagnostics.error(
                    "bitwise-nonint",
                    f"invalid argument type '{t}' to unary expression",
                    expr.span,
                )
            return ty.INT
        if op in ("++", "--"):
            self._require_lvalue(expr.operand, "increment/decrement operand")
            return t
        if op == "-":
            if not t.is_numeric:
                self.diagnostics.error(
                    "arith-nonnumeric",
                    f"invalid argument type '{t}' to unary expression",
                    expr.span,
                )
                return None
            return t
        raise AssertionError(f"unhandled unary op {op}")

    def _binary_type(
        self, expr: ast.Binary, scope: _Scope, ctx: _FunctionContext
    ) -> Optional[ty.Type]:
        lt = self._expr_type(expr.left, scope, ctx)
        rt = self._expr_type(expr.right, scope, ctx)
        if lt is None or rt is None:
            return None
        op = expr.op
        if op in ("&&", "||"):
            return ty.BOOL
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if lt.is_pointer != rt.is_pointer and not (
                (lt.is_pointer and rt.kind is ty.Kind.VOID)
                or (rt.is_pointer and lt.kind is ty.Kind.VOID)
            ):
                # comparing pointer with int etc.
                if not (lt.is_numeric and rt.is_numeric):
                    self.diagnostics.error(
                        "comparison-mismatch",
                        f"comparison of distinct types ('{lt}' and '{rt}')",
                        expr.span,
                    )
            return ty.BOOL
        if op in ("&", "|", "^", "<<", ">>", "%"):
            if not (lt.is_integer and rt.is_integer):
                self.diagnostics.error(
                    "bitwise-nonint",
                    f"invalid operands to binary expression ('{lt}' and '{rt}')",
                    expr.span,
                )
                return None
            return ty.unify_arith(lt, rt)
        if op in ("+", "-"):
            if lt.is_pointer and rt.is_integer:
                return lt
            if rt.is_pointer and lt.is_integer and op == "+":
                return rt
            if lt.is_pointer and rt.is_pointer and op == "-":
                return ty.LONG
        if not (lt.is_numeric and rt.is_numeric):
            self.diagnostics.error(
                "arith-mismatch",
                f"invalid operands to binary expression ('{lt}' and '{rt}')",
                expr.span,
            )
            return None
        return ty.unify_arith(lt, rt)

    def _assign_type(
        self, expr: ast.Assign, scope: _Scope, ctx: _FunctionContext
    ) -> Optional[ty.Type]:
        tt = self._expr_type(expr.target, scope, ctx)
        vt = self._expr_type(expr.value, scope, ctx)
        self._require_lvalue(expr.target, "left operand of assignment")
        if tt is None or vt is None:
            return tt
        if expr.op == "=":
            if not ty.assignable(tt, vt):
                self.diagnostics.error(
                    "type-mismatch",
                    f"assigning to '{tt}' from incompatible type '{vt}'",
                    expr.span,
                )
        else:
            base_op = expr.op[:-1]
            if tt.is_pointer and base_op in ("+", "-") and vt.is_integer:
                pass  # pointer arithmetic compound assignment
            elif base_op in ("&", "|", "^", "%", "<<", ">>"):
                if not (tt.is_integer and vt.is_integer):
                    self.diagnostics.error(
                        "bitwise-nonint",
                        f"invalid operands to binary expression ('{tt}' and '{vt}')",
                        expr.span,
                    )
            elif not (tt.is_numeric and vt.is_numeric):
                self.diagnostics.error(
                    "arith-mismatch",
                    f"invalid operands to compound assignment ('{tt}' and '{vt}')",
                    expr.span,
                )
        return tt

    def _require_lvalue(self, expr: ast.Expr, what: str) -> None:
        if isinstance(expr, (ast.Ident, ast.Index)):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        if isinstance(expr, ast.Member):
            return
        self.diagnostics.error(
            "not-assignable",
            f"expression is not assignable ({what})",
            expr.span,
        )

    def _call_type(
        self, expr: ast.Call, scope: _Scope, ctx: _FunctionContext
    ) -> Optional[ty.Type]:
        arg_types = [self._expr_type(a, scope, ctx) for a in expr.args]
        name = expr.callee

        fn = self.functions.get(name)
        if fn is not None:
            if fn.is_kernel:
                self.diagnostics.error(
                    "kernel-call-unconfigured",
                    f"a __global__ function call must be configured: did you "
                    f"mean '{name}<<<...>>>(...)'?",
                    expr.span,
                )
                return ty.VOID
            if fn.is_device and not ctx.in_device:
                self.diagnostics.error(
                    "device-call-from-host",
                    f"calling a __device__ function(\"{name}\") from a __host__ "
                    f"function(\"{ctx.fn.name}\") is not allowed",
                    expr.span,
                )
            if not fn.is_device and ctx.in_device:
                self.diagnostics.error(
                    "host-call-from-device",
                    f"calling a __host__ function(\"{name}\") from a "
                    f"{ctx.fn.qualifier or '__global__'} function"
                    f"(\"{ctx.fn.name}\") is not allowed",
                    expr.span,
                )
            if len(expr.args) != len(fn.params):
                self.diagnostics.error(
                    "arg-count",
                    f"too {'many' if len(expr.args) > len(fn.params) else 'few'} "
                    f"arguments to function call '{name}', expected "
                    f"{len(fn.params)}, have {len(expr.args)}",
                    expr.span,
                )
                return fn.return_type
            for i, (param, at) in enumerate(zip(fn.params, arg_types)):
                if at is not None and not ty.assignable(param.type, at):
                    self.diagnostics.error(
                        "arg-type",
                        f"no matching function for call to '{name}': argument "
                        f"{i + 1} has type '{at}', expected '{param.type}'",
                        expr.args[i].span,
                    )
            return fn.return_type

        b = BUILTINS.get(name)
        if b is not None:
            if b.cuda_only and self.dialect is not Dialect.CUDA:
                self.diagnostics.error(
                    "undeclared-ident",
                    f"use of undeclared identifier '{name}'",
                    expr.span,
                    hint="CUDA runtime API requires nvcc" if name.startswith("cuda") else None,
                )
                return None
            if b.where == "device" and not ctx.in_device:
                self.diagnostics.error(
                    "device-call-from-host",
                    f"calling a __device__ function(\"{name}\") from a __host__ "
                    f"function(\"{ctx.fn.name}\") is not allowed",
                    expr.span,
                )
            if b.where == "host" and ctx.in_device and name != "printf":
                self.diagnostics.error(
                    "host-call-from-device",
                    f"calling a __host__ function(\"{name}\") from a __global__ "
                    f"function(\"{ctx.fn.name}\") is not allowed",
                    expr.span,
                )
            nargs = len(expr.args)
            if nargs < b.min_args or (b.max_args != -1 and nargs > b.max_args):
                self.diagnostics.error(
                    "arg-count",
                    f"too {'many' if b.max_args != -1 and nargs > b.max_args else 'few'} "
                    f"arguments to function call '{name}'",
                    expr.span,
                )
            if name in ("atomicAdd", "atomicSub", "atomicMax", "atomicMin", "atomicExch"):
                if arg_types and arg_types[0] is not None and not arg_types[0].is_pointer:
                    self.diagnostics.error(
                        "arg-type",
                        f"no instance of overloaded function \"{name}\" matches "
                        f"the argument list: first argument must be a pointer",
                        expr.span,
                    )
            clean_types = [t if t is not None else ty.INT for t in arg_types]
            return return_type(b, clean_types)

        self.diagnostics.error(
            "undeclared-function",
            f"use of undeclared identifier '{name}'",
            expr.span,
        )
        return None

    def _launch_type(
        self, expr: ast.Launch, scope: _Scope, ctx: _FunctionContext
    ) -> Optional[ty.Type]:
        if self.dialect is not Dialect.CUDA:
            self.diagnostics.error(
                "launch-outside-cuda",
                "kernel launch syntax '<<<...>>>' requires CUDA compilation",
                expr.span,
            )
            return None
        if ctx.in_device:
            self.diagnostics.error(
                "launch-in-device",
                "kernel launch from device code is not supported",
                expr.span,
            )
        for dim in (expr.grid, expr.block):
            dt = self._expr_type(dim, scope, ctx)
            if dt is not None and not dt.is_integer:
                self.diagnostics.error(
                    "launch-dim-type",
                    f"kernel launch dimension has non-integer type '{dt}'",
                    dim.span,
                )
        arg_types = [self._expr_type(a, scope, ctx) for a in expr.args]
        fn = self.functions.get(expr.kernel)
        if fn is None:
            self.diagnostics.error(
                "undeclared-function",
                f"use of undeclared identifier '{expr.kernel}'",
                expr.span,
            )
            return ty.VOID
        if not fn.is_kernel:
            self.diagnostics.error(
                "launch-non-kernel",
                f"only __global__ functions may be launched; '{expr.kernel}' "
                f"is not a kernel",
                expr.span,
            )
            return ty.VOID
        if len(expr.args) != len(fn.params):
            self.diagnostics.error(
                "arg-count",
                f"too {'many' if len(expr.args) > len(fn.params) else 'few'} "
                f"arguments to kernel launch '{expr.kernel}', expected "
                f"{len(fn.params)}, have {len(expr.args)}",
                expr.span,
            )
        else:
            for i, (param, at) in enumerate(zip(fn.params, arg_types)):
                if at is not None and not ty.assignable(param.type, at):
                    self.diagnostics.error(
                        "arg-type",
                        f"no matching function for call to '{expr.kernel}': "
                        f"argument {i + 1} has type '{at}', expected "
                        f"'{param.type}'",
                        expr.args[i].span,
                    )
        return ty.VOID


def analyze(program: ast.Program, dialect: Dialect) -> AnalysisResult:
    """Run semantic analysis over ``program`` for the given dialect."""
    return Analyzer(program, dialect).run()
