"""Recursive-descent parser for the mini-language (both dialects).

Parsing is permissive across dialects — CUDA constructs and OpenMP pragmas are
both recognized — and the *semantic* pass (:mod:`repro.minilang.semantics`)
rejects constructs the active dialect's toolchain would not accept.  This
mirrors real toolchains: nvcc ignores unknown pragmas with a warning, while a
host C++ compiler reports CUDA qualifiers as unknown identifiers.

Errors are accumulated as diagnostics with statement-level recovery, so a
single run reports multiple problems, the way clang/nvcc stderr does.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.minilang import ast
from repro.minilang.diagnostics import DiagnosticBag
from repro.minilang.lexer import Lexer, Token, TokenKind
from repro.minilang.source import Dialect, SourceFile, Span
from repro.minilang import types as ty

_TYPE_KEYWORDS = {"int", "float", "double", "char", "bool", "void", "long", "unsigned", "size_t"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Binary operator precedence (higher binds tighter).
_BIN_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _ParseBailout(Exception):
    """Internal: unwound to the nearest recovery point."""


class Parser:
    def __init__(self, source: SourceFile, diagnostics: Optional[DiagnosticBag] = None) -> None:
        self.source = source
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticBag()
        lexer = Lexer(
            source.text,
            self.diagnostics,
            cuda_launch_syntax=(source.dialect is Dialect.CUDA),
        )
        self.tokens: List[Token] = lexer.tokens()
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        p = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[p]

    def _at_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _at_keyword(self, text: str) -> bool:
        return self._peek().is_keyword(text)

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return tok

    def _accept_punct(self, text: str) -> Optional[Token]:
        if self._at_punct(text):
            return self._advance()
        return None

    def _expect_punct(self, text: str, context: str = "") -> Token:
        if self._at_punct(text):
            return self._advance()
        got = self._peek()
        where = f" {context}" if context else ""
        self.diagnostics.error(
            "expected-token",
            f"expected '{text}'{where}, found {self._describe(got)}",
            got.span,
        )
        raise _ParseBailout()

    def _expect_ident(self, context: str = "") -> Token:
        tok = self._peek()
        if tok.kind is TokenKind.IDENT:
            return self._advance()
        where = f" {context}" if context else ""
        self.diagnostics.error(
            "expected-identifier",
            f"expected identifier{where}, found {self._describe(tok)}",
            tok.span,
        )
        raise _ParseBailout()

    @staticmethod
    def _describe(tok: Token) -> str:
        if tok.kind is TokenKind.EOF:
            return "end of file"
        return f"'{tok.text}'"

    def _sync_to(self, *stops: str) -> None:
        """Skip tokens until one of ``stops`` (consumed) or EOF, balancing braces."""
        depth = 0
        while self._peek().kind is not TokenKind.EOF:
            tok = self._peek()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                if depth == 0:
                    if "}" in stops:
                        self._advance()
                    return
                depth -= 1
            elif depth == 0 and tok.kind is TokenKind.PUNCT and tok.text in stops:
                self._advance()
                return
            self._advance()

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.is_keyword("const"):
            return self._at_type(offset + 1)
        return tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_KEYWORDS

    def _parse_type(self) -> Tuple[ty.Type, bool]:
        """Parse ``[const] scalar '*'*``; returns (type, is_const)."""
        is_const = False
        while self._at_keyword("const"):
            self._advance()
            is_const = True
        tok = self._peek()
        if not (tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_KEYWORDS):
            self.diagnostics.error(
                "expected-type", f"expected type name, found {self._describe(tok)}", tok.span
            )
            raise _ParseBailout()
        self._advance()
        name = tok.text
        if name == "unsigned" and self._at_keyword("int"):
            self._advance()
        if name == "long" and self._at_keyword("long"):
            self._advance()
        base = ty.named(name)
        ptrs = 0
        while self._at_punct("*"):
            self._advance()
            ptrs += 1
            while self._at_keyword("const") or self._at_keyword("__restrict__"):
                self._advance()
        return ty.Type(base.kind, ptrs), is_const

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        program.span = Span(1, 1)
        while self._peek().kind is not TokenKind.EOF:
            try:
                self._parse_topdecl(program)
            except _ParseBailout:
                self._sync_to(";", "}")
        return program

    def _parse_topdecl(self, program: ast.Program) -> None:
        tok = self._peek()
        if tok.kind is TokenKind.PRAGMA:
            self.diagnostics.warning(
                "pragma-at-top-level", "ignoring pragma at file scope", tok.span
            )
            self._advance()
            return

        qualifier: Optional[str] = None
        span = tok.span
        if tok.kind is TokenKind.KEYWORD and tok.text in ("__global__", "__device__", "__host__"):
            qualifier = tok.text if tok.text != "__host__" else None
            self._advance()

        decl_type, is_const = self._parse_type()
        name_tok = self._expect_ident("after type in declaration")

        if self._at_punct("("):
            fn = self._parse_function(decl_type, name_tok.text, qualifier)
            fn.span = span
            program.functions.append(fn)
            return

        if qualifier is not None:
            self.diagnostics.error(
                "qualifier-on-variable",
                f"'{qualifier}' is not allowed on a variable declaration",
                span,
            )
        decl = self._parse_vardecl_tail(decl_type, name_tok.text, is_const)
        decl.span = span
        program.globals.append(ast.GlobalVar(decl=decl, span=span))

    def _parse_function(
        self, return_type: ty.Type, name: str, qualifier: Optional[str]
    ) -> ast.FuncDef:
        self._expect_punct("(", "to begin parameter list")
        params: List[ast.Param] = []
        if not self._at_punct(")"):
            while True:
                if self._at_keyword("void") and self._peek(1).is_punct(")"):
                    self._advance()
                    break
                p_span = self._peek().span
                p_type, _ = self._parse_type()
                restrict = False
                p_name = ""
                if self._peek().kind is TokenKind.IDENT:
                    p_name = self._advance().text
                params.append(ast.Param(type=p_type, name=p_name, span=p_span, restrict=restrict))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")", "to close parameter list")
        if self._accept_punct(";"):
            # Forward declaration: record an empty body; semantics treats a
            # later definition with the same name as the real one.
            return ast.FuncDef(return_type, name, params, ast.Block(), qualifier)
        body = self._parse_block()
        return ast.FuncDef(return_type, name, params, body, qualifier)

    def _parse_vardecl_tail(self, decl_type: ty.Type, name: str, is_const: bool) -> ast.VarDecl:
        array_size: Optional[ast.Expr] = None
        if self._accept_punct("["):
            array_size = self._parse_expr()
            self._expect_punct("]", "to close array size")
        init: Optional[ast.Expr] = None
        if self._accept_punct("="):
            init = self._parse_expr()
        self._expect_punct(";", "after declaration")
        decl = ast.VarDecl(
            type=decl_type, name=name, init=init, array_size=array_size, const=is_const
        )
        return decl

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        open_tok = self._expect_punct("{", "to begin block")
        block = ast.Block()
        block.span = open_tok.span
        while not self._at_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                self.diagnostics.error(
                    "unclosed-block", "expected '}' to close block", open_tok.span
                )
                raise _ParseBailout()
            try:
                block.stmts.append(self._parse_stmt())
            except _ParseBailout:
                self._sync_to(";", "}")
                if self.tokens[self.pos - 1].is_punct("}"):
                    return block
        self._advance()
        return block

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        span = tok.span

        if tok.kind is TokenKind.PRAGMA:
            return self._parse_pragma_stmt()

        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_punct(";"):
            self._advance()
            return ast.Block().with_span(span)

        if tok.kind is TokenKind.KEYWORD:
            kw = tok.text
            if kw == "if":
                return self._parse_if()
            if kw == "for":
                return self._parse_for()
            if kw == "while":
                return self._parse_while()
            if kw == "do":
                return self._parse_do_while()
            if kw == "return":
                self._advance()
                value = None if self._at_punct(";") else self._parse_expr()
                self._expect_punct(";", "after return statement")
                return ast.Return(value=value).with_span(span)
            if kw == "break":
                self._advance()
                self._expect_punct(";", "after 'break'")
                return ast.Break().with_span(span)
            if kw == "continue":
                self._advance()
                self._expect_punct(";", "after 'continue'")
                return ast.Continue().with_span(span)
            if kw == "__shared__":
                self._advance()
                decl_type, is_const = self._parse_type()
                name_tok = self._expect_ident("after type in __shared__ declaration")
                decl = self._parse_vardecl_tail(decl_type, name_tok.text, is_const)
                decl.shared = True
                return decl.with_span(span)

        if self._at_type() and (
            self._peek(1).kind is TokenKind.IDENT
            or (self._peek(1).is_punct("*"))
            or self._peek(1).is_keyword("const")
            or (self._peek(1).kind is TokenKind.KEYWORD and self._peek(1).text in _TYPE_KEYWORDS)
        ):
            decl_type, is_const = self._parse_type()
            name_tok = self._expect_ident("after type in declaration")
            return self._parse_vardecl_tail(decl_type, name_tok.text, is_const).with_span(span)

        # __syncthreads() is a statement-level intrinsic with barrier
        # semantics; recognize it here so the executor can special-case it.
        if tok.kind is TokenKind.IDENT and tok.text == "__syncthreads":
            self._advance()
            self._expect_punct("(", "after '__syncthreads'")
            self._expect_punct(")", "after '__syncthreads('")
            self._expect_punct(";", "after '__syncthreads()'")
            return ast.SyncThreads().with_span(span)

        expr = self._parse_expr()
        self._expect_punct(";", "after expression statement")
        return ast.ExprStmt(expr=expr).with_span(span)

    def _parse_if(self) -> ast.Stmt:
        span = self._advance().span  # 'if'
        self._expect_punct("(", "after 'if'")
        cond = self._parse_expr()
        self._expect_punct(")", "to close if condition")
        then = self._parse_stmt()
        other: Optional[ast.Stmt] = None
        if self._at_keyword("else"):
            self._advance()
            other = self._parse_stmt()
        return ast.If(cond=cond, then=then, other=other).with_span(span)

    def _parse_for(self) -> ast.Stmt:
        span = self._advance().span  # 'for'
        self._expect_punct("(", "after 'for'")
        init: Optional[ast.Stmt] = None
        if not self._at_punct(";"):
            if self._at_type():
                d_span = self._peek().span
                decl_type, is_const = self._parse_type()
                name_tok = self._expect_ident("in for-loop initializer")
                array_size = None
                f_init = None
                if self._accept_punct("="):
                    f_init = self._parse_expr()
                self._expect_punct(";", "after for-loop initializer")
                init = ast.VarDecl(
                    type=decl_type, name=name_tok.text, init=f_init,
                    array_size=array_size, const=is_const,
                ).with_span(d_span)
            else:
                e_span = self._peek().span
                expr = self._parse_expr()
                self._expect_punct(";", "after for-loop initializer")
                init = ast.ExprStmt(expr=expr).with_span(e_span)
        else:
            self._advance()
        cond: Optional[ast.Expr] = None
        if not self._at_punct(";"):
            cond = self._parse_expr()
        self._expect_punct(";", "after for-loop condition")
        step: Optional[ast.Expr] = None
        if not self._at_punct(")"):
            step = self._parse_expr()
        self._expect_punct(")", "to close for-loop header")
        body = self._parse_stmt()
        return ast.For(init=init, cond=cond, step=step, body=body).with_span(span)

    def _parse_while(self) -> ast.Stmt:
        span = self._advance().span
        self._expect_punct("(", "after 'while'")
        cond = self._parse_expr()
        self._expect_punct(")", "to close while condition")
        body = self._parse_stmt()
        return ast.While(cond=cond, body=body).with_span(span)

    def _parse_do_while(self) -> ast.Stmt:
        span = self._advance().span
        body = self._parse_stmt()
        if not self._at_keyword("while"):
            self.diagnostics.error(
                "expected-token", "expected 'while' after do-statement body", self._peek().span
            )
            raise _ParseBailout()
        self._advance()
        self._expect_punct("(", "after 'while'")
        cond = self._parse_expr()
        self._expect_punct(")", "to close do-while condition")
        self._expect_punct(";", "after do-while statement")
        return ast.DoWhile(body=body, cond=cond).with_span(span)

    # ------------------------------------------------------------------
    # Pragmas
    # ------------------------------------------------------------------
    def _parse_pragma_stmt(self) -> ast.Stmt:
        tok = self._advance()
        pragma = parse_omp_pragma(tok.text, tok.span, self.diagnostics)
        if pragma is None:
            # Unknown pragma: warn and parse the next statement plainly,
            # matching "warning: ignoring #pragma" behaviour.
            self.diagnostics.warning(
                "unknown-pragma", f"ignoring unrecognized pragma: {tok.text}", tok.span
            )
            return self._parse_stmt()
        node = ast.Pragma(pragma=pragma)
        node.span = tok.span
        if pragma.directive in ("target data", "target"):
            node.body = self._parse_stmt()
        elif pragma.is_loop:
            nxt = self._peek()
            if not nxt.is_keyword("for"):
                self.diagnostics.error(
                    "pragma-requires-for",
                    f"statement after '#pragma omp {pragma.directive}' must be a for loop",
                    nxt.span,
                )
                raise _ParseBailout()
            node.body = self._parse_stmt()
        elif pragma.directive in ("atomic", "critical"):
            node.body = self._parse_stmt()
        elif pragma.directive == "barrier":
            node.body = None
        else:
            node.body = self._parse_stmt()
        return node

    def _parse_expr_from_text(self, text: str, span: Span) -> Optional[ast.Expr]:
        sub_source = SourceFile(self.source.name, text, self.source.dialect)
        sub = Parser(sub_source, self.diagnostics)
        try:
            return sub._parse_expr()
        except _ParseBailout:
            self.diagnostics.error(
                "pragma-bad-expr", f"could not parse expression '{text}' in pragma clause", span
            )
            return None

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(op=tok.text, target=left, value=value).with_span(tok.span)
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._at_punct("?"):
            span = self._advance().span
            then = self._parse_assignment()
            self._expect_punct(":", "in conditional expression")
            other = self._parse_assignment()
            return ast.Ternary(cond=cond, then=then, other=other).with_span(span)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind is not TokenKind.PUNCT:
                return left
            prec = _BIN_PREC.get(tok.text)
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(op=tok.text, left=left, right=right).with_span(tok.span)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "+", "!", "~", "*", "&", "++", "--"):
            self._advance()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(op=tok.text, operand=operand).with_span(tok.span)
        if tok.is_keyword("sizeof"):
            self._advance()
            self._expect_punct("(", "after 'sizeof'")
            size_type, _ = self._parse_type()
            self._expect_punct(")", "to close sizeof")
            return ast.SizeOf(type=size_type).with_span(tok.span)
        # Cast: '(' type ')' unary
        if tok.is_punct("(") and self._at_type(1):
            # Look ahead to confirm a cast rather than, e.g. "(int_var + 1)".
            self._advance()
            cast_type, _ = self._parse_type()
            self._expect_punct(")", "to close cast")
            operand = self._parse_unary()
            return ast.Cast(type=cast_type, operand=operand).with_span(tok.span)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._advance()
                index = self._parse_expr()
                self._expect_punct("]", "to close subscript")
                expr = ast.Index(base=expr, index=index).with_span(tok.span)
            elif tok.is_punct("."):
                self._advance()
                field_tok = self._peek()
                if field_tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
                    self._advance()
                    expr = ast.Member(obj=expr, field_name=field_tok.text).with_span(tok.span)
                else:
                    self.diagnostics.error(
                        "expected-identifier",
                        f"expected member name after '.', found {self._describe(field_tok)}",
                        field_tok.span,
                    )
                    raise _ParseBailout()
            elif tok.is_punct("++") or tok.is_punct("--"):
                self._advance()
                expr = ast.Postfix(op=tok.text, operand=expr).with_span(tok.span)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        span = tok.span

        if tok.kind is TokenKind.INT_LIT:
            self._advance()
            text = tok.text.rstrip("uUlL")
            value = int(text, 16) if text.lower().startswith("0x") else int(text)
            return ast.IntLit(value=value, text=tok.text).with_span(span)
        if tok.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(
                value=float(tok.text.rstrip("fFlL")), text=tok.text
            ).with_span(span)
        if tok.kind is TokenKind.STRING_LIT:
            self._advance()
            raw = tok.text[1:-1]
            value = (
                raw.replace("\\n", "\n").replace("\\t", "\t")
                .replace('\\"', '"').replace("\\\\", "\\")
            )
            return ast.StrLit(value=value).with_span(span)
        if tok.kind is TokenKind.CHAR_LIT:
            self._advance()
            raw = tok.text[1:-1]
            value = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\'": "'"}.get(raw, raw)
            return ast.CharLit(value=value).with_span(span)
        if tok.is_keyword("true") or tok.is_keyword("false"):
            self._advance()
            return ast.BoolLit(value=(tok.text == "true")).with_span(span)
        if tok.is_keyword("NULL") or tok.is_keyword("nullptr"):
            self._advance()
            return ast.NullLit(spelling=tok.text).with_span(span)

        if tok.kind is TokenKind.IDENT:
            self._advance()
            name = tok.text
            if self._at_punct("<<<"):
                return self._parse_launch(name, span)
            if self._at_punct("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._at_punct(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")", "to close call argument list")
                return ast.Call(callee=name, args=args).with_span(span)
            return ast.Ident(name=name).with_span(span)

        if tok.is_punct("("):
            self._advance()
            inner = self._parse_expr()
            self._expect_punct(")", "to close parenthesized expression")
            return inner

        self.diagnostics.error(
            "expected-expression",
            f"expected expression, found {self._describe(tok)}",
            span,
        )
        raise _ParseBailout()

    def _parse_launch(self, kernel: str, span: Span) -> ast.Expr:
        self._expect_punct("<<<", "to begin kernel launch configuration")
        grid = self._parse_expr()
        self._expect_punct(",", "between grid and block dimensions")
        block = self._parse_expr()
        self._expect_punct(">>>", "to close kernel launch configuration")
        self._expect_punct("(", "to begin kernel arguments")
        args: List[ast.Expr] = []
        if not self._at_punct(")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")", "to close kernel arguments")
        return ast.Launch(kernel=kernel, grid=grid, block=block, args=args).with_span(span)


# ---------------------------------------------------------------------------
# OpenMP pragma clause parsing
# ---------------------------------------------------------------------------

_DIRECTIVES = [
    # longest-phrase-first matching
    "target teams distribute parallel for simd",
    "target teams distribute parallel for",
    "target teams distribute",
    "target parallel for",
    "target data",
    "target update",
    "target",
    "teams distribute parallel for",
    "parallel for",
    "parallel",
    "atomic",
    "critical",
    "barrier",
    "simd",
]


def parse_omp_pragma(text: str, span: Span, diagnostics: DiagnosticBag) -> Optional[ast.OmpPragma]:
    """Parse a ``#pragma`` line.  Returns None for non-OpenMP pragmas."""
    body = text[len("#pragma"):].strip()
    if not body.startswith("omp"):
        return None
    body = body[len("omp"):].strip()

    directive = None
    for cand in _DIRECTIVES:
        if body == cand or body.startswith(cand + " ") or body.startswith(cand + "\t") or (
            body.startswith(cand) and len(body) > len(cand) and not body[len(cand)].isalnum()
        ):
            directive = cand
            body = body[len(cand):].strip()
            break
    if directive is None:
        head = body.split()[0] if body.split() else body
        diagnostics.error(
            "unknown-omp-directive",
            f"unknown OpenMP directive '{head}'",
            span,
        )
        return None
    if directive.endswith(" simd"):
        directive = directive[: -len(" simd")]

    pragma = ast.OmpPragma(directive=directive, raw_text=text, span=span)

    for clause_name, clause_body in _split_clauses(body, span, diagnostics):
        _apply_clause(pragma, clause_name, clause_body, span, diagnostics)
    return pragma


def _split_clauses(body: str, span: Span, diagnostics: DiagnosticBag):
    """Yield (name, parenthesized-body-or-None) for each clause in ``body``."""
    i, n = 0, len(body)
    while i < n:
        while i < n and body[i] in " \t,":
            i += 1
        if i >= n:
            return
        j = i
        while j < n and (body[j].isalnum() or body[j] == "_"):
            j += 1
        name = body[i:j]
        if not name:
            diagnostics.error(
                "malformed-omp-clause", f"malformed clause text near '{body[i:i+12]}'", span
            )
            return
        i = j
        while i < n and body[i] in " \t":
            i += 1
        if i < n and body[i] == "(":
            depth = 0
            k = i
            while k < n:
                if body[k] == "(":
                    depth += 1
                elif body[k] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            if depth != 0:
                diagnostics.error(
                    "malformed-omp-clause", f"unbalanced parentheses in clause '{name}'", span
                )
                return
            yield name, body[i + 1:k]
            i = k + 1
        else:
            yield name, None


def _parse_clause_expr(text: str, span: Span, diagnostics: DiagnosticBag) -> Optional[ast.Expr]:
    sub = Parser(SourceFile("<pragma>", text, Dialect.C), diagnostics)
    try:
        return sub._parse_expr()
    except _ParseBailout:
        diagnostics.error(
            "pragma-bad-expr", f"could not parse expression '{text}' in pragma clause", span
        )
        return None


def _apply_clause(
    pragma: ast.OmpPragma,
    name: str,
    body: Optional[str],
    span: Span,
    diagnostics: DiagnosticBag,
) -> None:
    if name == "map":
        if body is None:
            diagnostics.error("malformed-omp-clause", "map clause requires arguments", span)
            return
        kind = "tofrom"
        rest = body
        if ":" in body:
            head, _, tail = body.partition(":")
            if head.strip() in ("to", "from", "tofrom", "alloc", "release", "delete"):
                kind = head.strip()
                rest = tail
        for item in _split_top_commas(rest):
            item = item.strip()
            if not item:
                continue
            mc = _parse_map_item(kind, item, span, diagnostics)
            if mc is not None:
                pragma.maps.append(mc)
    elif name == "reduction":
        if body is None or ":" not in body:
            diagnostics.error(
                "malformed-omp-clause", "reduction clause requires 'op: list'", span
            )
            return
        op, _, names = body.partition(":")
        op = op.strip()
        if op not in ("+", "*", "max", "min", "-", "&&", "||"):
            diagnostics.error(
                "malformed-omp-clause", f"unsupported reduction operator '{op}'", span
            )
            return
        pragma.reduction = ast.ReductionClause(
            op=op, names=[n.strip() for n in names.split(",") if n.strip()]
        )
    elif name == "num_threads":
        pragma.num_threads = _parse_clause_expr(body or "", span, diagnostics)
    elif name == "thread_limit":
        pragma.thread_limit = _parse_clause_expr(body or "", span, diagnostics)
    elif name == "num_teams":
        pragma.num_teams = _parse_clause_expr(body or "", span, diagnostics)
    elif name == "collapse":
        try:
            pragma.collapse = int((body or "").strip())
        except ValueError:
            diagnostics.error(
                "malformed-omp-clause", f"collapse requires an integer, got '{body}'", span
            )
    elif name == "schedule":
        parts = [p.strip() for p in (body or "").split(",")]
        if not parts or parts[0] not in ("static", "dynamic", "guided", "auto", "runtime"):
            diagnostics.error(
                "malformed-omp-clause", f"unknown schedule kind '{body}'", span
            )
            return
        pragma.schedule = parts[0]
        if len(parts) > 1 and parts[1]:
            pragma.schedule_chunk = _parse_clause_expr(parts[1], span, diagnostics)
    elif name == "private":
        pragma.private.extend(n.strip() for n in (body or "").split(",") if n.strip())
    elif name == "firstprivate":
        pragma.firstprivate.extend(n.strip() for n in (body or "").split(",") if n.strip())
    elif name == "shared":
        pragma.shared.extend(n.strip() for n in (body or "").split(",") if n.strip())
    elif name in ("default", "device", "if", "nowait", "defaultmap", "is_device_ptr", "update", "read", "write", "seq_cst"):
        # Recognized but semantically inert in the model.
        return
    else:
        diagnostics.warning(
            "unknown-omp-clause", f"ignoring unknown OpenMP clause '{name}'", span
        )


def _split_top_commas(text: str) -> List[str]:
    out: List[str] = []
    depth = 0
    cur: List[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    out.append("".join(cur))
    return out


def _parse_map_item(
    kind: str, item: str, span: Span, diagnostics: DiagnosticBag
) -> Optional[ast.MapClause]:
    """Parse ``name`` or ``name[lo:len]``."""
    if "[" not in item:
        return ast.MapClause(kind=kind, name=item)
    name, _, rest = item.partition("[")
    name = name.strip()
    if not rest.endswith("]"):
        diagnostics.error(
            "malformed-omp-clause", f"malformed array section '{item}' in map clause", span
        )
        return None
    section = rest[:-1]
    lo_text, _, len_text = section.partition(":")
    lower = _parse_clause_expr(lo_text.strip() or "0", span, diagnostics)
    length = _parse_clause_expr(len_text.strip(), span, diagnostics) if len_text.strip() else None
    return ast.MapClause(kind=kind, name=name, lower=lower, length=length)


def parse(source: SourceFile) -> Tuple[ast.Program, DiagnosticBag]:
    """Parse ``source`` and return (program, diagnostics)."""
    diagnostics = DiagnosticBag()
    parser = Parser(source, diagnostics)
    program = parser.parse_program()
    return program, diagnostics
