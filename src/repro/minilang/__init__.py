"""MiniC front-end: the C-like mini-language underlying MiniCUDA / MiniOMP.

The LASSI paper translates between CUDA and OpenMP-target-offload C++ and
relies on real toolchains (nvcc, clang with offload) to produce the compile
and runtime errors that drive its self-correcting loops.  This package is the
offline stand-in: a genuine (small) compiler front-end — lexer, recursive-
descent parser, semantic analyzer with clang-style diagnostics — over a C
subset rich enough to express the ten HeCBench applications in both dialects.

Dialects
--------
``Dialect.CUDA``
    ``__global__``/``__device__`` qualifiers, ``kernel<<<grid, block>>>(...)``
    launch syntax, ``threadIdx.x``-family builtins, the ``cudaMalloc`` /
    ``cudaMemcpy`` / ``cudaFree`` API, and device atomics.
``Dialect.OMP``
    ``#pragma omp`` statements (``target data``, ``target teams distribute
    parallel for``, ``parallel for``, ``atomic``) with map / reduction /
    num_threads / collapse / schedule clauses.
"""

from repro.minilang.source import Dialect, SourceFile, Span
from repro.minilang.diagnostics import Diagnostic, DiagnosticBag, Severity
from repro.minilang.lexer import Lexer, Token, TokenKind, lex
from repro.minilang.parser import Parser, parse
from repro.minilang.semantics import analyze
from repro.minilang.codegen import CodegenStyle, generate
from repro.minilang import ast

__all__ = [
    "Dialect",
    "SourceFile",
    "Span",
    "Diagnostic",
    "DiagnosticBag",
    "Severity",
    "Lexer",
    "Token",
    "TokenKind",
    "lex",
    "Parser",
    "parse",
    "analyze",
    "CodegenStyle",
    "generate",
    "ast",
]
