"""Compiler diagnostics with clang/nvcc-flavoured rendering.

LASSI's self-correction loop feeds raw compiler stderr back into the LLM
(Table III of the paper), so the *textual shape* of diagnostics matters: the
simulated LLM pattern-matches on them exactly as a real model would attend to
tokens like ``error: use of undeclared identifier 'foo'``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.minilang.source import SourceFile, Span


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass(frozen=True)
class Diagnostic:
    """One compiler message.

    ``code`` is a stable machine-readable identifier (e.g. ``undeclared-ident``)
    used by tests and by the simulated LLM's repair matcher; ``message`` is the
    human/LLM-facing text.
    """

    severity: Severity
    code: str
    message: str
    span: Span
    hint: Optional[str] = None

    def render(self, source: Optional[SourceFile] = None) -> str:
        name = source.name if source else "<source>"
        out = f"{name}:{self.span.line}:{self.span.col}: {self.severity.value}: {self.message}"
        if source is not None and self.span.line > 0:
            line = source.line(self.span.line)
            if line:
                caret = " " * max(self.span.col - 1, 0) + "^"
                out += f"\n{line}\n{caret}"
        if self.hint:
            out += f"\n{name}:{self.span.line}:{self.span.col}: note: {self.hint}"
        return out


@dataclass
class DiagnosticBag:
    """Accumulates diagnostics during lexing / parsing / semantic analysis."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def error(self, code: str, message: str, span: Span, hint: Optional[str] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.ERROR, code, message, span, hint))

    def warning(self, code: str, message: str, span: Span, hint: Optional[str] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.WARNING, code, message, span, hint))

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def extend(self, other: "DiagnosticBag") -> None:
        self.diagnostics.extend(other.diagnostics)

    def render(self, source: Optional[SourceFile] = None, max_errors: int = 20) -> str:
        """Render all diagnostics as a compiler-stderr string."""
        shown = self.diagnostics[:max_errors]
        parts = [d.render(source) for d in shown]
        nerr = len(self.errors)
        if nerr:
            parts.append(f"{nerr} error{'s' if nerr != 1 else ''} generated.")
        return "\n".join(parts)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)
