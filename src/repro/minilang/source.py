"""Source-file model and dialect enumeration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class Dialect(enum.Enum):
    """Mini-language dialect: which parallel extensions are enabled."""

    C = "c"
    CUDA = "cuda"
    OMP = "omp"

    @property
    def display_name(self) -> str:
        return {"c": "C", "cuda": "CUDA", "omp": "OpenMP"}[self.value]

    @property
    def file_extension(self) -> str:
        return {"c": ".c", "cuda": ".cu", "omp": ".cpp"}[self.value]


@dataclass(frozen=True)
class Span:
    """1-based source position (start of the relevant token)."""

    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


UNKNOWN_SPAN = Span(0, 0)


@dataclass
class SourceFile:
    """A named piece of mini-language source text."""

    name: str
    text: str
    dialect: Dialect = Dialect.C
    _lines: List[str] = field(default_factory=list, repr=False)

    def line(self, lineno: int) -> str:
        """Return the 1-based source line (empty string out of range)."""
        if not self._lines:
            self._lines = self.text.splitlines()
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1]
        return ""

    @property
    def line_count(self) -> int:
        if not self._lines:
            self._lines = self.text.splitlines()
        return len(self._lines)
