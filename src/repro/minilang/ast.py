"""AST node definitions for the mini-language.

Plain dataclasses; every node carries its source :class:`Span` so semantic
diagnostics and runtime faults can point at real locations — the error text
fed back into LASSI's correction prompt has to look like compiler output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.minilang.source import Span, UNKNOWN_SPAN
from repro.minilang.types import Type


class Node:
    """Base class (for isinstance checks only)."""

    span: Span


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    span: Span = field(default=UNKNOWN_SPAN, init=False)

    def with_span(self, span: Span) -> "Expr":
        self.span = span
        return self


@dataclass
class IntLit(Expr):
    value: int
    text: str = ""  # original spelling, preserved for codegen fidelity


@dataclass
class FloatLit(Expr):
    value: float
    text: str = ""


@dataclass
class StrLit(Expr):
    value: str  # decoded value (no quotes)


@dataclass
class CharLit(Expr):
    value: str  # single decoded character


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class NullLit(Expr):
    spelling: str = "NULL"


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Member(Expr):
    """``obj.field`` — used for the CUDA thread-geometry builtins."""

    obj: Expr
    field_name: str


@dataclass
class Unary(Expr):
    """Prefix unary: ``- ! ~ * & ++ --``."""

    op: str
    operand: Expr


@dataclass
class Postfix(Expr):
    """Postfix ``++``/``--``."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    """``target op value`` where op in ``= += -= *= /= %= &= |= ^=``."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Call(Expr):
    callee: str
    args: List[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Cast(Expr):
    type: Type
    operand: Expr


@dataclass
class SizeOf(Expr):
    type: Type


@dataclass
class Launch(Expr):
    """CUDA kernel launch ``kernel<<<grid, block>>>(args)`` (1-D)."""

    kernel: str
    grid: Expr
    block: Expr
    args: List[Expr]


# ---------------------------------------------------------------------------
# Pragmas (OpenMP)
# ---------------------------------------------------------------------------


@dataclass
class MapClause:
    """``map(kind: name[lo:len])``; ``length`` None means a scalar map."""

    kind: str  # "to" | "from" | "tofrom" | "alloc"
    name: str
    lower: Optional[Expr] = None
    length: Optional[Expr] = None


@dataclass
class ReductionClause:
    op: str  # "+", "*", "max", "min"
    names: List[str] = field(default_factory=list)


@dataclass
class OmpPragma(Node):
    """A parsed ``#pragma omp`` line.

    ``directive`` is the normalized directive phrase, e.g.
    ``"target teams distribute parallel for"``, ``"target data"``,
    ``"parallel for"``, ``"atomic"``.
    """

    directive: str
    maps: List[MapClause] = field(default_factory=list)
    reduction: Optional[ReductionClause] = None
    num_threads: Optional[Expr] = None
    thread_limit: Optional[Expr] = None
    num_teams: Optional[Expr] = None
    collapse: int = 1
    schedule: Optional[str] = None  # "static" | "dynamic" | "guided"
    schedule_chunk: Optional[Expr] = None
    private: List[str] = field(default_factory=list)
    firstprivate: List[str] = field(default_factory=list)
    shared: List[str] = field(default_factory=list)
    raw_text: str = ""
    span: Span = UNKNOWN_SPAN

    @property
    def is_target(self) -> bool:
        return self.directive.startswith("target")

    @property
    def is_loop(self) -> bool:
        return self.directive.endswith("for")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    span: Span = field(default=UNKNOWN_SPAN, init=False)

    def with_span(self, span: Span) -> "Stmt":
        self.span = span
        return self


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """Scalar or fixed-size array declaration, optionally initialized.

    ``array_size`` non-None means ``type name[array_size];`` — the declared
    object is an array (the name then has pointer type).  ``shared`` marks
    CUDA ``__shared__`` storage.
    """

    type: Type
    name: str
    init: Optional[Expr] = None
    array_size: Optional[Expr] = None
    shared: bool = False
    const: bool = False


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt]  # VarDecl or ExprStmt
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt = field(default_factory=Block)


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt = field(default_factory=Block)


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Pragma(Stmt):
    """An OpenMP pragma attached to the statement that follows it.

    For ``atomic`` the body is the updated expression statement; for loop
    directives it is the ``for``; for ``target data`` it is a block.
    """

    pragma: OmpPragma
    body: Optional[Stmt] = None


@dataclass
class SyncThreads(Stmt):
    """CUDA ``__syncthreads();`` — recognized specially for barrier semantics."""


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    type: Type
    name: str
    span: Span = UNKNOWN_SPAN
    restrict: bool = False


@dataclass
class FuncDef(Node):
    """Function definition.  ``qualifier`` in {None, "__global__", "__device__"}."""

    return_type: Type
    name: str
    params: List[Param]
    body: Block
    qualifier: Optional[str] = None
    span: Span = UNKNOWN_SPAN

    @property
    def is_kernel(self) -> bool:
        return self.qualifier == "__global__"

    @property
    def is_device(self) -> bool:
        return self.qualifier == "__device__"


@dataclass
class GlobalVar(Node):
    decl: VarDecl
    span: Span = UNKNOWN_SPAN


@dataclass
class Program(Node):
    """A whole translation unit."""

    functions: List[FuncDef] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)
    span: Span = UNKNOWN_SPAN

    def function(self, name: str) -> Optional[FuncDef]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None

    @property
    def kernels(self) -> List[FuncDef]:
        return [f for f in self.functions if f.is_kernel]


def walk_stmts(stmt: Stmt):
    """Yield ``stmt`` and all statements nested within it (pre-order)."""
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.stmts:
            yield from walk_stmts(s)
    elif isinstance(stmt, If):
        yield from walk_stmts(stmt.then)
        if stmt.other is not None:
            yield from walk_stmts(stmt.other)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from walk_stmts(stmt.init)
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, (While, DoWhile)):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, Pragma):
        if stmt.body is not None:
            yield from walk_stmts(stmt.body)


def walk_exprs(node) -> "list":
    """Collect every expression reachable from a statement or expression."""
    out: List[Expr] = []

    def visit_expr(e: Optional[Expr]) -> None:
        if e is None:
            return
        out.append(e)
        if isinstance(e, Unary):
            visit_expr(e.operand)
        elif isinstance(e, Postfix):
            visit_expr(e.operand)
        elif isinstance(e, Binary):
            visit_expr(e.left)
            visit_expr(e.right)
        elif isinstance(e, Assign):
            visit_expr(e.target)
            visit_expr(e.value)
        elif isinstance(e, Ternary):
            visit_expr(e.cond)
            visit_expr(e.then)
            visit_expr(e.other)
        elif isinstance(e, Call):
            for a in e.args:
                visit_expr(a)
        elif isinstance(e, Launch):
            visit_expr(e.grid)
            visit_expr(e.block)
            for a in e.args:
                visit_expr(a)
        elif isinstance(e, Index):
            visit_expr(e.base)
            visit_expr(e.index)
        elif isinstance(e, Cast):
            visit_expr(e.operand)
        elif isinstance(e, Member):
            visit_expr(e.obj)

    def visit_stmt(s: Stmt) -> None:
        if isinstance(s, ExprStmt):
            visit_expr(s.expr)
        elif isinstance(s, VarDecl):
            visit_expr(s.init)
            visit_expr(s.array_size)
        elif isinstance(s, If):
            visit_expr(s.cond)
        elif isinstance(s, For):
            visit_expr(s.cond)
            visit_expr(s.step)
        elif isinstance(s, (While, DoWhile)):
            visit_expr(s.cond)
        elif isinstance(s, Return):
            visit_expr(s.value)
        elif isinstance(s, Pragma):
            p = s.pragma
            for mc in p.maps:
                visit_expr(mc.lower)
                visit_expr(mc.length)
            visit_expr(p.num_threads)
            visit_expr(p.thread_limit)
            visit_expr(p.num_teams)
            visit_expr(p.schedule_chunk)

    if isinstance(node, Expr):
        visit_expr(node)
    else:
        for s in walk_stmts(node):
            visit_stmt(s)
    return out
