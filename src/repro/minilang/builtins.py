"""Builtin function and constant catalogue shared by semantics + interpreter.

``where`` controls call-site legality, mirroring nvcc's host/device rules:
``host`` only from host code, ``device`` only from kernels/``__device__``
functions, ``both`` anywhere.  The OpenMP dialect treats ``device`` builtins
(atomicAdd & friends) and the CUDA runtime API as *undeclared* — exactly the
diagnostic a host C++ compiler would give — which is one of the compile-error
classes LASSI's loop must fix when an LLM leaves CUDA idioms in OpenMP output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.minilang import types as ty


@dataclass(frozen=True)
class Builtin:
    name: str
    min_args: int
    max_args: int  # -1 = variadic
    where: str  # "host" | "device" | "both"
    cuda_only: bool  # visible only when compiling the CUDA dialect
    return_rule: str  # "void"|"int"|"long"|"float"|"double"|"arg0"|"ptr-void"|"real-arg"
    py: Optional[Callable] = None  # scalar implementation where applicable


def _mk(name: str, nargs, where: str, ret: str, py=None, cuda_only: bool = False) -> Builtin:
    lo, hi = (nargs, nargs) if isinstance(nargs, int) else nargs
    return Builtin(name, lo, hi, where, cuda_only, ret, py)


def _clamped_int(v: float) -> int:
    return int(v)


_MATH1_F = {
    "sqrtf": math.sqrt, "fabsf": abs, "expf": math.exp, "logf": math.log,
    "log2f": math.log2, "log10f": math.log10, "sinf": math.sin,
    "cosf": math.cos, "tanf": math.tan, "floorf": math.floor,
    "ceilf": math.ceil, "roundf": round, "tanhf": math.tanh,
}
_MATH1_D = {
    "sqrt": math.sqrt, "fabs": abs, "exp": math.exp, "log": math.log,
    "log2": math.log2, "log10": math.log10, "sin": math.sin, "cos": math.cos,
    "tan": math.tan, "floor": math.floor, "ceil": math.ceil, "tanh": math.tanh,
}
_MATH2_F = {
    "powf": math.pow, "fminf": min, "fmaxf": max, "atan2f": math.atan2,
    "fmodf": math.fmod, "hypotf": math.hypot,
}
_MATH2_D = {
    "pow": math.pow, "fmin": min, "fmax": max, "atan2": math.atan2,
    "fmod": math.fmod, "hypot": math.hypot,
}


def _build_table() -> Dict[str, Builtin]:
    table: Dict[str, Builtin] = {}

    def add(b: Builtin) -> None:
        table[b.name] = b

    for name, fn in _MATH1_F.items():
        add(_mk(name, 1, "both", "float", fn))
    for name, fn in _MATH1_D.items():
        add(_mk(name, 1, "both", "double", fn))
    for name, fn in _MATH2_F.items():
        add(_mk(name, 2, "both", "float", fn))
    for name, fn in _MATH2_D.items():
        add(_mk(name, 2, "both", "double", fn))

    add(_mk("abs", 1, "both", "int", abs))
    add(_mk("min", 2, "both", "arg0", min))
    add(_mk("max", 2, "both", "arg0", max))

    add(_mk("printf", (1, -1), "both", "int"))
    add(_mk("fprintf", (2, -1), "host", "int"))
    add(_mk("exit", 1, "host", "void"))
    add(_mk("malloc", 1, "host", "ptr-void"))
    add(_mk("calloc", 2, "host", "ptr-void"))
    add(_mk("free", 1, "host", "void"))
    add(_mk("memset", 3, "host", "ptr-void"))
    add(_mk("memcpy", 3, "host", "ptr-void"))
    add(_mk("atoi", 1, "host", "int"))
    add(_mk("atof", 1, "host", "double"))
    add(_mk("rand", 0, "host", "int"))
    add(_mk("srand", 1, "host", "void"))
    add(_mk("assert", 1, "host", "void"))

    # CUDA runtime API (host side).
    add(_mk("cudaMalloc", 2, "host", "int", cuda_only=True))
    add(_mk("cudaMemcpy", 4, "host", "int", cuda_only=True))
    add(_mk("cudaMemset", 3, "host", "int", cuda_only=True))
    add(_mk("cudaFree", 1, "host", "int", cuda_only=True))
    add(_mk("cudaDeviceSynchronize", 0, "host", "int", cuda_only=True))
    add(_mk("cudaGetLastError", 0, "host", "int", cuda_only=True))
    add(_mk("cudaGetErrorString", 1, "host", "ptr-void", cuda_only=True))

    # CUDA device intrinsics.
    add(_mk("atomicAdd", 2, "device", "real-arg", cuda_only=True))
    add(_mk("atomicSub", 2, "device", "real-arg", cuda_only=True))
    add(_mk("atomicMax", 2, "device", "real-arg", cuda_only=True))
    add(_mk("atomicMin", 2, "device", "real-arg", cuda_only=True))
    add(_mk("atomicExch", 2, "device", "real-arg", cuda_only=True))
    add(_mk("atomicCAS", 3, "device", "real-arg", cuda_only=True))

    # OpenMP runtime library (host side).
    add(_mk("omp_get_num_threads", 0, "host", "int"))
    add(_mk("omp_get_max_threads", 0, "host", "int"))
    add(_mk("omp_get_thread_num", 0, "host", "int"))
    add(_mk("omp_set_num_threads", 1, "host", "void"))
    add(_mk("omp_get_num_devices", 0, "host", "int"))

    return table


BUILTINS: Dict[str, Builtin] = _build_table()

#: Named integer constants (CUDA memcpy kinds and friends).
CONSTANTS: Dict[str, Tuple[int, bool]] = {
    # name -> (value, cuda_only)
    "cudaMemcpyHostToDevice": (1, True),
    "cudaMemcpyDeviceToHost": (2, True),
    "cudaMemcpyDeviceToDevice": (3, True),
    "cudaMemcpyHostToHost": (0, True),
    "cudaSuccess": (0, True),
    "RAND_MAX": (2147483647, False),
    "INT_MAX": (2147483647, False),
    "INT_MIN": (-2147483648, False),
    "FLT_MAX": (3.4028235e38, False),
    "DBL_MAX": (1.7976931348623157e308, False),
}

#: CUDA thread-geometry builtin objects usable as ``name.x`` in kernels.
GEOMETRY_BUILTINS = ("threadIdx", "blockIdx", "blockDim", "gridDim")


def return_type(b: Builtin, arg_types) -> ty.Type:
    """Compute a builtin's return type given argument types."""
    rule = b.return_rule
    if rule == "void":
        return ty.VOID
    if rule == "int":
        return ty.INT
    if rule == "long":
        return ty.LONG
    if rule == "float":
        return ty.FLOAT
    if rule == "double":
        return ty.DOUBLE
    if rule == "ptr-void":
        return ty.Type(ty.Kind.VOID, 1)
    if rule == "arg0":
        return arg_types[0] if arg_types else ty.INT
    if rule == "real-arg":
        # atomics: return the pointee type of the first argument.
        if arg_types and arg_types[0].is_pointer:
            return arg_types[0].pointee()
        return ty.INT
    raise ValueError(f"unknown return rule {rule!r}")
