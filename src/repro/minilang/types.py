"""Type system for the mini-language.

Small by design: scalar kinds plus pointer levels.  ``double`` is an alias of
``float`` at runtime (everything numeric-real is float64 inside the
interpreter for determinism) but retains its spelling for codegen and
similarity metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Kind(enum.Enum):
    INT = "int"
    LONG = "long"
    SIZE_T = "size_t"
    FLOAT = "float"
    DOUBLE = "double"
    CHAR = "char"
    BOOL = "bool"
    VOID = "void"


_INTEGERS = {Kind.INT, Kind.LONG, Kind.SIZE_T, Kind.CHAR, Kind.BOOL}
_REALS = {Kind.FLOAT, Kind.DOUBLE}


@dataclass(frozen=True)
class Type:
    """A scalar type with ``pointers`` levels of indirection."""

    kind: Kind
    pointers: int = 0

    # -- constructors ------------------------------------------------------
    def pointer_to(self) -> "Type":
        return Type(self.kind, self.pointers + 1)

    def pointee(self) -> "Type":
        if self.pointers == 0:
            raise ValueError(f"cannot dereference non-pointer type {self}")
        return Type(self.kind, self.pointers - 1)

    # -- predicates ---------------------------------------------------------
    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def is_void(self) -> bool:
        return self.kind is Kind.VOID and self.pointers == 0

    @property
    def is_integer(self) -> bool:
        return self.pointers == 0 and self.kind in _INTEGERS

    @property
    def is_real(self) -> bool:
        return self.pointers == 0 and self.kind in _REALS

    @property
    def is_numeric(self) -> bool:
        return self.is_integer or self.is_real

    @property
    def is_string(self) -> bool:
        return self.kind is Kind.CHAR and self.pointers == 1

    # -- sizing (bytes, used by sizeof and the perf model) -------------------
    @property
    def size(self) -> int:
        if self.is_pointer:
            return 8
        return {
            Kind.INT: 4,
            Kind.LONG: 8,
            Kind.SIZE_T: 8,
            Kind.FLOAT: 4,
            Kind.DOUBLE: 8,
            Kind.CHAR: 1,
            Kind.BOOL: 1,
            Kind.VOID: 1,
        }[self.kind]

    def __str__(self) -> str:
        return self.kind.value + "*" * self.pointers


# Common singletons.
INT = Type(Kind.INT)
LONG = Type(Kind.LONG)
SIZE_T = Type(Kind.SIZE_T)
FLOAT = Type(Kind.FLOAT)
DOUBLE = Type(Kind.DOUBLE)
CHAR = Type(Kind.CHAR)
BOOL = Type(Kind.BOOL)
VOID = Type(Kind.VOID)

_BY_NAME = {
    "int": INT,
    "long": LONG,
    "size_t": SIZE_T,
    "unsigned": INT,
    "float": FLOAT,
    "double": DOUBLE,
    "char": CHAR,
    "bool": BOOL,
    "void": VOID,
}


def named(name: str) -> Type:
    """Look up a scalar type by keyword spelling."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown type name {name!r}") from None


def unify_arith(a: Type, b: Type) -> Type:
    """Result type of a binary arithmetic op on ``a`` and ``b`` (C-style)."""
    if a.is_pointer or b.is_pointer:
        # pointer +/- integer keeps the pointer type; caller validates the op.
        return a if a.is_pointer else b
    if Kind.DOUBLE in (a.kind, b.kind):
        return DOUBLE
    if Kind.FLOAT in (a.kind, b.kind):
        return FLOAT
    if Kind.SIZE_T in (a.kind, b.kind) or Kind.LONG in (a.kind, b.kind):
        return LONG
    return INT


def assignable(dst: Type, src: Type) -> bool:
    """May a value of ``src`` be assigned to an lvalue of ``dst``?

    Numeric conversions are implicit (as in C); pointers must match exactly
    except that ``void*`` inter-converts with any pointer (malloc idiom).
    """
    if dst == src:
        return True
    if dst.is_numeric and src.is_numeric:
        return True
    if dst.is_pointer and src.is_pointer:
        return dst.kind is Kind.VOID or src.kind is Kind.VOID
    return False
