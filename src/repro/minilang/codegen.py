"""Code generation: AST back to mini-language source text.

Used by the simulated-LLM transpiler to emit translated programs.  The
:class:`CodegenStyle` knobs (indentation, brace placement, pointer spelling,
block-size spelling) are how per-model "style profiles" produce visibly
different — yet semantically equivalent — translations, which is what gives
the Sim-T / Sim-L similarity metrics realistic spread across LLMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.minilang import ast
from repro.minilang.types import Type

# Operator precedence table shared with the parser (kept here to avoid
# emitting redundant parentheses).
_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PREC = 11
_POSTFIX_PREC = 12


@dataclass(frozen=True)
class CodegenStyle:
    """Formatting and idiom knobs for emitted source."""

    indent: str = "  "
    brace_same_line: bool = True
    pointer_left: bool = True  # "float* a" vs "float *a"
    space_around_ops: bool = True
    blank_line_between_functions: bool = True
    rename: Optional[Dict[str, str]] = None  # identifier renaming map

    def op(self, text: str) -> str:
        return f" {text} " if self.space_around_ops else text


DEFAULT_STYLE = CodegenStyle()


class _Emitter:
    def __init__(self, style: CodegenStyle) -> None:
        self.style = style
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str = "") -> None:
        if text:
            self.lines.append(self.style.indent * self.depth + text)
        else:
            self.lines.append("")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class CodeGenerator:
    def __init__(self, style: CodegenStyle = DEFAULT_STYLE) -> None:
        self.style = style

    # ------------------------------------------------------------------
    def generate(self, program: ast.Program) -> str:
        em = _Emitter(self.style)
        first = True
        for gv in program.globals:
            em.line(self._vardecl_text(gv.decl))
            first = False
        if program.globals:
            em.line()
        for fn in program.functions:
            if not first and self.style.blank_line_between_functions:
                em.line()
            self._emit_function(fn, em)
            first = False
        return em.text()

    # ------------------------------------------------------------------
    def _name(self, name: str) -> str:
        if self.style.rename:
            return self.style.rename.get(name, name)
        return name

    def _type_text(self, t: Type, declarator: str = "") -> str:
        base = t.kind.value
        stars = "*" * t.pointers
        if not declarator:
            return base + stars
        if t.pointers and not self.style.pointer_left:
            return f"{base} {stars}{declarator}"
        if t.pointers:
            return f"{base}{stars} {declarator}"
        return f"{base} {declarator}"

    # ------------------------------------------------------------------
    def _emit_function(self, fn: ast.FuncDef, em: _Emitter) -> None:
        params = ", ".join(
            self._type_text(p.type, self._name(p.name)) if p.name else self._type_text(p.type)
            for p in fn.params
        )
        qual = f"{fn.qualifier} " if fn.qualifier else ""
        header = f"{qual}{self._type_text(fn.return_type, self._name(fn.name))}({params})"
        if self.style.brace_same_line:
            em.line(header + " {")
        else:
            em.line(header)
            em.line("{")
        em.depth += 1
        for stmt in fn.body.stmts:
            self._emit_stmt(stmt, em)
        em.depth -= 1
        em.line("}")

    # ------------------------------------------------------------------
    def _emit_stmt(self, stmt: ast.Stmt, em: _Emitter) -> None:
        if isinstance(stmt, ast.Block):
            em.line("{")
            em.depth += 1
            for s in stmt.stmts:
                self._emit_stmt(s, em)
            em.depth -= 1
            em.line("}")
        elif isinstance(stmt, ast.VarDecl):
            em.line(self._vardecl_text(stmt))
        elif isinstance(stmt, ast.ExprStmt):
            em.line(self.expr(stmt.expr) + ";")
        elif isinstance(stmt, ast.If):
            self._emit_if(stmt, em)
        elif isinstance(stmt, ast.For):
            self._emit_for(stmt, em)
        elif isinstance(stmt, ast.While):
            head = f"while ({self.expr(stmt.cond)})"
            self._emit_braced(head, stmt.body, em)
        elif isinstance(stmt, ast.DoWhile):
            if self.style.brace_same_line:
                em.line("do {")
            else:
                em.line("do")
                em.line("{")
            em.depth += 1
            for s in self._body_stmts(stmt.body):
                self._emit_stmt(s, em)
            em.depth -= 1
            em.line(f"}} while ({self.expr(stmt.cond)});")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                em.line(f"return {self.expr(stmt.value)};")
            else:
                em.line("return;")
        elif isinstance(stmt, ast.Break):
            em.line("break;")
        elif isinstance(stmt, ast.Continue):
            em.line("continue;")
        elif isinstance(stmt, ast.Pragma):
            em.line(self._pragma_text(stmt.pragma))
            if stmt.body is not None:
                self._emit_stmt(stmt.body, em)
        elif isinstance(stmt, ast.SyncThreads):
            em.line("__syncthreads();")
        else:
            raise AssertionError(f"unhandled statement node {type(stmt).__name__}")

    def _body_stmts(self, body: ast.Stmt) -> List[ast.Stmt]:
        if isinstance(body, ast.Block):
            return body.stmts
        return [body]

    def _emit_braced(self, head: str, body: ast.Stmt, em: _Emitter) -> None:
        if self.style.brace_same_line:
            em.line(head + " {")
        else:
            em.line(head)
            em.line("{")
        em.depth += 1
        for s in self._body_stmts(body):
            self._emit_stmt(s, em)
        em.depth -= 1
        em.line("}")

    def _emit_if(self, stmt: ast.If, em: _Emitter) -> None:
        head = f"if ({self.expr(stmt.cond)})"
        if self.style.brace_same_line:
            em.line(head + " {")
        else:
            em.line(head)
            em.line("{")
        em.depth += 1
        for s in self._body_stmts(stmt.then):
            self._emit_stmt(s, em)
        em.depth -= 1
        if stmt.other is None:
            em.line("}")
            return
        if isinstance(stmt.other, ast.If):
            em.line("} else " + f"if ({self.expr(stmt.other.cond)})" + " {")
            em.depth += 1
            for s in self._body_stmts(stmt.other.then):
                self._emit_stmt(s, em)
            em.depth -= 1
            if stmt.other.other is not None:
                em.line("} else {")
                em.depth += 1
                for s in self._body_stmts(stmt.other.other):
                    self._emit_stmt(s, em)
                em.depth -= 1
            em.line("}")
        else:
            em.line("} else {")
            em.depth += 1
            for s in self._body_stmts(stmt.other):
                self._emit_stmt(s, em)
            em.depth -= 1
            em.line("}")

    def _emit_for(self, stmt: ast.For, em: _Emitter) -> None:
        init = ""
        if isinstance(stmt.init, ast.VarDecl):
            init = self._vardecl_text(stmt.init).rstrip(";")
        elif isinstance(stmt.init, ast.ExprStmt):
            init = self.expr(stmt.init.expr)
        cond = self.expr(stmt.cond) if stmt.cond is not None else ""
        step = self.expr(stmt.step) if stmt.step is not None else ""
        head = f"for ({init}; {cond}; {step})"
        self._emit_braced(head, stmt.body, em)

    def _vardecl_text(self, decl: ast.VarDecl) -> str:
        prefix = "__shared__ " if decl.shared else ""
        if decl.const:
            prefix += "const "
        name = self._name(decl.name)
        if decl.array_size is not None:
            text = f"{prefix}{self._type_text(decl.type, name)}[{self.expr(decl.array_size)}]"
        else:
            text = f"{prefix}{self._type_text(decl.type, name)}"
        if decl.init is not None:
            text += f"{self.style.op('=')}{self.expr(decl.init)}"
        return text + ";"

    # ------------------------------------------------------------------
    def _pragma_text(self, pragma: ast.OmpPragma) -> str:
        parts = [f"#pragma omp {pragma.directive}"]
        for mc in pragma.maps:
            if mc.length is not None:
                lo = self.expr(mc.lower) if mc.lower is not None else "0"
                parts.append(
                    f"map({mc.kind}: {self._name(mc.name)}[{lo}:{self.expr(mc.length)}])"
                )
            else:
                parts.append(f"map({mc.kind}: {self._name(mc.name)})")
        if pragma.reduction is not None:
            names = ", ".join(self._name(n) for n in pragma.reduction.names)
            parts.append(f"reduction({pragma.reduction.op}: {names})")
        if pragma.collapse > 1:
            parts.append(f"collapse({pragma.collapse})")
        if pragma.num_teams is not None:
            parts.append(f"num_teams({self.expr(pragma.num_teams)})")
        if pragma.thread_limit is not None:
            parts.append(f"thread_limit({self.expr(pragma.thread_limit)})")
        if pragma.num_threads is not None:
            parts.append(f"num_threads({self.expr(pragma.num_threads)})")
        if pragma.schedule is not None:
            if pragma.schedule_chunk is not None:
                parts.append(f"schedule({pragma.schedule}, {self.expr(pragma.schedule_chunk)})")
            else:
                parts.append(f"schedule({pragma.schedule})")
        if pragma.private:
            parts.append(f"private({', '.join(self._name(n) for n in pragma.private)})")
        if pragma.firstprivate:
            parts.append(
                f"firstprivate({', '.join(self._name(n) for n in pragma.firstprivate)})"
            )
        return " ".join(parts)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expr(self, e: ast.Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr_prec(e)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_prec(self, e: ast.Expr):
        if isinstance(e, ast.IntLit):
            return (e.text or str(e.value)), _POSTFIX_PREC
        if isinstance(e, ast.FloatLit):
            return (e.text or repr(e.value)), _POSTFIX_PREC
        if isinstance(e, ast.StrLit):
            escaped = (
                e.value.replace("\\", "\\\\").replace('"', '\\"')
                .replace("\n", "\\n").replace("\t", "\\t")
            )
            return f'"{escaped}"', _POSTFIX_PREC
        if isinstance(e, ast.CharLit):
            ch = {"\n": "\\n", "\t": "\\t", "'": "\\'", "\0": "\\0"}.get(e.value, e.value)
            return f"'{ch}'", _POSTFIX_PREC
        if isinstance(e, ast.BoolLit):
            return ("true" if e.value else "false"), _POSTFIX_PREC
        if isinstance(e, ast.NullLit):
            return e.spelling, _POSTFIX_PREC
        if isinstance(e, ast.Ident):
            return self._name(e.name), _POSTFIX_PREC
        if isinstance(e, ast.Member):
            return f"{self.expr(e.obj, _POSTFIX_PREC)}.{e.field_name}", _POSTFIX_PREC
        if isinstance(e, ast.Unary):
            inner = self.expr(e.operand, _UNARY_PREC)
            return f"{e.op}{inner}", _UNARY_PREC
        if isinstance(e, ast.Postfix):
            return f"{self.expr(e.operand, _POSTFIX_PREC)}{e.op}", _POSTFIX_PREC
        if isinstance(e, ast.Binary):
            prec = _PREC[e.op]
            left = self.expr(e.left, prec)
            right = self.expr(e.right, prec + 1)
            return f"{left}{self.style.op(e.op)}{right}", prec
        if isinstance(e, ast.Assign):
            target = self.expr(e.target, 1)
            value = self.expr(e.value, 0)
            return f"{target}{self.style.op(e.op)}{value}", 0
        if isinstance(e, ast.Ternary):
            return (
                f"{self.expr(e.cond, 1)} ? {self.expr(e.then)} : {self.expr(e.other)}",
                0,
            )
        if isinstance(e, ast.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{self._name(e.callee)}({args})", _POSTFIX_PREC
        if isinstance(e, ast.Launch):
            args = ", ".join(self.expr(a) for a in e.args)
            grid = self.expr(e.grid)
            block = self.expr(e.block)
            return (
                f"{self._name(e.kernel)}<<<{grid}, {block}>>>({args})",
                _POSTFIX_PREC,
            )
        if isinstance(e, ast.Index):
            return (
                f"{self.expr(e.base, _POSTFIX_PREC)}[{self.expr(e.index)}]",
                _POSTFIX_PREC,
            )
        if isinstance(e, ast.Cast):
            return f"({self._type_text(e.type)}){self.expr(e.operand, _UNARY_PREC)}", _UNARY_PREC
        if isinstance(e, ast.SizeOf):
            return f"sizeof({self._type_text(e.type)})", _POSTFIX_PREC
        raise AssertionError(f"unhandled expression node {type(e).__name__}")


def generate(program: ast.Program, style: CodegenStyle = DEFAULT_STYLE) -> str:
    """Render ``program`` as source text."""
    return CodeGenerator(style).generate(program)
