"""Command-line interface: ``python -m repro <command>``.

A thin shell over the stable :mod:`repro.api` facade (translate /
evaluate / run_campaign / build_pipeline).  Commands mirror the
deliverables:

* ``translate`` — run the LASSI pipeline on one suite app;
* ``evaluate``  — the §V experiment grid (optionally filtered);
* ``table``     — print a paper table (4, 5, 6 or 7);
* ``campaign``  — declarative ablation sweeps (run / merge / report /
  list); ``run --shard i/N`` executes one slice of a distributed
  campaign and ``merge`` fuses the slices;
* ``cache``     — inspect / warm / garbage-collect pluggable cache
  stores (``dir:<path>`` or ``sqlite:<path>`` URIs);
* ``trace``     — summarize / show / critical-path ``.trace.jsonl``
  telemetry sidecars written by ``evaluate --trace`` and
  ``campaign run --trace``;
* ``perf``      — deterministic runtime profiles and the perf-regression
  gate (``profile`` builds a committable baseline snapshot, ``compare``
  diffs two snapshots informationally, ``regress`` exits non-zero on
  regression — the CI gate);
* ``synth``     — generate / list / self-check synthetic app suites;
* ``apps`` / ``models`` — list a suite and the model registry.

``translate``, ``evaluate`` and ``campaign run`` accept ``--suite`` —
a registered suite name (``table4``), a generated one
(``synth:stencil,reduction:seeds=3``) or a ``+``-merged view.

Progress and status lines go through the ``repro.cli`` logger (stderr,
bare messages — see :mod:`repro.telemetry.log`); ``--log-level`` tunes
the whole ``repro.*`` namespace.  Hard errors stay on plain stderr
prints so they survive any logging configuration.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro import api
from repro.errors import (
    BaselineError,
    UnknownApplicationError,
    UnknownSuiteError,
)
from repro.experiments import (
    CacheStoreError,
    CampaignError,
    RunSession,
    SessionError,
    get_preset,
    headline_summary,
    load_campaign,
    load_spec_file,
    normalize_manifest,
    open_store,
    preset_names,
    render_campaign_report,
    render_table4,
    render_table5,
    render_translation_tables,
)
from repro.experiments.campaign import MANIFEST_NAME, PRESETS
from repro.experiments.store import RESULTS_NAMESPACE
from repro.hecbench import DEFAULT_SUITE, get_app, resolve_suite, suite_names
from repro.llm.profiles import CUDA2OMP, OMP2CUDA
from repro.llm.registry import all_models, model_keys
from repro.synth import FAMILIES, check_apps, parse_suite_spec
from repro.telemetry import (
    collect_trace_paths,
    configure_logging,
    get_logger,
    render_critical_path,
    render_profile_diff,
    render_trace_show,
    render_trace_summary,
    summarize_traces,
)
from repro.telemetry.profile import DEFAULT_TOLERANCE, TOLERANCE_ENV

DEFAULT_PROFILE = "paper"
DEFAULT_SEED = 2024

LOG_LEVELS = ("debug", "info", "warning", "error")

logger = get_logger("cli")


def _resolve_suite_arg(spec: str):
    """Resolve a ``--suite`` value, or print the error and return None."""
    try:
        return resolve_suite(spec)
    except UnknownSuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _runtime(value: Optional[float]) -> str:
    return f"{value:.4f}" if value is not None else "-"


def _cmd_apps(args) -> int:
    suite = _resolve_suite_arg(args.suite)
    if suite is None:
        return 2
    print(f"suite {suite.name}: {len(suite)} application(s)")
    for app in suite:
        arg_text = ",".join(app.paper_args) if app.paper_args else "-"
        print(
            f"{app.name:26s} {app.category:44s} args={arg_text:14s} "
            f"cuda={_runtime(app.paper_runtime_cuda):>8s}s "
            f"omp={_runtime(app.paper_runtime_omp):>8s}s"
        )
    return 0


def _cmd_models(_args) -> int:
    for m in all_models():
        print(f"{m.key:12s} {m.name:20s} ctx={m.context_length:,} ({m.hosting})")
    return 0


def _cmd_translate(args) -> int:
    try:
        app = get_app(args.app, suite=args.suite)
    except (UnknownApplicationError, UnknownSuiteError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    # The resolved app is handed straight to the facade, so the runner
    # never needs to resolve --suite a second time.
    result = api.translate(
        app, model=args.model, direction=args.direction,
        profile=args.profile, seed=args.seed,
    )
    print(f"status: {result.status}")
    print(f"self-corrections: {result.self_corrections}")
    if result.ok:
        print(f"runtime: {result.runtime_seconds:.4f}s  ratio: {result.ratio:.4f}"
              f"  Sim-T: {result.sim_t:.2f}  Sim-L: {result.sim_l:.2f}")
    if args.show_code and result.generated_code:
        print("\n" + result.generated_code)
    return 0 if result.ok else 1


def _cmd_evaluate(args) -> int:
    # nargs="*" yields [] when the flag is given with no values; running the
    # full grid in that case would silently ignore the user's filter intent.
    for flag in ("models", "apps"):
        if getattr(args, flag) == []:
            print(f"--{flag} requires at least one value "
                  f"(omit the flag to run the full grid)", file=sys.stderr)
            return 2
    if args.resume and not args.session:
        print("--resume requires --session PATH", file=sys.stderr)
        return 2
    suite = _resolve_suite_arg(args.suite)
    if suite is None:
        return 2
    apps: Optional[List[str]] = None
    if args.apps:
        # Validate against the suite up front (case-insensitively, with the
        # registry's "did you mean" hints) and canonicalize the names.
        try:
            apps = [suite.get(name).name for name in args.apps]
        except UnknownApplicationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    session = None
    if args.session:
        try:
            session = RunSession(args.session, resume=args.resume)
        except SessionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.resume and len(session):
            logger.info("resuming session %s: %d scenario(s) already recorded",
                        args.session, len(session))

    def progress(sr):
        s = sr.scenario
        logger.info("  %-9s %-12s %-16s -> %s",
                    s.direction, s.model_key, s.app_name, sr.result.status)

    try:
        results = api.evaluate(
            models=args.models or None,
            apps=apps,
            directions=[args.direction] if args.direction else None,
            profile=args.profile, seed=args.seed, jobs=args.jobs,
            backend=args.backend, session=session, suite=suite,
            progress=progress if args.verbose else None,
            trace=args.trace,
        )
    except SessionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tables = render_translation_tables(results)
    for direction in (OMP2CUDA, CUDA2OMP):
        if args.direction in (None, direction):
            print(tables[direction])
            print()
    print(headline_summary(results))
    return 0


def _cmd_table(args) -> int:
    if args.number in (4, 5):
        if args.profile != DEFAULT_PROFILE or args.seed != DEFAULT_SEED:
            logger.info("note: --profile/--seed only affect tables 6 and 7; "
                        "table %d is static", args.number)
        print(render_table4() if args.number == 4 else render_table5())
        return 0
    if args.number in (6, 7):
        direction = OMP2CUDA if args.number == 6 else CUDA2OMP
        results = api.evaluate(
            directions=[direction], profile=args.profile, seed=args.seed,
            jobs=args.jobs, backend=args.backend,
        )
        print(render_translation_tables(results)[direction])
        return 0
    print(f"no renderer for table {args.number}", file=sys.stderr)
    return 1


def _campaign_spec_from_args(args):
    if args.spec and args.name:
        print("give either a preset name or --spec PATH, not both",
              file=sys.stderr)
        return None
    if args.spec:
        return load_spec_file(args.spec)
    if args.name:
        return get_preset(args.name)
    print(f"campaign run needs a preset name ({', '.join(preset_names())}) "
          f"or --spec PATH", file=sys.stderr)
    return None


def _cmd_campaign_run(args) -> int:
    try:
        spec = _campaign_spec_from_args(args)
        if spec is None:
            return 2
        if args.suite:
            spec = dataclasses.replace(spec, suite=args.suite)
        runner = api.build_campaign(
            spec, root=args.dir, jobs=args.jobs, backend=args.backend,
            log=lambda msg: logger.info("  %s", msg),
            cache_store=args.cache_store, shard=args.shard,
            trace=args.trace,
        )

        def progress(sr):
            s = sr.scenario
            logger.info("    %-9s %-12s %-16s -> %s",
                        s.direction, s.model_key, s.app_name, sr.result.status)

        shard_note = f" (shard {args.shard})" if args.shard else ""
        logger.info("campaign %s: %d cell(s)%s -> %s",
                    spec.name, len(spec.cells()), shard_note, runner.directory)
        result = runner.run(progress=progress if args.verbose else None)
    except (CacheStoreError, CampaignError, SessionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if runner.shard is not None:
        # A shard holds only its slice of every cell; the per-variant
        # comparison tables only make sense after `campaign merge`.
        index, count = runner.shard
        print(f"shard {index}/{count} complete: "
              f"{sum(len(r.results) for r in result.runs)} scenario(s) "
              f"across {len(result.runs)} cell(s); partial manifest "
              f"{runner._manifest_path.name}")
        logger.info("\n%d pipeline run(s) executed; artifacts in %s",
                    result.total_pipeline_runs, runner.directory)
        return 0
    print(render_campaign_report(result))
    logger.info("\n%d pipeline run(s) executed; artifacts in %s",
                result.total_pipeline_runs, runner.directory)
    return 0


def _cmd_campaign_merge(args) -> int:
    try:
        result = api.merge_campaign(args.directory)
    except (CampaignError, SessionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    merged_path = Path(args.directory) / MANIFEST_NAME
    logger.info("merged %d cell(s) into %s", len(result.runs), merged_path)
    if args.reference:
        try:
            reference = json.loads(
                Path(args.reference).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: unreadable reference manifest "
                  f"{args.reference}: {exc}", file=sys.stderr)
            return 2
        merged = json.loads(merged_path.read_text(encoding="utf-8"))
        if normalize_manifest(merged) != normalize_manifest(reference):
            print(f"error: merged manifest differs from reference "
                  f"{args.reference} (beyond timing telemetry)",
                  file=sys.stderr)
            return 1
        logger.info("merged manifest matches reference %s "
                    "(modulo timing telemetry)", args.reference)
    print(render_campaign_report(result))
    return 0


# ----------------------------------------------------------------------
def _cmd_cache_stat(args) -> int:
    try:
        store = open_store(args.store)
        stat = store.stat()
    except CacheStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(stat, indent=2, sort_keys=True))
    return 0


def _cmd_cache_warm(args) -> int:
    try:
        source = open_store(args.source)
        dest = open_store(args.store)
        copied: dict = {}
        for ns in sorted(source.stat()["namespaces"]):
            # Legacy per-campaign cache trees keep scenario results at the
            # tree root; shared stores expect them namespaced.
            target_ns = ns if ns else args.namespace
            for key in source.keys(namespace=ns):
                entry = source.get(key, namespace=ns)
                if entry is None:
                    continue  # corrupt at source: counted there, not copied
                dest.put(key, entry, namespace=target_ns)
                copied[target_ns] = copied.get(target_ns, 0) + 1
    except CacheStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(
        {
            "from": source.describe(),
            "to": dest.describe(),
            "copied": sum(copied.values()),
            "namespaces": copied,
            "skipped_corrupt": source.corrupt,
        },
        indent=2, sort_keys=True,
    ))
    return 0


def _cmd_cache_gc(args) -> int:
    try:
        store = open_store(args.store)
        report = store.gc(max_age_seconds=args.max_age)
    except CacheStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = report.to_dict()
    if report.quarantined_ids:
        payload["quarantined_ids"] = report.quarantined_ids
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _render_telemetry_block(telemetry: dict) -> str:
    """Render a manifest's ``telemetry`` metrics snapshot as text."""
    lines = ["Telemetry (manifest metrics snapshot):"]
    counters = telemetry.get("counters", {})
    for key in sorted(counters):
        lines.append(f"  {counters[key]:>12g}  {key}")
    gauges = telemetry.get("gauges", {})
    for key in sorted(gauges):
        lines.append(f"  {gauges[key]:>12g}  {key} (gauge)")
    if len(lines) == 1:
        lines.append("  (empty snapshot)")
    return "\n".join(lines)


def _stage_attribution_warnings(manifest: dict, summary: dict) -> List[str]:
    """Warn-only cross-check of the two stage-time attributions.

    Both the manifest and the trace sidecars attribute wall time to
    pipeline stages, from different vantage points.  The manifest's
    per-cell ``stage_seconds`` (summed per stage across cells here) is
    **authoritative for totals**: it merges prior entries on resume, so
    it covers every pipeline this directory ever executed.  Trace
    sidecars are **authoritative for percentiles**: they keep every raw
    span, which per-cell sums cannot reconstruct.  On a fresh traced run
    the totals agree to float/rounding noise; a larger divergence means
    the two views describe different run sets (a resume whose earlier
    trace sidecars were pruned, or traces copied from another host), so
    say so instead of silently presenting both.
    """
    manifest_totals: dict = {}
    for cell in manifest.get("cells", []):
        if not isinstance(cell, dict):
            continue
        for stage, secs in (cell.get("stage_seconds") or {}).items():
            manifest_totals[stage] = (
                manifest_totals.get(stage, 0.0) + float(secs)
            )
    trace_totals = {
        name: float(stats.get("total", 0.0))
        for name, stats in (summary.get("stages") or {}).items()
    }
    warnings: List[str] = []
    for stage in sorted(set(manifest_totals) | set(trace_totals)):
        m = manifest_totals.get(stage, 0.0)
        t = trace_totals.get(stage, 0.0)
        # stage_seconds is rounded to 6dp per cell before summing; allow
        # that plus a sliver of relative slack before calling it real.
        if abs(m - t) > max(1e-4, 1e-3 * max(abs(m), abs(t))):
            warnings.append(
                f"warning: stage '{stage}' wall-time attribution "
                f"diverges: manifest stage_seconds sum {m:.4f}s vs trace "
                f"spans {t:.4f}s — the views cover different run sets "
                f"(manifest is authoritative for totals, traces for "
                f"percentiles)"
            )
    return warnings


def _cmd_campaign_report(args) -> int:
    directory = Path(args.dir) / args.name if args.name else Path(args.dir)
    try:
        campaign = load_campaign(directory)
    except (CampaignError, SessionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_campaign_report(campaign))
    if args.with_telemetry:
        manifest = json.loads(
            (directory / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        telemetry = manifest.get("telemetry")
        if telemetry is None:
            print("\nno telemetry in manifest "
                  "(re-run the campaign with --trace)")
        else:
            print("\n" + _render_telemetry_block(telemetry))
            try:
                paths = collect_trace_paths(directory)
                summary = summarize_traces(paths)
            except (OSError, json.JSONDecodeError):
                pass  # metrics without trace sidecars is still a report
            else:
                print("\n" + render_trace_summary(summary))
                for line in _stage_attribution_warnings(manifest, summary):
                    print(line, file=sys.stderr)
    return 0


def _cmd_campaign_list(args) -> int:
    print("built-in presets:")
    for name in preset_names():
        spec = PRESETS[name]()
        print(f"  {name:26s} {len(spec.variants)} variant(s), "
              f"{len(spec.cells())} cell(s) — {spec.description}")
    root = Path(args.dir)
    manifests = sorted(root.glob(f"*/{MANIFEST_NAME}")) if root.is_dir() else []
    if manifests:
        print(f"\ncampaign directories under {root}:")
        for path in manifests:
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
                cells = manifest.get("cells", [])
                done = sum(1 for c in cells if c.get("completed"))
                print(f"  {path.parent.name:26s} {done}/{len(cells)} "
                      f"cell(s) completed")
            except (OSError, json.JSONDecodeError):
                print(f"  {path.parent.name:26s} (unreadable manifest)")
    return 0


def _cmd_trace_summarize(args) -> int:
    try:
        paths = collect_trace_paths(args.target)
        summary = summarize_traces(paths, top=args.top)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_trace_summary(summary))
    return 0


def _cmd_trace_show(args) -> int:
    try:
        paths = collect_trace_paths(args.target)
        rendered = render_trace_show(paths, limit=args.limit)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(rendered)
    return 0


def _cmd_trace_critical_path(args) -> int:
    try:
        report = api.critical_path(args.target)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_critical_path(report, top=args.top))
    return 0


# ----------------------------------------------------------------------
def _cmd_perf_profile(args) -> int:
    try:
        snap = api.profile_baselines(
            apps=args.apps or None,
            dialects=tuple(args.dialects.split(",")),
            suite=args.suite,
        )
    except (BaselineError, UnknownApplicationError, UnknownSuiteError,
            ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(snap, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        logger.info("wrote %d profile(s) to %s",
                    len(snap["profiles"]), args.out)
    else:
        print(text, end="")
    return 0


def _perf_diff(args):
    """Shared load+diff for ``perf compare`` / ``perf regress``."""
    try:
        report, ok = api.perf_regress(
            args.baseline, args.current, tolerance=args.tolerance
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, False
    if getattr(args, "json_out", None):
        Path(args.json_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report, ok


def _cmd_perf_compare(args) -> int:
    report, _ok = _perf_diff(args)
    if report is None:
        return 2
    print(render_profile_diff(report))
    return 0


def _cmd_perf_regress(args) -> int:
    report, ok = _perf_diff(args)
    if report is None:
        return 2
    print(render_profile_diff(report))
    return 0 if ok else 1


def _synth_suite_from_args(args):
    """Build a SynthSuiteSpec from --families/--seeds/--difficulty."""
    try:
        return parse_suite_spec(
            f"synth:{args.families}:seeds={args.seeds}"
            f":difficulty={args.difficulty}"
        )
    except UnknownSuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_synth_list(_args) -> int:
    for fam in FAMILIES.values():
        print(f"{fam.name:12s} {fam.category:32s} {fam.description}")
    return 0


def _cmd_synth_generate(args) -> int:
    spec = _synth_suite_from_args(args)
    if spec is None:
        return 2
    apps = spec.apps()
    reports = check_apps(apps)
    for app, report in zip(apps, reports):
        status = "pass" if report.ok else f"FAIL[{report.stage}]"
        print(f"{app.name:28s} {app.category:32s} {status:22s} {app.notes}")
        if not report.ok and args.verbose:
            print(report.detail, file=sys.stderr)
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for app in apps:
            (out_dir / f"{app.name}.cu").write_text(
                app.cuda_source, encoding="utf-8"
            )
            (out_dir / f"{app.name}.cpp").write_text(
                app.omp_source, encoding="utf-8"
            )
        logger.info("wrote %d source file(s) to %s", 2 * len(apps), out_dir)
    passed = sum(1 for r in reports if r.ok)
    print(f"\n{passed}/{len(reports)} generated pair(s) passed the "
          f"differential self-check")
    print(f"suite spec: {spec.spec_string}")
    return 0 if passed == len(reports) else 1


def _cmd_synth_check(args) -> int:
    spec = _synth_suite_from_args(args)
    if spec is None:
        return 2
    apps = spec.apps()
    reports = {r.app_name: r for r in check_apps(apps)}
    failures = 0
    for family in spec.families:
        family_apps = [a for a in apps if a.name.startswith(f"synth-{family}-")]
        ok = sum(1 for a in family_apps if reports[a.name].ok)
        failures += len(family_apps) - ok
        print(f"{family:12s} {ok}/{len(family_apps)} pair(s) agree")
        for app in family_apps:
            report = reports[app.name]
            if not report.ok:
                print(f"  FAIL {app.name} [{report.stage}]", file=sys.stderr)
                if args.verbose:
                    print(report.detail, file=sys.stderr)
    total = len(apps)
    print(f"\ndifferential agreement: {total - failures}/{total}")
    return 0 if failures == 0 else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _jobs_arg(text: str):
    """``--jobs`` spelling: a positive count, ``0``, or ``auto`` (= cores)."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a worker count or 'auto', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_worker_args(p: argparse.ArgumentParser, what: str) -> None:
    p.add_argument("--jobs", "-j", type=_jobs_arg, default=1, metavar="N",
                   help=f"workers for {what}: a count, or 0/'auto' for one "
                        f"per CPU core (default: 1)")
    p.add_argument("--backend", choices=["thread", "process"],
                   default="thread",
                   help="worker pool kind: 'thread' (shared baselines, best "
                        "for latency-bound runs) or 'process' (scales "
                        "CPU-bound simulation across cores)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LASSI reproduction (CLUSTER 2024) command-line interface",
    )
    parser.add_argument("--log-level", default="info", choices=LOG_LEVELS,
                        help="verbosity of the repro.* logging namespace "
                             "(stderr; default: info)")
    sub = parser.add_subparsers(dest="command", required=True)

    suite_help = (
        f"application suite: {', '.join(suite_names())}, "
        f"synth:<families>[:seeds=N][:difficulty=D], or a '+'-merged view"
    )

    ap = sub.add_parser("apps", help="list a suite's applications")
    ap.add_argument("--suite", default=DEFAULT_SUITE, help=suite_help)
    ap.set_defaults(func=_cmd_apps)
    sub.add_parser("models", help="list the Table V LLMs").set_defaults(
        func=_cmd_models
    )

    tr = sub.add_parser("translate", help="run the pipeline on one scenario")
    tr.add_argument("app",
                    help="application name (Table IV name or a synthetic "
                         "name like synth-stencil-d1-s0)")
    tr.add_argument("--model", default="gpt4", choices=model_keys())
    tr.add_argument("--direction", default=OMP2CUDA,
                    choices=[OMP2CUDA, CUDA2OMP])
    tr.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    tr.add_argument("--seed", type=int, default=DEFAULT_SEED)
    tr.add_argument("--suite", default=None, help=suite_help)
    tr.add_argument("--show-code", action="store_true")
    tr.set_defaults(func=_cmd_translate)

    ev = sub.add_parser("evaluate", help="run the evaluation grid")
    ev.add_argument("--models", nargs="*", choices=model_keys())
    ev.add_argument("--apps", nargs="*",
                    help="filter to these apps (must exist in --suite)")
    ev.add_argument("--suite", default=DEFAULT_SUITE, help=suite_help)
    ev.add_argument("--direction", choices=[OMP2CUDA, CUDA2OMP])
    ev.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    ev.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_worker_args(ev, "the grid")
    ev.add_argument("--session", metavar="PATH",
                    help="persist each result to a JSONL session artifact")
    ev.add_argument("--resume", action="store_true",
                    help="skip scenarios already recorded in --session")
    ev.add_argument("--trace", action="store_true",
                    help="record telemetry spans per scenario; with "
                         "--session, write them to a .trace.jsonl sidecar "
                         "(inspect with 'repro trace summarize')")
    ev.add_argument("--verbose", "-v", action="store_true")
    ev.set_defaults(func=_cmd_evaluate)

    tb = sub.add_parser("table", help="print a paper table")
    tb.add_argument("number", type=int, choices=[4, 5, 6, 7])
    tb.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    tb.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_worker_args(tb, "the table 6/7 half-grid")
    tb.set_defaults(func=_cmd_table)

    cg = sub.add_parser(
        "campaign", help="declarative ablation sweeps over the grid"
    )
    cgsub = cg.add_subparsers(dest="campaign_command", required=True)

    cr = cgsub.add_parser("run", help="run a preset or JSON campaign spec")
    cr.add_argument("name", nargs="?",
                    help=f"built-in preset ({', '.join(preset_names())})")
    cr.add_argument("--spec", metavar="PATH",
                    help="JSON CampaignSpec file instead of a preset")
    cr.add_argument("--dir", default="campaigns", metavar="DIR",
                    help="root directory for campaign artifacts "
                         "(default: campaigns)")
    _add_worker_args(cr, "each variant grid")
    cr.add_argument("--suite", default=None,
                    help=f"override the spec's application suite "
                         f"({suite_help})")
    cr.add_argument("--cache-store", default=None, metavar="URI",
                    help="shared pluggable cache store (dir:<path> or "
                         "sqlite:<path>; a bare path means dir:) for "
                         "scenario results and persisted compilations; "
                         "default: the campaign's own cache/ tree")
    cr.add_argument("--shard", default=None, metavar="i/N",
                    help="run only this slice of the variant x scenario "
                         "cells (e.g. 0/2) and write a partial "
                         "manifest.shard-i-of-N.json; fuse the slices "
                         "with 'campaign merge'")
    cr.add_argument("--trace", action="store_true",
                    help="write a .trace.jsonl sidecar next to every cell "
                         "session and a metrics snapshot into the "
                         "manifest's telemetry block")
    cr.add_argument("--verbose", "-v", action="store_true")
    cr.set_defaults(func=_cmd_campaign_run)

    cm = cgsub.add_parser(
        "merge",
        help="fuse per-shard partial manifests into the canonical "
             "manifest.json + sessions",
    )
    cm.add_argument("directory",
                    help="campaign directory holding every shard's "
                         "manifest.shard-i-of-N.json and sessions")
    cm.add_argument("--reference", metavar="PATH",
                    help="an unsharded manifest.json to compare against; "
                         "exits 1 unless the merged manifest matches it "
                         "modulo timing telemetry")
    cm.set_defaults(func=_cmd_campaign_merge)

    cp = cgsub.add_parser("report", help="render a campaign's comparison "
                                         "tables from its directory")
    cp.add_argument("name", nargs="?",
                    help="campaign name under --dir (omit if --dir points "
                         "straight at the campaign directory)")
    cp.add_argument("--dir", default="campaigns", metavar="DIR")
    cp.add_argument("--with-telemetry", action="store_true",
                    help="append the manifest's metrics snapshot and, when "
                         "trace sidecars exist, the full trace summary")
    cp.set_defaults(func=_cmd_campaign_report)

    cl = cgsub.add_parser("list", help="list presets and campaign "
                                       "directories")
    cl.add_argument("--dir", default="campaigns", metavar="DIR")
    cl.set_defaults(func=_cmd_campaign_list)

    ca = sub.add_parser(
        "cache",
        help="inspect / warm / garbage-collect pluggable cache stores",
    )
    casub = ca.add_subparsers(dest="cache_command", required=True)
    store_help = ("cache store: dir:<path>, sqlite:<path>, or a bare "
                  "directory path")

    cs = casub.add_parser("stat", help="print a store's entry counts, "
                                       "sizes and corrupt-entry count")
    cs.add_argument("store", help=store_help)
    cs.set_defaults(func=_cmd_cache_stat)

    cw = casub.add_parser(
        "warm",
        help="copy every readable entry from another store (e.g. seed a "
             "shared sqlite store from a campaign's cache/ tree)",
    )
    cw.add_argument("store", help=f"destination {store_help}")
    cw.add_argument("--from", dest="source", required=True, metavar="URI",
                    help=f"source {store_help}")
    cw.add_argument("--namespace", default=RESULTS_NAMESPACE, metavar="NS",
                    help="namespace for entries found at the source's "
                         "root (legacy campaign caches keep scenario "
                         "results there; default: results)")
    cw.set_defaults(func=_cmd_cache_warm)

    cg_ = casub.add_parser(
        "gc",
        help="quarantine corrupt entries and optionally prune old ones",
    )
    cg_.add_argument("store", help=store_help)
    cg_.add_argument("--max-age", type=float, default=None,
                     metavar="SECONDS",
                     help="also prune readable entries older than this "
                          "(default: keep all readable entries)")
    cg_.set_defaults(func=_cmd_cache_gc)

    tc = sub.add_parser(
        "trace",
        help="summarize / show .trace.jsonl telemetry sidecars",
    )
    tcsub = tc.add_subparsers(dest="trace_command", required=True)
    target_help = ("a .trace.jsonl file, a session .jsonl (the sidecar is "
                   "found by convention), or a campaign directory")

    tsu = tcsub.add_parser(
        "summarize",
        help="per-stage latency percentiles, LLM-call histogram, cache "
             "efficiency and the slowest traces",
    )
    tsu.add_argument("target", help=target_help)
    tsu.add_argument("--top", type=_positive_int, default=5, metavar="N",
                     help="how many slowest traces to list (default: 5)")
    tsu.set_defaults(func=_cmd_trace_summarize)

    tsh = tcsub.add_parser("show", help="print every trace's span tree")
    tsh.add_argument("target", help=target_help)
    tsh.add_argument("--limit", type=int, default=0, metavar="N",
                     help="stop after N traces (default: 0 = all)")
    tsh.set_defaults(func=_cmd_trace_show)

    tcp = tcsub.add_parser(
        "critical-path",
        help="attribute each trace's wall time to its dominant bucket "
             "(llm / compile / exec / overhead) and aggregate",
    )
    tcp.add_argument("target", help=target_help)
    tcp.add_argument("--top", type=_positive_int, default=5, metavar="N",
                     help="how many slowest traces to detail (default: 5)")
    tcp.set_defaults(func=_cmd_trace_critical_path)

    pf = sub.add_parser(
        "perf",
        help="deterministic runtime profiles and the perf-regression gate",
    )
    pfsub = pf.add_subparsers(dest="perf_command", required=True)
    snapshot_help = (
        "a profile snapshot: BENCH_*.json with a 'profiles' block, a "
        "campaign manifest.json (per-cell perf summaries), or a bare "
        "snapshot from 'perf profile --out'"
    )

    pp = pfsub.add_parser(
        "profile",
        help="compile+run suite baselines and emit their deterministic "
             "runtime profiles (byte-stable across machines)",
    )
    pp.add_argument("--apps", nargs="*",
                    help="restrict to these applications "
                         "(default: the whole suite)")
    pp.add_argument("--suite", default=None, help=suite_help)
    pp.add_argument("--dialects", default="cuda,omp", metavar="D1,D2",
                    help="comma-separated dialects to profile "
                         "(default: cuda,omp)")
    pp.add_argument("--out", metavar="PATH",
                    help="write the snapshot to PATH instead of stdout "
                         "(commit it as a perf baseline)")
    pp.set_defaults(func=_cmd_perf_profile)

    def _perf_diff_args(p):
        p.add_argument("baseline", help=f"baseline {snapshot_help}")
        p.add_argument("current", help=f"current {snapshot_help}")
        p.add_argument("--tolerance", type=float, default=None, metavar="T",
                       help=f"relative regression tolerance (default: "
                            f"${TOLERANCE_ENV} or {DEFAULT_TOLERANCE:g})")
        p.add_argument("--json-out", metavar="PATH",
                       help="also write the full diff report as JSON "
                            "(CI uploads this as an artifact)")

    pc = pfsub.add_parser(
        "compare",
        help="diff two profile snapshots informationally (always exit 0)",
    )
    _perf_diff_args(pc)
    pc.set_defaults(func=_cmd_perf_compare)

    pr = pfsub.add_parser(
        "regress",
        help="diff two profile snapshots as a gate: exit 1 when any "
             "counter regressed beyond the tolerance or coverage shrank",
    )
    _perf_diff_args(pr)
    pr.set_defaults(func=_cmd_perf_regress)

    sy = sub.add_parser(
        "synth", help="generate / list / self-check synthetic app suites"
    )
    sysub = sy.add_subparsers(dest="synth_command", required=True)

    def _synth_gen_args(p):
        p.add_argument("--families", default="all", metavar="F1,F2",
                       help="comma-separated kernel families, or 'all' "
                            f"({', '.join(FAMILIES)})")
        p.add_argument("--seeds", type=_positive_int, default=1, metavar="N",
                       help="generation seeds 0..N-1 per family (default: 1)")
        p.add_argument("--difficulty", type=_positive_int, default=1,
                       metavar="D", help="template difficulty (default: 1)")
        p.add_argument("--verbose", "-v", action="store_true",
                       help="print failure details to stderr")

    sg = sysub.add_parser(
        "generate",
        help="generate paired CUDA+OMP apps and run the differential "
             "self-check",
    )
    _synth_gen_args(sg)
    sg.add_argument("--out", metavar="DIR",
                    help="also write the generated sources to DIR")
    sg.set_defaults(func=_cmd_synth_generate)

    sl = sysub.add_parser("list", help="list the kernel-family templates")
    sl.set_defaults(func=_cmd_synth_list)

    sc = sysub.add_parser(
        "check",
        help="differentially execute generated pairs and report "
             "per-family agreement",
    )
    _synth_gen_args(sc)
    sc.set_defaults(func=_cmd_synth_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    try:
        return args.func(args)
    except BrokenPipeError:
        # `repro trace show | head` closes stdout early; point the fd at
        # devnull so the interpreter's shutdown flush stays quiet too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
