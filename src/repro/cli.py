"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deliverables:

* ``translate`` — run the LASSI pipeline on one suite app;
* ``evaluate``  — the §V experiment grid (optionally filtered);
* ``table``     — print a paper table (4, 5, 6 or 7);
* ``apps`` / ``models`` — list the suite and the registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    ExperimentRunner,
    ParallelExperimentRunner,
    RunSession,
    SessionError,
    headline_summary,
    render_table4,
    render_table5,
    render_translation_tables,
)
from repro.experiments.runner import Scenario
from repro.hecbench import all_apps, app_names
from repro.llm.profiles import CUDA2OMP, OMP2CUDA
from repro.llm.registry import all_models, model_keys

DEFAULT_PROFILE = "paper"
DEFAULT_SEED = 2024


def _cmd_apps(_args) -> int:
    for app in all_apps():
        print(f"{app.name:18s} {app.category:42s} args={app.paper_args}")
    return 0


def _cmd_models(_args) -> int:
    for m in all_models():
        print(f"{m.key:12s} {m.name:20s} ctx={m.context_length:,} ({m.hosting})")
    return 0


def _cmd_translate(args) -> int:
    runner = ExperimentRunner(profile=args.profile, seed=args.seed)
    scenario = Scenario(
        model_key=args.model, direction=args.direction, app_name=args.app
    )
    result = runner.run_scenario(scenario).result
    print(f"status: {result.status}")
    print(f"self-corrections: {result.self_corrections}")
    if result.ok:
        print(f"runtime: {result.runtime_seconds:.4f}s  ratio: {result.ratio:.4f}"
              f"  Sim-T: {result.sim_t:.2f}  Sim-L: {result.sim_l:.2f}")
    if args.show_code and result.generated_code:
        print("\n" + result.generated_code)
    return 0 if result.ok else 1


def _cmd_evaluate(args) -> int:
    if args.resume and not args.session:
        print("--resume requires --session PATH", file=sys.stderr)
        return 2
    session = None
    if args.session:
        try:
            session = RunSession(args.session, resume=args.resume)
        except SessionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.resume and len(session):
            print(f"resuming session {args.session}: "
                  f"{len(session)} scenario(s) already recorded",
                  file=sys.stderr)
    runner = ParallelExperimentRunner(
        profile=args.profile, seed=args.seed, jobs=args.jobs, session=session,
    )

    def progress(sr):
        s = sr.scenario
        print(f"  {s.direction:9s} {s.model_key:12s} {s.app_name:16s} "
              f"-> {sr.result.status}", file=sys.stderr)

    try:
        results = runner.run(
            models=args.models or None,
            apps=args.apps or None,
            directions=[args.direction] if args.direction else None,
            progress=progress if args.verbose else None,
        )
    except SessionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tables = render_translation_tables(results)
    for direction in (OMP2CUDA, CUDA2OMP):
        if args.direction in (None, direction):
            print(tables[direction])
            print()
    print(headline_summary(results))
    return 0


def _cmd_table(args) -> int:
    if args.number in (4, 5):
        if args.profile != DEFAULT_PROFILE or args.seed != DEFAULT_SEED:
            print("note: --profile/--seed only affect tables 6 and 7; "
                  f"table {args.number} is static", file=sys.stderr)
        print(render_table4() if args.number == 4 else render_table5())
        return 0
    if args.number in (6, 7):
        direction = OMP2CUDA if args.number == 6 else CUDA2OMP
        runner = ExperimentRunner(profile=args.profile, seed=args.seed)
        results = runner.run(directions=[direction])
        print(render_translation_tables(results)[direction])
        return 0
    print(f"no renderer for table {args.number}", file=sys.stderr)
    return 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LASSI reproduction (CLUSTER 2024) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the Table IV applications").set_defaults(
        func=_cmd_apps
    )
    sub.add_parser("models", help="list the Table V LLMs").set_defaults(
        func=_cmd_models
    )

    tr = sub.add_parser("translate", help="run the pipeline on one scenario")
    tr.add_argument("app", choices=app_names())
    tr.add_argument("--model", default="gpt4", choices=model_keys())
    tr.add_argument("--direction", default=OMP2CUDA,
                    choices=[OMP2CUDA, CUDA2OMP])
    tr.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    tr.add_argument("--seed", type=int, default=DEFAULT_SEED)
    tr.add_argument("--show-code", action="store_true")
    tr.set_defaults(func=_cmd_translate)

    ev = sub.add_parser("evaluate", help="run the evaluation grid")
    ev.add_argument("--models", nargs="*", choices=model_keys())
    ev.add_argument("--apps", nargs="*", choices=app_names())
    ev.add_argument("--direction", choices=[OMP2CUDA, CUDA2OMP])
    ev.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    ev.add_argument("--seed", type=int, default=DEFAULT_SEED)
    ev.add_argument("--jobs", "-j", type=_positive_int, default=1, metavar="N",
                    help="worker threads for the grid (default: 1)")
    ev.add_argument("--session", metavar="PATH",
                    help="persist each result to a JSONL session artifact")
    ev.add_argument("--resume", action="store_true",
                    help="skip scenarios already recorded in --session")
    ev.add_argument("--verbose", "-v", action="store_true")
    ev.set_defaults(func=_cmd_evaluate)

    tb = sub.add_parser("table", help="print a paper table")
    tb.add_argument("number", type=int, choices=[4, 5, 6, 7])
    tb.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    tb.add_argument("--seed", type=int, default=DEFAULT_SEED)
    tb.set_defaults(func=_cmd_table)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
