"""Command-line interface: ``python -m repro <command>``.

A thin shell over the stable :mod:`repro.api` facade (translate /
evaluate / run_campaign / build_pipeline).  Commands mirror the
deliverables:

* ``translate`` — run the LASSI pipeline on one suite app;
* ``evaluate``  — the §V experiment grid (optionally filtered);
* ``table``     — print a paper table (4, 5, 6 or 7);
* ``campaign``  — declarative ablation sweeps (run / merge / report /
  list); ``run --shard i/N`` executes one slice of a distributed
  campaign and ``merge`` fuses the slices;
* ``cache``     — inspect / warm / garbage-collect pluggable cache
  stores (``dir:<path>`` or ``sqlite:<path>`` URIs);
* ``synth``     — generate / list / self-check synthetic app suites;
* ``apps`` / ``models`` — list a suite and the model registry.

``translate``, ``evaluate`` and ``campaign run`` accept ``--suite`` —
a registered suite name (``table4``), a generated one
(``synth:stencil,reduction:seeds=3``) or a ``+``-merged view.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import api
from repro.errors import UnknownApplicationError, UnknownSuiteError
from repro.experiments import (
    CacheStoreError,
    CampaignError,
    RunSession,
    SessionError,
    get_preset,
    headline_summary,
    load_campaign,
    load_spec_file,
    normalize_manifest,
    open_store,
    preset_names,
    render_campaign_report,
    render_table4,
    render_table5,
    render_translation_tables,
)
from repro.experiments.campaign import MANIFEST_NAME, PRESETS
from repro.experiments.store import RESULTS_NAMESPACE
from repro.hecbench import DEFAULT_SUITE, get_app, resolve_suite, suite_names
from repro.llm.profiles import CUDA2OMP, OMP2CUDA
from repro.llm.registry import all_models, model_keys
from repro.synth import FAMILIES, check_apps, parse_suite_spec

DEFAULT_PROFILE = "paper"
DEFAULT_SEED = 2024


def _resolve_suite_arg(spec: str):
    """Resolve a ``--suite`` value, or print the error and return None."""
    try:
        return resolve_suite(spec)
    except UnknownSuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _runtime(value: Optional[float]) -> str:
    return f"{value:.4f}" if value is not None else "-"


def _cmd_apps(args) -> int:
    suite = _resolve_suite_arg(args.suite)
    if suite is None:
        return 2
    print(f"suite {suite.name}: {len(suite)} application(s)")
    for app in suite:
        arg_text = ",".join(app.paper_args) if app.paper_args else "-"
        print(
            f"{app.name:26s} {app.category:44s} args={arg_text:14s} "
            f"cuda={_runtime(app.paper_runtime_cuda):>8s}s "
            f"omp={_runtime(app.paper_runtime_omp):>8s}s"
        )
    return 0


def _cmd_models(_args) -> int:
    for m in all_models():
        print(f"{m.key:12s} {m.name:20s} ctx={m.context_length:,} ({m.hosting})")
    return 0


def _cmd_translate(args) -> int:
    try:
        app = get_app(args.app, suite=args.suite)
    except (UnknownApplicationError, UnknownSuiteError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    # The resolved app is handed straight to the facade, so the runner
    # never needs to resolve --suite a second time.
    result = api.translate(
        app, model=args.model, direction=args.direction,
        profile=args.profile, seed=args.seed,
    )
    print(f"status: {result.status}")
    print(f"self-corrections: {result.self_corrections}")
    if result.ok:
        print(f"runtime: {result.runtime_seconds:.4f}s  ratio: {result.ratio:.4f}"
              f"  Sim-T: {result.sim_t:.2f}  Sim-L: {result.sim_l:.2f}")
    if args.show_code and result.generated_code:
        print("\n" + result.generated_code)
    return 0 if result.ok else 1


def _cmd_evaluate(args) -> int:
    # nargs="*" yields [] when the flag is given with no values; running the
    # full grid in that case would silently ignore the user's filter intent.
    for flag in ("models", "apps"):
        if getattr(args, flag) == []:
            print(f"--{flag} requires at least one value "
                  f"(omit the flag to run the full grid)", file=sys.stderr)
            return 2
    if args.resume and not args.session:
        print("--resume requires --session PATH", file=sys.stderr)
        return 2
    suite = _resolve_suite_arg(args.suite)
    if suite is None:
        return 2
    apps: Optional[List[str]] = None
    if args.apps:
        # Validate against the suite up front (case-insensitively, with the
        # registry's "did you mean" hints) and canonicalize the names.
        try:
            apps = [suite.get(name).name for name in args.apps]
        except UnknownApplicationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    session = None
    if args.session:
        try:
            session = RunSession(args.session, resume=args.resume)
        except SessionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.resume and len(session):
            print(f"resuming session {args.session}: "
                  f"{len(session)} scenario(s) already recorded",
                  file=sys.stderr)
    def progress(sr):
        s = sr.scenario
        print(f"  {s.direction:9s} {s.model_key:12s} {s.app_name:16s} "
              f"-> {sr.result.status}", file=sys.stderr)

    try:
        results = api.evaluate(
            models=args.models or None,
            apps=apps,
            directions=[args.direction] if args.direction else None,
            profile=args.profile, seed=args.seed, jobs=args.jobs,
            backend=args.backend, session=session, suite=suite,
            progress=progress if args.verbose else None,
        )
    except SessionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tables = render_translation_tables(results)
    for direction in (OMP2CUDA, CUDA2OMP):
        if args.direction in (None, direction):
            print(tables[direction])
            print()
    print(headline_summary(results))
    return 0


def _cmd_table(args) -> int:
    if args.number in (4, 5):
        if args.profile != DEFAULT_PROFILE or args.seed != DEFAULT_SEED:
            print("note: --profile/--seed only affect tables 6 and 7; "
                  f"table {args.number} is static", file=sys.stderr)
        print(render_table4() if args.number == 4 else render_table5())
        return 0
    if args.number in (6, 7):
        direction = OMP2CUDA if args.number == 6 else CUDA2OMP
        results = api.evaluate(
            directions=[direction], profile=args.profile, seed=args.seed,
            jobs=args.jobs, backend=args.backend,
        )
        print(render_translation_tables(results)[direction])
        return 0
    print(f"no renderer for table {args.number}", file=sys.stderr)
    return 1


def _campaign_spec_from_args(args):
    if args.spec and args.name:
        print("give either a preset name or --spec PATH, not both",
              file=sys.stderr)
        return None
    if args.spec:
        return load_spec_file(args.spec)
    if args.name:
        return get_preset(args.name)
    print(f"campaign run needs a preset name ({', '.join(preset_names())}) "
          f"or --spec PATH", file=sys.stderr)
    return None


def _cmd_campaign_run(args) -> int:
    try:
        spec = _campaign_spec_from_args(args)
        if spec is None:
            return 2
        if args.suite:
            spec = dataclasses.replace(spec, suite=args.suite)
        runner = api.build_campaign(
            spec, root=args.dir, jobs=args.jobs, backend=args.backend,
            log=lambda msg: print(f"  {msg}", file=sys.stderr),
            cache_store=args.cache_store, shard=args.shard,
        )

        def progress(sr):
            s = sr.scenario
            print(f"    {s.direction:9s} {s.model_key:12s} {s.app_name:16s} "
                  f"-> {sr.result.status}", file=sys.stderr)

        shard_note = f" (shard {args.shard})" if args.shard else ""
        print(f"campaign {spec.name}: {len(spec.cells())} cell(s)"
              f"{shard_note} -> {runner.directory}", file=sys.stderr)
        result = runner.run(progress=progress if args.verbose else None)
    except (CacheStoreError, CampaignError, SessionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if runner.shard is not None:
        # A shard holds only its slice of every cell; the per-variant
        # comparison tables only make sense after `campaign merge`.
        index, count = runner.shard
        print(f"shard {index}/{count} complete: "
              f"{sum(len(r.results) for r in result.runs)} scenario(s) "
              f"across {len(result.runs)} cell(s); partial manifest "
              f"{runner._manifest_path.name}")
        print(f"\n{result.total_pipeline_runs} pipeline run(s) executed; "
              f"artifacts in {runner.directory}", file=sys.stderr)
        return 0
    print(render_campaign_report(result))
    print(f"\n{result.total_pipeline_runs} pipeline run(s) executed; "
          f"artifacts in {runner.directory}", file=sys.stderr)
    return 0


def _cmd_campaign_merge(args) -> int:
    try:
        result = api.merge_campaign(args.directory)
    except (CampaignError, SessionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    merged_path = Path(args.directory) / MANIFEST_NAME
    print(f"merged {len(result.runs)} cell(s) into {merged_path}",
          file=sys.stderr)
    if args.reference:
        try:
            reference = json.loads(
                Path(args.reference).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: unreadable reference manifest "
                  f"{args.reference}: {exc}", file=sys.stderr)
            return 2
        merged = json.loads(merged_path.read_text(encoding="utf-8"))
        if normalize_manifest(merged) != normalize_manifest(reference):
            print(f"error: merged manifest differs from reference "
                  f"{args.reference} (beyond timing telemetry)",
                  file=sys.stderr)
            return 1
        print(f"merged manifest matches reference {args.reference} "
              f"(modulo timing telemetry)", file=sys.stderr)
    print(render_campaign_report(result))
    return 0


# ----------------------------------------------------------------------
def _cmd_cache_stat(args) -> int:
    try:
        store = open_store(args.store)
        stat = store.stat()
    except CacheStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(stat, indent=2, sort_keys=True))
    return 0


def _cmd_cache_warm(args) -> int:
    try:
        source = open_store(args.source)
        dest = open_store(args.store)
        copied: dict = {}
        for ns in sorted(source.stat()["namespaces"]):
            # Legacy per-campaign cache trees keep scenario results at the
            # tree root; shared stores expect them namespaced.
            target_ns = ns if ns else args.namespace
            for key in source.keys(namespace=ns):
                entry = source.get(key, namespace=ns)
                if entry is None:
                    continue  # corrupt at source: counted there, not copied
                dest.put(key, entry, namespace=target_ns)
                copied[target_ns] = copied.get(target_ns, 0) + 1
    except CacheStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(
        {
            "from": source.describe(),
            "to": dest.describe(),
            "copied": sum(copied.values()),
            "namespaces": copied,
            "skipped_corrupt": source.corrupt,
        },
        indent=2, sort_keys=True,
    ))
    return 0


def _cmd_cache_gc(args) -> int:
    try:
        store = open_store(args.store)
        report = store.gc(max_age_seconds=args.max_age)
    except CacheStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = report.to_dict()
    if report.quarantined_ids:
        payload["quarantined_ids"] = report.quarantined_ids
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_campaign_report(args) -> int:
    directory = Path(args.dir) / args.name if args.name else Path(args.dir)
    try:
        campaign = load_campaign(directory)
    except (CampaignError, SessionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_campaign_report(campaign))
    return 0


def _cmd_campaign_list(args) -> int:
    print("built-in presets:")
    for name in preset_names():
        spec = PRESETS[name]()
        print(f"  {name:26s} {len(spec.variants)} variant(s), "
              f"{len(spec.cells())} cell(s) — {spec.description}")
    root = Path(args.dir)
    manifests = sorted(root.glob(f"*/{MANIFEST_NAME}")) if root.is_dir() else []
    if manifests:
        print(f"\ncampaign directories under {root}:")
        for path in manifests:
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
                cells = manifest.get("cells", [])
                done = sum(1 for c in cells if c.get("completed"))
                print(f"  {path.parent.name:26s} {done}/{len(cells)} "
                      f"cell(s) completed")
            except (OSError, json.JSONDecodeError):
                print(f"  {path.parent.name:26s} (unreadable manifest)")
    return 0


def _synth_suite_from_args(args):
    """Build a SynthSuiteSpec from --families/--seeds/--difficulty."""
    try:
        return parse_suite_spec(
            f"synth:{args.families}:seeds={args.seeds}"
            f":difficulty={args.difficulty}"
        )
    except UnknownSuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_synth_list(_args) -> int:
    for fam in FAMILIES.values():
        print(f"{fam.name:12s} {fam.category:32s} {fam.description}")
    return 0


def _cmd_synth_generate(args) -> int:
    spec = _synth_suite_from_args(args)
    if spec is None:
        return 2
    apps = spec.apps()
    reports = check_apps(apps)
    for app, report in zip(apps, reports):
        status = "pass" if report.ok else f"FAIL[{report.stage}]"
        print(f"{app.name:28s} {app.category:32s} {status:22s} {app.notes}")
        if not report.ok and args.verbose:
            print(report.detail, file=sys.stderr)
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for app in apps:
            (out_dir / f"{app.name}.cu").write_text(
                app.cuda_source, encoding="utf-8"
            )
            (out_dir / f"{app.name}.cpp").write_text(
                app.omp_source, encoding="utf-8"
            )
        print(f"wrote {2 * len(apps)} source file(s) to {out_dir}",
              file=sys.stderr)
    passed = sum(1 for r in reports if r.ok)
    print(f"\n{passed}/{len(reports)} generated pair(s) passed the "
          f"differential self-check")
    print(f"suite spec: {spec.spec_string}")
    return 0 if passed == len(reports) else 1


def _cmd_synth_check(args) -> int:
    spec = _synth_suite_from_args(args)
    if spec is None:
        return 2
    apps = spec.apps()
    reports = {r.app_name: r for r in check_apps(apps)}
    failures = 0
    for family in spec.families:
        family_apps = [a for a in apps if a.name.startswith(f"synth-{family}-")]
        ok = sum(1 for a in family_apps if reports[a.name].ok)
        failures += len(family_apps) - ok
        print(f"{family:12s} {ok}/{len(family_apps)} pair(s) agree")
        for app in family_apps:
            report = reports[app.name]
            if not report.ok:
                print(f"  FAIL {app.name} [{report.stage}]", file=sys.stderr)
                if args.verbose:
                    print(report.detail, file=sys.stderr)
    total = len(apps)
    print(f"\ndifferential agreement: {total - failures}/{total}")
    return 0 if failures == 0 else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _jobs_arg(text: str):
    """``--jobs`` spelling: a positive count, ``0``, or ``auto`` (= cores)."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a worker count or 'auto', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_worker_args(p: argparse.ArgumentParser, what: str) -> None:
    p.add_argument("--jobs", "-j", type=_jobs_arg, default=1, metavar="N",
                   help=f"workers for {what}: a count, or 0/'auto' for one "
                        f"per CPU core (default: 1)")
    p.add_argument("--backend", choices=["thread", "process"],
                   default="thread",
                   help="worker pool kind: 'thread' (shared baselines, best "
                        "for latency-bound runs) or 'process' (scales "
                        "CPU-bound simulation across cores)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LASSI reproduction (CLUSTER 2024) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    suite_help = (
        f"application suite: {', '.join(suite_names())}, "
        f"synth:<families>[:seeds=N][:difficulty=D], or a '+'-merged view"
    )

    ap = sub.add_parser("apps", help="list a suite's applications")
    ap.add_argument("--suite", default=DEFAULT_SUITE, help=suite_help)
    ap.set_defaults(func=_cmd_apps)
    sub.add_parser("models", help="list the Table V LLMs").set_defaults(
        func=_cmd_models
    )

    tr = sub.add_parser("translate", help="run the pipeline on one scenario")
    tr.add_argument("app",
                    help="application name (Table IV name or a synthetic "
                         "name like synth-stencil-d1-s0)")
    tr.add_argument("--model", default="gpt4", choices=model_keys())
    tr.add_argument("--direction", default=OMP2CUDA,
                    choices=[OMP2CUDA, CUDA2OMP])
    tr.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    tr.add_argument("--seed", type=int, default=DEFAULT_SEED)
    tr.add_argument("--suite", default=None, help=suite_help)
    tr.add_argument("--show-code", action="store_true")
    tr.set_defaults(func=_cmd_translate)

    ev = sub.add_parser("evaluate", help="run the evaluation grid")
    ev.add_argument("--models", nargs="*", choices=model_keys())
    ev.add_argument("--apps", nargs="*",
                    help="filter to these apps (must exist in --suite)")
    ev.add_argument("--suite", default=DEFAULT_SUITE, help=suite_help)
    ev.add_argument("--direction", choices=[OMP2CUDA, CUDA2OMP])
    ev.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    ev.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_worker_args(ev, "the grid")
    ev.add_argument("--session", metavar="PATH",
                    help="persist each result to a JSONL session artifact")
    ev.add_argument("--resume", action="store_true",
                    help="skip scenarios already recorded in --session")
    ev.add_argument("--verbose", "-v", action="store_true")
    ev.set_defaults(func=_cmd_evaluate)

    tb = sub.add_parser("table", help="print a paper table")
    tb.add_argument("number", type=int, choices=[4, 5, 6, 7])
    tb.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    tb.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_worker_args(tb, "the table 6/7 half-grid")
    tb.set_defaults(func=_cmd_table)

    cg = sub.add_parser(
        "campaign", help="declarative ablation sweeps over the grid"
    )
    cgsub = cg.add_subparsers(dest="campaign_command", required=True)

    cr = cgsub.add_parser("run", help="run a preset or JSON campaign spec")
    cr.add_argument("name", nargs="?",
                    help=f"built-in preset ({', '.join(preset_names())})")
    cr.add_argument("--spec", metavar="PATH",
                    help="JSON CampaignSpec file instead of a preset")
    cr.add_argument("--dir", default="campaigns", metavar="DIR",
                    help="root directory for campaign artifacts "
                         "(default: campaigns)")
    _add_worker_args(cr, "each variant grid")
    cr.add_argument("--suite", default=None,
                    help=f"override the spec's application suite "
                         f"({suite_help})")
    cr.add_argument("--cache-store", default=None, metavar="URI",
                    help="shared pluggable cache store (dir:<path> or "
                         "sqlite:<path>; a bare path means dir:) for "
                         "scenario results and persisted compilations; "
                         "default: the campaign's own cache/ tree")
    cr.add_argument("--shard", default=None, metavar="i/N",
                    help="run only this slice of the variant x scenario "
                         "cells (e.g. 0/2) and write a partial "
                         "manifest.shard-i-of-N.json; fuse the slices "
                         "with 'campaign merge'")
    cr.add_argument("--verbose", "-v", action="store_true")
    cr.set_defaults(func=_cmd_campaign_run)

    cm = cgsub.add_parser(
        "merge",
        help="fuse per-shard partial manifests into the canonical "
             "manifest.json + sessions",
    )
    cm.add_argument("directory",
                    help="campaign directory holding every shard's "
                         "manifest.shard-i-of-N.json and sessions")
    cm.add_argument("--reference", metavar="PATH",
                    help="an unsharded manifest.json to compare against; "
                         "exits 1 unless the merged manifest matches it "
                         "modulo timing telemetry")
    cm.set_defaults(func=_cmd_campaign_merge)

    cp = cgsub.add_parser("report", help="render a campaign's comparison "
                                         "tables from its directory")
    cp.add_argument("name", nargs="?",
                    help="campaign name under --dir (omit if --dir points "
                         "straight at the campaign directory)")
    cp.add_argument("--dir", default="campaigns", metavar="DIR")
    cp.set_defaults(func=_cmd_campaign_report)

    cl = cgsub.add_parser("list", help="list presets and campaign "
                                       "directories")
    cl.add_argument("--dir", default="campaigns", metavar="DIR")
    cl.set_defaults(func=_cmd_campaign_list)

    ca = sub.add_parser(
        "cache",
        help="inspect / warm / garbage-collect pluggable cache stores",
    )
    casub = ca.add_subparsers(dest="cache_command", required=True)
    store_help = ("cache store: dir:<path>, sqlite:<path>, or a bare "
                  "directory path")

    cs = casub.add_parser("stat", help="print a store's entry counts, "
                                       "sizes and corrupt-entry count")
    cs.add_argument("store", help=store_help)
    cs.set_defaults(func=_cmd_cache_stat)

    cw = casub.add_parser(
        "warm",
        help="copy every readable entry from another store (e.g. seed a "
             "shared sqlite store from a campaign's cache/ tree)",
    )
    cw.add_argument("store", help=f"destination {store_help}")
    cw.add_argument("--from", dest="source", required=True, metavar="URI",
                    help=f"source {store_help}")
    cw.add_argument("--namespace", default=RESULTS_NAMESPACE, metavar="NS",
                    help="namespace for entries found at the source's "
                         "root (legacy campaign caches keep scenario "
                         "results there; default: results)")
    cw.set_defaults(func=_cmd_cache_warm)

    cg_ = casub.add_parser(
        "gc",
        help="quarantine corrupt entries and optionally prune old ones",
    )
    cg_.add_argument("store", help=store_help)
    cg_.add_argument("--max-age", type=float, default=None,
                     metavar="SECONDS",
                     help="also prune readable entries older than this "
                          "(default: keep all readable entries)")
    cg_.set_defaults(func=_cmd_cache_gc)

    sy = sub.add_parser(
        "synth", help="generate / list / self-check synthetic app suites"
    )
    sysub = sy.add_subparsers(dest="synth_command", required=True)

    def _synth_gen_args(p):
        p.add_argument("--families", default="all", metavar="F1,F2",
                       help="comma-separated kernel families, or 'all' "
                            f"({', '.join(FAMILIES)})")
        p.add_argument("--seeds", type=_positive_int, default=1, metavar="N",
                       help="generation seeds 0..N-1 per family (default: 1)")
        p.add_argument("--difficulty", type=_positive_int, default=1,
                       metavar="D", help="template difficulty (default: 1)")
        p.add_argument("--verbose", "-v", action="store_true",
                       help="print failure details to stderr")

    sg = sysub.add_parser(
        "generate",
        help="generate paired CUDA+OMP apps and run the differential "
             "self-check",
    )
    _synth_gen_args(sg)
    sg.add_argument("--out", metavar="DIR",
                    help="also write the generated sources to DIR")
    sg.set_defaults(func=_cmd_synth_generate)

    sl = sysub.add_parser("list", help="list the kernel-family templates")
    sl.set_defaults(func=_cmd_synth_list)

    sc = sysub.add_parser(
        "check",
        help="differentially execute generated pairs and report "
             "per-family agreement",
    )
    _synth_gen_args(sc)
    sc.set_defaults(func=_cmd_synth_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
