"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deliverables:

* ``translate`` — run the LASSI pipeline on one suite app;
* ``evaluate``  — the §V experiment grid (optionally filtered);
* ``table``     — print a paper table (4, 5, 6 or 7);
* ``campaign``  — declarative ablation sweeps (run / report / list);
* ``apps`` / ``models`` — list the suite and the registry.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments import (
    CampaignError,
    CampaignRunner,
    ExperimentRunner,
    ParallelExperimentRunner,
    RunSession,
    SessionError,
    get_preset,
    headline_summary,
    load_campaign,
    load_spec_file,
    preset_names,
    render_campaign_report,
    render_table4,
    render_table5,
    render_translation_tables,
)
from repro.experiments.campaign import MANIFEST_NAME, PRESETS
from repro.experiments.runner import Scenario
from repro.hecbench import all_apps, app_names
from repro.llm.profiles import CUDA2OMP, OMP2CUDA
from repro.llm.registry import all_models, model_keys

DEFAULT_PROFILE = "paper"
DEFAULT_SEED = 2024


def _cmd_apps(_args) -> int:
    for app in all_apps():
        print(f"{app.name:18s} {app.category:42s} args={app.paper_args}")
    return 0


def _cmd_models(_args) -> int:
    for m in all_models():
        print(f"{m.key:12s} {m.name:20s} ctx={m.context_length:,} ({m.hosting})")
    return 0


def _cmd_translate(args) -> int:
    runner = ExperimentRunner(profile=args.profile, seed=args.seed)
    scenario = Scenario(
        model_key=args.model, direction=args.direction, app_name=args.app
    )
    result = runner.run_scenario(scenario).result
    print(f"status: {result.status}")
    print(f"self-corrections: {result.self_corrections}")
    if result.ok:
        print(f"runtime: {result.runtime_seconds:.4f}s  ratio: {result.ratio:.4f}"
              f"  Sim-T: {result.sim_t:.2f}  Sim-L: {result.sim_l:.2f}")
    if args.show_code and result.generated_code:
        print("\n" + result.generated_code)
    return 0 if result.ok else 1


def _cmd_evaluate(args) -> int:
    # nargs="*" yields [] when the flag is given with no values; running the
    # full grid in that case would silently ignore the user's filter intent.
    for flag in ("models", "apps"):
        if getattr(args, flag) == []:
            print(f"--{flag} requires at least one value "
                  f"(omit the flag to run the full grid)", file=sys.stderr)
            return 2
    if args.resume and not args.session:
        print("--resume requires --session PATH", file=sys.stderr)
        return 2
    session = None
    if args.session:
        try:
            session = RunSession(args.session, resume=args.resume)
        except SessionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.resume and len(session):
            print(f"resuming session {args.session}: "
                  f"{len(session)} scenario(s) already recorded",
                  file=sys.stderr)
    runner = ParallelExperimentRunner(
        profile=args.profile, seed=args.seed, jobs=args.jobs, session=session,
    )

    def progress(sr):
        s = sr.scenario
        print(f"  {s.direction:9s} {s.model_key:12s} {s.app_name:16s} "
              f"-> {sr.result.status}", file=sys.stderr)

    try:
        results = runner.run(
            models=args.models or None,
            apps=args.apps or None,
            directions=[args.direction] if args.direction else None,
            progress=progress if args.verbose else None,
        )
    except SessionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tables = render_translation_tables(results)
    for direction in (OMP2CUDA, CUDA2OMP):
        if args.direction in (None, direction):
            print(tables[direction])
            print()
    print(headline_summary(results))
    return 0


def _cmd_table(args) -> int:
    if args.number in (4, 5):
        if args.profile != DEFAULT_PROFILE or args.seed != DEFAULT_SEED:
            print("note: --profile/--seed only affect tables 6 and 7; "
                  f"table {args.number} is static", file=sys.stderr)
        print(render_table4() if args.number == 4 else render_table5())
        return 0
    if args.number in (6, 7):
        direction = OMP2CUDA if args.number == 6 else CUDA2OMP
        runner = ParallelExperimentRunner(
            profile=args.profile, seed=args.seed, jobs=args.jobs
        )
        results = runner.run(directions=[direction])
        print(render_translation_tables(results)[direction])
        return 0
    print(f"no renderer for table {args.number}", file=sys.stderr)
    return 1


def _campaign_spec_from_args(args):
    if args.spec and args.name:
        print("give either a preset name or --spec PATH, not both",
              file=sys.stderr)
        return None
    if args.spec:
        return load_spec_file(args.spec)
    if args.name:
        return get_preset(args.name)
    print(f"campaign run needs a preset name ({', '.join(preset_names())}) "
          f"or --spec PATH", file=sys.stderr)
    return None


def _cmd_campaign_run(args) -> int:
    try:
        spec = _campaign_spec_from_args(args)
        if spec is None:
            return 2
        runner = CampaignRunner(
            spec, root=args.dir, jobs=args.jobs,
            log=lambda msg: print(f"  {msg}", file=sys.stderr),
        )

        def progress(sr):
            s = sr.scenario
            print(f"    {s.direction:9s} {s.model_key:12s} {s.app_name:16s} "
                  f"-> {sr.result.status}", file=sys.stderr)

        print(f"campaign {spec.name}: {len(spec.cells())} cell(s) -> "
              f"{runner.directory}", file=sys.stderr)
        result = runner.run(progress=progress if args.verbose else None)
    except (CampaignError, SessionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_campaign_report(result))
    print(f"\n{result.total_pipeline_runs} pipeline run(s) executed; "
          f"artifacts in {runner.directory}", file=sys.stderr)
    return 0


def _cmd_campaign_report(args) -> int:
    directory = Path(args.dir) / args.name if args.name else Path(args.dir)
    try:
        campaign = load_campaign(directory)
    except (CampaignError, SessionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_campaign_report(campaign))
    return 0


def _cmd_campaign_list(args) -> int:
    print("built-in presets:")
    for name in preset_names():
        spec = PRESETS[name]()
        print(f"  {name:26s} {len(spec.variants)} variant(s), "
              f"{len(spec.cells())} cell(s) — {spec.description}")
    root = Path(args.dir)
    manifests = sorted(root.glob(f"*/{MANIFEST_NAME}")) if root.is_dir() else []
    if manifests:
        print(f"\ncampaign directories under {root}:")
        for path in manifests:
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
                cells = manifest.get("cells", [])
                done = sum(1 for c in cells if c.get("completed"))
                print(f"  {path.parent.name:26s} {done}/{len(cells)} "
                      f"cell(s) completed")
            except (OSError, json.JSONDecodeError):
                print(f"  {path.parent.name:26s} (unreadable manifest)")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LASSI reproduction (CLUSTER 2024) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the Table IV applications").set_defaults(
        func=_cmd_apps
    )
    sub.add_parser("models", help="list the Table V LLMs").set_defaults(
        func=_cmd_models
    )

    tr = sub.add_parser("translate", help="run the pipeline on one scenario")
    tr.add_argument("app", choices=app_names())
    tr.add_argument("--model", default="gpt4", choices=model_keys())
    tr.add_argument("--direction", default=OMP2CUDA,
                    choices=[OMP2CUDA, CUDA2OMP])
    tr.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    tr.add_argument("--seed", type=int, default=DEFAULT_SEED)
    tr.add_argument("--show-code", action="store_true")
    tr.set_defaults(func=_cmd_translate)

    ev = sub.add_parser("evaluate", help="run the evaluation grid")
    ev.add_argument("--models", nargs="*", choices=model_keys())
    ev.add_argument("--apps", nargs="*", choices=app_names())
    ev.add_argument("--direction", choices=[OMP2CUDA, CUDA2OMP])
    ev.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    ev.add_argument("--seed", type=int, default=DEFAULT_SEED)
    ev.add_argument("--jobs", "-j", type=_positive_int, default=1, metavar="N",
                    help="worker threads for the grid (default: 1)")
    ev.add_argument("--session", metavar="PATH",
                    help="persist each result to a JSONL session artifact")
    ev.add_argument("--resume", action="store_true",
                    help="skip scenarios already recorded in --session")
    ev.add_argument("--verbose", "-v", action="store_true")
    ev.set_defaults(func=_cmd_evaluate)

    tb = sub.add_parser("table", help="print a paper table")
    tb.add_argument("number", type=int, choices=[4, 5, 6, 7])
    tb.add_argument("--profile", default=DEFAULT_PROFILE,
                    choices=["paper", "stochastic"])
    tb.add_argument("--seed", type=int, default=DEFAULT_SEED)
    tb.add_argument("--jobs", "-j", type=_positive_int, default=1, metavar="N",
                    help="worker threads for the table 6/7 half-grid "
                         "(default: 1)")
    tb.set_defaults(func=_cmd_table)

    cg = sub.add_parser(
        "campaign", help="declarative ablation sweeps over the grid"
    )
    cgsub = cg.add_subparsers(dest="campaign_command", required=True)

    cr = cgsub.add_parser("run", help="run a preset or JSON campaign spec")
    cr.add_argument("name", nargs="?",
                    help=f"built-in preset ({', '.join(preset_names())})")
    cr.add_argument("--spec", metavar="PATH",
                    help="JSON CampaignSpec file instead of a preset")
    cr.add_argument("--dir", default="campaigns", metavar="DIR",
                    help="root directory for campaign artifacts "
                         "(default: campaigns)")
    cr.add_argument("--jobs", "-j", type=_positive_int, default=1,
                    metavar="N", help="worker threads per variant grid")
    cr.add_argument("--verbose", "-v", action="store_true")
    cr.set_defaults(func=_cmd_campaign_run)

    cp = cgsub.add_parser("report", help="render a campaign's comparison "
                                         "tables from its directory")
    cp.add_argument("name", nargs="?",
                    help="campaign name under --dir (omit if --dir points "
                         "straight at the campaign directory)")
    cp.add_argument("--dir", default="campaigns", metavar="DIR")
    cp.set_defaults(func=_cmd_campaign_report)

    cl = cgsub.add_parser("list", help="list presets and campaign "
                                       "directories")
    cl.add_argument("--dir", default="campaigns", metavar="DIR")
    cl.set_defaults(func=_cmd_campaign_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
