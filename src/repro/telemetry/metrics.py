"""Named metrics: counters, gauges and histograms with labeled series.

One process-wide :class:`MetricsRegistry` (module-level :data:`REGISTRY`,
reachable through the ``counter`` / ``gauge`` / ``histogram`` module
functions) absorbs the counters that used to live scattered across the
codebase — compile-cache hits, cache-store hit/miss/corrupt tallies,
corrections issued, attempts recorded, interpreter steps and kernel
launches — behind one API, so sessions, campaign manifests and the
``BENCH_*.json`` artifacts can all report the same numbers.

Two acquisition paths feed the registry:

* **recorded runs** — :func:`record_run` folds one pipeline run's status,
  correction/attempt counts and span telemetry into the registry.  It is
  called by the experiment runners in whichever process *writes the
  artifacts* (the parent, for the process backend), so shipped worker
  telemetry is counted exactly once;
* **providers** — :func:`register_provider` registers a callable polled at
  :func:`snapshot` time.  The compile cache and the pluggable cache
  stores register providers on import, so their live counters appear in
  every snapshot without instrumenting their hot paths.

Snapshots are plain JSON-able dicts.  :func:`diff_snapshots` yields the
delta between two snapshots (what one cell or one session contributed);
:func:`merge_snapshots` fuses deltas from campaign shards back into one.

This module deliberately imports nothing from the rest of the package, so
any layer may import it without cycles.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "diff_snapshots",
    "merge_snapshots",
    "record_run",
    "register_provider",
    "reset",
    "snapshot",
]

#: Default histogram bucket upper bounds (seconds-flavoured; callers may
#: pass their own).  The trailing +inf bucket is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)

Labels = Mapping[str, Any]
Snapshot = Dict[str, Any]


def _series_key(name: str, labels: Labels) -> str:
    """Render ``name{k=v,...}`` with sorted label keys (stable identity)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing set of labeled series."""

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({value})")
        self._registry._add_counter(_series_key(self.name, labels), value)

    def value(self, **labels: Any) -> float:
        return self._registry._counters.get(_series_key(self.name, labels), 0.0)


class Gauge:
    """A last-write-wins set of labeled series."""

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry

    def set(self, value: float, **labels: Any) -> None:
        self._registry._set_gauge(_series_key(self.name, labels), float(value))

    def value(self, **labels: Any) -> Optional[float]:
        return self._registry._gauges.get(_series_key(self.name, labels))


class Histogram:
    """Bucketed distribution per labeled series (count/sum/min/max/buckets)."""

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self._registry = registry

    def observe(self, value: float, **labels: Any) -> None:
        self._registry._observe(
            _series_key(self.name, labels), self.buckets, float(value)
        )

    def series(self, **labels: Any) -> Optional[Dict[str, Any]]:
        return self._registry._histograms.get(_series_key(self.name, labels))


class MetricsRegistry:
    """Thread-safe home of every named metric in one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, Any]] = {}
        self._hist_buckets: Dict[str, Tuple[float, ...]] = {}
        self._providers: Dict[str, Callable[[], Mapping[str, float]]] = {}

    # -- instrument construction (cheap facades over the shared maps) ---
    def counter(self, name: str) -> Counter:
        return Counter(name, self)

    def gauge(self, name: str) -> Gauge:
        return Gauge(name, self)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return Histogram(name, self, buckets=buckets)

    # -- raw mutation (called by the instruments) ------------------------
    def _add_counter(self, key: str, value: float) -> None:
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def _set_gauge(self, key: str, value: float) -> None:
        with self._lock:
            self._gauges[key] = value

    def _observe(
        self, key: str, buckets: Tuple[float, ...], value: float
    ) -> None:
        with self._lock:
            series = self._histograms.get(key)
            if series is None:
                series = {
                    "count": 0,
                    "sum": 0.0,
                    "min": value,
                    "max": value,
                    "buckets": list(buckets),
                    "counts": [0] * (len(buckets) + 1),
                }
                self._histograms[key] = series
            series["count"] += 1
            series["sum"] += value
            series["min"] = min(series["min"], value)
            series["max"] = max(series["max"], value)
            for i, bound in enumerate(series["buckets"]):
                if value <= bound:
                    series["counts"][i] += 1
                    break
            else:
                series["counts"][-1] += 1

    # -- providers -------------------------------------------------------
    def register_provider(
        self, name: str, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register ``fn`` to be polled at snapshot time.

        Its ``{key: number}`` result lands in the snapshot's gauges as
        ``<name>.<key>``.  Re-registering a name replaces the provider
        (module reloads in tests).
        """
        with self._lock:
            self._providers[name] = fn

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """Everything the registry knows, as one JSON-able dict."""
        with self._lock:
            out: Snapshot = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: {
                        "count": s["count"],
                        "sum": s["sum"],
                        "min": s["min"],
                        "max": s["max"],
                        "buckets": list(s["buckets"]),
                        "counts": list(s["counts"]),
                    }
                    for key, s in self._histograms.items()
                },
            }
            providers = list(self._providers.items())
        for name, fn in providers:
            try:
                polled = fn()
            except Exception:  # a broken provider must not break snapshots
                continue
            for key, value in polled.items():
                if isinstance(value, (int, float)):
                    out["gauges"][f"{name}.{key}"] = float(value)
        return out

    def reset(self) -> None:
        """Drop every series (providers stay registered)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry the module-level helpers operate on.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    return REGISTRY.histogram(name, buckets=buckets)


def register_provider(name: str, fn: Callable[[], Mapping[str, float]]) -> None:
    REGISTRY.register_provider(name, fn)


def snapshot() -> Snapshot:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()


# ----------------------------------------------------------------------
def _diff_histogram(
    after: Dict[str, Any], before: Optional[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    if before is None:
        return {
            "count": after["count"],
            "sum": after["sum"],
            "min": after["min"],
            "max": after["max"],
            "buckets": list(after["buckets"]),
            "counts": list(after["counts"]),
        }
    count = after["count"] - before["count"]
    if count <= 0:
        return None
    return {
        "count": count,
        "sum": after["sum"] - before["sum"],
        # min/max are not differentiable; report the after-window extremes
        # (a superset of the delta window — documented approximation).
        "min": after["min"],
        "max": after["max"],
        "buckets": list(after["buckets"]),
        "counts": [
            a - b for a, b in zip(after["counts"], before["counts"])
        ],
    }


def diff_snapshots(before: Snapshot, after: Snapshot) -> Snapshot:
    """What happened between two snapshots of the same registry.

    Counters and histogram counts subtract; gauges (including provider
    values) take the ``after`` value — they are levels, not flows.
    Series absent from ``before`` count in full.
    """
    counters: Dict[str, float] = {}
    for key, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(key, 0.0)
        if delta:
            counters[key] = delta
    histograms: Dict[str, Any] = {}
    for key, series in after.get("histograms", {}).items():
        diffed = _diff_histogram(series, before.get("histograms", {}).get(key))
        if diffed is not None:
            histograms[key] = diffed
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Fuse per-shard snapshot deltas into one (counters/histograms sum)."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0.0) + value
        # Last shard wins for gauges — they are levels; shards sharing a
        # store report the same level anyway.
        gauges.update(snap.get("gauges", {}))
        for key, series in snap.get("histograms", {}).items():
            into = histograms.get(key)
            if into is None:
                histograms[key] = {
                    "count": series["count"],
                    "sum": series["sum"],
                    "min": series["min"],
                    "max": series["max"],
                    "buckets": list(series["buckets"]),
                    "counts": list(series["counts"]),
                }
                continue
            if into["buckets"] != list(series["buckets"]):
                # Incompatible bucketing (version skew): keep totals honest.
                into["count"] += series["count"]
                into["sum"] += series["sum"]
            else:
                into["count"] += series["count"]
                into["sum"] += series["sum"]
                into["counts"] = [
                    a + b for a, b in zip(into["counts"], series["counts"])
                ]
            into["min"] = min(into["min"], series["min"])
            into["max"] = max(into["max"], series["max"])
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


# ----------------------------------------------------------------------
#: Buckets for LLM call latency (modelled round-trips are ~seconds).
LLM_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def record_run(
    status: str,
    corrections: int,
    attempts: int,
    spans: Sequence[Mapping[str, Any]] = (),
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Fold one pipeline run's telemetry into the registry.

    Called once per executed scenario by whichever process writes the
    artifacts — the grid runner itself on the thread backend, the parent
    after deserializing the worker payload on the process backend — so
    the registry counts each run exactly once regardless of backend.
    ``spans`` is the run's span-dict list (see
    :mod:`repro.telemetry.spans`); LLM latency, compile-cache traffic and
    interpreter work are derived from it.
    """
    reg = registry if registry is not None else REGISTRY
    reg.counter("pipeline.runs").inc(status=status)
    if corrections:
        reg.counter("pipeline.corrections").inc(corrections)
    if attempts:
        reg.counter("pipeline.attempts").inc(attempts)
    llm_seconds = reg.histogram("llm.seconds", buckets=LLM_LATENCY_BUCKETS)
    stage_seconds = reg.histogram("stage.seconds")
    for span in spans:
        kind = span.get("kind")
        attrs = span.get("attrs") or {}
        wall = float(span.get("wall") or 0.0)
        if kind == "llm":
            reg.counter("llm.calls").inc(purpose=attrs.get("purpose", "?"))
            llm_seconds.observe(wall)
            reg.counter("llm.prompt_tokens").inc(
                float(attrs.get("prompt_tokens") or 0)
            )
            reg.counter("llm.completion_tokens").inc(
                float(attrs.get("completion_tokens") or 0)
            )
        elif kind == "compile":
            reg.counter("compile.calls").inc(
                cached=str(bool(attrs.get("cached"))).lower()
            )
        elif kind == "exec":
            reg.counter("exec.runs").inc(ok=str(bool(attrs.get("ok"))).lower())
            reg.counter("interp.launches").inc(
                float(attrs.get("launches") or 0)
            )
            reg.counter("interp.steps").inc(float(attrs.get("steps") or 0))
            profile = attrs.get("profile")
            if isinstance(profile, Mapping):
                reg.counter("interp.atomics").inc(
                    float(profile.get("atomics") or 0)
                )
                reg.counter("interp.barrier_waits").inc(
                    float(profile.get("barrier_waits") or 0)
                )
                for path in ("flat", "barrier", "slow", "omp"):
                    launches = float(profile.get(f"{path}_launches") or 0)
                    if launches:
                        reg.counter("interp.path_launches").inc(
                            launches, path=path
                        )
        elif kind == "stage":
            stage_seconds.observe(wall, stage=span.get("name", "?"))
