"""Deterministic runtime profiles and the perf-regression gate.

A :class:`RuntimeProfile` is the observability-side condensation of one
simulated execution: the interpreter's exact dynamic counts (steps
charged, kernel launches per dispatch path, barrier waits, atomics,
memory traffic, transfers) plus the performance model's simulated
seconds.  Every field is an exact count or a deterministic function of
exact counts, so the same program run in any process on any machine
produces byte-identical profiles — :meth:`RuntimeProfile.digest` pins
that in tests.

On top of the dataclass this module implements the snapshot diffing the
``repro perf`` CLI verbs expose: load a profile snapshot from a
``BENCH_*.json`` artifact or a campaign manifest, compare two snapshots
key-by-key, and decide whether the current one *regressed* beyond a
tolerance (default 10%, overridable via ``REPRO_PERF_TOLERANCE``).

Layering: like the rest of :mod:`repro.telemetry`, this module imports
nothing from the rest of the package.  Profile extraction duck-types the
interpreter's execution result so the interpreter stays free to evolve.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Default relative tolerance for the regression gate.
DEFAULT_TOLERANCE = 0.10
#: Environment variable consulted when no explicit tolerance is given.
TOLERANCE_ENV = "REPRO_PERF_TOLERANCE"


@dataclass(frozen=True)
class RuntimeProfile:
    """Deterministic per-execution cost profile (exact counts, no clocks)."""

    #: Interpreter steps charged against the step budget.
    steps: int
    #: Total kernel launches (CUDA <<<>>> plus OMP target regions).
    kernel_launches: int
    #: Launches through the barrier-free fast path.
    flat_launches: int
    #: Launches interleaved at __syncthreads granularity.
    barrier_launches: int
    #: Launches through the nested per-thread slow path (atomics present).
    slow_launches: int
    #: OpenMP target-region launches.
    omp_launches: int
    #: Thread-rounds spent parked at a __syncthreads barrier.
    barrier_waits: int
    #: Device atomic operations.
    atomics: int
    #: Host-side scalar operations.
    host_ops: int
    #: Device-side scalar operations.
    kernel_ops: int
    #: Bytes read (host + device loads).
    mem_read_bytes: int
    #: Bytes written (host + device stores).
    mem_write_bytes: int
    #: Host<->device transfers and their total volume.
    transfers: int
    transfer_bytes: int
    #: Simulated wall-clock seconds from the performance model.
    sim_seconds: float

    def to_dict(self) -> Dict[str, Union[int, float]]:
        return dict(asdict(self))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RuntimeProfile":
        kwargs: Dict[str, Any] = {}
        for name in cls.__dataclass_fields__:
            value = data.get(name, 0)
            kwargs[name] = float(value) if name == "sim_seconds" else int(value)
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """Canonical byte form: sorted keys, no whitespace."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of :meth:`canonical_json` — the determinism pin."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()


def profile_from_execution(execution: Any) -> Optional[RuntimeProfile]:
    """Condense an execution result into a :class:`RuntimeProfile`.

    ``execution`` is duck-typed against
    :class:`repro.toolchain.executor.ExecutionResult`: it must carry an
    interpreter ``profile`` (:class:`repro.gpu.stats.ExecutionProfile`),
    ``steps_used`` and ``runtime_seconds``.  Returns ``None`` when no
    interpreter profile is attached (e.g. a run that never executed).
    """
    prof = getattr(execution, "profile", None)
    if prof is None:
        return None
    paths = prof.launch_paths()
    kernel = prof.kernel_events
    host = prof.host
    load = host.load_bytes + sum(e.counters.load_bytes for e in kernel)
    store = host.store_bytes + sum(e.counters.store_bytes for e in kernel)
    return RuntimeProfile(
        steps=int(getattr(execution, "steps_used", 0)),
        kernel_launches=int(prof.total_kernel_launches),
        flat_launches=int(paths.get("flat", 0)),
        barrier_launches=int(paths.get("barrier", 0)),
        slow_launches=int(paths.get("slow", 0)),
        omp_launches=int(paths.get("omp", 0)),
        barrier_waits=int(prof.barrier_waits),
        atomics=int(prof.total_atomics + host.atomics),
        host_ops=int(host.ops),
        kernel_ops=int(sum(e.counters.ops for e in kernel)),
        mem_read_bytes=int(load),
        mem_write_bytes=int(store),
        transfers=int(len(prof.transfer_events)),
        transfer_bytes=int(prof.total_transfer_bytes),
        sim_seconds=round(float(getattr(execution, "runtime_seconds", 0.0)), 9),
    )


def resolve_tolerance(explicit: Optional[float] = None) -> float:
    """Explicit value, else ``REPRO_PERF_TOLERANCE``, else the 10% default."""
    if explicit is not None:
        return float(explicit)
    env = os.environ.get(TOLERANCE_ENV)
    if env:
        return float(env)
    return DEFAULT_TOLERANCE


def _flatten(data: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested dict as dotted keys (bools excluded)."""
    out: Dict[str, float] = {}
    for key in sorted(data):
        value = data[key]
        dotted = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[dotted] = float(value)
        elif isinstance(value, dict):
            out.update(_flatten(value, prefix=f"{dotted}."))
    return out


def _higher_is_better(key: str) -> bool:
    """Speedup-shaped figures improve upward; every cost counter downward."""
    leaf = key.rsplit(".", 1)[-1]
    if leaf in ("slower", "slow_factor"):
        return False
    if "speedup" in key or leaf.endswith("ratio"):
        return True
    # Coverage counts: fewer scored scenarios is the regression.
    return leaf in ("scenarios", "scored", "count")


def load_profile_snapshot(path: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Read a ``name -> profile dict`` snapshot from any supported artifact.

    Accepts, in order of detection:

    * a ``BENCH_*.json`` artifact carrying a ``"profiles"`` mapping;
    * a campaign ``manifest.json`` — each completed cell's ``"perf"``
      summary keyed ``<variant>/seed<seed>``;
    * a bare mapping of names to profile dicts;
    * a single profile dict (keyed ``"profile"``).
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict):
        raise ValueError(f"{path}: profile snapshot must be a JSON object")
    profiles = raw.get("profiles")
    if isinstance(profiles, dict):
        return {str(k): dict(v) for k, v in profiles.items() if isinstance(v, dict)}
    cells = raw.get("cells")
    if isinstance(cells, list):
        out: Dict[str, Dict[str, Any]] = {}
        for entry in cells:
            if not isinstance(entry, dict):
                continue
            prof = entry.get("perf")
            if isinstance(prof, dict):
                name = f"{entry.get('variant')}/seed{entry.get('seed')}"
                out[name] = dict(prof)
        if not out:
            raise ValueError(
                f"{path}: manifest has no per-cell perf summaries "
                "(was the campaign run before the profiling layer?)"
            )
        return out
    if all(isinstance(v, dict) for v in raw.values()) and raw:
        return {str(k): dict(v) for k, v in raw.items()}
    if "steps" in raw:
        return {"profile": dict(raw)}
    raise ValueError(f"{path}: unrecognized profile snapshot layout")


def diff_profile_snapshots(
    baseline: Dict[str, Dict[str, Any]],
    current: Dict[str, Dict[str, Any]],
    tolerance: Optional[float] = None,
) -> Dict[str, Any]:
    """Key-by-key comparison of two snapshots with a regression verdict.

    Every numeric leaf shared by a profile pair is compared.  Cost
    counters regress when the current value exceeds baseline by more
    than ``tolerance``; speedup-shaped figures regress when they *drop*
    by more than ``tolerance``.  A profile present in the baseline but
    absent from the current snapshot is a coverage regression.
    """
    tol = resolve_tolerance(tolerance)
    entries: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for name in sorted(set(baseline) & set(current)):
        base_flat = _flatten(baseline[name])
        curr_flat = _flatten(current[name])
        deltas: List[Dict[str, Any]] = []
        regressed = False
        for key in sorted(set(base_flat) & set(curr_flat)):
            b, c = base_flat[key], curr_flat[key]
            ratio = (c / b) if b else None
            if _higher_is_better(key):
                bad = c < b * (1.0 - tol) - 1e-12
            else:
                bad = c > b * (1.0 + tol) + 1e-12
            regressed = regressed or bad
            deltas.append(
                {
                    "counter": key,
                    "baseline": b,
                    "current": c,
                    "ratio": round(ratio, 6) if ratio is not None else None,
                    "regressed": bad,
                }
            )
        if regressed:
            regressions.append(name)
        entries.append({"name": name, "regressed": regressed, "deltas": deltas})
    only_base = sorted(set(baseline) - set(current))
    only_curr = sorted(set(current) - set(baseline))
    return {
        "tolerance": tol,
        "entries": entries,
        "only_in_baseline": only_base,
        "only_in_current": only_curr,
        "regressions": regressions,
        "ok": not regressions and not only_base,
    }


def render_profile_diff(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_profile_snapshots`."""
    tol = report["tolerance"]
    lines = [f"profile diff (tolerance {tol:.0%})"]
    for entry in report["entries"]:
        mark = "REGRESSED" if entry["regressed"] else "ok"
        lines.append(f"  {entry['name']}: {mark}")
        for delta in entry["deltas"]:
            if not delta["regressed"]:
                continue
            ratio = delta["ratio"]
            shown = f"{ratio:.3f}x" if ratio is not None else "n/a"
            lines.append(
                f"    {delta['counter']}: {delta['baseline']:g} -> "
                f"{delta['current']:g} ({shown})"
            )
    if report["only_in_baseline"]:
        lines.append(
            "  missing from current: " + ", ".join(report["only_in_baseline"])
        )
    if report["only_in_current"]:
        lines.append(
            "  new in current: " + ", ".join(report["only_in_current"])
        )
    verdict = "ok" if report["ok"] else (
        f"{len(report['regressions'])} profile(s) regressed"
        if report["regressions"]
        else "coverage regressed"
    )
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def regression_gate(
    baseline_path: Union[str, Path],
    current_path: Union[str, Path],
    tolerance: Optional[float] = None,
) -> Tuple[Dict[str, Any], bool]:
    """Load two snapshots and diff them; returns ``(report, ok)``."""
    baseline = load_profile_snapshot(baseline_path)
    current = load_profile_snapshot(current_path)
    report = diff_profile_snapshots(baseline, current, tolerance)
    return report, bool(report["ok"])
