"""JSONL trace files written alongside ``RunSession`` logs.

A trace file is the telemetry sidecar of a session: the session JSONL
stays byte-deterministic (no timings), the ``.trace.jsonl`` next to it
holds everything timing-shaped.  Line format, one JSON object per line:

* ``{"record": "header", "format": 1, ...}`` — first line;
* ``{"record": "trace", "trace_id": N, "scenario": {...}, "spans": [...]}``
  — one per traced pipeline run, ``trace_id`` sequential per file;
* ``{"record": "metrics", "snapshot": {...}}`` — the writer's metrics
  *delta* (what this file's runs contributed), appended on close so
  summing metrics records across shard files is correct.

:func:`merge_trace_files` fuses per-shard trace files into one canonical
file, remapping ``trace_id`` to a single sequential space and merging the
shards' metrics deltas.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.telemetry import metrics as _metrics

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TRACE_SUFFIX",
    "TraceWriter",
    "iter_trace_records",
    "load_trace_file",
    "merge_trace_files",
    "trace_path_for",
]

TRACE_FORMAT_VERSION = 1

#: Suffix replacing a session's ``.jsonl``.
TRACE_SUFFIX = ".trace.jsonl"


def trace_path_for(session_path: Union[str, Path]) -> Path:
    """The trace sidecar path for a session log path.

    ``sessions/run.jsonl`` → ``sessions/run.trace.jsonl``; a sharded
    session ``run.shard-0-of-2.jsonl`` → ``run.shard-0-of-2.trace.jsonl``.
    """
    path = Path(session_path)
    name = path.name
    if name.endswith(".jsonl"):
        name = name[: -len(".jsonl")]
    return path.with_name(name + TRACE_SUFFIX)


def _dumps(obj: Dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class TraceWriter:
    """Appends trace records for one session (or shard) to one file.

    The writer snapshots the metrics registry when opened and writes the
    *delta* snapshot on :meth:`close`, so per-file metrics records sum
    cleanly across shards.  Safe to use as a context manager.
    """

    def __init__(self, path: Union[str, Path], resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._trace_id = 0
        self._closed = False
        mode = "a" if (resume and self.path.exists()) else "w"
        if mode == "a":
            for record in iter_trace_records(self.path):
                if record.get("record") == "trace":
                    self._trace_id = int(record["trace_id"]) + 1
        self._fh = open(self.path, mode, encoding="utf-8")
        if mode == "w":
            self._fh.write(
                _dumps(
                    {
                        "record": "header",
                        "format": TRACE_FORMAT_VERSION,
                    }
                )
                + "\n"
            )
            self._fh.flush()
        self._metrics_before = _metrics.snapshot()

    def write_trace(
        self, scenario: Dict[str, Any], spans: Sequence[Dict[str, Any]]
    ) -> int:
        """Append one pipeline run's spans; returns its trace id."""
        trace_id = self._trace_id
        self._trace_id += 1
        self._fh.write(
            _dumps(
                {
                    "record": "trace",
                    "trace_id": trace_id,
                    "scenario": dict(scenario),
                    "spans": [dict(s) for s in spans],
                }
            )
            + "\n"
        )
        self._fh.flush()
        return trace_id

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        delta = _metrics.diff_snapshots(self._metrics_before, _metrics.snapshot())
        self._fh.write(_dumps({"record": "metrics", "snapshot": delta}) + "\n")
        self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def iter_trace_records(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield records from a trace file, tolerating a truncated tail
    (a killed worker may die mid-line; everything before it is good)."""
    p = Path(path)
    if not p.exists():
        return
    with open(p, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                return  # truncated tail — stop, keep what parsed
            if isinstance(record, dict):
                yield record


def load_trace_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse one trace file into ``{header, traces, metrics}``."""
    header: Optional[Dict[str, Any]] = None
    traces: List[Dict[str, Any]] = []
    snapshots: List[Dict[str, Any]] = []
    for record in iter_trace_records(path):
        kind = record.get("record")
        if kind == "header":
            header = record
        elif kind == "trace":
            traces.append(record)
        elif kind == "metrics":
            snapshots.append(record.get("snapshot", {}))
    return {
        "header": header or {"record": "header", "format": TRACE_FORMAT_VERSION},
        "traces": traces,
        "metrics": _metrics.merge_snapshots(snapshots),
    }


def merge_trace_files(
    shard_paths: Iterable[Union[str, Path]], out_path: Union[str, Path]
) -> int:
    """Concatenate shard trace files into one, remapping trace ids.

    Shards are consumed in the given order; trace ids become one
    sequential space and the shards' metrics deltas merge into a single
    trailing metrics record.  Writes atomically (temp file + replace).
    Returns the number of traces written.
    """
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_name(out.name + ".tmp")
    next_id = 0
    snapshots: List[Dict[str, Any]] = []
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(
            _dumps({"record": "header", "format": TRACE_FORMAT_VERSION}) + "\n"
        )
        for shard in shard_paths:
            for record in iter_trace_records(shard):
                kind = record.get("record")
                if kind == "trace":
                    record = dict(record)
                    record["trace_id"] = next_id
                    next_id += 1
                    fh.write(_dumps(record) + "\n")
                elif kind == "metrics":
                    snapshots.append(record.get("snapshot", {}))
        fh.write(
            _dumps(
                {
                    "record": "metrics",
                    "snapshot": _metrics.merge_snapshots(snapshots),
                }
            )
            + "\n"
        )
    os.replace(tmp, out)
    return next_id
