"""The ``repro.*`` logging namespace.

Library code gets its logger from :func:`get_logger` and never calls
``print`` for progress output; the CLI calls :func:`configure` once at
startup (honouring ``--log-level``), so library consumers can silence or
capture everything through standard :mod:`logging` machinery.

The handler format is the bare message — CI smoke jobs grep stderr for
exact lines like ``0 pipeline run(s) executed``, and tests assert on the
text — and the handler's stream is re-bound to the *current*
``sys.stderr`` on every :func:`configure` call so pytest's capsys sees
the output.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["NAMESPACE", "configure", "get_logger"]

NAMESPACE = "repro"

_HANDLER: Optional[logging.StreamHandler] = None


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("cli")`` →
    ``repro.cli``; the empty string names the root of the namespace)."""
    return logging.getLogger(f"{NAMESPACE}.{name}" if name else NAMESPACE)


def configure(level: str = "info") -> logging.Logger:
    """Idempotently wire the namespace to stderr at ``level``.

    Repeat calls re-use (and re-point) the one handler instead of
    stacking duplicates, and always rebind it to the current
    ``sys.stderr`` — tests swap that object per-test.
    """
    global _HANDLER
    root = get_logger()
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    if _HANDLER is None or _HANDLER not in root.handlers:
        _HANDLER = logging.StreamHandler(sys.stderr)
        _HANDLER.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(_HANDLER)
    # Rebind by assignment, not setStream(): the latter flushes the old
    # stream first, which raises when a test harness already closed it.
    _HANDLER.acquire()
    try:
        _HANDLER.stream = sys.stderr
    finally:
        _HANDLER.release()
    root.setLevel(numeric)
    root.propagate = False
    return root
