"""Unified telemetry: tracing spans, a metrics registry, a flight
recorder, and the ``repro.*`` logging namespace.

The layer rides on the typed pipeline event bus — a
:class:`~repro.telemetry.spans.SpanTracer` is just another subscriber —
and keeps telemetry strictly out of the science artifacts: session JSONL
stays byte-deterministic, while timing-shaped data lands in a
``.trace.jsonl`` sidecar (see :mod:`repro.telemetry.tracefile`).

This package imports nothing from the rest of :mod:`repro` except its
own modules, so any layer can depend on it without cycles.
"""

from repro.telemetry.log import configure as configure_logging
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    diff_snapshots,
    gauge,
    histogram,
    merge_snapshots,
    record_run,
    register_provider,
    snapshot,
)
from repro.telemetry.recorder import (
    FlightRecorder,
    configure_flight_recorder,
    get_flight_recorder,
    install_sigterm_handler,
)
from repro.telemetry.profile import (
    RuntimeProfile,
    diff_profile_snapshots,
    load_profile_snapshot,
    profile_from_execution,
    regression_gate,
    render_profile_diff,
)
from repro.telemetry.spans import Span, SpanTracer
from repro.telemetry.tracefile import (
    TRACE_FORMAT_VERSION,
    TraceWriter,
    load_trace_file,
    merge_trace_files,
    trace_path_for,
)
from repro.telemetry.summary import (
    collect_trace_paths,
    critical_path_report,
    render_critical_path,
    render_trace_show,
    render_trace_summary,
    summarize_traces,
    trace_critical_path,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "RuntimeProfile",
    "Span",
    "SpanTracer",
    "TRACE_FORMAT_VERSION",
    "TraceWriter",
    "collect_trace_paths",
    "configure_flight_recorder",
    "configure_logging",
    "counter",
    "critical_path_report",
    "diff_profile_snapshots",
    "diff_snapshots",
    "gauge",
    "get_flight_recorder",
    "get_logger",
    "histogram",
    "install_sigterm_handler",
    "load_profile_snapshot",
    "load_trace_file",
    "merge_snapshots",
    "merge_trace_files",
    "profile_from_execution",
    "record_run",
    "register_provider",
    "regression_gate",
    "render_critical_path",
    "render_profile_diff",
    "render_trace_show",
    "render_trace_summary",
    "snapshot",
    "summarize_traces",
    "trace_critical_path",
    "trace_path_for",
]
