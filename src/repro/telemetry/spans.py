"""Spans and the event-bus tracer that produces them.

A :class:`Span` is one timed region of a pipeline run — the run itself,
a stage entry, an LLM round-trip, a compiler invocation, or a simulated
program execution.  Spans form a tree via ``parent`` ids: the pipeline
span (id 0) parents the stage spans, and each leaf span (llm / compile /
exec) is parented to the stage entry it happened inside.

:class:`SpanTracer` is a plain event-bus subscriber::

    tracer = SpanTracer()
    pipeline = build_pipeline(llm, src, tgt, subscribers=[tracer])
    pipeline.run(code)
    spans = tracer.drain()          # list of JSON-able span dicts

The tracer never touches the metrics registry — counters for process-
backend runs are derived from shipped span payloads on the parent side
(:func:`repro.telemetry.metrics.record_run`), so each run counts once.

No imports from the rest of the package: events are matched by class
*name*, which keeps the dependency arrow pointing from the pipeline to
telemetry only at the subscription site.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Span", "SpanTracer", "span_sort_key"]

#: Span kinds, from coarse to fine.
PIPELINE, STAGE, LLM, COMPILE, EXEC = "pipeline", "stage", "llm", "compile", "exec"


@dataclass
class Span:
    """One timed region.  ``start`` is seconds since the run's root span
    opened; ``wall`` is wall-clock duration; ``cpu`` is process-CPU
    duration where measurable (leaf spans shipped from events carry only
    wall time)."""

    id: int
    name: str
    kind: str
    start: float
    wall: float = 0.0
    parent: Optional[int] = None
    cpu: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.id,
            "name": self.name,
            "kind": self.kind,
            "start": round(self.start, 6),
            "wall": round(self.wall, 6),
        }
        if self.parent is not None:
            data["parent"] = self.parent
        if self.cpu is not None:
            data["cpu"] = round(self.cpu, 6)
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            id=int(data["id"]),
            name=str(data["name"]),
            kind=str(data["kind"]),
            start=float(data["start"]),
            wall=float(data.get("wall", 0.0)),
            parent=data.get("parent"),
            cpu=data.get("cpu"),
            attrs=dict(data.get("attrs", {})),
        )


def span_sort_key(span: Dict[str, Any]) -> Any:
    """Stable ordering for serialized spans (start offset, then id)."""
    return (span.get("start", 0.0), span.get("id", 0))


class SpanTracer:
    """Builds the span tree for one pipeline run from bus events.

    One tracer serves one run at a time (the grid runners build a fresh
    pipeline — and tracer — per scenario, mirroring the bus's own
    single-run design).  Call :meth:`drain` after ``pipeline.run()`` to
    collect the finished span dicts and reset for reuse.
    """

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self._spans: List[Span] = []
        self._next_id = 0
        self._t0: Optional[float] = None
        self._root: Optional[Span] = None
        self._stage: Optional[Span] = None
        self._stage_wall_start = 0.0
        self._stage_cpu_start = 0.0
        self._root_cpu_start = 0.0

    # ------------------------------------------------------------------
    def _now(self) -> float:
        now = time.perf_counter()
        if self._t0 is None:
            self._t0 = now
        return now - self._t0

    def _open(
        self,
        name: str,
        kind: str,
        parent: Optional[int],
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        span = Span(
            id=self._next_id,
            name=name,
            kind=kind,
            start=self._now(),
            parent=parent,
            attrs=dict(attrs or {}),
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    # ------------------------------------------------------------------
    def __call__(self, event: Any) -> None:
        kind = type(event).__name__
        if kind == "PipelineStarted":
            self._reset()
            self._root = self._open(
                "pipeline",
                PIPELINE,
                None,
                {
                    "model": event.model,
                    "source_dialect": event.source_dialect,
                    "target_dialect": event.target_dialect,
                },
            )
            self._root_cpu_start = time.process_time()
        elif kind == "StageStarted":
            parent = self._root.id if self._root is not None else None
            self._stage = self._open(event.stage, STAGE, parent)
            self._stage_wall_start = time.perf_counter()
            self._stage_cpu_start = time.process_time()
        elif kind == "StageFinished":
            stage = self._stage
            if stage is not None and stage.name == event.stage:
                stage.wall = event.seconds
                stage.cpu = time.process_time() - self._stage_cpu_start
                stage.attrs["outcome"] = event.outcome
            self._stage = None
        elif kind == "LlmCallFinished":
            self._leaf(
                event.purpose,
                LLM,
                event.seconds,
                {
                    "purpose": event.purpose,
                    "model": event.model,
                    "prompt_tokens": event.prompt_tokens,
                    "completion_tokens": event.completion_tokens,
                },
            )
        elif kind == "CompileFinished":
            self._leaf(
                "compile",
                COMPILE,
                event.seconds,
                {"ok": event.ok, "cached": event.cached},
            )
        elif kind == "ExecutionFinished":
            attrs = {
                "ok": event.ok,
                "steps": event.steps,
                "launches": event.launches,
            }
            profile = getattr(event, "profile", None)
            if profile:
                attrs["profile"] = dict(profile)
            self._leaf("execute", EXEC, event.seconds, attrs)
        elif kind == "PipelineFinished":
            if self._root is not None:
                self._root.wall = event.seconds
                self._root.cpu = time.process_time() - self._root_cpu_start
                self._root.attrs["status"] = event.status

    def _leaf(
        self, name: str, kind: str, seconds: float, attrs: Dict[str, Any]
    ) -> None:
        parent = self._stage or self._root
        span = self._open(name, kind, parent.id if parent else None, attrs)
        # The event reports a finished region: the span opened `seconds`
        # before now, not at the publish instant.
        span.start = max(0.0, span.start - seconds)
        span.wall = seconds

    # ------------------------------------------------------------------
    def drain(self) -> List[Dict[str, Any]]:
        """Finished span dicts for the run just traced; resets the tracer."""
        spans = [s.to_dict() for s in self._spans]
        self._reset()
        return spans
