"""Flight recorder: a bounded ring of recent events, dumped on disaster.

Each worker process keeps one :class:`FlightRecorder` subscribed to its
pipeline buses.  In normal operation it costs one deque append per
event.  When a pipeline run raises an unhandled exception — or the
worker receives SIGTERM (a shard being reaped on a remote host) — the
ring is dumped to ``flight-<pid>.json`` in the configured directory, so
a dead shard is debuggable from artifacts alone: the dump carries the
last N events with offsets, the active scenario, and the exception.

The recorder is process-global (workers are single-tenant); configure
the dump directory with :func:`configure_flight_recorder` or the
``REPRO_FLIGHT_DIR`` environment variable.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import traceback
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Optional, Union

__all__ = [
    "FlightRecorder",
    "configure_flight_recorder",
    "get_flight_recorder",
    "install_sigterm_handler",
]

#: Environment variable naming the dump directory (workers inherit it).
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Ring buffer of recent pipeline events; callable as a subscriber."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        directory: Optional[Union[str, Path]] = None,
    ) -> None:
        self.capacity = capacity
        self.directory = Path(directory) if directory else None
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._t0 = time.perf_counter()
        self._context: Dict[str, Any] = {}

    # -- event intake ---------------------------------------------------
    def __call__(self, event: Any) -> None:
        record: Dict[str, Any] = {
            "t": round(time.perf_counter() - self._t0, 6),
            "event": type(event).__name__,
        }
        fields = getattr(event, "__dataclass_fields__", None)
        if fields:
            for name in fields:
                value = getattr(event, name, None)
                if isinstance(value, str) and len(value) > 500:
                    value = value[:500] + "…"
                record[name] = value
        with self._lock:
            self._events.append(record)

    def set_context(self, **context: Any) -> None:
        """Note what the worker is currently doing (shown in dumps)."""
        with self._lock:
            self._context.update(context)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._context.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- dumping --------------------------------------------------------
    def dump_path(self) -> Path:
        directory = self.directory
        if directory is None:
            directory = Path(os.environ.get(FLIGHT_DIR_ENV, "."))
        return directory / f"flight-{os.getpid()}.json"

    def dump(
        self, reason: str, exc: Optional[BaseException] = None
    ) -> Optional[Path]:
        """Write the ring to ``flight-<pid>.json``; never raises."""
        with self._lock:
            events = list(self._events)
            context = dict(self._context)
        payload: Dict[str, Any] = {
            "pid": os.getpid(),
            "reason": reason,
            "context": context,
            "events": events,
        }
        if exc is not None:
            payload["exception"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
            }
        try:
            path = self.dump_path()
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, default=str)
                fh.write("\n")
            return path
        except OSError:
            return None  # dying anyway; don't mask the original failure


# ----------------------------------------------------------------------
_RECORDER: Optional[FlightRecorder] = None


def get_flight_recorder() -> FlightRecorder:
    """The process-wide recorder (created on first use)."""
    global _RECORDER
    if _RECORDER is None:
        _RECORDER = FlightRecorder()
    return _RECORDER


def configure_flight_recorder(
    directory: Optional[Union[str, Path]] = None,
    capacity: int = DEFAULT_CAPACITY,
) -> FlightRecorder:
    """(Re)build the process-wide recorder with an explicit dump dir."""
    global _RECORDER
    _RECORDER = FlightRecorder(capacity=capacity, directory=directory)
    return _RECORDER


def install_sigterm_handler() -> bool:
    """Dump the flight ring when the process is terminated.

    Returns ``False`` (and installs nothing) off the main thread —
    thread-pool workers share the parent's handler.  After dumping, the
    previous disposition is restored and the signal re-raised so exit
    semantics are unchanged.
    """
    if threading.current_thread() is not threading.main_thread():
        return False

    def _on_sigterm(signum: int, frame: Any) -> None:
        get_flight_recorder().dump("sigterm")
        signal.signal(signal.SIGTERM, previous)
        signal.raise_signal(signal.SIGTERM)

    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):
        return False  # non-main interpreter thread or unsupported platform
    return True
