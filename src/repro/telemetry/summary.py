"""Aggregation and rendering behind ``repro trace show|summarize``.

Works on anything trace-shaped: a single ``.trace.jsonl`` file, a
session log (its sidecar is found by convention), or a campaign
directory (every canonical trace under ``sessions/`` — falling back to
per-shard trace files when the campaign has not been merged yet).

The summary reports per-stage latency percentiles, the slowest traces,
the LLM-call latency histogram, compile-cache efficiency, interpreter
work, and the merged metrics snapshot — the same numbers the campaign
manifest carries, derived from the same records.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.telemetry import metrics as _metrics
from repro.telemetry.tracefile import (
    TRACE_SUFFIX,
    load_trace_file,
    trace_path_for,
)

__all__ = [
    "collect_trace_paths",
    "critical_path_report",
    "percentile",
    "render_critical_path",
    "render_trace_show",
    "render_trace_summary",
    "summarize_traces",
    "trace_critical_path",
]


def collect_trace_paths(target: Union[str, Path]) -> List[Path]:
    """Resolve a file / session / campaign-dir argument to trace files.

    Raises :class:`FileNotFoundError` with a helpful message when no
    trace data exists at the target.
    """
    path = Path(target)
    if path.is_file():
        if path.name.endswith(TRACE_SUFFIX):
            return [path]
        if path.suffix == ".jsonl":
            sidecar = trace_path_for(path)
            if sidecar.exists():
                return [sidecar]
            raise FileNotFoundError(
                f"no trace sidecar next to {path} (expected {sidecar.name}; "
                "was the run traced? pass --trace)"
            )
        raise FileNotFoundError(f"{path} is not a trace or session file")
    if path.is_dir():
        roots = [path / "sessions", path]
        for root in roots:
            if not root.is_dir():
                continue
            all_traces = sorted(root.glob(f"*{TRACE_SUFFIX}"))
            canonical = [p for p in all_traces if ".shard-" not in p.name]
            if canonical:
                return canonical
            if all_traces:
                return all_traces
        raise FileNotFoundError(
            f"no *{TRACE_SUFFIX} files under {path} "
            "(was the campaign run with --trace?)"
        )
    raise FileNotFoundError(f"no such file or directory: {path}")


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (len(sorted_values) - 1) * q
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def summarize_traces(
    paths: Sequence[Union[str, Path]], top: int = 5
) -> Dict[str, Any]:
    """Aggregate trace files into one JSON-able summary dict."""
    stage_walls: Dict[str, List[float]] = {}
    llm_walls: List[float] = []
    llm_calls_by_purpose: Dict[str, int] = {}
    prompt_tokens = 0
    completion_tokens = 0
    compile_total = 0
    compile_cached = 0
    exec_runs = 0
    exec_steps = 0
    exec_launches = 0
    trace_rows: List[Dict[str, Any]] = []
    snapshots: List[Dict[str, Any]] = []
    n_traces = 0

    for path in paths:
        data = load_trace_file(path)
        snapshots.append(data["metrics"])
        for trace in data["traces"]:
            n_traces += 1
            root_wall = 0.0
            status = "?"
            for span in trace.get("spans", []):
                kind = span.get("kind")
                wall = float(span.get("wall", 0.0))
                attrs = span.get("attrs", {})
                if kind == "pipeline":
                    root_wall = wall
                    status = str(attrs.get("status", "?"))
                elif kind == "stage":
                    stage_walls.setdefault(span.get("name", "?"), []).append(wall)
                elif kind == "llm":
                    llm_walls.append(wall)
                    purpose = str(attrs.get("purpose", "?"))
                    llm_calls_by_purpose[purpose] = (
                        llm_calls_by_purpose.get(purpose, 0) + 1
                    )
                    prompt_tokens += int(attrs.get("prompt_tokens") or 0)
                    completion_tokens += int(attrs.get("completion_tokens") or 0)
                elif kind == "compile":
                    compile_total += 1
                    if attrs.get("cached"):
                        compile_cached += 1
                elif kind == "exec":
                    exec_runs += 1
                    exec_steps += int(attrs.get("steps") or 0)
                    exec_launches += int(attrs.get("launches") or 0)
            trace_rows.append(
                {
                    "scenario": trace.get("scenario", {}),
                    "wall": root_wall,
                    "status": status,
                    "file": str(Path(path).name),
                    "trace_id": trace.get("trace_id"),
                }
            )

    stages: Dict[str, Dict[str, float]] = {}
    for name, walls in stage_walls.items():
        walls.sort()
        stages[name] = {
            "entries": len(walls),
            "total": sum(walls),
            "p50": percentile(walls, 0.50),
            "p90": percentile(walls, 0.90),
            "p99": percentile(walls, 0.99),
            "max": walls[-1],
        }

    llm_walls.sort()
    llm_summary: Dict[str, Any] = {
        "calls": len(llm_walls),
        "calls_by_purpose": llm_calls_by_purpose,
        "prompt_tokens": prompt_tokens,
        "completion_tokens": completion_tokens,
    }
    if llm_walls:
        llm_summary.update(
            p50=percentile(llm_walls, 0.50),
            p90=percentile(llm_walls, 0.90),
            p99=percentile(llm_walls, 0.99),
            max=llm_walls[-1],
            histogram=_latency_histogram(llm_walls),
        )

    trace_rows.sort(key=lambda row: row["wall"], reverse=True)
    return {
        "files": [str(p) for p in paths],
        "traces": n_traces,
        "stages": stages,
        "llm": llm_summary,
        "compile": {
            "calls": compile_total,
            "cached": compile_cached,
            "cache_rate": (compile_cached / compile_total) if compile_total else 0.0,
        },
        "exec": {
            "runs": exec_runs,
            "steps": exec_steps,
            "launches": exec_launches,
        },
        "slowest": trace_rows[: max(0, top)],
        "metrics": _metrics.merge_snapshots(snapshots),
    }


def _latency_histogram(sorted_walls: Sequence[float]) -> List[Tuple[str, int]]:
    """Fixed log-spaced latency buckets for the LLM histogram display."""
    bounds = list(_metrics.LLM_LATENCY_BUCKETS)
    counts = [0] * (len(bounds) + 1)
    for value in sorted_walls:
        for i, bound in enumerate(bounds):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    labels = [f"<={b:g}s" for b in bounds] + [f">{bounds[-1]:g}s"]
    return [(label, count) for label, count in zip(labels, counts) if count]


# ----------------------------------------------------------------------
# Critical-path analysis: where did each scenario's wall time go?
#: The leaf buckets a pipeline's wall time is attributed to.  "overhead"
#: is the root wall minus every leaf wall — stage dispatch, prompt
#: building, result bookkeeping, and (on cold runs) §III-A baseline
#: preparation, which publishes no leaf events of its own; baselines are
#: cached across a grid, so their cost amortizes to the first scenario.
CRITICAL_PATH_BUCKETS = ("llm", "compile", "exec", "overhead")


def trace_critical_path(trace: Dict[str, Any]) -> Dict[str, Any]:
    """Attribute one trace's wall time to its dominant leaf bucket.

    Walks the span tree, sums leaf walls per kind (llm / compile /
    exec), and charges the remainder of the root pipeline span's wall to
    ``overhead``.  The dominant bucket is the argmax; ties break in
    :data:`CRITICAL_PATH_BUCKETS` order (deterministic).
    """
    walls = {bucket: 0.0 for bucket in CRITICAL_PATH_BUCKETS}
    root_wall = 0.0
    for span in trace.get("spans", []):
        kind = span.get("kind")
        wall = float(span.get("wall", 0.0))
        if kind == "pipeline":
            root_wall = wall
        elif kind in ("llm", "compile", "exec"):
            walls[kind] += wall
    leaf_total = walls["llm"] + walls["compile"] + walls["exec"]
    walls["overhead"] = max(0.0, root_wall - leaf_total)
    dominant = max(CRITICAL_PATH_BUCKETS, key=lambda b: walls[b])
    return {
        "scenario": trace.get("scenario", {}),
        "wall": root_wall,
        "walls": {k: round(v, 6) for k, v in walls.items()},
        "dominant": dominant,
    }


def critical_path_report(
    paths: Sequence[Union[str, Path]]
) -> Dict[str, Any]:
    """Aggregate per-trace critical paths across a campaign or session.

    Returns the per-bucket dominance counts, the mean wall-time fraction
    each bucket claims, total wall time, and the per-scenario rows.  The
    scenario count equals the number of traces — one per executed
    pipeline run — so it can be cross-checked against a campaign
    manifest's scenario totals.
    """
    rows: List[Dict[str, Any]] = []
    for path in paths:
        data = load_trace_file(path)
        for trace in data["traces"]:
            rows.append(trace_critical_path(trace))
    dominant_counts = {bucket: 0 for bucket in CRITICAL_PATH_BUCKETS}
    fraction_sums = {bucket: 0.0 for bucket in CRITICAL_PATH_BUCKETS}
    total_wall = 0.0
    fractional = 0
    for row in rows:
        dominant_counts[row["dominant"]] += 1
        total_wall += row["wall"]
        if row["wall"] > 0:
            fractional += 1
            for bucket in CRITICAL_PATH_BUCKETS:
                fraction_sums[bucket] += row["walls"][bucket] / row["wall"]
    fractions = {
        bucket: round(fraction_sums[bucket] / fractional, 4) if fractional else 0.0
        for bucket in CRITICAL_PATH_BUCKETS
    }
    return {
        "files": [str(p) for p in paths],
        "scenarios": len(rows),
        "dominant_counts": dominant_counts,
        "mean_fractions": fractions,
        "total_wall": round(total_wall, 6),
        "rows": rows,
    }


def render_critical_path(report: Dict[str, Any], top: int = 5) -> str:
    """Human-readable rendering of :func:`critical_path_report`."""
    lines = [
        f"critical path over {report['scenarios']} scenario(s), "
        f"{_fmt_s(report['total_wall'])} total wall"
    ]
    lines.append("")
    lines.append("Dominant bucket (scenarios / mean wall share):")
    for bucket in CRITICAL_PATH_BUCKETS:
        count = report["dominant_counts"][bucket]
        share = report["mean_fractions"][bucket]
        lines.append(f"  {bucket:<10}{count:>6}  {share:>7.1%}")
    rows = sorted(report["rows"], key=lambda r: r["wall"], reverse=True)
    if rows:
        lines.append("")
        lines.append("Slowest scenarios:")
        for row in rows[: max(0, top)]:
            lines.append(
                f"  {_fmt_s(row['wall']):>10}  dominant={row['dominant']:<9} "
                f"{_scenario_label(row['scenario'])}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
def _fmt_s(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _scenario_label(scenario: Dict[str, Any]) -> str:
    parts = [
        str(scenario.get(key))
        for key in ("model", "direction", "app")
        if scenario.get(key)
    ]
    return "/".join(parts) if parts else "(unlabelled)"


def render_trace_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_traces` output."""
    lines: List[str] = []
    lines.append(
        f"{summary['traces']} trace(s) across {len(summary['files'])} file(s)"
    )

    stages = summary["stages"]
    if stages:
        lines.append("")
        lines.append("Per-stage latency (wall):")
        name_w = max(len(n) for n in stages) + 2
        header = (
            f"  {'stage':<{name_w}}{'entries':>8}{'total':>10}"
            f"{'p50':>10}{'p90':>10}{'p99':>10}{'max':>10}"
        )
        lines.append(header)
        for name in sorted(stages, key=lambda n: -stages[n]["total"]):
            s = stages[name]
            lines.append(
                f"  {name:<{name_w}}{int(s['entries']):>8}"
                f"{_fmt_s(s['total']):>10}{_fmt_s(s['p50']):>10}"
                f"{_fmt_s(s['p90']):>10}{_fmt_s(s['p99']):>10}"
                f"{_fmt_s(s['max']):>10}"
            )

    llm = summary["llm"]
    lines.append("")
    lines.append(f"LLM calls: {llm['calls']}")
    if llm["calls"]:
        by_purpose = ", ".join(
            f"{k}={v}" for k, v in sorted(llm["calls_by_purpose"].items())
        )
        lines.append(f"  by purpose: {by_purpose}")
        lines.append(
            f"  latency p50 {_fmt_s(llm['p50'])} · p90 {_fmt_s(llm['p90'])}"
            f" · p99 {_fmt_s(llm['p99'])} · max {_fmt_s(llm['max'])}"
        )
        lines.append(
            f"  tokens: {llm['prompt_tokens']} prompt, "
            f"{llm['completion_tokens']} completion"
        )
        hist = llm.get("histogram", [])
        if hist:
            peak = max(count for _, count in hist)
            for label, count in hist:
                bar = "#" * max(1, round(count * 30 / peak))
                lines.append(f"  {label:>10} {count:>6}  {bar}")

    comp = summary["compile"]
    lines.append("")
    lines.append(
        f"Compiles: {comp['calls']} ({comp['cached']} cached, "
        f"{comp['cache_rate']:.1%} cache rate)"
    )
    ex = summary["exec"]
    lines.append(
        f"Executions: {ex['runs']} · {ex['launches']} kernel launch(es) · "
        f"{ex['steps']} interpreter step(s)"
    )

    slowest = summary["slowest"]
    if slowest:
        lines.append("")
        lines.append("Slowest traces:")
        for row in slowest:
            lines.append(
                f"  {_fmt_s(row['wall']):>10}  {row['status']:<16} "
                f"{_scenario_label(row['scenario'])}"
            )

    counters = summary["metrics"].get("counters", {})
    if counters:
        lines.append("")
        lines.append("Metrics counters:")
        for key in sorted(counters):
            value = counters[key]
            rendered = f"{value:g}"
            lines.append(f"  {key} = {rendered}")
    return "\n".join(lines)


def render_trace_show(
    paths: Sequence[Union[str, Path]], limit: int = 0
) -> str:
    """Span trees of each trace, indented by parent (``trace show``)."""
    lines: List[str] = []
    shown = 0
    for path in paths:
        data = load_trace_file(path)
        for trace in data["traces"]:
            if limit and shown >= limit:
                lines.append("… (truncated; raise --limit)")
                return "\n".join(lines)
            shown += 1
            label = _scenario_label(trace.get("scenario", {}))
            lines.append(f"trace {trace.get('trace_id')} · {label}")
            spans = trace.get("spans", [])
            depth: Dict[int, int] = {}
            for span in spans:
                parent = span.get("parent")
                depth[span["id"]] = depth.get(parent, -1) + 1 if parent is not None else 0
                indent = "  " * (depth[span["id"]] + 1)
                attrs = span.get("attrs", {})
                attr_txt = (
                    " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
                    if attrs
                    else ""
                )
                lines.append(
                    f"{indent}{span.get('name')} ({span.get('kind')}) "
                    f"{_fmt_s(float(span.get('wall', 0.0)))}{attr_txt}"
                )
    if not lines:
        lines.append("no traces found")
    return "\n".join(lines)
