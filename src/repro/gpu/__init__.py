"""Simulated GPU/CPU device models and the analytic performance model.

The paper measures wall-clock runtimes on an NVIDIA A100 (40 GB).  Offline we
substitute a deterministic analytic model: the interpreter counts the dynamic
work a program performs (ops, bytes moved, atomics, transfers, launches), and
:mod:`repro.gpu.perfmodel` converts those counts into simulated seconds using
device parameters modelled on the A100 and its host.
"""

from repro.gpu.device import A100_40GB, CpuSpec, DeviceSpec, HOST_EPYC
from repro.gpu.stats import (
    ExecutionProfile,
    HostParallelEvent,
    KernelEvent,
    OpCounters,
    TransferEvent,
)
from repro.gpu.perfmodel import PerformanceModel

__all__ = [
    "A100_40GB",
    "HOST_EPYC",
    "CpuSpec",
    "DeviceSpec",
    "ExecutionProfile",
    "KernelEvent",
    "TransferEvent",
    "HostParallelEvent",
    "OpCounters",
    "PerformanceModel",
]
