"""Analytic performance model: execution profile -> simulated seconds.

Model structure (per event):

* **Kernel** — ``t = launch_overhead + max(t_compute, t_memory) + t_atomic``
  with throughputs scaled by occupancy (small launches do not saturate an
  A100) and by an offload-efficiency factor for OpenMP target regions.  A
  ``parallel_limit`` (e.g. the program requested one thread, or the region
  fell back to serial) collapses throughput toward the device's single-thread
  rate — this is the mechanism behind the paper's §V-D bsearch anecdote,
  where a translation that dropped the 256-thread configuration ran ~20x
  slower than the reference.
* **Transfer** — ``t = latency + bytes / pcie_bandwidth``.  OpenMP ``map``
  clauses on regions not enclosed in ``target data`` pay this *every region
  entry*, which is what makes jacobi/dense-embedding OpenMP baselines orders
  of magnitude slower than CUDA in Table IV.
* **Host** — roofline of ops vs. memory bytes on the CPU spec; host-parallel
  loops divide by the effective parallel rate.

Two scale factors relate the reduced workloads we actually execute (a pure-
Python interpreter cannot run 10^8-thread kernels) to the paper's nominal
problem sizes:

* ``work_scale``   — nominal/reduced ratio of *total work* (ops, bytes,
  atomics).  Multiplies every throughput-limited term.
* ``launch_scale`` — nominal/reduced ratio of *event counts* (kernel
  launches, target-region entries, transfer calls).  Multiplies fixed
  per-event overheads.  Defaults to ``work_scale``.

Both factors are workload properties shared by every code variant running
that workload (reference or LLM-generated), so relative performance between
variants is unaffected by the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.device import (
    A100_40GB,
    DEFAULT_OFFLOAD,
    CpuSpec,
    DeviceSpec,
    HOST_EPYC,
    OffloadSpec,
)
from repro.gpu.stats import (
    ExecutionProfile,
    HostParallelEvent,
    KernelEvent,
    OpCounters,
    TransferEvent,
)


@dataclass
class TimeBreakdown:
    """Simulated seconds, decomposed for reporting and tests."""

    host: float = 0.0
    kernel_compute: float = 0.0
    kernel_overhead: float = 0.0
    atomic: float = 0.0
    transfer_bandwidth: float = 0.0
    transfer_latency: float = 0.0

    @property
    def transfer(self) -> float:
        return self.transfer_bandwidth + self.transfer_latency

    @property
    def total(self) -> float:
        return (
            self.host
            + self.kernel_compute
            + self.kernel_overhead
            + self.atomic
            + self.transfer_bandwidth
            + self.transfer_latency
        )


class PerformanceModel:
    """Folds an :class:`ExecutionProfile` into simulated seconds."""

    def __init__(
        self,
        device: DeviceSpec = A100_40GB,
        cpu: CpuSpec = HOST_EPYC,
        offload: OffloadSpec = DEFAULT_OFFLOAD,
    ) -> None:
        self.device = device
        self.cpu = cpu
        self.offload = offload

    # ------------------------------------------------------------------
    def kernel_time(self, event: KernelEvent) -> tuple:
        """Return (compute_seconds, overhead_seconds, atomic_seconds)."""
        device = self.device
        c = event.counters

        if event.api == "omp":
            op_rate = device.op_rate * self.offload.compute_efficiency
            bandwidth = device.mem_bandwidth * self.offload.bandwidth_efficiency
            overhead = self.offload.region_overhead
        else:
            op_rate = device.op_rate
            bandwidth = device.mem_bandwidth
            overhead = device.kernel_launch_overhead

        width = event.total_threads
        if event.parallel_limit is not None:
            width = min(width, max(1, event.parallel_limit))

        if width <= 1:
            # Fully serialized: a single device thread crawls.
            compute = c.ops / device.serial_op_rate + c.mem_bytes / (
                device.serial_op_rate * 8.0
            )
            return compute, overhead, c.atomics / device.atomic_rate

        occ = device.occupancy(width)
        # Degenerate block sizes waste warp lanes: a 1-thread block still
        # occupies a full 32-lane warp.
        warp_eff = min(1.0, max(1, event.block_size) / float(device.warp_size))
        # Throughput interpolates between serial crawl and saturated peak;
        # the serial floor only matters for degenerate widths and must never
        # exceed the device peak.
        floor_w = min(width, 64) * 0.5
        eff_op_rate = max(
            min(device.serial_op_rate * floor_w, op_rate),
            op_rate * occ * warp_eff,
        )
        eff_bandwidth = max(
            min(device.serial_op_rate * 8.0 * floor_w, bandwidth),
            bandwidth * occ * warp_eff,
        )
        t_compute = c.ops / eff_op_rate
        t_memory = c.mem_bytes / eff_bandwidth
        t_atomic = c.atomics / device.atomic_rate
        return max(t_compute, t_memory), overhead, t_atomic

    def transfer_time(self, event: TransferEvent) -> tuple:
        """Return (bandwidth_seconds, latency_seconds) for one transfer."""
        bandwidth = self.device.pcie_bandwidth
        if event.api == "omp":
            bandwidth *= self.offload.transfer_efficiency
        if event.direction == "d2d":
            bandwidth = self.device.mem_bandwidth
        return event.bytes / bandwidth, self.device.transfer_latency

    def host_time(self, counters: OpCounters, num_threads: int = 1) -> float:
        rate = self.cpu.parallel_rate(num_threads)
        t_compute = counters.ops / rate
        t_memory = counters.mem_bytes / self.cpu.mem_bandwidth
        t = max(t_compute, t_memory)
        if num_threads > 1:
            t += self.cpu.parallel_overhead
        return t

    # ------------------------------------------------------------------
    def breakdown(
        self,
        profile: ExecutionProfile,
        work_scale: float = 1.0,
        launch_scale: Optional[float] = None,
    ) -> TimeBreakdown:
        """Fold a profile into a per-component time breakdown."""
        if work_scale <= 0:
            raise ValueError(f"work_scale must be positive, got {work_scale}")
        if launch_scale is None:
            launch_scale = work_scale
        if launch_scale <= 0:
            raise ValueError(f"launch_scale must be positive, got {launch_scale}")
        out = TimeBreakdown()
        out.host = self.host_time(profile.host)
        for event in profile.events:
            if isinstance(event, KernelEvent):
                compute, overhead, atomic = self.kernel_time(event)
                out.kernel_compute += compute
                out.kernel_overhead += overhead
                out.atomic += atomic
            elif isinstance(event, TransferEvent):
                bw, latency = self.transfer_time(event)
                out.transfer_bandwidth += bw
                out.transfer_latency += latency
            elif isinstance(event, HostParallelEvent):
                out.host += self.host_time(event.counters, event.num_threads)
        out.host *= work_scale
        out.kernel_compute *= work_scale
        out.atomic *= work_scale
        out.transfer_bandwidth *= work_scale
        out.kernel_overhead *= launch_scale
        out.transfer_latency *= launch_scale
        return out

    def seconds(
        self,
        profile: ExecutionProfile,
        work_scale: float = 1.0,
        launch_scale: Optional[float] = None,
    ) -> float:
        """Total simulated runtime of a profile."""
        return self.breakdown(profile, work_scale, launch_scale).total
