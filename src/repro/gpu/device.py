"""Device specifications for the performance model.

Parameters are *effective* sustained figures, not datasheet peaks: the model
divides counted work by these rates, so they fold in the typical efficiency a
real benchmark achieves.  Values are modelled on the paper's platform — a
Linux server with two NVIDIA A100-40GB GPUs (only one is used per run) —
and calibrated so that Table IV baseline runtimes land in the right ranges.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """An accelerator (GPU) as seen by the analytic performance model."""

    name: str
    sm_count: int
    #: Effective arithmetic throughput at full occupancy (ops/second).
    op_rate: float
    #: Effective HBM bandwidth (bytes/second).
    mem_bandwidth: float
    #: Effective host<->device transfer bandwidth (bytes/second, PCIe).
    pcie_bandwidth: float
    #: Fixed cost of one kernel launch (seconds).
    kernel_launch_overhead: float
    #: Fixed cost of one host<->device transfer call (seconds).
    transfer_latency: float
    #: Global atomic throughput (atomics/second) without contention.
    atomic_rate: float
    #: Effective op rate of a *single* GPU thread (serialized execution).
    serial_op_rate: float
    #: Threads needed to saturate compute/bandwidth (occupancy knee).
    saturation_threads: int
    max_threads_per_block: int = 1024
    warp_size: int = 32

    def occupancy(self, threads: int) -> float:
        """Fraction of peak throughput achievable with ``threads`` resident."""
        if threads <= 0:
            return 0.0
        return min(1.0, threads / float(self.saturation_threads))


@dataclass(frozen=True)
class CpuSpec:
    """The host CPU as seen by the performance model."""

    name: str
    cores: int
    #: Effective per-core arithmetic throughput (ops/second).
    core_op_rate: float
    #: Effective memory bandwidth (bytes/second), shared across cores.
    mem_bandwidth: float
    #: Parallel efficiency of an OpenMP host loop (0..1].
    parallel_efficiency: float = 0.75
    #: Fixed cost of forking/joining an OpenMP host parallel region.
    parallel_overhead: float = 8e-6

    def parallel_rate(self, num_threads: int) -> float:
        """Aggregate op rate with ``num_threads`` OpenMP host threads."""
        threads = max(1, min(num_threads, self.cores))
        if threads == 1:
            return self.core_op_rate
        return self.core_op_rate * threads * self.parallel_efficiency


#: NVIDIA A100-SXM4-40GB, effective sustained figures.
A100_40GB = DeviceSpec(
    name="NVIDIA A100-SXM4-40GB",
    sm_count=108,
    op_rate=6.0e12,
    mem_bandwidth=1.3e12,
    pcie_bandwidth=2.0e10,
    kernel_launch_overhead=6.0e-6,
    transfer_latency=1.0e-5,
    atomic_rate=2.0e9,
    serial_op_rate=2.0e8,
    # A real A100 saturates around ~220k resident threads.  The simulator
    # executes *reduced* workloads (a few thousand threads standing in for
    # the paper's millions), so the saturation knee is scaled down with them:
    # a full-width reduced launch should behave like a saturated full-size
    # launch, while degenerate widths (1..32 threads) still crawl.
    saturation_threads=1024,
)

#: Host CPU of the paper's server (AMD EPYC class, 64 cores).
HOST_EPYC = CpuSpec(
    name="AMD EPYC 7742 (model)",
    cores=64,
    core_op_rate=2.5e9,
    mem_bandwidth=1.5e11,
)


@dataclass(frozen=True)
class OffloadSpec:
    """Efficiency factors of an OpenMP target-offload toolchain.

    OpenMP offload through LLVM/Clang typically achieves a fraction of the
    throughput of hand-written CUDA on the same device, and pays more per
    region entry — this is what makes several Table IV OpenMP baselines
    slower than their CUDA counterparts even before transfer effects.
    """

    #: Multiplier on device op rate (<= 1).
    compute_efficiency: float = 0.80
    #: Multiplier on device memory bandwidth (<= 1).
    bandwidth_efficiency: float = 0.85
    #: Fixed cost of entering+exiting one ``target`` region (seconds).
    region_overhead: float = 6.0e-5
    #: Multiplier on PCIe bandwidth for mapped transfers (<= 1).
    transfer_efficiency: float = 0.85


DEFAULT_OFFLOAD = OffloadSpec()
