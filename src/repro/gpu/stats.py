"""Dynamic work counters and execution-profile events.

The interpreter owns one :class:`ExecutionProfile` per program run.  Host code
accumulates into the ambient host counters; every kernel launch, OpenMP target
region, host-parallel loop, and host<->device transfer appends a structured
event.  The performance model then folds the profile into simulated seconds —
the counters are exact dynamic counts, not estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


class OpCounters:
    """Mutable work counters (kept tiny and slot-based: hot path)."""

    __slots__ = ("ops", "load_bytes", "store_bytes", "atomics")

    def __init__(self) -> None:
        self.ops = 0.0
        self.load_bytes = 0.0
        self.store_bytes = 0.0
        self.atomics = 0.0

    @property
    def mem_bytes(self) -> float:
        return self.load_bytes + self.store_bytes

    def add(self, other: "OpCounters") -> None:
        self.ops += other.ops
        self.load_bytes += other.load_bytes
        self.store_bytes += other.store_bytes
        self.atomics += other.atomics

    def scaled(self, factor: float) -> "OpCounters":
        out = OpCounters()
        out.ops = self.ops * factor
        out.load_bytes = self.load_bytes * factor
        out.store_bytes = self.store_bytes * factor
        out.atomics = self.atomics * factor
        return out

    def snapshot(self) -> dict:
        return {
            "ops": self.ops,
            "load_bytes": self.load_bytes,
            "store_bytes": self.store_bytes,
            "atomics": self.atomics,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OpCounters(ops={self.ops:.0f}, load={self.load_bytes:.0f}B, "
            f"store={self.store_bytes:.0f}B, atomics={self.atomics:.0f})"
        )


@dataclass
class KernelEvent:
    """One device kernel execution (CUDA launch or OMP target loop body)."""

    name: str
    total_threads: int
    block_size: int
    counters: OpCounters
    #: "cuda" for <<<>>> launches, "omp" for target regions.
    api: str = "cuda"
    #: Parallelism cap imposed by the program (e.g. num_threads(1) / serial
    #: fallback).  None means the full launch width is available.
    parallel_limit: Optional[int] = None
    #: Which interpreter dispatch path executed the launch: "flat" (the
    #: barrier-free fast path), "barrier" (__syncthreads interleaving),
    #: "slow" (nested per-thread loops), or "omp" for target regions.
    path: str = ""


@dataclass
class TransferEvent:
    """One host<->device memory transfer."""

    bytes: int
    direction: str  # "h2d" | "d2h" | "d2d"
    api: str = "cuda"  # "cuda" (cudaMemcpy) | "omp" (map clause)


@dataclass
class HostParallelEvent:
    """An OpenMP host ``parallel for`` region."""

    counters: OpCounters
    num_threads: int


ProfileEvent = Union[KernelEvent, TransferEvent, HostParallelEvent]


@dataclass
class ExecutionProfile:
    """Complete dynamic work profile of one program run."""

    host: OpCounters = field(default_factory=OpCounters)
    events: List[ProfileEvent] = field(default_factory=list)
    #: Thread-rounds spent parked at a __syncthreads() barrier, summed
    #: over every barrier-mode launch (exact dynamic count).
    barrier_waits: int = 0

    @property
    def kernel_events(self) -> List[KernelEvent]:
        return [e for e in self.events if isinstance(e, KernelEvent)]

    @property
    def transfer_events(self) -> List[TransferEvent]:
        return [e for e in self.events if isinstance(e, TransferEvent)]

    @property
    def total_kernel_launches(self) -> int:
        return len(self.kernel_events)

    @property
    def total_transfer_bytes(self) -> int:
        return sum(e.bytes for e in self.transfer_events)

    @property
    def total_atomics(self) -> float:
        return sum(e.counters.atomics for e in self.kernel_events)

    def launch_paths(self) -> dict:
        """Launch counts per interpreter dispatch path (see KernelEvent)."""
        counts: dict = {}
        for e in self.kernel_events:
            key = e.path or ("omp" if e.api == "omp" else "slow")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def summary(self) -> dict:
        return {
            "host_ops": self.host.ops,
            "host_mem_bytes": self.host.mem_bytes,
            "kernel_launches": self.total_kernel_launches,
            "kernel_ops": sum(e.counters.ops for e in self.kernel_events),
            "kernel_mem_bytes": sum(e.counters.mem_bytes for e in self.kernel_events),
            "atomics": self.total_atomics,
            "barrier_waits": self.barrier_waits,
            "transfers": len(self.transfer_events),
            "transfer_bytes": self.total_transfer_bytes,
        }
