"""Parameterized kernel-family templates for the synthetic suite.

Each :class:`Family` deterministically renders a paired MiniCUDA + MiniOMP
program from a ``(difficulty, seed)`` draw.  Templates are authored in the
same idiom as the hand-written Table IV apps — canonical flat-index kernels
with guards, ``cudaMalloc``/``cudaMemcpy`` staging on the CUDA side,
``target data`` regions / map clauses on the OpenMP side, deterministic
``srand``/``rand`` data, and checksum-style stdout — so generated pairs are
differentially verifiable *and* sit inside the simulated transpiler's
competence envelope (the LASSI pipeline can actually translate them).

``difficulty`` widens the problem (sizes, stencil radius, extra passes);
``seed`` varies every free constant through a :class:`~repro.utils.rng.
RngStream`, so two apps of the same family and difficulty still differ.
All sizes are deliberately small: programs run on the pure-Python
interpreter, and the synthesized ``work_scale`` (drawn in the generator)
is what relates them to nominal workloads for the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from string import Template
from typing import Callable, Dict, List

from repro.utils.rng import RngStream


@dataclass(frozen=True)
class GeneratedPair:
    """One rendered program pair plus its drawn parameters."""

    cuda_source: str
    omp_source: str
    notes: str
    params: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Family:
    """A kernel-family template: name, category, and a seeded renderer."""

    name: str
    category: str
    description: str
    render: Callable[[RngStream, int], GeneratedPair]

    def generate(self, difficulty: int, seed: int) -> GeneratedPair:
        if difficulty < 1:
            raise ValueError(f"difficulty must be >= 1, got {difficulty}")
        rng = RngStream(seed, "synth", self.name, f"d{difficulty}")
        return self.render(rng, difficulty)


def _t(template: str, **subs: object) -> str:
    """Render a ``$name`` template (C braces stay literal)."""
    return Template(template).substitute({k: str(v) for k, v in subs.items()})


# =====================================================================
# stencil — R-point 1D stencil sweep, separate in/out arrays.
# =====================================================================

_STENCIL_CUDA = """
// synth stencil: $points-point 1D stencil sweep over n cells.
__global__ void stencil_step(float* in, float* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    if (i >= $radius && i < n - $radius) {
      out[i] = $body;
    } else {
      out[i] = in[i];
    }
  }
}

int main(int argc, char** argv) {
  int n = $n;
  int iters = $iters;
  float* h_in = (float*)malloc(n * sizeof(float));
  float* h_out = (float*)malloc(n * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    h_in[i] = (rand() % 1000) * 0.001f;
  }
  float* d_in;
  float* d_out;
  cudaMalloc(&d_in, n * sizeof(float));
  cudaMalloc(&d_out, n * sizeof(float));
  cudaMemcpy(d_in, h_in, n * sizeof(float), cudaMemcpyHostToDevice);
  int threads = $threads;
  int blocks = (n + threads - 1) / threads;
  for (int it = 0; it < iters; it++) {
    stencil_step<<<blocks, threads>>>(d_in, d_out, n);
  }
  cudaDeviceSynchronize();
  cudaMemcpy(h_out, d_out, n * sizeof(float), cudaMemcpyDeviceToHost);
  double checksum = 0.0;
  for (int i = 0; i < n; i++) {
    checksum += h_out[i];
  }
  printf("n %d\\n", n);
  printf("checksum %.4f\\n", checksum);
  cudaFree(d_in);
  cudaFree(d_out);
  free(h_in);
  free(h_out);
  return 0;
}
"""

_STENCIL_OMP = """
// synth stencil: $points-point 1D stencil sweep over n cells.
int main(int argc, char** argv) {
  int n = $n;
  int iters = $iters;
  float* in = (float*)malloc(n * sizeof(float));
  float* out = (float*)malloc(n * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    in[i] = (rand() % 1000) * 0.001f;
  }
  #pragma omp target data map(to: in[0:n]) map(from: out[0:n])
  {
    for (int it = 0; it < iters; it++) {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < n; i++) {
        if (i >= $radius && i < n - $radius) {
          out[i] = $body;
        } else {
          out[i] = in[i];
        }
      }
    }
  }
  double checksum = 0.0;
  for (int i = 0; i < n; i++) {
    checksum += out[i];
  }
  printf("n %d\\n", n);
  printf("checksum %.4f\\n", checksum);
  free(in);
  free(out);
  return 0;
}
"""


def _render_stencil(rng: RngStream, difficulty: int) -> GeneratedPair:
    n = rng.randint(64, 96) + 32 * (difficulty - 1)
    iters = rng.randint(2, 2 + difficulty)
    radius = 1 if difficulty < 2 else 2
    w0 = 0.40 + 0.05 * rng.randint(0, 4)
    w1 = round((1.0 - w0) / (2 * radius), 3)
    terms = [f"{w0:.3f}f * in[i]"]
    for r in range(1, radius + 1):
        terms.append(f"{w1:.3f}f * (in[i - {r}] + in[i + {r}])")
    body = " + ".join(terms)
    params = dict(
        n=n, iters=iters, radius=radius, points=2 * radius + 1,
        dataseed=rng.randint(1000, 9999), threads=rng.choice([64, 128]),
        body=body,
    )
    return GeneratedPair(
        cuda_source=_t(_STENCIL_CUDA, **params),
        omp_source=_t(_STENCIL_OMP, **params),
        notes=f"{params['points']}-point stencil, {iters} idempotent sweeps",
        params=params,
    )


# =====================================================================
# reduction — global sum of a per-element term (atomic vs reduction(+)).
# =====================================================================

_REDUCTION_CUDA = """
// synth reduction: global sum of a per-element term.
__global__ void reduce_sum(double* data, double* total, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    double v = data[i];
    atomicAdd(&total[0], $term);
  }
}

int main(int argc, char** argv) {
  int n = $n;
  double* h_data = (double*)malloc(n * sizeof(double));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    h_data[i] = (rand() % 2000) * 0.001 - 1.0;
  }
  double* d_data;
  double* d_total;
  cudaMalloc(&d_data, n * sizeof(double));
  cudaMalloc(&d_total, sizeof(double));
  cudaMemcpy(d_data, h_data, n * sizeof(double), cudaMemcpyHostToDevice);
  cudaMemset(d_total, 0, sizeof(double));
  int threads = $threads;
  int blocks = (n + threads - 1) / threads;
  reduce_sum<<<blocks, threads>>>(d_data, d_total, n);
  cudaDeviceSynchronize();
  double* h_total = (double*)malloc(sizeof(double));
  cudaMemcpy(h_total, d_total, sizeof(double), cudaMemcpyDeviceToHost);
  printf("n %d\\n", n);
  printf("sum %.6f\\n", h_total[0]);
  cudaFree(d_data);
  cudaFree(d_total);
  free(h_data);
  free(h_total);
  return 0;
}
"""

_REDUCTION_OMP = """
// synth reduction: global sum of a per-element term (target offload).
int main(int argc, char** argv) {
  int n = $n;
  double* data = (double*)malloc(n * sizeof(double));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    data[i] = (rand() % 2000) * 0.001 - 1.0;
  }
  double sum = 0.0;
  #pragma omp target teams distribute parallel for map(to: data[0:n]) reduction(+: sum)
  for (int i = 0; i < n; i++) {
    double v = data[i];
    sum += $term;
  }
  printf("n %d\\n", n);
  printf("sum %.6f\\n", sum);
  free(data);
  return 0;
}
"""

_REDUCTION_TERMS = [
    "v * v",
    "fabs(v - 0.5)",
    "v * 0.625 + 0.25",
    "fabs(v) * 0.75",
]


def _render_reduction(rng: RngStream, difficulty: int) -> GeneratedPair:
    n = rng.randint(128, 192) + 64 * (difficulty - 1)
    term = rng.choice(_REDUCTION_TERMS)
    params = dict(
        n=n, term=term, dataseed=rng.randint(1000, 9999),
        threads=rng.choice([64, 128, 256]),
    )
    return GeneratedPair(
        cuda_source=_t(_REDUCTION_CUDA, **params),
        omp_source=_t(_REDUCTION_OMP, **params),
        notes=f"sum of {term} over {n} elements",
        params=params,
    )


# =====================================================================
# scan — segmented inclusive prefix sums, one segment per thread.
# =====================================================================

_SCAN_CUDA = """
// synth scan: inclusive prefix sum inside each of nseg segments.
__global__ void segment_scan(float* data, float* out, int nseg, int seglen) {
  int s = blockIdx.x * blockDim.x + threadIdx.x;
  if (s < nseg) {
    float run = 0.0f;
    for (int k = 0; k < seglen; k++) {
      run = run + data[s * seglen + k];
      out[s * seglen + k] = run;
    }
  }
}

int main(int argc, char** argv) {
  int nseg = $nseg;
  int seglen = $seglen;
  int total = nseg * seglen;
  float* h_data = (float*)malloc(total * sizeof(float));
  float* h_out = (float*)malloc(total * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < total; i++) {
    h_data[i] = (rand() % 100) * 0.01f;
  }
  float* d_data;
  float* d_out;
  cudaMalloc(&d_data, total * sizeof(float));
  cudaMalloc(&d_out, total * sizeof(float));
  cudaMemcpy(d_data, h_data, total * sizeof(float), cudaMemcpyHostToDevice);
  int threads = $threads;
  int blocks = (nseg + threads - 1) / threads;
  segment_scan<<<blocks, threads>>>(d_data, d_out, nseg, seglen);
  cudaDeviceSynchronize();
  cudaMemcpy(h_out, d_out, total * sizeof(float), cudaMemcpyDeviceToHost);
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += h_out[i];
  }
  printf("segments %d\\n", nseg);
  printf("checksum %.4f\\n", checksum);
  cudaFree(d_data);
  cudaFree(d_out);
  free(h_data);
  free(h_out);
  return 0;
}
"""

_SCAN_OMP = """
// synth scan: inclusive prefix sum inside each of nseg segments.
int main(int argc, char** argv) {
  int nseg = $nseg;
  int seglen = $seglen;
  int total = nseg * seglen;
  float* data = (float*)malloc(total * sizeof(float));
  float* out = (float*)malloc(total * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < total; i++) {
    data[i] = (rand() % 100) * 0.01f;
  }
  #pragma omp target teams distribute parallel for map(to: data[0:total]) map(from: out[0:total])
  for (int s = 0; s < nseg; s++) {
    float run = 0.0f;
    for (int k = 0; k < seglen; k++) {
      run = run + data[s * seglen + k];
      out[s * seglen + k] = run;
    }
  }
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += out[i];
  }
  printf("segments %d\\n", nseg);
  printf("checksum %.4f\\n", checksum);
  free(data);
  free(out);
  return 0;
}
"""


def _render_scan(rng: RngStream, difficulty: int) -> GeneratedPair:
    nseg = rng.randint(24, 40) + 8 * (difficulty - 1)
    seglen = rng.choice([8, 16]) if difficulty < 3 else 16
    params = dict(
        nseg=nseg, seglen=seglen, dataseed=rng.randint(1000, 9999),
        threads=rng.choice([32, 64]),
    )
    return GeneratedPair(
        cuda_source=_t(_SCAN_CUDA, **params),
        omp_source=_t(_SCAN_OMP, **params),
        notes=f"{nseg} segments x {seglen} inclusive prefix sums",
        params=params,
    )


# =====================================================================
# histogram — contended atomic binning with a weighted checksum.
# =====================================================================

_HISTOGRAM_CUDA = """
// synth histogram: atomic binning of hashed values into $nbins bins.
__global__ void bin_values(int* data, int* bins, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int v = data[i];
$increments
  }
}

int main(int argc, char** argv) {
  int n = $n;
  int nbins = $nbins;
  int* h_data = (int*)malloc(n * sizeof(int));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    h_data[i] = rand() % 65536;
  }
  int* d_data;
  int* d_bins;
  cudaMalloc(&d_data, n * sizeof(int));
  cudaMalloc(&d_bins, nbins * sizeof(int));
  cudaMemcpy(d_data, h_data, n * sizeof(int), cudaMemcpyHostToDevice);
  cudaMemset(d_bins, 0, nbins * sizeof(int));
  int threads = $threads;
  int blocks = (n + threads - 1) / threads;
  bin_values<<<blocks, threads>>>(d_data, d_bins, n);
  cudaDeviceSynchronize();
  int* h_bins = (int*)malloc(nbins * sizeof(int));
  cudaMemcpy(h_bins, d_bins, nbins * sizeof(int), cudaMemcpyDeviceToHost);
  long checksum = 0;
  for (int b = 0; b < nbins; b++) {
    checksum += h_bins[b] * (b + 1);
  }
  printf("bins %d\\n", nbins);
  printf("checksum %ld\\n", checksum);
  cudaFree(d_data);
  cudaFree(d_bins);
  free(h_data);
  free(h_bins);
  return 0;
}
"""

_HISTOGRAM_OMP = """
// synth histogram: atomic binning of hashed values into $nbins bins.
int main(int argc, char** argv) {
  int n = $n;
  int nbins = $nbins;
  int* data = (int*)malloc(n * sizeof(int));
  int* bins = (int*)malloc(nbins * sizeof(int));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    data[i] = rand() % 65536;
  }
  for (int b = 0; b < nbins; b++) {
    bins[b] = 0;
  }
  #pragma omp target teams distribute parallel for map(to: data[0:n]) map(tofrom: bins[0:nbins])
  for (int i = 0; i < n; i++) {
    int v = data[i];
$increments
  }
  long checksum = 0;
  for (int b = 0; b < nbins; b++) {
    checksum += bins[b] * (b + 1);
  }
  printf("bins %d\\n", nbins);
  printf("checksum %ld\\n", checksum);
  free(data);
  free(bins);
  return 0;
}
"""


def _render_histogram(rng: RngStream, difficulty: int) -> GeneratedPair:
    n = rng.randint(192, 256) + 96 * (difficulty - 1)
    nbins = rng.choice([16, 32, 64])
    mask = nbins - 1
    shifts = [0] + [rng.choice([3, 4, 5]) for _ in range(difficulty - 1)]
    cuda_inc: List[str] = []
    omp_inc: List[str] = []
    for sh in shifts:
        expr = f"v & {mask}" if sh == 0 else f"(v >> {sh}) & {mask}"
        cuda_inc.append(f"    atomicAdd(&bins[{expr}], 1);")
        omp_inc.append(f"    #pragma omp atomic\n    bins[{expr}] += 1;")
    params = dict(
        n=n, nbins=nbins, dataseed=rng.randint(1000, 9999),
        threads=rng.choice([64, 128]),
    )
    return GeneratedPair(
        cuda_source=_t(_HISTOGRAM_CUDA, increments="\n".join(cuda_inc), **params),
        omp_source=_t(_HISTOGRAM_OMP, increments="\n".join(omp_inc), **params),
        notes=f"{len(shifts)} atomic increment(s)/element into {nbins} bins",
        params=dict(params, passes=len(shifts)),
    )


# =====================================================================
# matmul — dense matrix product, one output element per thread.
# =====================================================================

_MATMUL_CUDA = """
// synth matmul: C = alpha * A x B, one output element per thread.
__global__ void matmul(float* a, float* b, float* c, int n) {
  int idx = blockIdx.x * blockDim.x + threadIdx.x;
  if (idx < n * n) {
    int row = idx / n;
    int col = idx % n;
    float acc = 0.0f;
    for (int k = 0; k < n; k++) {
      acc = acc + a[row * n + k] * b[k * n + col];
    }
    c[idx] = acc * $alpha;
  }
}

int main(int argc, char** argv) {
  int n = $n;
  int total = n * n;
  float* h_a = (float*)malloc(total * sizeof(float));
  float* h_b = (float*)malloc(total * sizeof(float));
  float* h_c = (float*)malloc(total * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < total; i++) {
    h_a[i] = (rand() % 100) * 0.01f;
    h_b[i] = (rand() % 100) * 0.01f;
  }
  float* d_a;
  float* d_b;
  float* d_c;
  cudaMalloc(&d_a, total * sizeof(float));
  cudaMalloc(&d_b, total * sizeof(float));
  cudaMalloc(&d_c, total * sizeof(float));
  cudaMemcpy(d_a, h_a, total * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(d_b, h_b, total * sizeof(float), cudaMemcpyHostToDevice);
  int threads = $threads;
  int blocks = (total + threads - 1) / threads;
  matmul<<<blocks, threads>>>(d_a, d_b, d_c, n);
  cudaDeviceSynchronize();
  cudaMemcpy(h_c, d_c, total * sizeof(float), cudaMemcpyDeviceToHost);
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += h_c[i];
  }
  printf("n %d\\n", n);
  printf("checksum %.4f\\n", checksum);
  cudaFree(d_a);
  cudaFree(d_b);
  cudaFree(d_c);
  free(h_a);
  free(h_b);
  free(h_c);
  return 0;
}
"""

_MATMUL_OMP = """
// synth matmul: C = alpha * A x B (target offload).
int main(int argc, char** argv) {
  int n = $n;
  int total = n * n;
  float* a = (float*)malloc(total * sizeof(float));
  float* b = (float*)malloc(total * sizeof(float));
  float* c = (float*)malloc(total * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < total; i++) {
    a[i] = (rand() % 100) * 0.01f;
    b[i] = (rand() % 100) * 0.01f;
  }
  #pragma omp target teams distribute parallel for map(to: a[0:total]) map(to: b[0:total]) map(from: c[0:total])
  for (int idx = 0; idx < total; idx++) {
    int row = idx / n;
    int col = idx % n;
    float acc = 0.0f;
    for (int k = 0; k < n; k++) {
      acc = acc + a[row * n + k] * b[k * n + col];
    }
    c[idx] = acc * $alpha;
  }
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += c[i];
  }
  printf("n %d\\n", n);
  printf("checksum %.4f\\n", checksum);
  free(a);
  free(b);
  free(c);
  return 0;
}
"""


def _render_matmul(rng: RngStream, difficulty: int) -> GeneratedPair:
    n = rng.randint(8, 12) + 2 * (difficulty - 1)
    alpha = f"{0.5 + 0.25 * rng.randint(0, 3):.2f}f"
    params = dict(
        n=n, alpha=alpha, dataseed=rng.randint(1000, 9999),
        threads=rng.choice([32, 64, 128]),
    )
    return GeneratedPair(
        cuda_source=_t(_MATMUL_CUDA, **params),
        omp_source=_t(_MATMUL_OMP, **params),
        notes=f"{n}x{n} matrix product, alpha={alpha}",
        params=params,
    )


# =====================================================================
# gather — strided gather; difficulty >= 2 adds an atomic scatter pass.
# =====================================================================

_GATHER_CUDA = """
// synth gather: strided gather$scatter_title.
__global__ void gather_pass(float* src, float* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = src[(i * $stride + $offset) % n] * $scale;
  }
}
$scatter_kernel
int main(int argc, char** argv) {
  int n = $n;
  float* h_src = (float*)malloc(n * sizeof(float));
  float* h_out = (float*)malloc(n * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    h_src[i] = (rand() % 1000) * 0.001f;
  }
  float* d_src;
  float* d_out;
  cudaMalloc(&d_src, n * sizeof(float));
  cudaMalloc(&d_out, n * sizeof(float));
  cudaMemcpy(d_src, h_src, n * sizeof(float), cudaMemcpyHostToDevice);
$scatter_alloc
  int threads = $threads;
  int blocks = (n + threads - 1) / threads;
  gather_pass<<<blocks, threads>>>(d_src, d_out, n);
$scatter_launch
  cudaDeviceSynchronize();
  cudaMemcpy(h_out, d_out, n * sizeof(float), cudaMemcpyDeviceToHost);
  double checksum = 0.0;
  for (int i = 0; i < n; i++) {
    checksum += h_out[i];
  }
  printf("n %d\\n", n);
  printf("checksum %.4f\\n", checksum);
$scatter_report
  cudaFree(d_src);
  cudaFree(d_out);
  free(h_src);
  free(h_out);
  return 0;
}
"""

_GATHER_CUDA_SCATTER_KERNEL = """
__global__ void scatter_pass(int* acc, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    atomicAdd(&acc[(i * $stride) & $mask], 1);
  }
}
"""

_GATHER_OMP = """
// synth gather: strided gather$scatter_title (target offload).
int main(int argc, char** argv) {
  int n = $n;
  float* src = (float*)malloc(n * sizeof(float));
  float* out = (float*)malloc(n * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    src[i] = (rand() % 1000) * 0.001f;
  }
$scatter_init
  #pragma omp target teams distribute parallel for map(to: src[0:n]) map(from: out[0:n])
  for (int i = 0; i < n; i++) {
    out[i] = src[(i * $stride + $offset) % n] * $scale;
  }
$scatter_loop
  double checksum = 0.0;
  for (int i = 0; i < n; i++) {
    checksum += out[i];
  }
  printf("n %d\\n", n);
  printf("checksum %.4f\\n", checksum);
$scatter_report
  free(src);
  free(out);
  return 0;
}
"""


def _render_gather(rng: RngStream, difficulty: int) -> GeneratedPair:
    n = rng.randint(128, 192) + 64 * (difficulty - 1)
    stride = rng.choice([3, 5, 7, 9])
    offset = rng.randint(1, 31)
    scale = f"{0.5 + 0.125 * rng.randint(0, 4):.3f}f"
    nacc = 32
    mask = nacc - 1
    with_scatter = difficulty >= 2
    dataseed = rng.randint(1000, 9999)
    threads = rng.choice([64, 128])

    if with_scatter:
        cuda_kernel = _t(_GATHER_CUDA_SCATTER_KERNEL, stride=stride, mask=mask)
        cuda_alloc = (
            "  int* d_acc;\n"
            f"  cudaMalloc(&d_acc, {nacc} * sizeof(int));\n"
            f"  cudaMemset(d_acc, 0, {nacc} * sizeof(int));"
        )
        cuda_launch = "  scatter_pass<<<blocks, threads>>>(d_acc, n);"
        cuda_report = (
            f"  int* h_acc = (int*)malloc({nacc} * sizeof(int));\n"
            f"  cudaMemcpy(h_acc, d_acc, {nacc} * sizeof(int), "
            "cudaMemcpyDeviceToHost);\n"
            "  long hits = 0;\n"
            f"  for (int b = 0; b < {nacc}; b++) " "{\n"
            "    hits += h_acc[b] * (b + 1);\n"
            "  }\n"
            '  printf("hits %ld\\n", hits);\n'
            "  cudaFree(d_acc);\n"
            "  free(h_acc);"
        )
        omp_init = (
            f"  int* acc = (int*)malloc({nacc} * sizeof(int));\n"
            f"  for (int b = 0; b < {nacc}; b++) " "{\n"
            "    acc[b] = 0;\n"
            "  }"
        )
        omp_loop = (
            "  #pragma omp target teams distribute parallel for "
            f"map(tofrom: acc[0:{nacc}])\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    #pragma omp atomic\n"
            f"    acc[(i * {stride}) & {mask}] += 1;\n"
            "  }"
        )
        omp_report = (
            "  long hits = 0;\n"
            f"  for (int b = 0; b < {nacc}; b++) " "{\n"
            "    hits += acc[b] * (b + 1);\n"
            "  }\n"
            '  printf("hits %ld\\n", hits);\n'
            "  free(acc);"
        )
        title = " + atomic scatter"
    else:
        cuda_kernel = ""
        cuda_alloc = cuda_launch = cuda_report = ""
        omp_init = omp_loop = omp_report = ""
        title = ""

    params = dict(
        n=n, stride=stride, offset=offset, scale=scale,
        dataseed=dataseed, threads=threads,
    )
    cuda = _t(
        _GATHER_CUDA, scatter_title=title, scatter_kernel=cuda_kernel,
        scatter_alloc=cuda_alloc, scatter_launch=cuda_launch,
        scatter_report=cuda_report, **params,
    )
    omp = _t(
        _GATHER_OMP, scatter_title=title, scatter_init=omp_init,
        scatter_loop=omp_loop, scatter_report=omp_report, **params,
    )
    return GeneratedPair(
        cuda_source=cuda,
        omp_source=omp,
        notes=f"stride-{stride} gather" + (
            " with atomic scatter pass" if with_scatter else ""
        ),
        params=dict(params, scatter=with_scatter),
    )


# =====================================================================
# fusion — two chained elementwise map kernels.
# =====================================================================

_FUSION_CUDA = """
// synth fusion: two chained elementwise maps (fusion candidate).
__global__ void map_one(float* a, float* b, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    b[i] = a[i] * $c1 + $c2;
  }
}

__global__ void map_two(float* b, float* c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    c[i] = $second;
  }
}

int main(int argc, char** argv) {
  int n = $n;
  float* h_a = (float*)malloc(n * sizeof(float));
  float* h_c = (float*)malloc(n * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    h_a[i] = (rand() % 1000) * 0.001f;
  }
  float* d_a;
  float* d_b;
  float* d_c;
  cudaMalloc(&d_a, n * sizeof(float));
  cudaMalloc(&d_b, n * sizeof(float));
  cudaMalloc(&d_c, n * sizeof(float));
  cudaMemcpy(d_a, h_a, n * sizeof(float), cudaMemcpyHostToDevice);
  int threads = $threads;
  int blocks = (n + threads - 1) / threads;
  map_one<<<blocks, threads>>>(d_a, d_b, n);
  map_two<<<blocks, threads>>>(d_b, d_c, n);
  cudaDeviceSynchronize();
  cudaMemcpy(h_c, d_c, n * sizeof(float), cudaMemcpyDeviceToHost);
  double checksum = 0.0;
  for (int i = 0; i < n; i++) {
    checksum += h_c[i];
  }
  printf("n %d\\n", n);
  printf("checksum %.4f\\n", checksum);
  cudaFree(d_a);
  cudaFree(d_b);
  cudaFree(d_c);
  free(h_a);
  free(h_c);
  return 0;
}
"""

_FUSION_OMP = """
// synth fusion: two chained elementwise maps (target offload).
int main(int argc, char** argv) {
  int n = $n;
  float* a = (float*)malloc(n * sizeof(float));
  float* b = (float*)malloc(n * sizeof(float));
  float* c = (float*)malloc(n * sizeof(float));
  srand($dataseed);
  for (int i = 0; i < n; i++) {
    a[i] = (rand() % 1000) * 0.001f;
  }
  #pragma omp target data map(to: a[0:n]) map(alloc: b[0:n]) map(from: c[0:n])
  {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) {
      b[i] = a[i] * $c1 + $c2;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) {
      c[i] = $second;
    }
  }
  double checksum = 0.0;
  for (int i = 0; i < n; i++) {
    checksum += c[i];
  }
  printf("n %d\\n", n);
  printf("checksum %.4f\\n", checksum);
  free(a);
  free(b);
  free(c);
  return 0;
}
"""

_FUSION_SECOND_OPS = [
    "b[i] * b[i] + $c3",
    "fmaxf(b[i], $c3)",
    "sqrtf(fabsf(b[i])) + $c3",
    "b[i] * $c3 + b[i]",
]


def _render_fusion(rng: RngStream, difficulty: int) -> GeneratedPair:
    n = rng.randint(128, 192) + 64 * (difficulty - 1)
    c1 = f"{0.5 + 0.25 * rng.randint(0, 3):.2f}f"
    c2 = f"{0.1 * rng.randint(1, 9):.1f}f"
    c3 = f"{0.1 * rng.randint(1, 9):.1f}f"
    second = Template(rng.choice(_FUSION_SECOND_OPS)).substitute(c3=c3)
    params = dict(
        n=n, c1=c1, c2=c2, second=second,
        dataseed=rng.randint(1000, 9999), threads=rng.choice([64, 128, 256]),
    )
    return GeneratedPair(
        cuda_source=_t(_FUSION_CUDA, **params),
        omp_source=_t(_FUSION_OMP, **params),
        notes=f"map chain b=a*{c1}+{c2}; c={second}",
        params=params,
    )


# =====================================================================
# Registry
# =====================================================================

FAMILIES: Dict[str, Family] = {
    f.name: f
    for f in (
        Family(
            name="stencil",
            category="Synthetic: stencil sweep",
            description="R-point 1D stencil with idempotent repeat sweeps",
            render=_render_stencil,
        ),
        Family(
            name="reduction",
            category="Synthetic: global reduction",
            description="global sum via atomicAdd vs reduction(+:)",
            render=_render_reduction,
        ),
        Family(
            name="scan",
            category="Synthetic: segmented scan",
            description="per-segment inclusive prefix sums",
            render=_render_scan,
        ),
        Family(
            name="histogram",
            category="Synthetic: atomic histogram",
            description="contended atomic binning with weighted checksum",
            render=_render_histogram,
        ),
        Family(
            name="matmul",
            category="Synthetic: dense matmul",
            description="one-element-per-thread dense matrix product",
            render=_render_matmul,
        ),
        Family(
            name="gather",
            category="Synthetic: gather/scatter",
            description="strided gather; difficulty >= 2 adds atomic scatter",
            render=_render_gather,
        ),
        Family(
            name="fusion",
            category="Synthetic: map fusion",
            description="two chained elementwise map kernels",
            render=_render_fusion,
        ),
    )
}


def family_names() -> List[str]:
    """All family identifiers, in registry (paper-ish) order."""
    return list(FAMILIES)


def get_family(name: str) -> Family:
    """Look up a family by identifier; raises ValueError with the catalogue."""
    try:
        return FAMILIES[name]
    except KeyError:
        known = ", ".join(FAMILIES)
        raise ValueError(
            f"unknown kernel family {name!r}; known families: {known}"
        ) from None
