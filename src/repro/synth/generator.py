"""Deterministic app generation, naming, suite specs and the self-check.

The unit of generation is a :class:`SynthSpec` ``(family, difficulty,
seed)``.  Its :attr:`~SynthSpec.name` — ``synth-<family>-d<difficulty>-
s<seed>`` — encodes the complete tuple, so any consumer holding only the
*name* (a resumed session, a cache entry, a campaign manifest) can rebuild
the identical :class:`~repro.hecbench.spec.AppSpec` via
:func:`app_from_name`.  Determinism is byte-level: the same spec renders
byte-identical sources in any process (the generator tests pin this).

A :class:`SynthSuiteSpec` names a whole generated suite —
``synth:stencil,reduction:seeds=3:difficulty=2`` — and is what the suite
registry's ``synth:`` resolver, ``--suite`` CLI flags and campaign specs
parse.  :func:`differential_check` is the correctness oracle: compile both
dialects, execute both through the interpreter, require clean exits and
byte-identical stdout.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import UnknownApplicationError, UnknownSuiteError
from repro.hecbench.spec import AppSpec
from repro.minilang.source import Dialect
from repro.synth.families import FAMILIES, GeneratedPair, get_family
from repro.toolchain import Executor, compiler_for
from repro.utils.rng import RngStream

SYNTH_NAME_RE = re.compile(r"^synth-([a-z]+)-d(\d+)-s(\d+)$")

DEFAULT_DIFFICULTY = 1


@dataclass(frozen=True)
class SynthSpec:
    """One generated app's identity: ``(family, difficulty, seed)``."""

    family: str
    difficulty: int = DEFAULT_DIFFICULTY
    seed: int = 0

    @property
    def name(self) -> str:
        return f"synth-{self.family}-d{self.difficulty}-s{self.seed}"

    @classmethod
    def from_name(cls, name: str) -> "SynthSpec":
        m = SYNTH_NAME_RE.match(name)
        if m is None:
            raise UnknownApplicationError(
                f"{name!r} is not a synthetic app name "
                f"(expected synth-<family>-d<difficulty>-s<seed>)"
            )
        family, difficulty, seed = m.group(1), int(m.group(2)), int(m.group(3))
        if family not in FAMILIES:
            known = ", ".join(FAMILIES)
            raise UnknownApplicationError(
                f"unknown kernel family {family!r} in app name {name!r}; "
                f"known families: {known}"
            )
        if difficulty < 1:
            raise UnknownApplicationError(
                f"app name {name!r} has difficulty {difficulty}; "
                f"difficulty must be >= 1"
            )
        return cls(family=family, difficulty=difficulty, seed=seed)


def is_synth_name(name: str) -> bool:
    """Does ``name`` follow the synthetic-app naming grammar?"""
    return SYNTH_NAME_RE.match(name) is not None


def _synthesized_scales(spec: SynthSpec) -> Tuple[float, float]:
    """Deterministic (work_scale, launch_scale) for the perf model.

    Reduced synthetic workloads stand in for nominal runs the same way the
    Table IV apps do: ``work_scale`` (total-work ratio) is drawn
    log-uniformly across the range the real suite spans, and
    ``launch_scale`` (event-count ratio) is drawn lower, as repeat counts
    shrink less than problem sizes.  Both grow with difficulty.
    """
    rng = RngStream(spec.seed, "synth", spec.family,
                    f"d{spec.difficulty}", "scales")
    work = 10.0 ** rng.uniform(3.0, 5.5) * spec.difficulty
    launch = 10.0 ** rng.uniform(0.5, 3.0) * spec.difficulty
    return round(work, 1), round(launch, 3)


def generate_pair(spec: SynthSpec) -> GeneratedPair:
    """Render the paired sources for a spec (byte-deterministic)."""
    family = get_family(spec.family)
    return family.generate(spec.difficulty, spec.seed)


def generate_app(spec: SynthSpec) -> AppSpec:
    """Expand a spec into a full :class:`AppSpec` the pipeline can run."""
    family = get_family(spec.family)
    pair = family.generate(spec.difficulty, spec.seed)
    work_scale, launch_scale = _synthesized_scales(spec)
    return AppSpec(
        name=spec.name,
        category=family.category,
        paper_args=[],
        args=[],
        cuda_source=pair.cuda_source,
        omp_source=pair.omp_source,
        work_scale=work_scale,
        launch_scale=launch_scale,
        notes=f"generated: {pair.notes}",
    )


def app_from_name(name: str) -> AppSpec:
    """Rebuild a generated app from its name alone (names encode specs)."""
    return generate_app(SynthSpec.from_name(name))


# ---------------------------------------------------------------------
# Suite specs: "synth:stencil,reduction:seeds=3:difficulty=2"
# ---------------------------------------------------------------------

SUITE_PREFIX = "synth:"


@dataclass(frozen=True)
class SynthSuiteSpec:
    """A whole generated suite: families x seed count at one difficulty."""

    families: Tuple[str, ...]
    seeds: int = 1
    difficulty: int = DEFAULT_DIFFICULTY

    def __post_init__(self) -> None:
        if not self.families:
            raise UnknownSuiteError("synth suite spec names no families")
        for fam in self.families:
            if fam not in FAMILIES:
                known = ", ".join(FAMILIES)
                raise UnknownSuiteError(
                    f"unknown kernel family {fam!r} in synth suite spec; "
                    f"known families: {known}"
                )
        if self.seeds < 1:
            raise UnknownSuiteError(
                f"synth suite spec needs seeds >= 1, got {self.seeds}"
            )
        if self.difficulty < 1:
            raise UnknownSuiteError(
                f"synth suite spec needs difficulty >= 1, "
                f"got {self.difficulty}"
            )

    @property
    def spec_string(self) -> str:
        """Canonical round-trippable form (a valid ``--suite`` value)."""
        return (
            f"synth:{','.join(self.families)}:seeds={self.seeds}"
            f":difficulty={self.difficulty}"
        )

    def specs(self) -> List[SynthSpec]:
        """Every (family, seed) cell, family-major."""
        return [
            SynthSpec(family=fam, difficulty=self.difficulty, seed=s)
            for fam in self.families
            for s in range(self.seeds)
        ]

    def apps(self) -> List[AppSpec]:
        return [generate_app(spec) for spec in self.specs()]


def parse_suite_spec(text: str) -> SynthSuiteSpec:
    """Parse ``synth:<families>[:seeds=N][:difficulty=D]``.

    ``<families>`` is a comma-separated list of family identifiers (or
    ``all``); ``seeds`` counts generation seeds ``0..N-1`` per family.
    """
    if not text.startswith(SUITE_PREFIX):
        raise UnknownSuiteError(
            f"not a synth suite spec: {text!r} (expected "
            f"'synth:<families>[:seeds=N][:difficulty=D]')"
        )
    parts = text[len(SUITE_PREFIX):].split(":")
    family_part, options = parts[0], parts[1:]
    if family_part == "all":
        families: Tuple[str, ...] = tuple(FAMILIES)
    else:
        seen: Dict[str, None] = {}
        for fam in family_part.split(","):
            fam = fam.strip()
            if fam:
                seen.setdefault(fam)
        families = tuple(seen)
    kwargs: Dict[str, int] = {}
    for opt in options:
        key, sep, value = opt.partition("=")
        if not sep or key not in ("seeds", "difficulty"):
            raise UnknownSuiteError(
                f"bad synth suite option {opt!r} in {text!r} "
                f"(expected seeds=N or difficulty=D)"
            )
        try:
            kwargs[key] = int(value)
        except ValueError:
            raise UnknownSuiteError(
                f"synth suite option {key!r} needs an integer, got {value!r}"
            ) from None
    return SynthSuiteSpec(families=families, **kwargs)


def generate_suite_apps(
    families: Sequence[str], seeds: int = 1,
    difficulty: int = DEFAULT_DIFFICULTY,
) -> List[AppSpec]:
    """Generate a whole suite's apps (family-major, seeds 0..N-1)."""
    return SynthSuiteSpec(
        families=tuple(families), seeds=seeds, difficulty=difficulty
    ).apps()


def suite_from_spec(text: str):
    """Resolve a ``synth:...`` spec string into a registry ``Suite``."""
    from repro.hecbench.suite import Suite

    spec = parse_suite_spec(text)
    return Suite(
        name=spec.spec_string,
        apps=tuple(spec.apps()),
        description=(
            f"generated suite: {len(spec.families)} family(ies) x "
            f"{spec.seeds} seed(s), difficulty {spec.difficulty}"
        ),
    )


# ---------------------------------------------------------------------
# Differential self-check
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class CheckReport:
    """Outcome of one app's differential CUDA-vs-OMP self-check."""

    app_name: str
    ok: bool
    stage: str  # "ok" | "compile-<dialect>" | "run-<dialect>" | "output-mismatch"
    detail: str = ""

    def __str__(self) -> str:
        status = "pass" if self.ok else f"FAIL[{self.stage}]"
        return f"{self.app_name}: {status}"


def differential_check(
    app: AppSpec, executor: Optional[Executor] = None
) -> CheckReport:
    """Compile + execute both dialects and require byte-identical stdout.

    This is the KernelBench-style programmatic oracle that gates a
    generated pair's entry into a suite: a pair that fails here is a
    generator bug, never a benchmark.
    """
    executor = executor or Executor()
    outputs: Dict[Dialect, str] = {}
    for dialect in (Dialect.CUDA, Dialect.OMP):
        compiled = compiler_for(dialect).compile(app.source(dialect))
        if not compiled.ok:
            return CheckReport(
                app_name=app.name, ok=False,
                stage=f"compile-{dialect.value}", detail=compiled.stderr,
            )
        run = executor.run(
            compiled.program, dialect, app.args,
            work_scale=app.work_scale, launch_scale=app.launch_scale,
        )
        if not run.ok:
            return CheckReport(
                app_name=app.name, ok=False,
                stage=f"run-{dialect.value}", detail=run.stderr,
            )
        if not run.stdout.strip():
            return CheckReport(
                app_name=app.name, ok=False,
                stage=f"run-{dialect.value}",
                detail="program printed no verification output",
            )
        outputs[dialect] = run.stdout
    if outputs[Dialect.CUDA] != outputs[Dialect.OMP]:
        return CheckReport(
            app_name=app.name, ok=False, stage="output-mismatch",
            detail=(
                f"CUDA stdout:\n{outputs[Dialect.CUDA]}\n"
                f"OpenMP stdout:\n{outputs[Dialect.OMP]}"
            ),
        )
    return CheckReport(app_name=app.name, ok=True, stage="ok")


def check_apps(
    apps: Sequence[AppSpec], executor: Optional[Executor] = None
) -> List[CheckReport]:
    """Differentially check a batch of apps with one shared executor."""
    executor = executor or Executor()
    return [differential_check(app, executor) for app in apps]
