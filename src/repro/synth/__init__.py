"""Seeded synthetic kernel generator (the ``repro.synth`` subsystem).

The paper evaluates LASSI on the ten fixed Table IV applications; this
package removes that ceiling.  A :class:`SynthSpec` — a ``(family,
difficulty, seed)`` tuple — deterministically expands into a *paired*
MiniCUDA + MiniOMP program drawn from one of seven kernel-family templates
(stencil, reduction, scan, histogram, matmul, gather, fusion).  Generated
pairs follow the same authoring contract as the hand-written Table IV
suite:

* byte-identical stdout across dialects (differentially verifiable);
* idiomatic staging (``cudaMalloc``/``cudaMemcpy`` vs ``target data`` /
  map clauses) inside the simulated transpiler's competence envelope;
* synthesized ``work_scale``/``launch_scale`` so the GPU performance
  model prices them like real workloads.

:func:`differential_check` replays each pair through the existing
compiler + interpreter executors and compares stdout — the programmatic
correctness oracle (KernelBench-style) a generated pair must pass before
it is trusted as a benchmark.  ``repro synth generate|check`` exit
non-zero on any disagreement, and CI plus the generator tests gate the
full family catalogue at a 100% pass rate; suite resolution itself stays
cheap and does not re-run the oracle.  App names (``synth-<family>-d<difficulty>-s<seed>``) encode
their full generation tuple, so :func:`app_from_name` can rebuild any app
from its name alone — which is what lets sessions, caches and campaign
replays treat synthetic scenarios exactly like Table IV ones.
"""

from repro.synth.families import FAMILIES, family_names, get_family
from repro.synth.generator import (
    SYNTH_NAME_RE,
    CheckReport,
    SynthSpec,
    SynthSuiteSpec,
    app_from_name,
    check_apps,
    differential_check,
    generate_app,
    generate_suite_apps,
    is_synth_name,
    parse_suite_spec,
    suite_from_spec,
)

__all__ = [
    "FAMILIES",
    "CheckReport",
    "SYNTH_NAME_RE",
    "SynthSpec",
    "SynthSuiteSpec",
    "app_from_name",
    "check_apps",
    "differential_check",
    "family_names",
    "generate_app",
    "generate_suite_apps",
    "get_family",
    "is_synth_name",
    "parse_suite_spec",
    "suite_from_spec",
]
