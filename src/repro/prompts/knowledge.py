"""Programming-language knowledge documents (§III-B of the paper).

The paper injects two documents into the prompt: the full OpenMP API 4.0
C/C++ Syntax Quick Reference Card (7,290 tokens) for CUDA->OpenMP, and
Chapter 5 of the CUDA C++ Programming Guide release 12.5 (4,053 tokens) for
OpenMP->CUDA.  Those documents are not redistributable, so we synthesize
reference cards of the same genre and the same token budgets: structured
directive/API catalogues with short usage notes, generated from tables so
their content is accurate for the mini-language dialects the pipeline
actually translates.

Token budgets are asserted in tests (within 10% of the paper's counts with
the project tokenizer) because they drive the context-window math of
§III-B — the documents must fit the 16,384-token window of Wizard Coder
alongside the source code and self-prompt summaries.
"""

from __future__ import annotations

from typing import List

from repro.minilang.source import Dialect

_OMP_DIRECTIVES = [
    ("parallel", "structured-block",
     "Creates a team of threads that execute the structured block concurrently.",
     ["if(expr)", "num_threads(n)", "default(shared|none)", "private(list)",
      "firstprivate(list)", "shared(list)", "copyin(list)", "reduction(op: list)",
      "proc_bind(master|close|spread)"]),
    ("for", "for-loops",
     "Distributes the iterations of one or more canonical for loops among the "
     "threads of the current team.",
     ["private(list)", "firstprivate(list)", "lastprivate(list)",
      "reduction(op: list)", "schedule(kind[, chunk])", "collapse(n)",
      "ordered", "nowait"]),
    ("parallel for", "for-loops",
     "Shortcut combining parallel and for: creates a team and distributes the "
     "loop iterations in one construct.",
     ["if(expr)", "num_threads(n)", "private(list)", "firstprivate(list)",
      "lastprivate(list)", "reduction(op: list)", "schedule(kind[, chunk])",
      "collapse(n)"]),
    ("sections", "section-blocks",
     "Distributes independent structured blocks among the threads of the team.",
     ["private(list)", "firstprivate(list)", "lastprivate(list)",
      "reduction(op: list)", "nowait"]),
    ("single", "structured-block",
     "The block executes on one thread of the team; an implicit barrier "
     "follows unless nowait is present.",
     ["private(list)", "firstprivate(list)", "copyprivate(list)", "nowait"]),
    ("task", "structured-block",
     "Defines an explicit task that may execute asynchronously by any thread "
     "of the team.",
     ["if(expr)", "final(expr)", "untied", "default(shared|none)",
      "mergeable", "private(list)", "firstprivate(list)", "shared(list)",
      "depend(type: list)", "priority(n)"]),
    ("taskwait", "standalone",
     "Waits for the completion of child tasks generated since the beginning "
     "of the current task.", []),
    ("barrier", "standalone",
     "All threads of the team must reach the barrier before any proceed.", []),
    ("critical", "structured-block",
     "The block executes by one thread at a time; an optional name "
     "distinguishes independent critical regions.", []),
    ("atomic", "update-statement",
     "Ensures a specific storage location is read, written or updated "
     "atomically. Forms: read, write, update (default), capture.",
     ["seq_cst", "read", "write", "update", "capture"]),
    ("flush", "standalone",
     "Makes the executing thread's view of memory consistent; an optional "
     "list restricts the flush set.", []),
    ("ordered", "structured-block",
     "The block executes in the sequential order of the loop iterations "
     "within an enclosing for construct declared ordered.", []),
    ("simd", "for-loops",
     "Declares that the loop iterations can be executed concurrently with "
     "SIMD instructions.",
     ["safelen(n)", "linear(list[: step])", "aligned(list[: n])",
      "private(list)", "lastprivate(list)", "reduction(op: list)",
      "collapse(n)"]),
    ("declare simd", "function-declaration",
     "Generates SIMD-enabled versions of an associated function.",
     ["simdlen(n)", "linear(list)", "aligned(list)", "uniform(list)",
      "inbranch", "notinbranch"]),
    ("target", "structured-block",
     "Maps variables to a device data environment and executes the block on "
     "the target device. Execution inside the region is initially a single "
     "thread; combine with teams and parallel constructs for parallelism.",
     ["device(n)", "map([kind:] list)", "if(expr)"]),
    ("target data", "structured-block",
     "Creates a device data environment for the extent of the region without "
     "initiating device execution. Arrays mapped here stay resident for all "
     "enclosed target regions, avoiding repeated host-device transfers.",
     ["device(n)", "map([kind:] list)", "if(expr)"]),
    ("target update", "standalone",
     "Makes the listed items consistent between host and device inside a "
     "target data region.",
     ["to(list)", "from(list)", "device(n)", "if(expr)"]),
    ("declare target", "declarations",
     "Marks functions and variables as available in the device data "
     "environment.", []),
    ("teams", "structured-block",
     "Creates a league of thread teams; must be strictly nested inside a "
     "target construct.",
     ["num_teams(n)", "thread_limit(n)", "default(shared|none)",
      "private(list)", "firstprivate(list)", "shared(list)",
      "reduction(op: list)"]),
    ("distribute", "for-loops",
     "Distributes the iterations of the loops among the master threads of "
     "all teams in the league.",
     ["private(list)", "firstprivate(list)", "collapse(n)",
      "dist_schedule(static[, chunk])"]),
    ("target teams distribute parallel for", "for-loops",
     "Combined accelerated worksharing construct: offloads the loop to the "
     "device, creates a league of teams and distributes iterations across "
     "all device threads. The workhorse directive for GPU offloading of "
     "data-parallel loops.",
     ["device(n)", "map([kind:] list)", "num_teams(n)", "thread_limit(n)",
      "num_threads(n)", "reduction(op: list)", "collapse(n)",
      "schedule(static[, chunk])", "private(list)", "firstprivate(list)"]),
]

_OMP_CLAUSE_NOTES = [
    ("map(to: list)",
     "Copies each list item from the host to the device data environment on "
     "entry to the region. Array sections use the form name[lower:length]."),
    ("map(from: list)",
     "Allocates device storage on entry and copies each item back to the "
     "host on exit from the region."),
    ("map(tofrom: list)",
     "Combination of to and from: copy in on entry, copy out on exit. This "
     "is the default map kind when none is specified."),
    ("map(alloc: list)",
     "Allocates uninitialized device storage; no copies in either direction. "
     "Use for purely intermediate device arrays."),
    ("reduction(+: x)",
     "Each thread works on a private copy of x initialized to the identity; "
     "the copies are combined with the original variable at the end of the "
     "region. Operators: + * - & | ^ && || max min."),
    ("schedule(static[, chunk])",
     "Iterations are divided into chunks assigned round-robin to threads at "
     "compile time; the recommended schedule for regular GPU loops."),
    ("schedule(dynamic[, chunk])",
     "Chunks are handed to threads on request; higher overhead, avoid on "
     "accelerator targets."),
    ("collapse(n)",
     "Fuses the iteration spaces of the next n perfectly nested loops into "
     "one larger iteration space before distribution."),
    ("num_threads(n)",
     "Requests n threads for the parallel region. Omitting it on offloaded "
     "loops lets the runtime pick the device-appropriate width."),
    ("num_teams(n) / thread_limit(n)",
     "Bound the league size and the per-team thread count of a teams "
     "construct."),
    ("private(list) / firstprivate(list)",
     "Gives each thread an uninitialized (private) or value-initialized "
     "(firstprivate) copy of each listed variable."),
    ("if(expr)",
     "When expr evaluates to false the region executes on the host (target) "
     "or serially (parallel)."),
]

_OMP_RUNTIME = [
    ("int omp_get_num_threads(void)",
     "Number of threads in the current team."),
    ("int omp_get_max_threads(void)",
     "Upper bound on threads available to a subsequent parallel region."),
    ("int omp_get_thread_num(void)",
     "Thread number of the calling thread, 0 .. team size - 1."),
    ("void omp_set_num_threads(int n)",
     "Sets the default team size for subsequent parallel regions."),
    ("int omp_get_num_devices(void)",
     "Number of available non-host devices."),
    ("int omp_get_team_num(void)", "Team number within the current league."),
    ("int omp_get_num_teams(void)", "Number of teams in the current league."),
    ("double omp_get_wtime(void)", "Elapsed wall-clock time in seconds."),
    ("int omp_is_initial_device(void)",
     "Nonzero when executing on the host device."),
    ("void omp_set_default_device(int n)", "Sets the default target device."),
]

_CUDA_SECTIONS = [
    ("5.1 Kernels",
     "CUDA C++ extends C++ by allowing the definition of kernels: functions "
     "declared with the __global__ specifier that, when called, are executed "
     "N times in parallel by N different CUDA threads. A kernel is launched "
     "with the execution configuration syntax name<<<numBlocks, "
     "threadsPerBlock>>>(arguments). Each thread that executes the kernel is "
     "given a unique thread ID accessible through built-in variables.",
     [("__global__ void k(float* a)", "kernel definition; must return void"),
      ("k<<<grid, block>>>(args);",
       "asynchronous launch of grid x block threads"),
      ("threadIdx.x", "thread index within the block (also .y, .z)"),
      ("blockIdx.x", "block index within the grid"),
      ("blockDim.x", "number of threads per block"),
      ("gridDim.x", "number of blocks in the grid"),
      ("int i = blockIdx.x * blockDim.x + threadIdx.x;",
       "the canonical global index of a 1-D launch"),
      ("if (i < n) { ... }",
       "guard required because the grid is rounded up to whole blocks")]),
    ("5.2 Thread hierarchy",
     "Threads are grouped into blocks of up to 1024 threads; blocks are "
     "grouped into a grid. Blocks are required to execute independently so "
     "they can be scheduled in any order across streaming multiprocessors. "
     "Threads within a block can cooperate through shared memory and can "
     "synchronize with __syncthreads(), which acts as a barrier for every "
     "thread of the block.",
     [("__shared__ float tile[256];", "block-local shared memory array"),
      ("__syncthreads();",
       "block-wide barrier; all threads must reach it (no divergence)"),
      ("dim3 block(16, 16);", "multi-dimensional block shape"),
      ("blocks = (n + block - 1) / block;",
       "grid size that covers n elements")]),
    ("5.3 Memory hierarchy",
     "Each thread has private local memory and registers. Each block has "
     "shared memory visible to the whole block with the block's lifetime. "
     "All threads access the same global memory. Global memory accesses are "
     "most efficient when consecutive threads access consecutive addresses "
     "(coalescing).",
     [("cudaMalloc(&devPtr, bytes)", "allocate global device memory"),
      ("cudaFree(devPtr)", "release device memory"),
      ("cudaMemcpy(dst, src, bytes, kind)",
       "blocking copy; kind is cudaMemcpyHostToDevice, DeviceToHost or "
       "DeviceToDevice"),
      ("cudaMemset(devPtr, value, bytes)", "fill device memory"),
      ("cudaDeviceSynchronize()",
       "block the host until all queued device work completes")]),
    ("5.4 Heterogeneous programming",
     "The CUDA programming model assumes the host and the device maintain "
     "separate memory spaces. A typical program allocates device memory, "
     "copies input data from host to device, launches kernels, and copies "
     "results back. Dereferencing a device pointer on the host, or a host "
     "pointer on the device, is undefined behaviour and typically faults.",
     [("float* d_a; cudaMalloc(&d_a, n * sizeof(float));",
       "device allocation idiom"),
      ("cudaMemcpy(d_a, h_a, n * sizeof(float), cudaMemcpyHostToDevice);",
       "stage inputs before the first launch"),
      ("cudaMemcpy(h_c, d_c, n * sizeof(float), cudaMemcpyDeviceToHost);",
       "collect results after the last launch"),
      ("cudaGetLastError()", "returns the last error raised by the runtime")]),
    ("5.5 Atomic functions and cooperation",
     "Atomic functions perform read-modify-write operations on one 32-bit or "
     "64-bit word in global or shared memory without interference from other "
     "threads. Heavy contention on a single address serializes and should be "
     "reduced with privatization or reductions where possible.",
     [("atomicAdd(&x, v)", "returns the old value; int, float and double"),
      ("atomicSub(&x, v)", "subtraction on 32-bit integers"),
      ("atomicMax(&x, v) / atomicMin(&x, v)", "maximum / minimum"),
      ("atomicExch(&x, v)", "swap"),
      ("atomicCAS(&x, compare, v)", "compare-and-swap primitive")]),
    ("5.6 Performance guidelines",
     "Expose sufficient parallelism to saturate the device: launches of a "
     "few hundred threads leave most multiprocessors idle. Minimize host-"
     "device transfers, keep data resident on the device across kernel "
     "launches, prefer coalesced access patterns, and avoid divergent "
     "branches within a warp. Choose thread-block sizes that are multiples "
     "of the warp size (32); 128 to 512 threads per block is typical.",
     [("occupancy", "ratio of resident warps to the hardware maximum"),
      ("coalescing", "one memory transaction servicing a whole warp"),
      ("warp", "group of 32 threads executing in lockstep"),
      ("stream", "queue of device work that may overlap with others")]),
]


_OMP_ENV_VARS = [
    ("OMP_NUM_THREADS", "Default number of threads for parallel regions."),
    ("OMP_SCHEDULE", "Run-sched-var for schedule(runtime) loops, e.g. 'static,4'."),
    ("OMP_DYNAMIC", "Enables dynamic adjustment of team sizes."),
    ("OMP_NESTED", "Enables nested parallelism."),
    ("OMP_STACKSIZE", "Stack size for threads created by the runtime."),
    ("OMP_WAIT_POLICY", "ACTIVE (spin) or PASSIVE (yield) waiting."),
    ("OMP_PROC_BIND", "Thread affinity policy: true, false, master, close, spread."),
    ("OMP_PLACES", "Abstract or explicit list of places for affinity."),
    ("OMP_DEFAULT_DEVICE", "Device number used when no device clause is given."),
    ("OMP_MAX_ACTIVE_LEVELS", "Maximum number of nested active parallel regions."),
    ("OMP_THREAD_LIMIT", "Upper bound on the number of OpenMP threads."),
    ("OMP_CANCELLATION", "Enables the cancel construct."),
    ("OMP_DISPLAY_ENV", "Print the OpenMP version and ICV settings at startup."),
]

_OMP_EXAMPLES = [
    ("Offloaded vector add",
     ["int n = 1 << 20;",
      "#pragma omp target teams distribute parallel for map(to: a[0:n]) \\",
      "        map(to: b[0:n]) map(from: c[0:n])",
      "for (int i = 0; i < n; i++) {",
      "  c[i] = a[i] + b[i];",
      "}"]),
    ("Device-resident iteration with target data",
     ["#pragma omp target data map(tofrom: u[0:n]) map(alloc: tmp[0:n])",
      "{",
      "  for (int it = 0; it < iters; it++) {",
      "    #pragma omp target teams distribute parallel for",
      "    for (int i = 1; i < n - 1; i++) {",
      "      tmp[i] = 0.5 * (u[i - 1] + u[i + 1]);",
      "    }",
      "    double* t = u; u = tmp; tmp = t;",
      "  }",
      "}"]),
    ("Offloaded reduction",
     ["double sum = 0.0;",
      "#pragma omp target teams distribute parallel for map(to: x[0:n]) \\",
      "        reduction(+: sum)",
      "for (int i = 0; i < n; i++) {",
      "  sum += x[i] * x[i];",
      "}"]),
    ("Atomic histogram update",
     ["#pragma omp target teams distribute parallel for map(to: v[0:n]) \\",
      "        map(tofrom: hist[0:nbins])",
      "for (int i = 0; i < n; i++) {",
      "  #pragma omp atomic",
      "  hist[v[i] % nbins] += 1;",
      "}"]),
    ("Collapsed 2-D loop nest",
     ["#pragma omp target teams distribute parallel for collapse(2) \\",
      "        map(tofrom: grid[0:rows*cols])",
      "for (int r = 0; r < rows; r++) {",
      "  for (int c = 0; c < cols; c++) {",
      "    grid[r * cols + c] *= 2.0f;",
      "  }",
      "}"]),
    ("Host parallel for with static schedule",
     ["#pragma omp parallel for schedule(static) num_threads(8)",
      "for (int i = 0; i < n; i++) {",
      "  y[i] = a * x[i] + y[i];",
      "}"]),
]

_OMP_PITFALLS = [
    ("Forgetting the map clause",
     "A pointer dereferenced inside a target region without a corresponding "
     "map (and outside any enclosing target data region) is a host address "
     "on the device; the access faults or silently reads garbage."),
    ("Mapping on every iteration",
     "Placing map(tofrom:) on a target loop inside an iteration loop "
     "re-transfers the arrays across PCIe on every pass; hoist the data "
     "into a target data region and the transfers disappear."),
    ("Dropping 'parallel for' from the combined construct",
     "'#pragma omp target' alone executes the region with a single device "
     "thread. '#pragma omp target teams distribute' without 'parallel for' "
     "uses one thread per team. Either form leaves the accelerator almost "
     "entirely idle and can be orders of magnitude slower."),
    ("Racing on a shared scalar",
     "Accumulating into a shared variable without a reduction clause or "
     "atomic directive is a data race; results vary run to run."),
    ("Non-canonical loops",
     "Loop directives require the canonical form with an invariant bound; "
     "while loops and iterator-style loops are not distributable."),
    ("Expecting map(from:) to preserve host values",
     "map(from:) does not copy host data to the device on entry; device "
     "storage starts undefined. Use tofrom when the region reads and "
     "writes the array."),
    ("Relying on dynamic scheduling on devices",
     "schedule(dynamic) serializes on a shared counter on most device "
     "runtimes; prefer schedule(static)."),
    ("Assuming synchronization between teams",
     "Teams cannot synchronize with each other inside a target region; "
     "split the work into separate target regions instead."),
]


def _render_omp_card() -> str:
    lines: List[str] = []
    lines.append("OpenMP API 4.0 C/C++ Syntax Quick Reference Card (offline rendition)")
    lines.append("=" * 72)
    lines.append(
        "OpenMP is an API for writing multithreaded applications consisting "
        "of compiler directives, library routines and environment variables. "
        "Directives take the form '#pragma omp directive-name [clause[,] "
        "...]' and apply to the following statement or structured block. "
        "This card summarizes the directives and clauses of the 4.0 "
        "specification with device (accelerator) support."
    )
    lines.append("")
    lines.append("DIRECTIVES")
    lines.append("-" * 72)
    for name, applies, desc, clauses in _OMP_DIRECTIVES:
        lines.append(f"#pragma omp {name}")
        lines.append(f"  applies to: {applies}")
        lines.append(f"  {desc}")
        if clauses:
            lines.append("  clauses: " + ", ".join(clauses))
        lines.append("")
    lines.append("CLAUSE NOTES")
    lines.append("-" * 72)
    for clause, note in _OMP_CLAUSE_NOTES:
        lines.append(f"{clause}")
        lines.append(f"  {note}")
        lines.append("")
    lines.append("RUNTIME LIBRARY ROUTINES (omp.h)")
    lines.append("-" * 72)
    for sig, note in _OMP_RUNTIME:
        lines.append(f"{sig}")
        lines.append(f"  {note}")
        lines.append("")
    lines.append("ENVIRONMENT VARIABLES")
    lines.append("-" * 72)
    for name, note in _OMP_ENV_VARS:
        lines.append(f"{name}")
        lines.append(f"  {note}")
        lines.append("")
    lines.append("EXAMPLES")
    lines.append("-" * 72)
    for title, code in _OMP_EXAMPLES:
        lines.append(f"// {title}")
        lines.extend(code)
        lines.append("")
    lines.append("COMMON PITFALLS")
    lines.append("-" * 72)
    for title, note in _OMP_PITFALLS:
        lines.append(f"{title}:")
        lines.append(f"  {note}")
        lines.append("")
    lines.append("DEVICE OFFLOADING CHECKLIST")
    lines.append("-" * 72)
    for item in [
        "Map every array dereferenced inside a target region; unmapped host "
        "pointers fault on the device.",
        "Use 'target data' to keep arrays resident across repeated target "
        "regions instead of remapping them every launch.",
        "Scalars referenced in a target region are firstprivate by default.",
        "Combine 'target teams distribute parallel for' for flat data-"
        "parallel loops; add collapse(n) for nested loops.",
        "Reductions across device threads require a reduction clause; plain "
        "updates to a shared scalar race.",
        "Updates to the same array element from multiple iterations need "
        "'#pragma omp atomic'.",
        "The loop following a loop directive must be in canonical form: "
        "'for (int i = start; i < bound; i++)'.",
        "Static schedules suit regular loops on accelerators; dynamic "
        "scheduling adds overhead.",
    ]:
        lines.append(f"* {item}")
    lines.append("")
    lines.append("DIRECTIVE / CLAUSE COMPATIBILITY MATRIX")
    lines.append("-" * 72)
    all_clauses = sorted({
        c.split("(")[0] for _, _, _, cs in _OMP_DIRECTIVES for c in cs
    })
    for di, (name, _, _, clauses) in enumerate(_OMP_DIRECTIVES):
        allowed = {c.split("(")[0] for c in clauses}
        for clause in all_clauses:
            if clause in allowed:
                lines.append(f"  {name} + {clause}: allowed")
            elif di < 12:
                lines.append(f"  {name} + {clause}: not permitted")
        lines.append("")
    lines.append("LOCK AND TIMING ROUTINES")
    lines.append("-" * 72)
    for sig, note in [
        ("void omp_init_lock(omp_lock_t* lock)", "Initializes a simple lock."),
        ("void omp_destroy_lock(omp_lock_t* lock)", "Uninitializes a lock."),
        ("void omp_set_lock(omp_lock_t* lock)",
         "Blocks until the lock is available, then sets it."),
        ("void omp_unset_lock(omp_lock_t* lock)", "Releases the lock."),
        ("int omp_test_lock(omp_lock_t* lock)",
         "Attempts to set the lock without blocking."),
        ("void omp_init_nest_lock(omp_nest_lock_t* lock)",
         "Initializes a nestable lock."),
        ("void omp_set_nest_lock(omp_nest_lock_t* lock)",
         "Sets a nestable lock (re-entrant for the owner)."),
        ("void omp_unset_nest_lock(omp_nest_lock_t* lock)",
         "Decrements the nesting count, releasing at zero."),
        ("double omp_get_wtime(void)",
         "Wall-clock seconds from some fixed point in the past."),
        ("double omp_get_wtick(void)", "Timer resolution in seconds."),
    ]:
        lines.append(f"{sig}")
        lines.append(f"  {note}")
        lines.append("")
    lines.append("INTERNAL CONTROL VARIABLES (ICVs)")
    lines.append("-" * 72)
    for icv, scope, note in [
        ("dyn-var", "data environment", "dynamic adjustment of team sizes"),
        ("nest-var", "data environment", "nested parallelism enabled"),
        ("nthreads-var", "data environment", "default team size list"),
        ("run-sched-var", "data environment", "schedule for runtime loops"),
        ("def-sched-var", "device", "implementation-defined default schedule"),
        ("bind-var", "data environment", "thread affinity policy list"),
        ("stacksize-var", "device", "thread stack size"),
        ("wait-policy-var", "device", "ACTIVE or PASSIVE waiting"),
        ("thread-limit-var", "data environment", "max threads in contention group"),
        ("max-active-levels-var", "device", "nesting depth limit"),
        ("place-partition-var", "data environment", "places for affinity"),
        ("default-device-var", "data environment", "default target device"),
        ("cancel-var", "global", "whether cancellation is enabled"),
    ]:
        lines.append(f"  {icv} ({scope}): {note}")
    lines.append("")
    lines.append("ALPHABETICAL INDEX")
    lines.append("-" * 72)
    index_entries = []
    for name, applies, _, _ in _OMP_DIRECTIVES:
        index_entries.append((name, f"directive, applies to {applies}"))
    for clause, _ in _OMP_CLAUSE_NOTES:
        index_entries.append((clause.split("(")[0], "clause, see clause notes"))
    for sig, _ in _OMP_RUNTIME:
        fn = sig.split("(")[0].split()[-1]
        index_entries.append((fn, "runtime library routine"))
    for var, _ in _OMP_ENV_VARS:
        index_entries.append((var, "environment variable"))
    for name, what in sorted(set(index_entries)):
        lines.append(f"  {name} — {what}")
    return "\n".join(lines)


_CUDA_EXAMPLES = [
    ("Vector addition",
     ["__global__ void add(float* a, float* b, float* c, int n) {",
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;",
      "  if (i < n) {",
      "    c[i] = a[i] + b[i];",
      "  }",
      "}",
      "// host:",
      "float* d_a; cudaMalloc(&d_a, n * sizeof(float));",
      "cudaMemcpy(d_a, h_a, n * sizeof(float), cudaMemcpyHostToDevice);",
      "add<<<(n + 255) / 256, 256>>>(d_a, d_b, d_c, n);",
      "cudaMemcpy(h_c, d_c, n * sizeof(float), cudaMemcpyDeviceToHost);"]),
    ("Global reduction with atomics",
     ["__global__ void sum(float* x, float* out, int n) {",
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;",
      "  if (i < n) {",
      "    atomicAdd(&out[0], x[i]);",
      "  }",
      "}",
      "// host: cudaMemset(d_out, 0, sizeof(float)); before the launch"]),
    ("Ping-pong buffers across iterations",
     ["for (int it = 0; it < iters; it++) {",
      "  step<<<blocks, threads>>>(d_in, d_out, n);",
      "  float* t = d_in; d_in = d_out; d_out = t;",
      "}",
      "// copy d_in back once after the loop, not inside it"]),
    ("2-D index from a flat launch",
     ["int idx = blockIdx.x * blockDim.x + threadIdx.x;",
      "int row = idx / cols;",
      "int col = idx % cols;",
      "if (idx < rows * cols) { grid[row * cols + col] *= 2.0f; }"]),
]

_CUDA_API_TABLE = [
    ("cudaError_t cudaMalloc(void** devPtr, size_t size)",
     "Allocates size bytes of linear device memory."),
    ("cudaError_t cudaFree(void* devPtr)",
     "Frees memory allocated with cudaMalloc."),
    ("cudaError_t cudaMemcpy(void* dst, const void* src, size_t count, "
     "cudaMemcpyKind kind)",
     "Synchronous copy; the kind must match the actual source and "
     "destination spaces or the call fails with cudaErrorInvalidValue."),
    ("cudaError_t cudaMemset(void* devPtr, int value, size_t count)",
     "Fills device memory with a byte value."),
    ("cudaError_t cudaDeviceSynchronize(void)",
     "Blocks the host until the device has completed all preceding work; "
     "also surfaces asynchronous kernel errors."),
    ("cudaError_t cudaGetLastError(void)",
     "Returns and clears the last runtime error."),
    ("const char* cudaGetErrorString(cudaError_t err)",
     "Human-readable description of an error code."),
]

_CUDA_CHECKLIST = [
    "Every kernel needs the bounds guard 'if (i < n)' because the grid is "
    "rounded up to a whole number of blocks.",
    "Pick threadsPerBlock as a multiple of 32, at most 1024; 128-512 is a "
    "good default.",
    "Allocate with cudaMalloc and copy inputs host-to-device before the "
    "first launch; copy results back after the last launch.",
    "Never dereference a device pointer in host code or a host pointer in "
    "device code.",
    "Keep buffers resident across iteration loops; move cudaMemcpy calls "
    "out of hot loops.",
    "Replace OpenMP reduction clauses with atomicAdd into a zero-initialized "
    "device accumulator, or a block-level reduction.",
    "Replace '#pragma omp atomic' updates with the corresponding atomic "
    "intrinsic (atomicAdd, atomicSub, ...).",
    "__global__ functions must return void; results travel through memory.",
    "Kernel launches are asynchronous: call cudaDeviceSynchronize() before "
    "timing or reading results through mapped memory.",
    "Free device memory with cudaFree, not free().",
]


def _render_cuda_guide() -> str:
    lines: List[str] = []
    lines.append("CUDA C++ Programming Guide, Chapter 5: Programming Model "
                 "(offline rendition)")
    lines.append("=" * 72)
    for title, intro, items in _CUDA_SECTIONS:
        lines.append(title)
        lines.append("-" * 72)
        lines.append(intro)
        for code, note in items:
            lines.append(f"  {code}")
            lines.append(f"    {note}")
        lines.append("")
    lines.append("5.7 Runtime API quick reference")
    lines.append("-" * 72)
    for sig, note in _CUDA_API_TABLE:
        lines.append(f"  {sig}")
        lines.append(f"    {note}")
    lines.append("")
    lines.append("5.8 Worked examples")
    lines.append("-" * 72)
    for title, code in _CUDA_EXAMPLES:
        lines.append(f"// {title}")
        lines.extend(code)
        lines.append("")
    lines.append("5.9 Translation checklist")
    lines.append("-" * 72)
    for item in _CUDA_CHECKLIST:
        lines.append(f"* {item}")
    lines.append("")
    lines.append("5.10 Error codes")
    lines.append("-" * 72)
    for code, name, note in [
        (0, "cudaSuccess", "the requested operation completed"),
        (1, "cudaErrorInvalidValue",
         "one or more parameters is outside the acceptable range"),
        (2, "cudaErrorMemoryAllocation",
         "the runtime could not allocate enough memory"),
        (4, "cudaErrorCudartUnloading", "driver shutting down"),
        (9, "cudaErrorInvalidConfiguration",
         "the launch configuration exceeds device limits (e.g. more than "
         "1024 threads per block)"),
        (98, "cudaErrorInvalidDeviceFunction",
         "the kernel image is not compatible with the device"),
        (214, "cudaErrorECCUncorrectable", "uncorrectable memory error"),
        (700, "cudaErrorIllegalAddress",
         "a kernel accessed memory outside a valid allocation; the context "
         "is corrupted and must be recreated"),
        (701, "cudaErrorLaunchOutOfResources",
         "too many registers or too much shared memory requested"),
        (702, "cudaErrorLaunchTimeout",
         "the kernel ran longer than the watchdog allows"),
        (719, "cudaErrorLaunchFailure",
         "an unspecified error during kernel execution"),
    ]:
        lines.append(f"  {code:4d}  {name}")
        lines.append(f"        {note}")
    lines.append("")
    lines.append("5.11 Built-in variables and qualifiers index")
    lines.append("-" * 72)
    for name, note in [
        ("__global__", "kernel function qualifier; callable from host via <<<>>>"),
        ("__device__", "device function qualifier; callable from device code"),
        ("__host__", "host function qualifier (default); combinable with __device__"),
        ("__shared__", "block-shared storage qualifier"),
        ("__restrict__", "no-alias hint on pointer parameters"),
        ("threadIdx", "uint3 thread index within the block"),
        ("blockIdx", "uint3 block index within the grid"),
        ("blockDim", "dim3 threads per block"),
        ("gridDim", "dim3 blocks per grid"),
        ("warpSize", "int, 32 on all current hardware"),
        ("cudaMemcpyHostToDevice", "memcpy kind: host source, device destination"),
        ("cudaMemcpyDeviceToHost", "memcpy kind: device source, host destination"),
        ("cudaMemcpyDeviceToDevice", "memcpy kind: both ends on the device"),
        ("atomicAdd / atomicSub", "atomic arithmetic on global or shared words"),
        ("atomicMax / atomicMin", "atomic extrema"),
        ("atomicExch / atomicCAS", "atomic exchange and compare-and-swap"),
        ("__syncthreads", "intra-block barrier and memory fence"),
    ]:
        lines.append(f"  {name}")
        lines.append(f"    {note}")
    lines.append("")
    lines.append("5.12 Streams and asynchronous execution")
    lines.append("-" * 72)
    lines.append(
        "A stream is a sequence of device operations that execute in issue "
        "order; operations in different streams may overlap. Kernel launches "
        "are asynchronous with respect to the host: control returns before "
        "the kernel completes. cudaMemcpy is synchronous; cudaMemcpyAsync "
        "enqueues the copy on a stream and requires pinned host memory for "
        "true overlap. The default (null) stream synchronizes with all other "
        "streams unless the device is in per-thread default stream mode."
    )
    for sig, note in [
        ("cudaStreamCreate(&stream)", "creates an asynchronous stream"),
        ("cudaStreamDestroy(stream)", "releases a stream after its work drains"),
        ("cudaStreamSynchronize(stream)", "blocks the host until the stream drains"),
        ("cudaMemcpyAsync(dst, src, bytes, kind, stream)",
         "asynchronous copy; host buffer must be pinned for overlap"),
        ("kernel<<<grid, block, sharedBytes, stream>>>(...)",
         "launch on a specific stream with dynamic shared memory"),
        ("cudaEventRecord(event, stream)", "timestamp marker in a stream"),
        ("cudaEventElapsedTime(&ms, start, stop)",
         "milliseconds between two recorded events"),
    ]:
        lines.append(f"  {sig}")
        lines.append(f"    {note}")
    lines.append("")
    lines.append("5.13 Unified and pinned memory")
    lines.append("-" * 72)
    lines.append(
        "cudaMallocManaged allocates memory accessible from both host and "
        "device with on-demand migration; convenient but migrations can "
        "dominate runtimes for ping-pong access patterns, so explicit "
        "cudaMalloc plus cudaMemcpy staging remains the predictable choice "
        "for benchmark translation. cudaMallocHost allocates pinned "
        "(page-locked) host memory, roughly doubling effective PCIe copy "
        "bandwidth and enabling async copies. cudaHostRegister pins an "
        "existing allocation. Always pair cudaMallocHost with cudaFreeHost."
    )
    lines.append("")
    lines.append("5.14 Device limits by compute capability")
    lines.append("-" * 72)
    header = (
        "capability", "max threads/block", "max block dim x",
        "max grid dim x", "shared mem/block", "registers/thread",
    )
    lines.append("  " + " | ".join(header))
    for row in [
        ("3.5 (Kepler)", "1024", "1024", "2^31-1", "48 KB", "255"),
        ("5.2 (Maxwell)", "1024", "1024", "2^31-1", "48 KB", "255"),
        ("6.0 (Pascal)", "1024", "1024", "2^31-1", "48 KB", "255"),
        ("7.0 (Volta)", "1024", "1024", "2^31-1", "96 KB", "255"),
        ("7.5 (Turing)", "1024", "1024", "2^31-1", "64 KB", "255"),
        ("8.0 (Ampere A100)", "1024", "1024", "2^31-1", "164 KB", "255"),
        ("8.6 (Ampere)", "1024", "1024", "2^31-1", "100 KB", "255"),
        ("9.0 (Hopper)", "1024", "1024", "2^31-1", "228 KB", "255"),
    ]:
        lines.append("  " + " | ".join(row))
    lines.append("")
    lines.append(
        "Occupancy notes: the A100 (compute capability 8.0) schedules up to "
        "2048 resident threads per SM across 108 SMs, i.e. ~221k threads at "
        "full occupancy. Launches much smaller than this leave compute and "
        "bandwidth unsaturated; launches of one block, or one thread per "
        "block, serialize almost completely. Choose the grid so that "
        "gridDim.x * blockDim.x covers the problem with the bounds guard "
        "handling the remainder, and prefer several blocks per SM so the "
        "scheduler can hide memory latency. Kernel launch overhead is a few "
        "microseconds; amortize it by batching work per launch rather than "
        "launching per element. Host-device transfers over PCIe cost "
        "roughly 10 microseconds of latency plus time proportional to the "
        "payload; the bandwidth is an order of magnitude below HBM "
        "bandwidth, so data staged once should be reused by as many "
        "kernels as possible before being copied back."
    )
    return "\n".join(lines)


_CACHE = {}


def knowledge_document(target: Dialect) -> str:
    """The knowledge document injected for translations INTO ``target``.

    Mirrors §III-B: translating to CUDA injects the CUDA guide chapter;
    translating to OpenMP injects the OpenMP reference card.
    """
    if target not in _CACHE:
        if target is Dialect.OMP:
            _CACHE[target] = _render_omp_card()
        elif target is Dialect.CUDA:
            _CACHE[target] = _render_cuda_guide()
        else:
            raise ValueError(f"no knowledge document for {target}")
    return _CACHE[target]
