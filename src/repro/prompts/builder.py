"""Full-prompt assembly with self-prompting (§III-B/C).

LASSI builds the translation prompt from four parts: (1) the language
knowledge document, (2) an LLM-generated summary of that knowledge, (3) an
LLM-generated description of the source code, and (4) the Table II
translation prompt wrapped in the "think carefully" prefix with the source
code spliced in.  The builder performs the context-window accounting the
paper discusses: the assembled prompt must fit the model's window (the
lower-bound window in Table V is Wizard Coder's 16,384 tokens).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ContextWindowExceeded
from repro.llm.base import ChatMessage, LLMClient
from repro.minilang.source import Dialect
from repro.prompts import dictionary
from repro.prompts.knowledge import knowledge_document
from repro.utils.tokens import count_tokens


@dataclass
class PromptBundle:
    """Everything assembled for one translation request."""

    system: str
    knowledge: str
    knowledge_summary: str
    code_description: str
    translation_request: str
    full_user_prompt: str
    prompt_tokens: int


KNOWLEDGE_SUMMARY_REQUEST = (
    "Summarize the following {language} programming reference so you can "
    "apply it when translating code. Keep every directive, API call and "
    "performance rule you would need:\n\n{knowledge}"
)

CODE_DESCRIPTION_REQUEST = (
    "Describe succinctly what the following {language} program computes and "
    "how it is parallelized:\n\n{code}"
)


class PromptBuilder:
    """Assembles LASSI prompts for one translation direction."""

    def __init__(
        self,
        source: Dialect,
        target: Dialect,
        include_knowledge: bool = True,
        reserve_completion_tokens: int = 4096,
    ) -> None:
        self.source = source
        self.target = target
        self.include_knowledge = include_knowledge
        self.reserve_completion_tokens = reserve_completion_tokens

    # ------------------------------------------------------------------
    def system_prompt(self) -> str:
        return dictionary.system_prompt(self.source, self.target)

    def knowledge(self) -> str:
        return knowledge_document(self.target) if self.include_knowledge else ""

    def knowledge_summary_prompt(self) -> str:
        return KNOWLEDGE_SUMMARY_REQUEST.format(
            language=self.target.display_name, knowledge=self.knowledge()
        )

    def code_description_prompt(self, source_code: str) -> str:
        return CODE_DESCRIPTION_REQUEST.format(
            language=self.source.display_name, code=source_code
        )

    # ------------------------------------------------------------------
    def build(
        self,
        llm: LLMClient,
        source_code: str,
    ) -> PromptBundle:
        """Run the self-prompting stages against ``llm`` and assemble the
        full translation prompt, enforcing the context budget."""
        system = self.system_prompt()
        knowledge = self.knowledge()

        knowledge_summary = ""
        if self.include_knowledge:
            summary_prompt = self.knowledge_summary_prompt()
            self._check_budget(llm, system, summary_prompt)
            knowledge_summary = llm.generate(summary_prompt, system).text

        description_prompt = self.code_description_prompt(source_code)
        self._check_budget(llm, system, description_prompt)
        code_description = llm.generate(description_prompt, system).text

        translation_request = dictionary.THINK_PREFIX.format(
            description=code_description,
            translation_prompt=dictionary.translation_prompt(
                self.source, self.target
            ),
            code=source_code,
        )
        parts: List[str] = []
        if knowledge:
            parts.append(
                f"Reference material for {self.target.display_name}:\n{knowledge}"
            )
        if knowledge_summary:
            parts.append(f"Summary of the reference material:\n{knowledge_summary}")
        parts.append(translation_request)
        full_user_prompt = "\n\n".join(parts)
        prompt_tokens = self._check_budget(llm, system, full_user_prompt)
        return PromptBundle(
            system=system,
            knowledge=knowledge,
            knowledge_summary=knowledge_summary,
            code_description=code_description,
            translation_request=translation_request,
            full_user_prompt=full_user_prompt,
            prompt_tokens=prompt_tokens,
        )

    def correction_messages(
        self,
        llm: LLMClient,
        kind: str,
        code: str,
        command: str,
        error: str,
    ) -> List[ChatMessage]:
        """Messages for one self-correction round (Table III)."""
        system = self.system_prompt()
        prompt = dictionary.correction_prompt(kind, code, command, error)
        self._check_budget(llm, system, prompt)
        return [ChatMessage("system", system), ChatMessage("user", prompt)]

    # ------------------------------------------------------------------
    def _check_budget(self, llm: LLMClient, system: str, prompt: str) -> int:
        tokens = count_tokens(system) + count_tokens(prompt)
        limit = llm.context_length - self.reserve_completion_tokens
        if tokens > limit:
            raise ContextWindowExceeded(llm.name, tokens, llm.context_length)
        return tokens
