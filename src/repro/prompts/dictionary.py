"""The LASSI prompt dictionary (paper Tables I, II and III, verbatim).

The dictionary maps a translation direction to system / translation /
correction prompts, keeping the core pipeline language-agnostic: adding a
new language pair means adding dictionary entries, not touching the pipeline
(§III-B: "enables easy extensibility ... without the need to adjust the core
pipeline process").
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.minilang.source import Dialect

Direction = Tuple[Dialect, Dialect]

CUDA2OMP: Direction = (Dialect.CUDA, Dialect.OMP)
OMP2CUDA: Direction = (Dialect.OMP, Dialect.CUDA)

#: Table I — system prompts.
SYSTEM_PROMPTS: Dict[object, str] = {
    "general": (
        "You are a professional coding AI assistant that specializes in "
        "translating parallelized code between coding frameworks."
    ),
    CUDA2OMP: (
        "You are a professional coding AI assistant that specializes in "
        "translating parallelized CUDA code to C++ code using OpenMP "
        "directives. Always provide the complete and fully functional "
        "translated code without placeholders, comments, or references "
        "suggesting that parts of the original code should be included. "
        "Ensure every part of the translated code is explicitly written "
        "out. Surround your new generated code with the three characters "
        "```."
    ),
    OMP2CUDA: (
        "You are a professional coding AI assistant that specializes in "
        "translating parallelized C++ code using OpenMP directives to the "
        "CUDA framework. Always provide the complete and fully functional "
        "translated code without placeholders, comments, or references "
        "suggesting that parts of the original code should be included. "
        "Ensure every part of the translated code is explicitly written "
        "out. Surround your new generated code with the three characters "
        "```."
    ),
}

#: Table II — target-language-specific translation prompts.
TRANSLATION_PROMPTS: Dict[Direction, str] = {
    OMP2CUDA: (
        "Generate new code to refactor the following parallelized C++ "
        "program written with OpenMP to instead use the CUDA framework. "
        "Provide the complete translated CUDA code without any "
        "placeholders, comments, or references suggesting that parts of "
        "the original code should be included. Every part of the "
        "translated code should be explicitly written out. Avoid "
        "explanation of the code."
    ),
    CUDA2OMP: (
        "Generate new code to refactor the following parallelized CUDA "
        "program to instead use C++ code written with OpenMP directives. "
        "To enable GPU offloading, use the 'omp pragma' directive 'target "
        "teams' for distributing 'for' loop computations. Use static "
        "scheduling when needed and avoid dynamic scheduling. Provide the "
        "complete translated C++ code without any placeholders, comments, "
        "or references suggesting that parts of the original code should "
        "be included. Every part of the translated code should be "
        "explicitly written out. Avoid explanation of the code."
    ),
}

#: Table III — self-correction prompt templates.  ``{code}``, ``{command}``
#: and ``{error}`` are spliced in by the pipeline.
CORRECTION_PROMPTS: Dict[str, str] = {
    "compile": (
        "{code}\n-- The above code was compiled with {command} and "
        "produced the following compile error: {error}. Re-factor the "
        "above code with a fix to eliminate the stated error."
    ),
    "execute": (
        "{code}\n-- The above code was executed after a successful "
        "compile with {command} and produced the following execution "
        "error: {error}. Re-factor the above code with a fix to "
        "eliminate the stated error."
    ),
}

#: §III-C — the "think carefully" wrapper around the translation request.
THINK_PREFIX = (
    "Think carefully before developing the following code that you "
    "describe as: {description}. Now, {translation_prompt}: {code}"
)


def _direction(source: Dialect, target: Dialect) -> Direction:
    key = (source, target)
    if key not in TRANSLATION_PROMPTS:
        raise KeyError(
            f"no prompt dictionary entry for {source.value} -> {target.value}"
        )
    return key


def system_prompt(source: Dialect, target: Dialect) -> str:
    """Table I system prompt for a direction."""
    return SYSTEM_PROMPTS[_direction(source, target)]


def translation_prompt(source: Dialect, target: Dialect) -> str:
    """Table II translation prompt for a direction."""
    return TRANSLATION_PROMPTS[_direction(source, target)]


def correction_prompt(kind: str, code: str, command: str, error: str) -> str:
    """Table III correction prompt; ``kind`` in {compile, execute}."""
    template = CORRECTION_PROMPTS.get(kind)
    if template is None:
        raise KeyError(f"unknown correction kind {kind!r}")
    return template.format(code=code, command=command, error=error)
