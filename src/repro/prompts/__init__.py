"""Prompt engineering layer: dictionary, language knowledge, prompt builder.

Implements §III-B/C of the paper: a predefined dictionary of system / user
prompts (Tables I-III), programming-language knowledge documents sized to fit
the smallest context window in Table V, and the full-prompt assembly with
self-prompting (knowledge summary + source-code description).
"""

from repro.prompts.dictionary import (
    CORRECTION_PROMPTS,
    SYSTEM_PROMPTS,
    TRANSLATION_PROMPTS,
    correction_prompt,
    system_prompt,
    translation_prompt,
)
from repro.prompts.knowledge import knowledge_document
from repro.prompts.builder import PromptBuilder, PromptBundle

__all__ = [
    "SYSTEM_PROMPTS",
    "TRANSLATION_PROMPTS",
    "CORRECTION_PROMPTS",
    "system_prompt",
    "translation_prompt",
    "correction_prompt",
    "knowledge_document",
    "PromptBuilder",
    "PromptBundle",
]
