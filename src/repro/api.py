"""Stable, high-level facade over the LASSI reproduction.

Four entry points cover the common workflows; everything the CLI does is
expressible through them, and their signatures are the package's
compatibility surface:

* :func:`build_pipeline` — assemble the stage-graph pipeline for one
  (LLM, direction) and run it on raw source text;
* :func:`translate` — one-call translation of a suite application
  (builds the seeded simulated LLM and the pipeline for you);
* :func:`evaluate` — the §V experiment grid (or any subset), parallel,
  resumable, cacheable;
* :func:`run_campaign` / :func:`build_campaign` — declarative ablation
  sweeps over the grid.

Example::

    from repro import api
    from repro.pipeline.events import StageFinished

    result = api.translate("layout", model="gpt4", direction="omp2cuda")
    results = api.evaluate(models=["gpt4"], jobs=4, backend="process")
    campaign = api.run_campaign("knowledge-ablation")

Migration from the pre-stage-graph API: ``LassiPipeline(llm, src, tgt,
config=...)`` becomes ``api.build_pipeline(llm, src, tgt, config=...)``
(the returned pipeline's ``run`` is the old ``translate``; the shim class
still works and now exposes the same event bus).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.cache import ResultCache
from repro.experiments.campaign import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    get_preset,
    merge_manifests,
)
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.store import CacheStore, open_store
from repro.experiments.runner import ExperimentRunner, Scenario, ScenarioResult
from repro.experiments.session import RunSession
from repro.hecbench import AppSpec, Suite, all_apps, get_app
from repro.minilang.source import Dialect
from repro.pipeline.baseline import BaselinePreparer
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import build_pipeline
from repro.pipeline.results import LassiResult
from repro.telemetry.profile import profile_from_execution, regression_gate
from repro.telemetry.summary import (
    collect_trace_paths,
    critical_path_report,
)
from repro.toolchain import Executor

__all__ = [
    "build_campaign",
    "build_pipeline",
    "critical_path",
    "evaluate",
    "merge_campaign",
    "open_cache_store",
    "perf_regress",
    "profile_baselines",
    "run_campaign",
    "translate",
]

#: Defaults shared with the CLI.
DEFAULT_PROFILE = "paper"
DEFAULT_SEED = 2024


# build_pipeline is the engine's assembly function re-exported verbatim —
# one signature, no facade copy to drift.  `subscribers` attach to the
# pipeline's event bus before it runs anything, so they observe every
# stage of every translation.


def translate(
    app: Union[str, AppSpec],
    model: str = "gpt4",
    direction: str = "omp2cuda",
    profile: str = DEFAULT_PROFILE,
    seed: int = DEFAULT_SEED,
    config: Optional[PipelineConfig] = None,
    suite: Union[str, Suite, None] = None,
) -> LassiResult:
    """Translate one suite application under one simulated model.

    ``app`` may be a name (resolved against ``suite``, or the default
    suite-wide lookup when ``suite`` is None — synthetic names like
    ``synth-stencil-d1-s0`` regenerate their sources) or a resolved
    :class:`~repro.hecbench.AppSpec`.
    """
    spec = app if isinstance(app, AppSpec) else get_app(app, suite=suite)
    runner = ExperimentRunner(config=config, profile=profile, seed=seed)
    scenario = Scenario(model_key=model, direction=direction, app_name=spec.name)
    return runner.run_scenario(scenario, app=spec).result


def evaluate(
    models: Optional[Sequence[str]] = None,
    directions: Optional[Sequence[str]] = None,
    apps: Optional[Sequence[str]] = None,
    profile: str = DEFAULT_PROFILE,
    seed: int = DEFAULT_SEED,
    config: Optional[PipelineConfig] = None,
    suite: Union[str, Suite, None] = None,
    jobs: Union[int, str] = 1,
    backend: str = "thread",
    session: Optional[RunSession] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[ScenarioResult], None]] = None,
    trace: bool = False,
) -> List[ScenarioResult]:
    """Run the evaluation grid (every argument optional, None = full axis).

    A thin veneer over
    :class:`~repro.experiments.parallel.ParallelExperimentRunner` — both
    backends rebuild the stage-graph pipeline per scenario, sessions
    persist/resume completed scenarios, and the cache replays identical
    cells.  ``trace=True`` records telemetry spans for every executed
    scenario and, when a session is given, writes them to a
    ``.trace.jsonl`` sidecar next to the session log (the session JSONL
    itself stays byte-deterministic).
    """
    runner = ParallelExperimentRunner(
        config=config,
        profile=profile,
        seed=seed,
        jobs=jobs,
        backend=backend,
        session=session,
        cache=cache,
        suite=suite,
        trace=trace,
    )
    return runner.run(
        models=models, directions=directions, apps=apps, progress=progress
    )


def open_cache_store(store: Union[str, Path, CacheStore]) -> CacheStore:
    """Open a pluggable cache store from a URI, path, or open store.

    Accepts ``dir:<path>`` (a directory tree with advisory file locks),
    ``sqlite:<path>`` (a single sqlite file), a bare path (treated as a
    directory tree), or an already-open
    :class:`~repro.experiments.store.CacheStore` (returned unchanged).
    """
    return open_store(store)


def build_campaign(
    spec: Union[str, CampaignSpec],
    root: Union[str, Path] = "campaigns",
    jobs: Union[int, str] = 1,
    backend: str = "thread",
    executor: Optional[Executor] = None,
    log: Optional[Callable[[str], None]] = None,
    cache_store: Union[str, Path, CacheStore, None] = None,
    shard: Union[str, tuple, None] = None,
    trace: bool = False,
) -> CampaignRunner:
    """Prepare a campaign runner (``spec`` may be a preset name).

    ``cache_store`` routes scenario results and persisted compilations
    through a shared pluggable store (URI, path, or open store) instead
    of the per-campaign cache tree; ``shard`` (``"i/N"`` or ``(i, N)``)
    makes the runner execute only its slice of the variant×scenario
    cells and write a partial ``manifest.shard-i-of-N.json`` that
    :func:`merge_campaign` later fuses.  ``trace=True`` writes a
    ``.trace.jsonl`` sidecar next to every cell session and a metrics
    snapshot into the manifest's ``telemetry`` block.
    """
    resolved = get_preset(spec) if isinstance(spec, str) else spec
    return CampaignRunner(
        resolved, root=root, jobs=jobs, backend=backend, executor=executor,
        log=log, cache_store=cache_store, shard=shard, trace=trace,
    )


def run_campaign(
    spec: Union[str, CampaignSpec],
    root: Union[str, Path] = "campaigns",
    jobs: Union[int, str] = 1,
    backend: str = "thread",
    executor: Optional[Executor] = None,
    log: Optional[Callable[[str], None]] = None,
    progress: Optional[Callable[[ScenarioResult], None]] = None,
    cache_store: Union[str, Path, CacheStore, None] = None,
    shard: Union[str, tuple, None] = None,
    trace: bool = False,
) -> CampaignResult:
    """Run a declarative ablation sweep into its campaign directory.

    ``spec`` may be a built-in preset name (``"knowledge-ablation"``) or a
    :class:`~repro.experiments.campaign.CampaignSpec`.  Fully resumable:
    re-running replays finished cells from their sessions and shared
    cells from the cache.  See :func:`build_campaign` for the shared
    ``cache_store``, distributed ``shard``, and telemetry ``trace``
    knobs.
    """
    return build_campaign(
        spec, root=root, jobs=jobs, backend=backend, executor=executor,
        log=log, cache_store=cache_store, shard=shard, trace=trace,
    ).run(progress=progress)


def profile_baselines(
    apps: Optional[Sequence[Union[str, AppSpec]]] = None,
    dialects: Sequence[str] = ("cuda", "omp"),
    suite: Union[str, Suite, None] = None,
    executor: Optional[Executor] = None,
) -> Dict[str, Any]:
    """Deterministic runtime profiles of the suite's *original* programs.

    Compiles and executes each application's source in each requested
    dialect (exactly the §III-A baseline preparation) and condenses every
    run into a :class:`~repro.telemetry.profile.RuntimeProfile`.  The
    interpreter is deterministic, so the returned snapshot —
    ``{"profiles": {"<app>/<dialect>": {...}}}`` — is byte-stable across
    processes and machines and can be committed as a perf baseline for
    ``repro perf regress``.
    """
    specs = [
        a if isinstance(a, AppSpec) else get_app(a, suite=suite)
        for a in (apps if apps is not None else all_apps(suite))
    ]
    preparer = BaselinePreparer(executor=executor)
    profiles: Dict[str, Any] = {}
    for spec in specs:
        for name in dialects:
            dialect = Dialect(name)
            baseline = preparer.prepare(
                spec.source(dialect),
                dialect,
                args=spec.args,
                work_scale=spec.work_scale,
                launch_scale=spec.launch_scale,
            )
            runtime = profile_from_execution(baseline.execution)
            if runtime is not None:
                profiles[f"{spec.name}/{dialect.value}"] = runtime.to_dict()
    return {"profiles": profiles}


def perf_regress(
    baseline: Union[str, Path],
    current: Union[str, Path],
    tolerance: Optional[float] = None,
) -> Tuple[Dict[str, Any], bool]:
    """Diff two profile snapshots; returns ``(report, ok)``.

    ``baseline`` / ``current`` may each be a ``BENCH_*.json`` artifact
    with a ``"profiles"`` block, a campaign ``manifest.json`` (per-cell
    ``perf`` summaries), or a bare snapshot written by
    :func:`profile_baselines`.  ``ok`` is False when any counter
    regressed beyond ``tolerance`` (default 10%, or
    ``REPRO_PERF_TOLERANCE``) or when coverage shrank — the CI gate
    turns that into a non-zero exit.
    """
    return regression_gate(baseline, current, tolerance)


def critical_path(target: Union[str, Path]) -> Dict[str, Any]:
    """Critical-path attribution over a trace file or campaign directory.

    ``target`` is a ``.trace.jsonl`` file, a session file with a trace
    sidecar, or a campaign directory (canonical and shard sidecars are
    discovered the same way ``repro trace summarize`` does).  Returns
    the :func:`~repro.telemetry.summary.critical_path_report` dict:
    per-trace dominant buckets, aggregate dominant counts, and mean
    wall-share per bucket (llm / compile / exec / overhead).
    """
    return critical_path_report(collect_trace_paths(target))


def merge_campaign(directory: Union[str, Path]) -> CampaignResult:
    """Fuse a sharded campaign directory into its canonical artifacts.

    ``directory`` is one campaign directory holding every shard's
    ``manifest.shard-i-of-N.json`` and shard-suffixed sessions (copied
    together from the hosts that ran them).  Refuses on missing shards,
    mismatched specs/grids/config fingerprints, or overlapping/incomplete
    scenario coverage; on success writes ``manifest.json`` plus canonical
    per-cell sessions exactly as an unsharded run would have.
    """
    return merge_manifests(directory)
