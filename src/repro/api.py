"""Stable, high-level facade over the LASSI reproduction.

Four entry points cover the common workflows; everything the CLI does is
expressible through them, and their signatures are the package's
compatibility surface:

* :func:`build_pipeline` — assemble the stage-graph pipeline for one
  (LLM, direction) and run it on raw source text;
* :func:`translate` — one-call translation of a suite application
  (builds the seeded simulated LLM and the pipeline for you);
* :func:`evaluate` — the §V experiment grid (or any subset), parallel,
  resumable, cacheable;
* :func:`run_campaign` / :func:`build_campaign` — declarative ablation
  sweeps over the grid.

Example::

    from repro import api
    from repro.pipeline.events import StageFinished

    result = api.translate("layout", model="gpt4", direction="omp2cuda")
    results = api.evaluate(models=["gpt4"], jobs=4, backend="process")
    campaign = api.run_campaign("knowledge-ablation")

Migration from the pre-stage-graph API: ``LassiPipeline(llm, src, tgt,
config=...)`` becomes ``api.build_pipeline(llm, src, tgt, config=...)``
(the returned pipeline's ``run`` is the old ``translate``; the shim class
still works and now exposes the same event bus).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.experiments.cache import ResultCache
from repro.experiments.campaign import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    get_preset,
)
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import ExperimentRunner, Scenario, ScenarioResult
from repro.experiments.session import RunSession
from repro.hecbench import AppSpec, Suite, get_app
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import build_pipeline
from repro.pipeline.results import LassiResult
from repro.toolchain import Executor

__all__ = [
    "build_campaign",
    "build_pipeline",
    "evaluate",
    "run_campaign",
    "translate",
]

#: Defaults shared with the CLI.
DEFAULT_PROFILE = "paper"
DEFAULT_SEED = 2024


# build_pipeline is the engine's assembly function re-exported verbatim —
# one signature, no facade copy to drift.  `subscribers` attach to the
# pipeline's event bus before it runs anything, so they observe every
# stage of every translation.


def translate(
    app: Union[str, AppSpec],
    model: str = "gpt4",
    direction: str = "omp2cuda",
    profile: str = DEFAULT_PROFILE,
    seed: int = DEFAULT_SEED,
    config: Optional[PipelineConfig] = None,
    suite: Union[str, Suite, None] = None,
) -> LassiResult:
    """Translate one suite application under one simulated model.

    ``app`` may be a name (resolved against ``suite``, or the default
    suite-wide lookup when ``suite`` is None — synthetic names like
    ``synth-stencil-d1-s0`` regenerate their sources) or a resolved
    :class:`~repro.hecbench.AppSpec`.
    """
    spec = app if isinstance(app, AppSpec) else get_app(app, suite=suite)
    runner = ExperimentRunner(config=config, profile=profile, seed=seed)
    scenario = Scenario(model_key=model, direction=direction, app_name=spec.name)
    return runner.run_scenario(scenario, app=spec).result


def evaluate(
    models: Optional[Sequence[str]] = None,
    directions: Optional[Sequence[str]] = None,
    apps: Optional[Sequence[str]] = None,
    profile: str = DEFAULT_PROFILE,
    seed: int = DEFAULT_SEED,
    config: Optional[PipelineConfig] = None,
    suite: Union[str, Suite, None] = None,
    jobs: Union[int, str] = 1,
    backend: str = "thread",
    session: Optional[RunSession] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[ScenarioResult], None]] = None,
) -> List[ScenarioResult]:
    """Run the evaluation grid (every argument optional, None = full axis).

    A thin veneer over
    :class:`~repro.experiments.parallel.ParallelExperimentRunner` — both
    backends rebuild the stage-graph pipeline per scenario, sessions
    persist/resume completed scenarios, and the cache replays identical
    cells.
    """
    runner = ParallelExperimentRunner(
        config=config,
        profile=profile,
        seed=seed,
        jobs=jobs,
        backend=backend,
        session=session,
        cache=cache,
        suite=suite,
    )
    return runner.run(
        models=models, directions=directions, apps=apps, progress=progress
    )


def build_campaign(
    spec: Union[str, CampaignSpec],
    root: Union[str, Path] = "campaigns",
    jobs: Union[int, str] = 1,
    backend: str = "thread",
    executor: Optional[Executor] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignRunner:
    """Prepare a campaign runner (``spec`` may be a preset name)."""
    resolved = get_preset(spec) if isinstance(spec, str) else spec
    return CampaignRunner(
        resolved, root=root, jobs=jobs, backend=backend, executor=executor,
        log=log,
    )


def run_campaign(
    spec: Union[str, CampaignSpec],
    root: Union[str, Path] = "campaigns",
    jobs: Union[int, str] = 1,
    backend: str = "thread",
    executor: Optional[Executor] = None,
    log: Optional[Callable[[str], None]] = None,
    progress: Optional[Callable[[ScenarioResult], None]] = None,
) -> CampaignResult:
    """Run a declarative ablation sweep into its campaign directory.

    ``spec`` may be a built-in preset name (``"knowledge-ablation"``) or a
    :class:`~repro.experiments.campaign.CampaignSpec`.  Fully resumable:
    re-running replays finished cells from their sessions and shared
    cells from the cache.
    """
    return build_campaign(
        spec, root=root, jobs=jobs, backend=backend, executor=executor,
        log=log,
    ).run(progress=progress)
