"""entropy — Data encoding, decoding, or verification category (Table IV
row 8).

Shannon entropy of fixed-size blocks of a 4-bit signal: histogram each block,
then ``-sum p*log2(p)``.  Both ports keep data resident; the OpenMP port is
slower through offload efficiency — paper: 2.3891 s (CUDA) vs 3.4637 s
(OpenMP).
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// entropy: per-block Shannon entropy of a 4-bit signal.
__global__ void block_entropy(int* data, float* out, int nblocks, int bsize) {
  int b = blockIdx.x * blockDim.x + threadIdx.x;
  if (b < nblocks) {
    int hist[16];
    for (int v = 0; v < 16; v++) {
      hist[v] = 0;
    }
    for (int k = 0; k < bsize; k++) {
      int v = data[b * bsize + k] & 15;
      hist[v] = hist[v] + 1;
    }
    float e = 0.0f;
    for (int v = 0; v < 16; v++) {
      if (hist[v] > 0) {
        float p = hist[v] * 1.0f / bsize;
        e = e - p * log2f(p);
      }
    }
    out[b] = e;
  }
}

int main(int argc, char** argv) {
  int nblocks = atoi(argv[1]);
  int repeat = atoi(argv[2]);
  int bsize = 64;
  int total = nblocks * bsize;
  int* h_data = (int*)malloc(total * sizeof(int));
  float* h_out = (float*)malloc(nblocks * sizeof(float));
  srand(4242);
  for (int i = 0; i < total; i++) {
    h_data[i] = rand() % 256;
  }
  int* d_data;
  float* d_out;
  cudaMalloc(&d_data, total * sizeof(int));
  cudaMalloc(&d_out, nblocks * sizeof(float));
  cudaMemcpy(d_data, h_data, total * sizeof(int), cudaMemcpyHostToDevice);
  int threads = 64;
  int blocks = (nblocks + threads - 1) / threads;
  for (int r = 0; r < repeat; r++) {
    block_entropy<<<blocks, threads>>>(d_data, d_out, nblocks, bsize);
  }
  cudaDeviceSynchronize();
  cudaMemcpy(h_out, d_out, nblocks * sizeof(float), cudaMemcpyDeviceToHost);
  double total_entropy = 0.0;
  for (int b = 0; b < nblocks; b++) {
    total_entropy += h_out[b];
  }
  printf("blocks %d\n", nblocks);
  printf("entropy %.4f\n", total_entropy);
  cudaFree(d_data);
  cudaFree(d_out);
  free(h_data);
  free(h_out);
  return 0;
}
"""

OMP_SOURCE = r"""
// entropy: per-block Shannon entropy of a 4-bit signal (target offload).
int main(int argc, char** argv) {
  int nblocks = atoi(argv[1]);
  int repeat = atoi(argv[2]);
  int bsize = 64;
  int total = nblocks * bsize;
  int* data = (int*)malloc(total * sizeof(int));
  float* out = (float*)malloc(nblocks * sizeof(float));
  srand(4242);
  for (int i = 0; i < total; i++) {
    data[i] = rand() % 256;
  }
  #pragma omp target data map(to: data[0:total]) map(from: out[0:nblocks])
  {
    for (int r = 0; r < repeat; r++) {
      #pragma omp target teams distribute parallel for
      for (int b = 0; b < nblocks; b++) {
        int hist[16];
        for (int v = 0; v < 16; v++) {
          hist[v] = 0;
        }
        for (int k = 0; k < bsize; k++) {
          int v = data[b * bsize + k] & 15;
          hist[v] = hist[v] + 1;
        }
        float e = 0.0f;
        for (int v = 0; v < 16; v++) {
          if (hist[v] > 0) {
            float p = hist[v] * 1.0f / bsize;
            e = e - p * log2f(p);
          }
        }
        out[b] = e;
      }
    }
  }
  double total_entropy = 0.0;
  for (int b = 0; b < nblocks; b++) {
    total_entropy += out[b];
  }
  printf("blocks %d\n", nblocks);
  printf("entropy %.4f\n", total_entropy);
  free(data);
  free(out);
  return 0;
}
"""

SPEC = AppSpec(
    name="entropy",
    category="Data encoding, decoding, or verification",
    paper_args=["10000", "1024", "1"],
    args=["48", "3"],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=365287,
    launch_scale=4201.88,
    paper_runtime_cuda=2.3891,
    paper_runtime_omp=3.4637,
    notes="Compute-bound per-block histograms; OpenMP pays offload efficiency.",
)
