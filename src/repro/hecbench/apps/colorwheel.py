"""colorwheel — Computer vision and image processing category (Table IV
row 9).

Renders an optical-flow color wheel (angle/radius -> RGB).  The CUDA port
re-renders and downloads the image on every repetition; the OpenMP port
renders once into mapped memory.  The rendering is idempotent so both print
identical checksums — paper: 0.3009 s (CUDA) vs 0.0032 s (OpenMP), the
suite's most extreme port asymmetry.
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// colorwheel: render an optical-flow color wheel image.
__global__ void render_wheel(float* img, int w) {
  int idx = blockIdx.x * blockDim.x + threadIdx.x;
  if (idx < w * w) {
    int y = idx / w;
    int x = idx % w;
    float cx = (x - w / 2) * 1.0f;
    float cy = (y - w / 2) * 1.0f;
    float radius = sqrtf(cx * cx + cy * cy);
    float angle = atan2f(cy, cx);
    float rr = 0.5f + 0.5f * cosf(angle);
    float gg = 0.5f + 0.5f * cosf(angle - 2.0943951f);
    float bb = 0.5f + 0.5f * cosf(angle + 2.0943951f);
    float scale = radius / (w / 2);
    if (scale > 1.0f) {
      scale = 1.0f;
    }
    img[3 * idx + 0] = rr * scale;
    img[3 * idx + 1] = gg * scale;
    img[3 * idx + 2] = bb * scale;
  }
}

int main(int argc, char** argv) {
  int w = atoi(argv[1]);
  int repeat = atoi(argv[2]);
  int pixels = w * w;
  float* h_img = (float*)malloc(3 * pixels * sizeof(float));
  float* d_img;
  cudaMalloc(&d_img, 3 * pixels * sizeof(float));
  int threads = 128;
  int blocks = (pixels + threads - 1) / threads;
  for (int r = 0; r < repeat; r++) {
    render_wheel<<<blocks, threads>>>(d_img, w);
    cudaMemcpy(h_img, d_img, 3 * pixels * sizeof(float), cudaMemcpyDeviceToHost);
  }
  double checksum = 0.0;
  for (int i = 0; i < 3 * pixels; i++) {
    checksum += h_img[i];
  }
  printf("size %d\n", w);
  printf("checksum %.4f\n", checksum);
  cudaFree(d_img);
  free(h_img);
  return 0;
}
"""

OMP_SOURCE = r"""
// colorwheel: render an optical-flow color wheel image (target offload).
// This port renders the (idempotent) wheel once and verifies on the device,
// so no pixel data ever crosses PCIe.
int main(int argc, char** argv) {
  int w = atoi(argv[1]);
  int repeat = atoi(argv[2]);
  int pixels = w * w;
  int total = 3 * pixels;
  float* img = (float*)malloc(total * sizeof(float));
  double checksum = 0.0;
  #pragma omp target data map(alloc: img[0:total])
  {
  #pragma omp target teams distribute parallel for
  for (int idx = 0; idx < pixels; idx++) {
    int y = idx / w;
    int x = idx % w;
    float cx = (x - w / 2) * 1.0f;
    float cy = (y - w / 2) * 1.0f;
    float radius = sqrtf(cx * cx + cy * cy);
    float angle = atan2f(cy, cx);
    float rr = 0.5f + 0.5f * cosf(angle);
    float gg = 0.5f + 0.5f * cosf(angle - 2.0943951f);
    float bb = 0.5f + 0.5f * cosf(angle + 2.0943951f);
    float scale = radius / (w / 2);
    if (scale > 1.0f) {
      scale = 1.0f;
    }
    img[3 * idx + 0] = rr * scale;
    img[3 * idx + 1] = gg * scale;
    img[3 * idx + 2] = bb * scale;
  }
  #pragma omp target teams distribute parallel for reduction(+: checksum)
  for (int i = 0; i < total; i++) {
    checksum += img[i];
  }
  }
  printf("size %d\n", w);
  printf("checksum %.4f\n", checksum);
  free(img);
  return 0;
}
"""

SPEC = AppSpec(
    name="colorwheel",
    category="Computer vision and image processing",
    paper_args=["10000", "8", "1"],
    args=["40", "24"],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=8829.16,
    launch_scale=23.9627,
    paper_runtime_cuda=0.3009,
    paper_runtime_omp=0.0032,
    notes=(
        "Port asymmetry mirrors HeCBench: the CUDA port re-renders and "
        "downloads per repetition; the OpenMP port renders once."
    ),
)
