"""bsearch — Search category (Table IV row 7).

Batched lower-bound binary search over a sorted array.  The two HeCBench
ports do visibly different amounts of staging work: the CUDA port re-uploads
the sorted array on every repetition, while the OpenMP port performs the
query pass once over mapped data with an explicit 256-thread configuration —
paper: 0.3273 s (CUDA) vs 0.0140 s (OpenMP).

This is the app behind the paper's §V-D Codestral anecdote: a CUDA→OpenMP
translation that drops the 256-thread configuration (serializing the device
loop) runs ~20x slower than this reference while printing identical output.
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// bsearch: batched lower-bound binary search on a sorted array.
__global__ void search_kernel(int* array, int* queries, int* results, int n, int q) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < q) {
    int key = queries[j];
    int lo = 0;
    int hi = n;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (array[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    results[j] = lo;
  }
}

int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int repeat = atoi(argv[2]);
  int q = n / 8;
  int* h_array = (int*)malloc(n * sizeof(int));
  int* h_queries = (int*)malloc(q * sizeof(int));
  int* h_results = (int*)malloc(q * sizeof(int));
  for (int i = 0; i < n; i++) {
    h_array[i] = 2 * i;
  }
  srand(31);
  for (int j = 0; j < q; j++) {
    h_queries[j] = rand() % (2 * n);
  }
  int* d_array;
  int* d_queries;
  int* d_results;
  cudaMalloc(&d_array, n * sizeof(int));
  cudaMalloc(&d_queries, q * sizeof(int));
  cudaMalloc(&d_results, q * sizeof(int));
  cudaMemcpy(d_queries, h_queries, q * sizeof(int), cudaMemcpyHostToDevice);
  int threads = 256;
  int blocks = (q + threads - 1) / threads;
  for (int r = 0; r < repeat; r++) {
    cudaMemcpy(d_array, h_array, n * sizeof(int), cudaMemcpyHostToDevice);
    search_kernel<<<blocks, threads>>>(d_array, d_queries, d_results, n, q);
  }
  cudaDeviceSynchronize();
  cudaMemcpy(h_results, d_results, q * sizeof(int), cudaMemcpyDeviceToHost);
  long checksum = 0;
  for (int j = 0; j < q; j++) {
    checksum += h_results[j] * ((j % 3) + 1);
  }
  printf("queries %d\n", q);
  printf("checksum %ld\n", checksum);
  cudaFree(d_array);
  cudaFree(d_queries);
  cudaFree(d_results);
  free(h_array);
  free(h_queries);
  free(h_results);
  return 0;
}
"""

OMP_SOURCE = r"""
// bsearch: batched lower-bound binary search on a sorted array.
// This port performs the query pass once over mapped data.
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int repeat = atoi(argv[2]);
  int q = n / 8;
  int* array = (int*)malloc(n * sizeof(int));
  int* queries = (int*)malloc(q * sizeof(int));
  int* results = (int*)malloc(q * sizeof(int));
  for (int i = 0; i < n; i++) {
    array[i] = 2 * i;
  }
  srand(31);
  for (int j = 0; j < q; j++) {
    queries[j] = rand() % (2 * n);
  }
  #pragma omp target teams distribute parallel for map(to: array[0:n]) map(to: queries[0:q]) map(from: results[0:q]) num_threads(256)
  for (int j = 0; j < q; j++) {
    int key = queries[j];
    int lo = 0;
    int hi = n;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (array[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    results[j] = lo;
  }
  long checksum = 0;
  for (int j = 0; j < q; j++) {
    checksum += results[j] * ((j % 3) + 1);
  }
  printf("queries %d\n", q);
  printf("checksum %ld\n", checksum);
  free(array);
  free(queries);
  free(results);
  return 0;
}
"""

SPEC = AppSpec(
    name="bsearch",
    category="Search",
    paper_args=["10000", "1"],
    args=["2048", "64"],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=9034.16,
    launch_scale=31.3506,
    paper_runtime_cuda=0.3273,
    paper_runtime_omp=0.0140,
    notes=(
        "Port asymmetry mirrors HeCBench: the CUDA port re-uploads the array "
        "every repetition; the OpenMP port runs the pass once."
    ),
)
