"""matrix-rotate — Math category (Table IV row 1).

Rotates an n x n matrix by 90 degrees ``repeat`` times.  Both ports keep the
matrices resident on the device, so their runtimes are comparable — the
paper measured 1.2440 s (CUDA) vs 1.1800 s (OpenMP).
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// matrix-rotate: rotate an n x n matrix 90 degrees clockwise, repeat times.
__global__ void rotate_matrix(float* in, float* out, int n) {
  int idx = blockIdx.x * blockDim.x + threadIdx.x;
  if (idx < n * n) {
    int row = idx / n;
    int col = idx % n;
    out[col * n + (n - 1 - row)] = in[row * n + col];
  }
}

int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int repeat = atoi(argv[2]);
  int total = n * n;
  float* h_in = (float*)malloc(total * sizeof(float));
  srand(123);
  for (int i = 0; i < total; i++) {
    h_in[i] = (rand() % 1000) * 0.01f;
  }
  float* d_in;
  float* d_out;
  cudaMalloc(&d_in, total * sizeof(float));
  cudaMalloc(&d_out, total * sizeof(float));
  cudaMemcpy(d_in, h_in, total * sizeof(float), cudaMemcpyHostToDevice);
  int threads = 256;
  int blocks = (total + threads - 1) / threads;
  for (int r = 0; r < repeat; r++) {
    rotate_matrix<<<blocks, threads>>>(d_in, d_out, n);
    float* tmp = d_in;
    d_in = d_out;
    d_out = tmp;
  }
  cudaDeviceSynchronize();
  cudaMemcpy(h_in, d_in, total * sizeof(float), cudaMemcpyDeviceToHost);
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += h_in[i] * (i % 7);
  }
  printf("rotations %d\n", repeat);
  printf("checksum %.4f\n", checksum);
  cudaFree(d_in);
  cudaFree(d_out);
  free(h_in);
  return 0;
}
"""

OMP_SOURCE = r"""
// matrix-rotate: rotate an n x n matrix 90 degrees clockwise, repeat times.
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int repeat = atoi(argv[2]);
  int total = n * n;
  float* in = (float*)malloc(total * sizeof(float));
  float* out = (float*)malloc(total * sizeof(float));
  srand(123);
  for (int i = 0; i < total; i++) {
    in[i] = (rand() % 1000) * 0.01f;
  }
  #pragma omp target data map(tofrom: in[0:total]) map(alloc: out[0:total])
  {
    for (int r = 0; r < repeat; r++) {
      #pragma omp target teams distribute parallel for
      for (int idx = 0; idx < total; idx++) {
        int row = idx / n;
        int col = idx % n;
        out[col * n + (n - 1 - row)] = in[row * n + col];
      }
      float* tmp = in;
      in = out;
      out = tmp;
    }
  }
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += in[i] * (i % 7);
  }
  printf("rotations %d\n", repeat);
  printf("checksum %.4f\n", checksum);
  free(in);
  free(out);
  return 0;
}
"""

SPEC = AppSpec(
    name="matrix-rotate",
    category="Math",
    paper_args=["10000", "1"],
    args=["48", "2"],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=122160,
    launch_scale=38.875,
    paper_runtime_cuda=1.2440,
    paper_runtime_omp=1.1800,
    notes="Device-resident in both ports; runtimes comparable.",
)
