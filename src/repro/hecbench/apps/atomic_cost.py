"""atomicCost — Data compression and reduction category (Table IV row 4).

Measures the cost of contended global atomics: every element performs four
histogram increments derived from a device-computed hash.  Data is generated
on the device (both ports), so the runtime is dominated by atomic
throughput — the paper measured 43.9190 s (CUDA) vs 45.1242 s (OpenMP).

This is also the app behind the paper's §V-D DeepSeek anecdote: a
translation that privatizes the histogram (chunk-local counts merged with
few atomics) runs many times faster while printing identical results.
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// atomicCost: histogram with heavy global-atomic contention.
__global__ void init_data(int* data, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[i] = (i * 2654435761) % 65536;
  }
}

__global__ void atomic_hist(int* data, int* bins, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int v = data[i];
    atomicAdd(&bins[v & 63], 1);
    atomicAdd(&bins[(v >> 4) & 63], 1);
    atomicAdd(&bins[(v >> 8) & 63], 1);
    atomicAdd(&bins[(v >> 10) & 63], 1);
  }
}

int main(int argc, char** argv) {
  int repeat = atoi(argv[1]);
  int n = 6144;
  int nbins = 64;
  int* d_data;
  int* d_bins;
  cudaMalloc(&d_data, n * sizeof(int));
  cudaMalloc(&d_bins, nbins * sizeof(int));
  int threads = 256;
  int blocks = (n + threads - 1) / threads;
  init_data<<<blocks, threads>>>(d_data, n);
  for (int r = 0; r < repeat; r++) {
    cudaMemset(d_bins, 0, nbins * sizeof(int));
    atomic_hist<<<blocks, threads>>>(d_data, d_bins, n);
  }
  cudaDeviceSynchronize();
  int* h_bins = (int*)malloc(nbins * sizeof(int));
  cudaMemcpy(h_bins, d_bins, nbins * sizeof(int), cudaMemcpyDeviceToHost);
  long checksum = 0;
  for (int b = 0; b < nbins; b++) {
    checksum += h_bins[b] * (b + 1);
  }
  printf("bins %d\n", nbins);
  printf("checksum %ld\n", checksum);
  cudaFree(d_data);
  cudaFree(d_bins);
  free(h_bins);
  return 0;
}
"""

OMP_SOURCE = r"""
// atomicCost: histogram with heavy atomic contention (target offload).
int main(int argc, char** argv) {
  int repeat = atoi(argv[1]);
  int n = 6144;
  int nbins = 64;
  int* data = (int*)malloc(n * sizeof(int));
  int* bins = (int*)malloc(nbins * sizeof(int));
  #pragma omp target data map(alloc: data[0:n]) map(tofrom: bins[0:nbins])
  {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) {
      data[i] = (i * 2654435761) % 65536;
    }
    for (int r = 0; r < repeat; r++) {
      #pragma omp target teams distribute parallel for
      for (int b = 0; b < nbins; b++) {
        bins[b] = 0;
      }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < n; i++) {
        int v = data[i];
        #pragma omp atomic
        bins[v & 63] += 1;
        #pragma omp atomic
        bins[(v >> 4) & 63] += 1;
        #pragma omp atomic
        bins[(v >> 8) & 63] += 1;
        #pragma omp atomic
        bins[(v >> 10) & 63] += 1;
      }
    }
  }
  long checksum = 0;
  for (int b = 0; b < nbins; b++) {
    checksum += bins[b] * (b + 1);
  }
  printf("bins %d\n", nbins);
  printf("checksum %ld\n", checksum);
  free(data);
  free(bins);
  return 0;
}
"""

SPEC = AppSpec(
    name="atomicCost",
    category="Data compression and reduction",
    paper_args=["1"],
    args=["2"],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=1.75677e+06,
    launch_scale=2704.21,
    paper_runtime_cuda=43.9190,
    paper_runtime_omp=45.1242,
    notes="Atomic-throughput bound in both ports; data generated on device.",
)
