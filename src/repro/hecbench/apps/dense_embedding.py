"""dense-embedding — Machine learning category (Table IV row 5).

Embedding-bag lookup: gather rows of an embedding table for a batch of
indices and add a bias.  Like jacobi, the OpenMP port maps the (large)
embedding table on every repetition instead of keeping it resident, which
reproduces the paper's 0.8055 s (CUDA) vs 57.1536 s (OpenMP) gap.
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// dense-embedding: batched embedding lookup with bias.
__global__ void embedding_lookup(float* table, int* indices, float* bias,
                                 float* out, int batch, int dim) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < batch * dim) {
    int b = i / dim;
    int d = i % dim;
    out[i] = table[indices[b] * dim + d] + bias[d];
  }
}

int main(int argc, char** argv) {
  int batch = atoi(argv[1]);
  int dim = atoi(argv[2]);
  int repeat = atoi(argv[3]);
  int vocab = 512;
  float* h_table = (float*)malloc(vocab * dim * sizeof(float));
  int* h_indices = (int*)malloc(batch * sizeof(int));
  float* h_bias = (float*)malloc(dim * sizeof(float));
  float* h_out = (float*)malloc(batch * dim * sizeof(float));
  srand(2024);
  for (int i = 0; i < vocab * dim; i++) {
    h_table[i] = (rand() % 1000) * 0.001f;
  }
  for (int b = 0; b < batch; b++) {
    h_indices[b] = rand() % vocab;
  }
  for (int d = 0; d < dim; d++) {
    h_bias[d] = d * 0.125f;
  }
  float* d_table;
  int* d_indices;
  float* d_bias;
  float* d_out;
  cudaMalloc(&d_table, vocab * dim * sizeof(float));
  cudaMalloc(&d_indices, batch * sizeof(int));
  cudaMalloc(&d_bias, dim * sizeof(float));
  cudaMalloc(&d_out, batch * dim * sizeof(float));
  cudaMemcpy(d_table, h_table, vocab * dim * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(d_indices, h_indices, batch * sizeof(int), cudaMemcpyHostToDevice);
  cudaMemcpy(d_bias, h_bias, dim * sizeof(float), cudaMemcpyHostToDevice);
  int total = batch * dim;
  int threads = 256;
  int blocks = (total + threads - 1) / threads;
  for (int r = 0; r < repeat; r++) {
    embedding_lookup<<<blocks, threads>>>(d_table, d_indices, d_bias, d_out, batch, dim);
  }
  cudaDeviceSynchronize();
  cudaMemcpy(h_out, d_out, total * sizeof(float), cudaMemcpyDeviceToHost);
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += h_out[i];
  }
  printf("batch %d dim %d\n", batch, dim);
  printf("checksum %.4f\n", checksum);
  cudaFree(d_table);
  cudaFree(d_indices);
  cudaFree(d_bias);
  cudaFree(d_out);
  free(h_table);
  free(h_indices);
  free(h_bias);
  free(h_out);
  return 0;
}
"""

OMP_SOURCE = r"""
// dense-embedding: batched embedding lookup with bias.
// Note: this port maps the embedding table on every repetition.
int main(int argc, char** argv) {
  int batch = atoi(argv[1]);
  int dim = atoi(argv[2]);
  int repeat = atoi(argv[3]);
  int vocab = 512;
  int tab = vocab * dim;
  int total = batch * dim;
  float* table = (float*)malloc(tab * sizeof(float));
  int* indices = (int*)malloc(batch * sizeof(int));
  float* bias = (float*)malloc(dim * sizeof(float));
  float* out = (float*)malloc(total * sizeof(float));
  srand(2024);
  for (int i = 0; i < tab; i++) {
    table[i] = (rand() % 1000) * 0.001f;
  }
  for (int b = 0; b < batch; b++) {
    indices[b] = rand() % vocab;
  }
  for (int d = 0; d < dim; d++) {
    bias[d] = d * 0.125f;
  }
  for (int r = 0; r < repeat; r++) {
    #pragma omp target teams distribute parallel for map(tofrom: table[0:tab]) map(to: indices[0:batch]) map(to: bias[0:dim]) map(from: out[0:total])
    for (int i = 0; i < total; i++) {
      int b = i / dim;
      int d = i % dim;
      out[i] = table[indices[b] * dim + d] + bias[d];
    }
  }
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += out[i];
  }
  printf("batch %d dim %d\n", batch, dim);
  printf("checksum %.4f\n", checksum);
  free(table);
  free(indices);
  free(bias);
  free(out);
  return 0;
}
"""

SPEC = AppSpec(
    name="dense-embedding",
    category="Machine learning",
    paper_args=["10000", "8", "1"],
    args=["64", "8", "100"],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=70674.6,
    launch_scale=1.25859,
    paper_runtime_cuda=0.8055,
    paper_runtime_omp=57.1536,
    notes="OpenMP port remaps the table every repetition: transfer-bound.",
)
