"""randomAccess — Bandwidth category (Table IV row 10).

HPCC RandomAccess (GUPS)-style kernel: XOR-update pseudo-random locations of
a table.  Updates are order-independent, so both ports print identical
verification output.  Memory-system bound; the OpenMP port's lower achieved
bandwidth makes it ~1.6x slower — paper: 5.0139 s (CUDA) vs 7.9159 s
(OpenMP).
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// randomAccess: GUPS-style random XOR updates of a table.
__global__ void update_table(int* table, int tsize, int per_thread, int nthreads) {
  int t = blockIdx.x * blockDim.x + threadIdx.x;
  if (t < nthreads) {
    int ran = t * 2654435761;
    for (int k = 0; k < per_thread; k++) {
      ran = (ran * 1103515245 + 12345) & 2147483647;
      int pos = ran & (tsize - 1);
      table[pos] = table[pos] ^ ran;
    }
  }
}

int main(int argc, char** argv) {
  int scale = atoi(argv[1]);
  int tsize = 2048 * scale;
  int nthreads = 1024;
  int per_thread = 4 * scale;
  int* h_table = (int*)malloc(tsize * sizeof(int));
  for (int i = 0; i < tsize; i++) {
    h_table[i] = i;
  }
  int* d_table;
  cudaMalloc(&d_table, tsize * sizeof(int));
  cudaMemcpy(d_table, h_table, tsize * sizeof(int), cudaMemcpyHostToDevice);
  int threads = 256;
  int blocks = (nthreads + threads - 1) / threads;
  update_table<<<blocks, threads>>>(d_table, tsize, per_thread, nthreads);
  cudaDeviceSynchronize();
  cudaMemcpy(h_table, d_table, tsize * sizeof(int), cudaMemcpyDeviceToHost);
  int verify = 0;
  long checksum = 0;
  for (int i = 0; i < tsize; i++) {
    verify = verify ^ h_table[i];
    checksum += h_table[i] % 1000;
  }
  printf("table %d updates %d\n", tsize, nthreads * per_thread);
  printf("verify %d checksum %ld\n", verify, checksum);
  cudaFree(d_table);
  free(h_table);
  return 0;
}
"""

OMP_SOURCE = r"""
// randomAccess: GUPS-style random XOR updates of a table (target offload).
int main(int argc, char** argv) {
  int scale = atoi(argv[1]);
  int tsize = 2048 * scale;
  int nthreads = 1024;
  int per_thread = 4 * scale;
  int* table = (int*)malloc(tsize * sizeof(int));
  for (int i = 0; i < tsize; i++) {
    table[i] = i;
  }
  #pragma omp target teams distribute parallel for map(tofrom: table[0:tsize])
  for (int t = 0; t < nthreads; t++) {
    int ran = t * 2654435761;
    for (int k = 0; k < per_thread; k++) {
      ran = (ran * 1103515245 + 12345) & 2147483647;
      int pos = ran & (tsize - 1);
      table[pos] = table[pos] ^ ran;
    }
  }
  int verify = 0;
  long checksum = 0;
  for (int i = 0; i < tsize; i++) {
    verify = verify ^ table[i];
    checksum += table[i] % 1000;
  }
  printf("table %d updates %d\n", tsize, nthreads * per_thread);
  printf("verify %d checksum %ld\n", verify, checksum);
  free(table);
  return 0;
}
"""

SPEC = AppSpec(
    name="randomAccess",
    category="Bandwidth",
    paper_args=["1"],
    args=["2"],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=221917,
    launch_scale=52525.8,
    paper_runtime_cuda=5.0139,
    paper_runtime_omp=7.9159,
    notes="Memory-system bound; OpenMP achieves lower effective bandwidth.",
)
