"""pathfinder — Simulation category (Table IV row 6).

Rodinia-style dynamic programming: row-by-row minimum-cost path through a
grid, one device sweep per row.  Both ports keep data resident; the OpenMP
port pays its higher per-region overhead and lower offload efficiency —
paper: 0.5420 s (CUDA) vs 0.7256 s (OpenMP).
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// pathfinder: row-wise DP for minimum path cost.
__global__ void path_step(int* wall, int* src, int* dst, int cols, int row) {
  int c = blockIdx.x * blockDim.x + threadIdx.x;
  if (c < cols) {
    int best = src[c];
    if (c > 0 && src[c - 1] < best) {
      best = src[c - 1];
    }
    if (c < cols - 1 && src[c + 1] < best) {
      best = src[c + 1];
    }
    dst[c] = wall[row * cols + c] + best;
  }
}

int main(int argc, char** argv) {
  int cols = atoi(argv[1]);
  int rows = atoi(argv[2]);
  int* h_wall = (int*)malloc(rows * cols * sizeof(int));
  srand(55);
  for (int i = 0; i < rows * cols; i++) {
    h_wall[i] = rand() % 10;
  }
  int* d_wall;
  int* d_src;
  int* d_dst;
  cudaMalloc(&d_wall, rows * cols * sizeof(int));
  cudaMalloc(&d_src, cols * sizeof(int));
  cudaMalloc(&d_dst, cols * sizeof(int));
  cudaMemcpy(d_wall, h_wall, rows * cols * sizeof(int), cudaMemcpyHostToDevice);
  int* h_row = (int*)malloc(cols * sizeof(int));
  for (int c = 0; c < cols; c++) {
    h_row[c] = h_wall[c];
  }
  cudaMemcpy(d_src, h_row, cols * sizeof(int), cudaMemcpyHostToDevice);
  int threads = 128;
  int blocks = (cols + threads - 1) / threads;
  for (int row = 1; row < rows; row++) {
    path_step<<<blocks, threads>>>(d_wall, d_src, d_dst, cols, row);
    int* tmp = d_src;
    d_src = d_dst;
    d_dst = tmp;
  }
  cudaDeviceSynchronize();
  cudaMemcpy(h_row, d_src, cols * sizeof(int), cudaMemcpyDeviceToHost);
  long checksum = 0;
  int best = h_row[0];
  for (int c = 0; c < cols; c++) {
    checksum += h_row[c];
    if (h_row[c] < best) {
      best = h_row[c];
    }
  }
  printf("best %d\n", best);
  printf("checksum %ld\n", checksum);
  cudaFree(d_wall);
  cudaFree(d_src);
  cudaFree(d_dst);
  free(h_wall);
  free(h_row);
  return 0;
}
"""

OMP_SOURCE = r"""
// pathfinder: row-wise DP for minimum path cost (target offload).
int main(int argc, char** argv) {
  int cols = atoi(argv[1]);
  int rows = atoi(argv[2]);
  int* wall = (int*)malloc(rows * cols * sizeof(int));
  int* src = (int*)malloc(cols * sizeof(int));
  int* dst = (int*)malloc(cols * sizeof(int));
  srand(55);
  for (int i = 0; i < rows * cols; i++) {
    wall[i] = rand() % 10;
  }
  for (int c = 0; c < cols; c++) {
    src[c] = wall[c];
  }
  int rc = rows * cols;
  #pragma omp target data map(to: wall[0:rc]) map(tofrom: src[0:cols]) map(tofrom: dst[0:cols])
  {
    for (int row = 1; row < rows; row++) {
      #pragma omp target teams distribute parallel for
      for (int c = 0; c < cols; c++) {
        int best = src[c];
        if (c > 0 && src[c - 1] < best) {
          best = src[c - 1];
        }
        if (c < cols - 1 && src[c + 1] < best) {
          best = src[c + 1];
        }
        dst[c] = wall[row * cols + c] + best;
      }
      int* tmp = src;
      src = dst;
      dst = tmp;
    }
  }
  long checksum = 0;
  int best = src[0];
  for (int c = 0; c < cols; c++) {
    checksum += src[c];
    if (src[c] < best) {
      best = src[c];
    }
  }
  printf("best %d\n", best);
  printf("checksum %ld\n", checksum);
  free(wall);
  free(src);
  free(dst);
  return 0;
}
"""

SPEC = AppSpec(
    name="pathfinder",
    category="Simulation",
    paper_args=["10000", "1000", "1000"],
    args=["160", "12"],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=122205,
    launch_scale=247.132,
    paper_runtime_cuda=0.5420,
    paper_runtime_omp=0.7256,
    notes="Device-resident in both ports; OpenMP pays region overheads.",
)
