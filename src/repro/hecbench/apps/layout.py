"""layout — Language and kernel features category (Table IV row 3).

Array-of-structures to structure-of-arrays transformation.  The CUDA port
re-stages its buffers over PCIe on every repetition (it measures the full
transform-and-return path), while the OpenMP port keeps the buffers mapped
across repetitions — the paper measured 0.4088 s (CUDA) vs 0.2573 s
(OpenMP), one of the rows where OpenMP wins.
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// layout: AoS -> SoA transform of a 4-field record array.
__global__ void aos_to_soa(float* in, float* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[0 * n + i] = in[i * 4 + 0];
    out[1 * n + i] = in[i * 4 + 1];
    out[2 * n + i] = in[i * 4 + 2];
    out[3 * n + i] = in[i * 4 + 3];
  }
}

int main(int argc, char** argv) {
  int repeat = atoi(argv[1]);
  int n = 512;
  int total = n * 4;
  float* h_in = (float*)malloc(total * sizeof(float));
  float* h_out = (float*)malloc(total * sizeof(float));
  srand(7);
  for (int i = 0; i < total; i++) {
    h_in[i] = (rand() % 100) * 0.5f;
  }
  float* d_in;
  float* d_out;
  cudaMalloc(&d_in, total * sizeof(float));
  cudaMalloc(&d_out, total * sizeof(float));
  int threads = 128;
  int blocks = (n + threads - 1) / threads;
  for (int r = 0; r < repeat; r++) {
    cudaMemcpy(d_in, h_in, total * sizeof(float), cudaMemcpyHostToDevice);
    aos_to_soa<<<blocks, threads>>>(d_in, d_out, n);
    cudaMemcpy(h_out, d_out, total * sizeof(float), cudaMemcpyDeviceToHost);
  }
  cudaDeviceSynchronize();
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += h_out[i] * ((i % 5) + 1);
  }
  printf("checksum %.4f\n", checksum);
  cudaFree(d_in);
  cudaFree(d_out);
  free(h_in);
  free(h_out);
  return 0;
}
"""

OMP_SOURCE = r"""
// layout: AoS -> SoA transform of a 4-field record array.
int main(int argc, char** argv) {
  int repeat = atoi(argv[1]);
  int n = 512;
  int total = n * 4;
  float* in = (float*)malloc(total * sizeof(float));
  float* out = (float*)malloc(total * sizeof(float));
  srand(7);
  for (int i = 0; i < total; i++) {
    in[i] = (rand() % 100) * 0.5f;
  }
  #pragma omp target data map(to: in[0:total]) map(from: out[0:total])
  {
    for (int r = 0; r < repeat; r++) {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < n; i++) {
        out[0 * n + i] = in[i * 4 + 0];
        out[1 * n + i] = in[i * 4 + 1];
        out[2 * n + i] = in[i * 4 + 2];
        out[3 * n + i] = in[i * 4 + 3];
      }
    }
  }
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += out[i] * ((i % 5) + 1);
  }
  printf("checksum %.4f\n", checksum);
  free(in);
  free(out);
  return 0;
}
"""

SPEC = AppSpec(
    name="layout",
    category="Language and kernel features",
    paper_args=["1"],
    args=["4"],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=32934.7,
    launch_scale=3.93077,
    paper_runtime_cuda=0.4088,
    paper_runtime_omp=0.2573,
    notes="CUDA port re-stages buffers each repetition; OpenMP stays mapped.",
)
