"""The ten Table IV applications, one module each."""
