"""jacobi — Math category (Table IV row 2).

Five-point Jacobi relaxation with a residual reduction at the end.  The
OpenMP port (matching the HeCBench port's behaviour implied by Table IV)
maps its grids on *every* sweep instead of keeping them in a ``target data``
region, so each iteration pays two PCIe round-trips — that is the mechanism
behind the paper's 0.8641 s (CUDA) vs 57.3354 s (OpenMP) baseline gap.
"""

from repro.hecbench.spec import AppSpec

CUDA_SOURCE = r"""
// jacobi: 5-point stencil relaxation on an n x n grid.
__global__ void jacobi_sweep(double* u, double* unew, int n) {
  int idx = blockIdx.x * blockDim.x + threadIdx.x;
  if (idx < n * n) {
    int row = idx / n;
    int col = idx % n;
    if (row > 0 && row < n - 1 && col > 0 && col < n - 1) {
      unew[idx] = 0.25 * (u[idx - 1] + u[idx + 1] + u[idx - n] + u[idx + n]);
    } else {
      unew[idx] = u[idx];
    }
  }
}

__global__ void residual_sum(double* u, double* unew, double* res, int total) {
  int idx = blockIdx.x * blockDim.x + threadIdx.x;
  if (idx < total) {
    double d = unew[idx] - u[idx];
    atomicAdd(&res[0], d * d);
  }
}

int main(int argc, char** argv) {
  int n = 20;
  int iters = 130;
  int total = n * n;
  double* h_u = (double*)malloc(total * sizeof(double));
  for (int i = 0; i < total; i++) {
    int row = i / n;
    int col = i % n;
    if (row == 0 || row == n - 1 || col == 0 || col == n - 1) {
      h_u[i] = 1.0;
    } else {
      h_u[i] = 0.0;
    }
  }
  double* d_u;
  double* d_unew;
  double* d_res;
  cudaMalloc(&d_u, total * sizeof(double));
  cudaMalloc(&d_unew, total * sizeof(double));
  cudaMalloc(&d_res, sizeof(double));
  cudaMemcpy(d_u, h_u, total * sizeof(double), cudaMemcpyHostToDevice);
  cudaMemcpy(d_unew, h_u, total * sizeof(double), cudaMemcpyHostToDevice);
  int threads = 128;
  int blocks = (total + threads - 1) / threads;
  for (int it = 0; it < iters; it++) {
    jacobi_sweep<<<blocks, threads>>>(d_u, d_unew, n);
    double* tmp = d_u;
    d_u = d_unew;
    d_unew = tmp;
  }
  residual_sum<<<blocks, threads>>>(d_u, d_unew, d_res, total);
  cudaDeviceSynchronize();
  double* h_res = (double*)malloc(sizeof(double));
  cudaMemcpy(h_res, d_res, sizeof(double), cudaMemcpyDeviceToHost);
  cudaMemcpy(h_u, d_u, total * sizeof(double), cudaMemcpyDeviceToHost);
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += h_u[i];
  }
  printf("residual %.6f\n", h_res[0]);
  printf("checksum %.6f\n", checksum);
  cudaFree(d_u);
  cudaFree(d_unew);
  cudaFree(d_res);
  free(h_u);
  free(h_res);
  return 0;
}
"""

OMP_SOURCE = r"""
// jacobi: 5-point stencil relaxation on an n x n grid.
// Note: this port maps the grids on every sweep (no target data region).
int main(int argc, char** argv) {
  int n = 20;
  int iters = 130;
  int total = n * n;
  double* u = (double*)malloc(total * sizeof(double));
  double* unew = (double*)malloc(total * sizeof(double));
  for (int i = 0; i < total; i++) {
    int row = i / n;
    int col = i % n;
    if (row == 0 || row == n - 1 || col == 0 || col == n - 1) {
      u[i] = 1.0;
    } else {
      u[i] = 0.0;
    }
    unew[i] = u[i];
  }
  for (int it = 0; it < iters; it++) {
    #pragma omp target teams distribute parallel for map(tofrom: u[0:total]) map(tofrom: unew[0:total])
    for (int idx = 0; idx < total; idx++) {
      int row = idx / n;
      int col = idx % n;
      if (row > 0 && row < n - 1 && col > 0 && col < n - 1) {
        unew[idx] = 0.25 * (u[idx - 1] + u[idx + 1] + u[idx - n] + u[idx + n]);
      } else {
        unew[idx] = u[idx];
      }
    }
    double* tmp = u;
    u = unew;
    unew = tmp;
  }
  double res = 0.0;
  #pragma omp target teams distribute parallel for map(to: u[0:total]) map(to: unew[0:total]) reduction(+: res)
  for (int idx = 0; idx < total; idx++) {
    double d = unew[idx] - u[idx];
    res += d * d;
  }
  double checksum = 0.0;
  for (int i = 0; i < total; i++) {
    checksum += u[i];
  }
  printf("residual %.6f\n", res);
  printf("checksum %.6f\n", checksum);
  free(u);
  free(unew);
  return 0;
}
"""

SPEC = AppSpec(
    name="jacobi",
    category="Math",
    paper_args=[],
    args=[],
    cuda_source=CUDA_SOURCE,
    omp_source=OMP_SOURCE,
    work_scale=148857,
    launch_scale=1.04613,
    paper_runtime_cuda=0.8641,
    paper_runtime_omp=57.3354,
    notes="OpenMP port remaps grids every sweep: transfer-bound.",
)
