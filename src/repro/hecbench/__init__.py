"""HeCBench-style benchmark applications (the paper's Table IV workloads).

The paper selects ten applications from the HeCBench suite across nine
computational categories and translates each bi-directionally between CUDA
and OpenMP target offload.  This package provides those ten applications,
authored from scratch in the MiniCUDA / MiniOMP dialects:

* both dialect versions of an app produce **byte-identical stdout** (data is
  generated with the deterministic ``srand``/``rand`` intrinsic), which is
  what makes automated output verification possible;
* the *performance structure* of each pair mirrors what the paper measured
  (Table IV): e.g. the OpenMP ports of jacobi / dense-embedding remap their
  arrays on every kernel ("no target-data region"), which is why they are
  orders of magnitude slower than the CUDA versions, while the CUDA ports of
  bsearch / colorwheel pay per-repeat transfers the OpenMP ports avoid;
* each app carries the paper's runtime-argument convention plus the reduced
  arguments actually executed, and the work/launch scale factors that relate
  the two (see ``repro.gpu.perfmodel``).
"""

from repro.hecbench.spec import AppSpec
from repro.hecbench.suite import (
    DEFAULT_SUITE,
    REGISTRY,
    Suite,
    SuiteRegistry,
    all_apps,
    app_names,
    get_app,
    resolve_suite,
    suite_names,
)

__all__ = [
    "AppSpec",
    "DEFAULT_SUITE",
    "REGISTRY",
    "Suite",
    "SuiteRegistry",
    "all_apps",
    "app_names",
    "get_app",
    "resolve_suite",
    "suite_names",
]
