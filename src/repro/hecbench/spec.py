"""Application specification shared by the suite, pipeline and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.minilang.source import Dialect, SourceFile


@dataclass(frozen=True)
class AppSpec:
    """One HeCBench-style application in both dialects.

    ``paper_args`` is the runtime-argument list reported in Table IV;
    ``args`` is the reduced argument list the simulator actually executes.
    ``work_scale`` / ``launch_scale`` relate the reduced run to the nominal
    one for the performance model (see :mod:`repro.gpu.perfmodel`).
    """

    name: str
    category: str
    paper_args: List[str]
    args: List[str]
    cuda_source: str
    omp_source: str
    work_scale: float
    launch_scale: float
    #: Table IV reference runtimes (seconds) on the paper's A100.
    paper_runtime_cuda: Optional[float] = None
    paper_runtime_omp: Optional[float] = None
    notes: str = ""

    def source(self, dialect: Dialect) -> str:
        if dialect is Dialect.CUDA:
            return self.cuda_source
        if dialect is Dialect.OMP:
            return self.omp_source
        raise ValueError(f"no {dialect} source for app {self.name!r}")

    def source_file(self, dialect: Dialect) -> SourceFile:
        return SourceFile(
            f"{self.name}{dialect.file_extension}", self.source(dialect), dialect
        )

    def paper_runtime(self, dialect: Dialect) -> Optional[float]:
        if dialect is Dialect.CUDA:
            return self.paper_runtime_cuda
        if dialect is Dialect.OMP:
            return self.paper_runtime_omp
        return None
