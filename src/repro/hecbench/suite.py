"""Suite registry: named application suites over :class:`AppSpec` sets.

Historically this module *was* the suite — a hard-coded list of the ten
Table IV applications.  It is now a registry of named suites:

* ``table4`` — the ten paper applications, in Table IV row order (still
  the default everywhere, so existing behaviour is unchanged);
* ``synth:<spec>`` — dynamically resolved generated suites (see
  :mod:`repro.synth`), e.g. ``synth:stencil,reduction:seeds=3``;
* merged views — ``table4+synth:stencil:seeds=2`` concatenates suites
  with ``+`` (duplicate app names are rejected).

App lookup is suite-aware and forgiving: :func:`get_app` matches
case-insensitively, regenerates synthetic apps from their names alone
(names encode the full generation tuple), and raises
:class:`~repro.errors.UnknownApplicationError` with a closest-name
"did you mean" hint on typos.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

from repro.errors import UnknownApplicationError, UnknownSuiteError
from repro.hecbench.spec import AppSpec
from repro.hecbench.apps import (
    atomic_cost,
    bsearch,
    colorwheel,
    dense_embedding,
    entropy,
    jacobi,
    layout,
    matrix_rotate,
    pathfinder,
    random_access,
)

#: Paper order (Table IV rows).
_TABLE4_APPS: List[AppSpec] = [
    matrix_rotate.SPEC,
    jacobi.SPEC,
    layout.SPEC,
    atomic_cost.SPEC,
    dense_embedding.SPEC,
    pathfinder.SPEC,
    bsearch.SPEC,
    entropy.SPEC,
    colorwheel.SPEC,
    random_access.SPEC,
]

DEFAULT_SUITE = "table4"


def _unknown_app(name: str, known: List[str]) -> UnknownApplicationError:
    message = f"unknown application {name!r}; known apps: {', '.join(known)}"
    close = difflib.get_close_matches(name.lower(),
                                      [k.lower() for k in known], n=1)
    if close:
        original = next(k for k in known if k.lower() == close[0])
        message += f" (did you mean {original!r}?)"
    return UnknownApplicationError(message)


@dataclass(frozen=True)
class Suite:
    """A named, ordered set of applications."""

    name: str
    apps: Tuple[AppSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        names = [a.name for a in self.apps]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise UnknownSuiteError(
                f"suite {self.name!r} repeats app name(s): {', '.join(dupes)}"
            )
        # Lookup maps built once: Suite.get sits on the per-scenario hot
        # path (frozen dataclass, hence object.__setattr__).
        object.__setattr__(self, "_by_name", {a.name: a for a in self.apps})
        object.__setattr__(
            self, "_by_lower", {a.name.lower(): a for a in self.apps}
        )

    def app_names(self) -> List[str]:
        return [a.name for a in self.apps]

    def get(self, name: str) -> AppSpec:
        """Case-insensitive lookup within this suite, with typo hints."""
        spec = self._by_name.get(name) or self._by_lower.get(name.lower())
        if spec is not None:
            return spec
        raise _unknown_app(name, sorted(self._by_name))

    def __len__(self) -> int:
        return len(self.apps)

    def __iter__(self):
        return iter(self.apps)


class SuiteRegistry:
    """Named suite factories plus prefix resolvers for dynamic suites.

    ``resolve`` accepts a registered name (``table4``), a dynamic spec
    handled by a prefix resolver (``synth:...``), a ``+``-separated merge
    of any of those, or an already-built :class:`Suite` (passed through).
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Tuple[Callable[[], Suite], str]] = {}
        self._resolvers: Dict[str, Callable[[str], Suite]] = {}

    def register(
        self, name: str, factory: Callable[[], Suite], description: str = ""
    ) -> None:
        self._factories[name] = (factory, description)

    def register_resolver(
        self, prefix: str, resolver: Callable[[str], Suite]
    ) -> None:
        """Handle every spec starting with ``<prefix>:`` dynamically."""
        self._resolvers[prefix] = resolver

    def names(self) -> List[str]:
        return sorted(self._factories)

    def describe(self, name: str) -> str:
        return self._factories[name][1]

    def resolve(self, spec: Union[str, Suite]) -> Suite:
        if isinstance(spec, Suite):
            return spec
        if "+" in spec:
            return self._merge(spec)
        return self._resolve_single(spec)

    # ------------------------------------------------------------------
    def _resolve_single(self, spec: str) -> Suite:
        entry = self._factories.get(spec)
        if entry is not None:
            return entry[0]()
        prefix = spec.split(":", 1)[0]
        resolver = self._resolvers.get(prefix)
        if resolver is not None and ":" in spec:
            return resolver(spec)
        known = ", ".join(self.names())
        dynamic = ", ".join(f"{p}:<spec>" for p in sorted(self._resolvers))
        raise UnknownSuiteError(
            f"unknown suite {spec!r}; registered suites: {known}; "
            f"dynamic suites: {dynamic}; merge suites with '+'"
        )

    def _merge(self, spec: str) -> Suite:
        parts = [p for p in (s.strip() for s in spec.split("+")) if p]
        if not parts:
            raise UnknownSuiteError(f"empty merged suite spec {spec!r}")
        apps: List[AppSpec] = []
        for part in parts:
            apps.extend(self._resolve_single(part).apps)
        return Suite(
            name=spec,
            apps=tuple(apps),
            description=f"merged view of {len(parts)} suite(s)",
        )


REGISTRY = SuiteRegistry()

#: The default suite, built once (it is immutable and hot).
_TABLE4_SUITE = Suite(
    name="table4",
    apps=tuple(_TABLE4_APPS),
    description="the ten Table IV applications, in paper order",
)

REGISTRY.register(
    "table4",
    lambda: _TABLE4_SUITE,
    "the ten Table IV applications, in paper order",
)


def _resolve_synth(spec: str) -> Suite:
    # Imported lazily: repro.synth depends on this module's Suite class.
    from repro.synth import suite_from_spec

    return suite_from_spec(spec)


REGISTRY.register_resolver("synth", _resolve_synth)


def resolve_suite(spec: Union[str, Suite, None]) -> Suite:
    """Resolve a suite spec string (or pass a built Suite through)."""
    return REGISTRY.resolve(DEFAULT_SUITE if spec is None else spec)


def suite_names() -> List[str]:
    """Registered (static) suite names."""
    return REGISTRY.names()


# ----------------------------------------------------------------------
# Module-level convenience API (defaults preserve the historical
# ten-app behaviour).


def all_apps(suite: Union[str, Suite, None] = None) -> List[AppSpec]:
    """All applications of ``suite`` (default: Table IV, paper order)."""
    return list(resolve_suite(suite).apps)


def app_names(suite: Union[str, Suite, None] = None) -> List[str]:
    return resolve_suite(suite).app_names()


def get_app(name: str, suite: Union[str, Suite, None] = None) -> AppSpec:
    """Look up one application by name.

    Resolution order: the given suite (or Table IV), case-insensitively;
    then on-demand regeneration for synthetic names (``synth-*`` encodes
    its full generation tuple, so cache/session replays and campaign
    manifests can rebuild apps from names alone).  Unknown names raise
    :class:`UnknownApplicationError` with a "did you mean" hint.
    """
    try:
        return resolve_suite(suite).get(name)
    except UnknownApplicationError:
        from repro.synth import app_from_name, is_synth_name

        # Synth names are canonically lowercase; keep the lookup as
        # case-forgiving as the suite path above.
        lowered = name.lower()
        if is_synth_name(lowered):
            return app_from_name(lowered)
        raise
