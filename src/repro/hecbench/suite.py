"""Suite registry: the ten Table IV applications in paper order."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import UnknownApplicationError
from repro.hecbench.spec import AppSpec
from repro.hecbench.apps import (
    atomic_cost,
    bsearch,
    colorwheel,
    dense_embedding,
    entropy,
    jacobi,
    layout,
    matrix_rotate,
    pathfinder,
    random_access,
)

#: Paper order (Table IV rows).
_APPS: List[AppSpec] = [
    matrix_rotate.SPEC,
    jacobi.SPEC,
    layout.SPEC,
    atomic_cost.SPEC,
    dense_embedding.SPEC,
    pathfinder.SPEC,
    bsearch.SPEC,
    entropy.SPEC,
    colorwheel.SPEC,
    random_access.SPEC,
]

_BY_NAME: Dict[str, AppSpec] = {app.name: app for app in _APPS}


def all_apps() -> List[AppSpec]:
    """All ten applications in Table IV order."""
    return list(_APPS)


def app_names() -> List[str]:
    return [app.name for app in _APPS]


def get_app(name: str) -> AppSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise UnknownApplicationError(
            f"unknown application {name!r}; known apps: {known}"
        ) from None
