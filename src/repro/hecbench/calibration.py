"""Scale-factor calibration against Table IV.

Each app's simulated runtime is linear in its two scale factors:

    t(dialect) = A_work(dialect) * work_scale + A_launch(dialect) * launch_scale

where ``A_work`` sums the throughput-limited components of the unscaled
breakdown and ``A_launch`` the per-event overheads.  With one runtime target
per dialect (Table IV), the pair (work_scale, launch_scale) is the solution
of a 2x2 linear system — when it is positive, the baked factors reproduce
*both* Table IV baselines exactly; otherwise we fall back to a clamped
least-squares fit and the shape (who wins) is preserved.

The solved factors are baked into each :class:`AppSpec`;
``benchmarks/test_table4_baselines.py`` re-derives Table IV from them, and
``tests/hecbench/test_calibration.py`` asserts the baked values still solve
the system (guarding against perf-model drift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.gpu import PerformanceModel
from repro.gpu.perfmodel import TimeBreakdown
from repro.hecbench.spec import AppSpec
from repro.minilang.source import Dialect
from repro.toolchain import Executor, compiler_for


def breakdown_components(bd: TimeBreakdown) -> Tuple[float, float]:
    """Split an unscaled breakdown into (work_component, launch_component)."""
    work = bd.host + bd.kernel_compute + bd.atomic + bd.transfer_bandwidth
    launch = bd.kernel_overhead + bd.transfer_latency
    return work, launch


@dataclass
class CalibrationResult:
    app: str
    work_scale: float
    launch_scale: float
    predicted_cuda: float
    predicted_omp: float
    exact: bool


def measure_components(
    app: AppSpec, perf_model: Optional[PerformanceModel] = None
) -> Dict[Dialect, Tuple[float, float]]:
    """Run both reference codes and return unscaled (work, launch) terms."""
    executor = Executor(perf_model)
    out: Dict[Dialect, Tuple[float, float]] = {}
    for dialect in (Dialect.CUDA, Dialect.OMP):
        result = compiler_for(dialect).compile(app.source(dialect))
        if not result.ok:
            raise RuntimeError(
                f"reference {app.name} ({dialect.value}) failed to compile:\n"
                f"{result.stderr}"
            )
        run = executor.run(result.program, dialect, app.args,
                           work_scale=1.0, launch_scale=1.0)
        if not run.ok:
            raise RuntimeError(
                f"reference {app.name} ({dialect.value}) failed to run: {run.stderr}"
            )
        out[dialect] = breakdown_components(run.breakdown)
    return out


#: Per-app overrides of the fallback mixing parameter (see below).  bsearch
#: is deliberately calibrated work-heavy so that the §V-D "single thread"
#: perf fault produces the paper's observed large slowdown mechanism.
ALPHA_OVERRIDES = {"bsearch": 0.9}


def solve_scales(
    app: AppSpec,
    perf_model: Optional[PerformanceModel] = None,
    alpha_override: Optional[float] = None,
) -> CalibrationResult:
    """Solve (work_scale, launch_scale) against the app's Table IV targets."""
    if alpha_override is None:
        alpha_override = ALPHA_OVERRIDES.get(app.name)
    comps = measure_components(app, perf_model)
    a_c, b_c = comps[Dialect.CUDA]
    a_o, b_o = comps[Dialect.OMP]
    t_c = app.paper_runtime_cuda
    t_o = app.paper_runtime_omp
    if t_c is None or t_o is None:
        raise ValueError(f"app {app.name} lacks Table IV targets")

    det = a_c * b_o - a_o * b_c
    exact = False
    w = lat = None
    if alpha_override is None and abs(det) > 1e-30:
        w = (t_c * b_o - t_o * b_c) / det
        lat = (a_c * t_o - a_o * t_c) / det
        exact = w > 0 and lat > 0
    if alpha_override is not None:
        alpha = min(0.999, max(0.001, alpha_override))
        w = alpha * t_c / a_c
        lat = (1.0 - alpha) * t_c / b_c
        exact = False
    elif not exact:
        # Constrained fallback: keep the CUDA baseline exact and move along
        # the feasible line w = alpha*t_c/a_c, lat = (1-alpha)*t_c/b_c to get
        # the OpenMP runtime as close to its target as the structure allows
        # (t_o is linear and monotone in alpha, so clamping suffices).
        if a_c <= 0 or b_c <= 0:
            denom = a_c + b_c
            w = lat = t_c / denom if denom > 0 else 1.0
        else:
            to_full_w = a_o * t_c / a_c + 0.0
            to_full_l = b_o * t_c / b_c + 0.0
            if abs(to_full_w - to_full_l) < 1e-30:
                alpha = 1.0
            else:
                alpha = (t_o - to_full_l) / (to_full_w - to_full_l)
            alpha = min(1.0, max(0.0, alpha))
            # Keep a sliver of the other component so both factors stay
            # positive (zero scales are rejected by the perf model).
            alpha = min(0.999, max(0.001, alpha))
            w = alpha * t_c / a_c
            lat = (1.0 - alpha) * t_c / b_c
    pred_c = a_c * w + b_c * lat
    pred_o = a_o * w + b_o * lat
    return CalibrationResult(
        app=app.name,
        work_scale=w,
        launch_scale=lat,
        predicted_cuda=pred_c,
        predicted_omp=pred_o,
        exact=exact,
    )
