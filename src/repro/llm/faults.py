"""Catalogue of injectable translation defects.

Each :class:`Fault` is a source-text transformation paired with the
diagnostic it provokes.  The simulated LLM injects faults into otherwise
correct transpiler output to reproduce the paper's observed behaviour
classes, and its *repair* logic matches the stderr in a correction prompt
against the fault's ``error_signature`` — exactly the loop dynamics LASSI's
§III-D self-correction exercises.

Fault stages:

* ``compile`` — rejected by the compiler driver; drives the §III-D1 loop.
* ``runtime`` — compiles but faults at run time; drives the §III-D2 loop.
* ``output``  — compiles and runs but prints wrong results; invisible to
  both loops (the paper marks such scenarios N/A after output comparison).
* ``perf``    — correct output, degraded (or improved) performance; never
  corrected, surfaces in the runtime Ratio (§V-D anecdotes).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.minilang.source import Dialect


@dataclass(frozen=True)
class Fault:
    fault_id: str
    stage: str  # compile | runtime | output | perf
    dialect: Optional[Dialect]  # which *target* dialect it applies to; None = both
    description: str
    #: Substrings expected in the resulting stderr; used by the simulated
    #: LLM to decide whether a correction prompt addresses this fault.
    error_signature: Tuple[str, ...]
    #: source -> transformed source, or None when the pattern is absent.
    apply: Callable[[str], Optional[str]]

    def applicable(self, source: str) -> bool:
        return self.apply(source) is not None


def _sub_once(pattern: str, repl, text: str, flags: int = 0) -> Optional[str]:
    out, n = re.subn(pattern, repl, text, count=1, flags=flags)
    return out if n else None


# ---------------------------------------------------------------------------
# Compile-stage faults
# ---------------------------------------------------------------------------

def _undeclared_index_cuda(src: str) -> Optional[str]:
    # Rename the declaration of the kernel's thread-index variable, leaving
    # its uses dangling.
    return _sub_once(
        r"\bint (\w+) = blockIdx\.x \* blockDim\.x \+ threadIdx\.x;",
        lambda m: f"int {m.group(1)}_t = blockIdx.x * blockDim.x + threadIdx.x;",
        src,
    )


def _undeclared_index_omp(src: str) -> Optional[str]:
    # Rename the declaration in the first offloaded canonical loop header.
    m = re.search(
        r"(#pragma omp target[^\n]*\n\s*for \(int )(\w+)( = )", src
    )
    if m is None:
        return None
    return src[: m.start(2)] + m.group(2) + "_t" + src[m.end(2):]


def _missing_semicolon(src: str) -> Optional[str]:
    return _sub_once(
        r"(cudaMalloc\([^;]*\));", r"\1", src
    ) or _sub_once(
        r"^(\s*int \w+ = [^;\n]*);$", r"\1", src, flags=re.MULTILINE
    ) or _sub_once(
        r"^(\s*\w+ = [^;\n]*\))\s*;$", r"\1", src, flags=re.MULTILINE
    )


def _cuda_api_left_in_omp(src: str) -> Optional[str]:
    if "cudaDeviceSynchronize" in src:
        return None
    return _sub_once(
        r"^(\s*)return 0;", r"\1cudaDeviceSynchronize();\n\1return 0;", src,
        flags=re.MULTILINE,
    )


def _atomic_left_in_omp(src: str) -> Optional[str]:
    return _sub_once(
        r"#pragma omp atomic\n(\s*)(\w+)\[([^\]]+)\] \+= ([^;]+);",
        r"\1atomicAdd(&\2[\3], \4);",
        src,
    )


def _kernel_called_directly(src: str) -> Optional[str]:
    return _sub_once(r"(\w+)<<<[^>]*>>>\(", r"\1(", src)


def _missing_launch_arg(src: str) -> Optional[str]:
    m = re.search(r"(\w+<<<[^>]*>>>)\(([^;]*)\);", src)
    if m is None:
        return None
    args = m.group(2)
    if "," not in args:
        return None
    trimmed = args.rsplit(",", 1)[0]
    return src[: m.start()] + f"{m.group(1)}({trimmed});" + src[m.end():]


def _bad_directive_spelling(src: str) -> Optional[str]:
    return _sub_once(
        r"#pragma omp target teams distribute parallel for",
        "#pragma omp targets teams distribute parallel for",
        src,
    )


def _missing_device_decl(src: str) -> Optional[str]:
    for m in re.finditer(
        r"^\s*(?:float|double|int|long)\*\s*(\w+);\s*$", src, re.MULTILINE
    ):
        if f"cudaMalloc(&{m.group(1)}" in src:
            return src[: m.start()] + src[m.end():].lstrip("\n")
    return None


# ---------------------------------------------------------------------------
# Runtime-stage faults
# ---------------------------------------------------------------------------

def _oob_guard_cuda(src: str) -> Optional[str]:
    # Only within a kernel body: look for the canonical guard right after the
    # thread-index computation.
    m = re.search(
        r"(= blockIdx\.x \* blockDim\.x \+ threadIdx\.x;\s*\n\s*if \(\w+) (<) ",
        src,
    )
    if m is None:
        return None
    return src[: m.start(2)] + "<=" + src[m.end(2):]


def _oob_guard_omp(src: str) -> Optional[str]:
    m = re.search(
        r"(#pragma omp target[^\n]*\n\s*for \(int \w+ = 0; \w+) (<) ", src
    )
    if m is None:
        return None
    return src[: m.start(2)] + "<=" + src[m.end(2):]


def _missing_cudamalloc(src: str) -> Optional[str]:
    return _sub_once(r"^\s*cudaMalloc\([^;]*\);\s*\n", "", src, flags=re.MULTILINE)


def _hanging_search_loop(src: str) -> Optional[str]:
    return _sub_once(r"while \((\w+) < (\w+)\)", r"while (\1 <= \2)", src)


# ---------------------------------------------------------------------------
# Output-stage faults (silent wrong answers => N/A after verification)
# ---------------------------------------------------------------------------

def _missing_copyback_cuda(src: str) -> Optional[str]:
    # Remove a device-to-host copy whose destination is actually consumed
    # afterwards (dropping a dead copy would not change the output).
    matches = list(re.finditer(
        r"^\s*cudaMemcpy\((\w+)[^;]*cudaMemcpyDeviceToHost\);\s*\n",
        src, re.MULTILINE,
    ))
    for m in reversed(matches):
        dst = m.group(1)
        tail = src[m.end():]
        uses = [
            mm for mm in re.finditer(rf"\b{re.escape(dst)}\b", tail)
            if not re.search(
                r"(?:cudaFree|free)\($",
                tail[max(0, mm.start() - 12):mm.start()],
            )
        ]
        if uses:
            return src[: m.start()] + src[m.end():]
    if matches:
        m = matches[-1]
        return src[: m.start()] + src[m.end():]
    return None


def _missing_copyback_omp(src: str) -> Optional[str]:
    return _sub_once(r"map\(from:", "map(to:", src) or _sub_once(
        r"map\(tofrom:", "map(to:", src
    )


def _flipped_operator(src: str) -> Optional[str]:
    # Flip the first '+' in a subscripted arithmetic assignment (kernel-ish
    # code), producing plausible but wrong numerics.
    m = re.search(r"\[\w+\] = [^;=<>]*\w\[[^;]*\] (\+) [^;]*;", src)
    if m is None:
        return None
    return src[: m.start(1)] + "-" + src[m.end(1):]


# ---------------------------------------------------------------------------
# Performance-stage faults
# ---------------------------------------------------------------------------

def _weak_parallelism_omp(src: str) -> Optional[str]:
    """Drop the teams/distribute parallelism down to a handful of threads.

    Reproduces the paper's §V-D Codestral/bsearch anecdote: the translated
    code "only implements the default single thread" where the original set
    256 — observed as a ~20x slowdown.
    """
    m = re.search(r"#pragma omp target teams distribute parallel for([^\n]*)", src)
    if m is None:
        return None
    clauses = m.group(1)
    clauses = re.sub(r" num_threads\(\d+\)", "", clauses)
    return (
        src[: m.start()]
        + "#pragma omp target parallel for" + clauses + " num_threads(1)"
        + src[m.end():]
    )


def _tiny_block_cuda(src: str) -> Optional[str]:
    """Launch with 1-thread blocks: same coverage, 1/32 warp utilization."""
    return _sub_once(
        r"<<<(.+?), (\d+)>>>",
        lambda m: f"<<<({m.group(1)}) * {m.group(2)}, 1>>>",
        src,
    )


FAULTS: Dict[str, Fault] = {
    f.fault_id: f
    for f in [
        Fault(
            "undeclared-index-cuda", "compile", Dialect.CUDA,
            "thread-index variable renamed at declaration only",
            ("use of undeclared identifier",),
            _undeclared_index_cuda,
        ),
        Fault(
            "undeclared-index-omp", "compile", Dialect.OMP,
            "loop variable renamed at declaration only",
            ("use of undeclared identifier",),
            _undeclared_index_omp,
        ),
        Fault(
            "missing-semicolon", "compile", None,
            "dropped statement terminator",
            ("expected ';'",),
            _missing_semicolon,
        ),
        Fault(
            "cuda-api-in-omp", "compile", Dialect.OMP,
            "left a cudaDeviceSynchronize() call in OpenMP output",
            ("use of undeclared identifier 'cudaDeviceSynchronize'",),
            _cuda_api_left_in_omp,
        ),
        Fault(
            "atomic-left-in-omp", "compile", Dialect.OMP,
            "kept a CUDA atomicAdd instead of '#pragma omp atomic'",
            ("use of undeclared identifier 'atomicAdd'",),
            _atomic_left_in_omp,
        ),
        Fault(
            "kernel-called-directly", "compile", Dialect.CUDA,
            "called a __global__ function without launch configuration",
            ("must be configured",),
            _kernel_called_directly,
        ),
        Fault(
            "missing-launch-arg", "compile", Dialect.CUDA,
            "dropped the last kernel-launch argument",
            ("arguments to kernel launch", "too few"),
            _missing_launch_arg,
        ),
        Fault(
            "bad-directive-spelling", "compile", Dialect.OMP,
            "misspelled the offload directive",
            ("unknown OpenMP directive",),
            _bad_directive_spelling,
        ),
        Fault(
            "missing-device-decl", "compile", Dialect.CUDA,
            "removed a device pointer declaration",
            ("use of undeclared identifier",),
            _missing_device_decl,
        ),
        Fault(
            "oob-guard-cuda", "runtime", Dialect.CUDA,
            "off-by-one in the kernel bounds guard",
            ("illegal memory access",),
            _oob_guard_cuda,
        ),
        Fault(
            "oob-guard-omp", "runtime", Dialect.OMP,
            "off-by-one in the offloaded loop bound",
            ("illegal memory access",),
            _oob_guard_omp,
        ),
        Fault(
            "missing-cudamalloc", "runtime", Dialect.CUDA,
            "removed a cudaMalloc, leaving a NULL device pointer",
            ("Segmentation fault", "illegal memory access", "NULL"),
            _missing_cudamalloc,
        ),
        Fault(
            "hanging-search-loop", "runtime", None,
            "off-by-one loop condition that never terminates",
            ("timed out",),
            _hanging_search_loop,
        ),
        Fault(
            "missing-copyback-cuda", "output", Dialect.CUDA,
            "results never copied back to the host",
            (),
            _missing_copyback_cuda,
        ),
        Fault(
            "missing-copyback-omp", "output", Dialect.OMP,
            "map kind loses device writes",
            (),
            _missing_copyback_omp,
        ),
        Fault(
            "flipped-operator", "output", None,
            "arithmetic operator flipped in the hot loop",
            (),
            _flipped_operator,
        ),
        Fault(
            "weak-parallelism-omp", "perf", Dialect.OMP,
            "dropped the thread configuration: near-serial device loop",
            (),
            _weak_parallelism_omp,
        ),
        Fault(
            "tiny-block-cuda", "perf", Dialect.CUDA,
            "degenerate 1x1 launch configuration",
            (),
            _tiny_block_cuda,
        ),
    ]
}


def faults_for(dialect: Dialect, stage: Optional[str] = None) -> List[Fault]:
    """All faults applicable to code in ``dialect`` (optionally by stage)."""
    out = []
    for fault in FAULTS.values():
        if fault.dialect is not None and fault.dialect is not dialect:
            continue
        if stage is not None and fault.stage != stage:
            continue
        out.append(fault)
    return out


def get_fault(fault_id: str) -> Fault:
    try:
        return FAULTS[fault_id]
    except KeyError:
        known = ", ".join(sorted(FAULTS))
        raise KeyError(f"unknown fault {fault_id!r}; known: {known}") from None
